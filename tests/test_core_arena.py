"""The flat CSR path arena: lossless views, robust persistence, zero-copy.

The arena is the canonical storage format for path tables, so its
guarantees mirror (and extend) the legacy PathStore suite:

- a PathSet materialised from the arena is indistinguishable from the one
  the cache computed — nodes, order, and RNG-dependent choices included;
- the ``.npz`` persistence is byte-deterministic, memory-mapped on load,
  and corruption-safe: truncation and garbage count ``core.store.corrupt``
  and read as a miss, while foreign format tags, version bumps and key
  mismatches read as a *silent* miss (a valid file, just not ours);
- concurrent/partial saves merge instead of clobbering;
- a legacy gzip-JSON table for the same key migrates in place and still
  counts as a warm hit;
- the shared-memory descriptor round-trips the arena zero-copy.
"""

from __future__ import annotations

import zipfile

import numpy as np
import pytest

from repro import Jellyfish, PathCache
from repro.core.arena import ARENA_FORMAT, ArenaFormatError, PathArena
from repro.core.store import ArenaStore, PathStore
from repro.obs import log, metrics

K = 4


@pytest.fixture(scope="module")
def topo():
    return Jellyfish(18, 10, 6, seed=3)


def _pairs(n, count, seed):
    rng = np.random.default_rng(seed)
    out = set()
    while len(out) < count:
        s, d = (int(x) for x in rng.integers(0, n, 2))
        if s != d:
            out.add((s, d))
    return sorted(out)


def _warm_cache(topo, scheme="rksp", seed=7, count=25):
    cache = PathCache(topo, scheme, k=K, seed=seed)
    cache.precompute(_pairs(topo.n_switches, count, seed=seed + 1))
    return cache


def _tables(cache):
    return {
        pair: [tuple(p) for p in ps]
        for pair, ps in sorted(cache.export_state().items())
    }


# --------------------------------------------------------------------------
# Lossless views
# --------------------------------------------------------------------------

class TestArenaViews:
    def test_pathsets_round_trip_losslessly(self, topo):
        cache = _warm_cache(topo)
        arena = PathArena.from_cache(cache)
        assert len(arena) == len(cache)
        for (s, d), ps in cache.export_state().items():
            view = arena.pathset(s, d)
            assert view.source == s and view.destination == d
            assert [p.nodes for p in view] == [p.nodes for p in ps]

    def test_absent_pair_is_none_and_lookup_negative(self, topo):
        arena = PathArena.from_cache(_warm_cache(topo))
        resident = dict.fromkeys(arena.pairs())
        absent = next(
            (s, d)
            for s in range(topo.n_switches)
            for d in range(topo.n_switches)
            if s != d and (s, d) not in resident
        )
        assert arena.pathset(*absent) is None
        assert arena.lookup(*absent) == -1
        assert absent not in arena

    def test_contains_keys_vectorized(self, topo):
        cache = _warm_cache(topo)
        arena = PathArena.from_cache(cache)
        n = topo.n_switches
        keys = np.arange(n * n, dtype=np.int64)
        got = arena.contains_keys(keys)
        want = np.array(
            [(k // n, k % n) in cache for k in range(n * n)], dtype=bool
        )
        assert (got == want).all()
        assert not PathArena.empty(n).contains_keys(keys).any()

    def test_max_hops_matches_cache(self, topo):
        cache = _warm_cache(topo)
        arena = PathArena.from_cache(cache)
        want = max(
            len(p.nodes) - 1 for ps in cache.export_state().values() for p in ps
        )
        assert arena.max_hops() == max(1, want)
        assert PathArena.empty(topo.n_switches).max_hops() == 1

    def test_merge_later_wins(self, topo):
        a = PathCache(topo, "ksp", k=K, seed=0)
        a.precompute([(0, 1), (0, 2)])
        b = PathCache(topo, "ksp", k=1, seed=0)  # different table for (0, 2)
        b.precompute([(0, 2), (0, 3)])
        merged = PathArena.merge(
            [PathArena.from_cache(a), PathArena.from_cache(b)]
        )
        assert sorted(merged.pairs()) == [(0, 1), (0, 2), (0, 3)]
        assert len(merged.pathset(0, 2)) == len(b.get(0, 2))  # b won
        assert [p.nodes for p in merged.pathset(0, 1)] == [
            p.nodes for p in a.get(0, 1)
        ]

    def test_validation_rejects_inconsistent_offsets(self):
        ok = PathArena(
            4,
            np.array([1], dtype=np.int64),
            np.array([0, 1], dtype=np.int64),
            np.array([0, 2], dtype=np.int64),
            np.array([0, 1], dtype=np.int32),
        )
        assert len(ok) == 1
        with pytest.raises(ArenaFormatError):
            PathArena(
                4,
                np.array([1], dtype=np.int64),
                np.array([0, 2], dtype=np.int64),  # claims 2 paths, has 1
                np.array([0, 2], dtype=np.int64),
                np.array([0, 1], dtype=np.int32),
            )


# --------------------------------------------------------------------------
# .npz persistence
# --------------------------------------------------------------------------

class TestArenaNpz:
    def test_save_is_byte_deterministic(self, topo, tmp_path):
        arena = PathArena.from_cache(_warm_cache(topo), key="k1")
        arena.save_npz(tmp_path / "a.npz")
        arena.save_npz(tmp_path / "b.npz")
        assert (tmp_path / "a.npz").read_bytes() == (
            tmp_path / "b.npz"
        ).read_bytes()

    def test_load_round_trips_and_memory_maps(self, topo, tmp_path):
        cache = _warm_cache(topo)
        arena = PathArena.from_cache(cache, key="k1")
        target = tmp_path / "a.npz"
        arena.save_npz(target)
        loaded = PathArena.load_npz(target)
        assert loaded.key == "k1"
        assert loaded.n_switches == arena.n_switches
        for name in ("pair_key", "pair_off", "path_off", "nodes"):
            got, want = getattr(loaded, name), getattr(arena, name)
            assert got.dtype == want.dtype and (got == want).all()
        # The payload views sit on one mmap of the file, not on copies.
        assert loaded._mmap is not None
        assert loaded.nodes.base is not None
        for (s, d), ps in cache.export_state().items():
            assert [p.nodes for p in loaded.pathset(s, d)] == [
                p.nodes for p in ps
            ]


def _store_events(events):
    return [e["event"] for e in events]


class TestArenaStore:
    def test_warm_save_then_cold_load_computes_nothing(self, topo, tmp_path):
        store = ArenaStore(tmp_path)
        warm = _warm_cache(topo)
        with metrics.capture() as reg:
            store.save(warm)
        assert store.file_for(warm).exists()
        snap = reg.snapshot()
        assert snap["gauges"]["core.arena_bytes"] > 0
        assert snap["gauges"]["core.pairs_resident"] == len(warm)

        cold = PathCache(topo, "rksp", k=K, seed=7)
        with metrics.capture() as reg:
            assert store.load(cold) == len(warm)
        assert reg.snapshot()["counters"]["core.store.load_hit"] == 1
        assert _tables(cold) == _tables(warm)
        assert cold.misses == 0  # every get above was an arena hit

    def test_export_bytes_identical_between_arena_and_dict(
        self, topo, tmp_path
    ):
        # An arena-backed cache must persist through the *legacy* store
        # byte-for-byte like the dict-backed cache it came from.
        store = ArenaStore(tmp_path)
        warm = _warm_cache(topo)
        store.save(warm)
        cold = PathCache(topo, "rksp", k=K, seed=7)
        store.load(cold)

        legacy_a, legacy_b = PathStore(tmp_path / "a"), PathStore(tmp_path / "b")
        legacy_a.save(warm)
        legacy_b.save(cold)
        assert legacy_a.file_for(warm).read_bytes() == legacy_b.file_for(
            cold
        ).read_bytes()

    def test_truncation_and_garbage_read_as_corrupt_miss(self, topo, tmp_path):
        store = ArenaStore(tmp_path)
        cache = _warm_cache(topo, count=5)
        store.save(cache)
        target = store.file_for(cache)
        good = target.read_bytes()

        events = []
        log.add_handler(events.append)
        try:
            with metrics.capture() as reg:
                for payload in [good[: len(good) // 2], b"not a zip at all"]:
                    target.write_bytes(payload)
                    fresh = PathCache(topo, "rksp", k=K, seed=7)
                    assert store.load(fresh) == 0
                    assert len(fresh) == 0
        finally:
            log.remove_handler(events.append)
        assert reg.snapshot()["counters"]["core.store.corrupt"] == 2
        corrupt = [
            e for e in events if e["event"] == "path_store.corrupt_file"
        ]
        assert len(corrupt) == 2
        assert all(e["path"] == str(target) for e in corrupt)

    def test_foreign_tag_version_and_key_mismatch_are_silent_misses(
        self, topo, tmp_path
    ):
        store = ArenaStore(tmp_path)
        cache = _warm_cache(topo, count=5)
        store.save(cache)
        target = store.file_for(cache)

        def rewrite_format(tag):
            arena = PathArena.load_npz(target, mmap=False)
            import repro.core.arena as arena_mod

            orig = arena_mod.ARENA_FORMAT
            arena_mod.ARENA_FORMAT = tag
            try:
                arena.save_npz(target)
            finally:
                arena_mod.ARENA_FORMAT = orig

        # A future format version must read as a miss, never a crash.
        rewrite_format("repro-patharena-v2")
        with metrics.capture() as reg:
            fresh = PathCache(topo, "rksp", k=K, seed=7)
            assert store.load(fresh) == 0
        snap = reg.snapshot()["counters"]
        assert snap.get("core.store.corrupt", 0) == 0
        assert snap["core.store.load_miss"] == 1

        # A valid arena under the wrong key (renamed file).
        other = PathCache(topo, "rksp", k=K, seed=8)
        PathArena.from_cache(cache, key=store.cache_key(cache)).save_npz(
            store.file_for(other)
        )
        assert store.load(other) == 0

        # A plain npz that is not an arena at all: same silent miss.
        np.savez(target, something=np.arange(3))
        fresh = PathCache(topo, "rksp", k=K, seed=7)
        assert store.load(fresh) == 0

    def test_compressed_members_are_rejected(self, topo, tmp_path):
        # save_npz stores members uncompressed so loads can mmap; a
        # deflated archive (e.g. hand-rolled) must not sneak past that.
        store = ArenaStore(tmp_path)
        cache = _warm_cache(topo, count=3)
        store.save(cache)
        target = store.file_for(cache)
        deflated = tmp_path / "deflated.npz"
        with zipfile.ZipFile(target) as src:
            with zipfile.ZipFile(
                deflated, "w", zipfile.ZIP_DEFLATED
            ) as dst:
                for name in src.namelist():
                    dst.writestr(name, src.read(name))
        deflated.replace(target)
        fresh = PathCache(topo, "rksp", k=K, seed=7)
        assert store.load(fresh) == 0

    def test_partial_saves_merge(self, topo, tmp_path):
        store = ArenaStore(tmp_path)
        a = PathCache(topo, "ksp", k=K, seed=0)
        a.precompute([(0, 1)])
        store.save(a)
        b = PathCache(topo, "ksp", k=K, seed=0)
        b.precompute([(2, 3)])
        store.save(b)

        merged = PathCache(topo, "ksp", k=K, seed=0)
        assert store.load(merged) == 2
        assert (0, 1) in merged and (2, 3) in merged

    def test_legacy_gzip_json_migrates_as_warm_hit(self, topo, tmp_path):
        legacy = PathStore(tmp_path)
        warm = _warm_cache(topo)
        legacy.save(warm)

        store = ArenaStore(tmp_path)
        cold = PathCache(topo, "rksp", k=K, seed=7)
        with metrics.capture() as reg:
            assert store.load(cold) == len(warm)
        snap = reg.snapshot()["counters"]
        assert snap["core.store.load_hit"] == 1
        assert snap.get("core.store.load_miss", 0) == 0
        assert _tables(cold) == _tables(warm)
        # ... and the table now persists in arena form for the next load.
        assert store.file_for(cold).exists()
        again = PathCache(topo, "rksp", k=K, seed=7)
        assert store.load(again) == len(warm)

    def test_warm_pipeline_uses_arena_store(self, topo, tmp_path):
        store = ArenaStore(tmp_path)
        pairs = _pairs(topo.n_switches, 10, seed=11)
        first = PathCache(topo, "redksp", k=K, seed=2)
        assert first.warm(pairs, store=store) == len(pairs)
        second = PathCache(topo, "redksp", k=K, seed=2)
        assert second.warm(pairs, store=store) == 0
        assert _tables(second) == _tables(first)


# --------------------------------------------------------------------------
# Shared memory
# --------------------------------------------------------------------------

class TestArenaShm:
    def test_shm_descriptor_round_trips(self, topo):
        import pickle

        cache = _warm_cache(topo)
        arena = PathArena.from_cache(cache, key="k9")
        shm, descriptor = arena.to_shm()
        try:
            # The descriptor is what crosses the process boundary: it must
            # be tiny and free of any pickled path objects.
            blob = pickle.dumps(descriptor)
            assert len(blob) < 1024
            assert b"PathSet" not in blob
            attached = PathArena.from_shm(descriptor)
            assert attached.key == "k9"
            for (s, d), ps in cache.export_state().items():
                assert [p.nodes for p in attached.pathset(s, d)] == [
                    p.nodes for p in ps
                ]
            del attached
        finally:
            shm.close()
            shm.unlink()
