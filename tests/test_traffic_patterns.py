"""Unit tests for synthetic traffic patterns."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TrafficError
from repro.traffic import (
    all_to_all,
    random_destinations,
    random_permutation,
    random_shift,
    shift,
)
from repro.traffic.patterns import Pattern


class TestPatternType:
    def test_validation_rejects_out_of_range(self):
        with pytest.raises(TrafficError):
            Pattern("bad", 4, ((0, 4),))
        with pytest.raises(TrafficError):
            Pattern("bad", 4, ((-1, 2),))

    def test_validation_rejects_self_flow(self):
        with pytest.raises(TrafficError):
            Pattern("bad", 4, ((2, 2),))

    def test_arrays(self):
        p = Pattern("ok", 4, ((0, 1), (2, 3)))
        assert p.sources().tolist() == [0, 2]
        assert p.destinations().tolist() == [1, 3]
        assert len(p) == 2
        assert list(p) == [(0, 1), (2, 3)]


class TestRandomPermutation:
    def test_is_permutation_without_fixed_points(self):
        for seed in range(8):
            p = random_permutation(50, seed=seed)
            dsts = p.destinations()
            assert sorted(dsts.tolist()) == list(range(50))
            assert (dsts != np.arange(50)).all()
            assert len(p) == 50

    def test_each_host_sends_once(self):
        p = random_permutation(64, seed=1)
        assert sorted(p.sources().tolist()) == list(range(64))

    def test_reproducible(self):
        assert random_permutation(30, seed=4).flows == random_permutation(30, seed=4).flows

    def test_two_hosts(self):
        p = random_permutation(2, seed=0)
        assert set(p.flows) == {(0, 1), (1, 0)}

    def test_one_host_rejected(self):
        with pytest.raises(TrafficError):
            random_permutation(1)


class TestShift:
    def test_shift_formula(self):
        p = shift(10, 3)
        assert all(d == (s + 3) % 10 for s, d in p.flows)
        assert len(p) == 10

    def test_shift_wraps_amount(self):
        assert shift(10, 13).flows == shift(10, 3).flows

    def test_zero_shift_rejected(self):
        with pytest.raises(TrafficError):
            shift(10, 0)
        with pytest.raises(TrafficError):
            shift(10, 20)

    def test_random_shift_valid(self):
        for seed in range(6):
            p = random_shift(12, seed=seed)
            amounts = {(d - s) % 12 for s, d in p.flows}
            assert len(amounts) == 1
            assert amounts.pop() != 0

    def test_random_shift_covers_different_amounts(self):
        amounts = {random_shift(40, seed=s).name for s in range(20)}
        assert len(amounts) > 3


class TestRandomDestinations:
    def test_counts_and_no_self(self):
        p = random_destinations(20, 5, seed=0)
        assert len(p) == 20 * 5
        for s, d in p.flows:
            assert s != d

    def test_destinations_distinct_per_source(self):
        p = random_destinations(20, 5, seed=0)
        by_src = {}
        for s, d in p.flows:
            by_src.setdefault(s, []).append(d)
        for s, dests in by_src.items():
            assert len(set(dests)) == len(dests) == 5

    def test_full_fanout_equals_all_to_all(self):
        p = random_destinations(6, 5, seed=0)
        assert sorted(p.flows) == sorted(all_to_all(6).flows)

    def test_x_too_large_rejected(self):
        with pytest.raises(TrafficError):
            random_destinations(6, 6)

    def test_invalid_x_rejected(self):
        with pytest.raises(ConfigurationError):
            random_destinations(6, 0)

    def test_destination_skew_is_uniform(self):
        # The skip-over-self sampling must not bias destinations.
        counts = np.zeros(10)
        for seed in range(200):
            p = random_destinations(10, 1, seed=seed)
            for _, d in p.flows:
                counts[d] += 1
        assert counts.min() > counts.max() * 0.6


class TestAllToAll:
    def test_count(self):
        assert len(all_to_all(8)) == 8 * 7

    def test_every_ordered_pair_once(self):
        p = all_to_all(5)
        assert len(set(p.flows)) == 20
        assert all(s != d for s, d in p.flows)
