"""The persistent run ledger: distillation, dedup, atomic appends.

The ledger is the cross-run half of the observability stack, so two
contracts are pinned hard here: entries are content-hash-deduplicated
(re-ingesting the same manifest or benchmark export is a no-op), and the
append path is safe under concurrent writers — the hammer test mirrors
``run_saturation_grid --processes`` by appending from several processes
at once and asserts no entry is lost, torn, or duplicated.
"""

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.experiments.runner import main as runner_main
from repro.obs import log, metrics
from repro.obs.ledger import (
    LEDGER_FORMAT,
    LEDGER_SCHEMA_VERSION,
    append_entries,
    bench_entries,
    default_ledger_path,
    entry_id,
    load_entries,
    manifest_entry,
    read_ledger,
    series_key,
)
from repro.obs.manifest import build_manifest

pytestmark = pytest.mark.obs


def _manifest(stage_total=1.0, engine="fast", cps=1.0e5, seed=0):
    snap = {
        "timers": {"experiment.fig9": {"count": 1, "total": stage_total}},
        "counters": {
            "netsim.flits_forwarded": 1000,
            f"netsim.engine_runs/{engine}": 3,
        },
        "gauges": {f"netsim.cycles_per_sec/{engine}": cps},
        "info": {"topology_hash": "ab" * 32},
    }
    return build_manifest(
        experiment="fig9", scale="small", seed=seed,
        wall_time_s=2.0, metrics_snapshot=snap,
    )


# ------------------------------------------------------------ distillation

def test_manifest_entry_distills_trendable_fields():
    entry = manifest_entry(_manifest())
    assert entry["format"] == LEDGER_FORMAT
    assert entry["schema_version"] == LEDGER_SCHEMA_VERSION
    assert entry["kind"] == "manifest"
    assert entry["experiment"] == "fig9"
    assert entry["engines"] == ["fast"]
    assert entry["topology_hash"] == "ab" * 32
    assert entry["metrics"]["timing/experiment.fig9"] == 1.0
    assert entry["metrics"]["gauge/netsim.cycles_per_sec/fast"] == 1.0e5
    assert entry["metrics"]["counter/netsim.flits_forwarded"] == 1000.0
    # Environment provenance rides along for per-host trend scoping.
    assert entry["host"] and entry["python"] and entry["numpy"]
    assert entry["cpu_count"] >= 1
    assert entry["id"] == entry_id(entry)


def test_bench_entries_distill_benchmark_rows():
    export = {
        "datetime": "2026-08-08T00:00:00+00:00",
        "machine_info": {
            "node": "vm", "python_version": "3.11.7", "cpu": {"count": 4},
        },
        "commit_info": {"id": "c" * 40},
        "benchmarks": [
            {"name": "test_perf_yen_k8",
             "stats": {"mean": 0.001, "min": 0.0008}},
            {"name": "test_perf_grid_batched",
             "stats": {"mean": 4.0, "min": 3.9}},
        ],
    }
    entries = bench_entries(export)
    assert [e["experiment"] for e in entries] == [
        "test_perf_yen_k8", "test_perf_grid_batched",
    ]
    for e in entries:
        assert e["kind"] == "bench"
        assert e["host"] == "vm"
        assert e["cpu_count"] == 4
        assert e["git_commit"] == "c" * 40
    assert entries[0]["metrics"] == {"timing/mean": 0.001, "timing/min": 0.0008}


def test_entry_id_is_content_based():
    a = manifest_entry(_manifest())
    b = manifest_entry(_manifest())
    assert a["id"] == b["id"]  # identical content, identical hash
    c = manifest_entry(_manifest(stage_total=2.0))
    assert c["id"] != a["id"]
    # The hash covers everything but the id itself.
    mutated = dict(a, experiment="fig10")
    assert entry_id(mutated) != a["id"]


def test_series_key_scopes_per_host():
    a = manifest_entry(_manifest())
    assert series_key(a) == ("manifest", "fig9", "small", a["host"])
    b = dict(a, host="elsewhere")
    assert series_key(b) != series_key(a)


# --------------------------------------------------------- append / read

def test_append_read_roundtrip(tmp_path):
    path = tmp_path / "ledger.jsonl"
    entries = [manifest_entry(_manifest(stage_total=t)) for t in (1.0, 2.0)]
    assert append_entries(path, entries) == 2
    loaded, skipped = read_ledger(path)
    assert skipped == 0
    assert loaded == entries


def test_append_dedups_by_content_hash(tmp_path):
    path = tmp_path / "ledger.jsonl"
    entry = manifest_entry(_manifest())
    assert append_entries(path, [entry]) == 1
    # Same content again — in the same batch or a later call — is a no-op.
    assert append_entries(path, [entry, dict(entry)]) == 0
    loaded, _ = read_ledger(path)
    assert len(loaded) == 1


def test_read_skips_torn_and_foreign_lines(tmp_path):
    path = tmp_path / "ledger.jsonl"
    entry = manifest_entry(_manifest())
    append_entries(path, [entry])
    with open(path, "a") as fh:
        fh.write('{"format": "something-else", "id": "x"}\n')
        fh.write('{"torn": tru')  # no trailing newline: a torn tail
    loaded, skipped = read_ledger(path)
    assert [e["id"] for e in loaded] == [entry["id"]]
    assert skipped == 2
    # A damaged ledger still accepts appends of fresh entries.
    other = manifest_entry(_manifest(stage_total=9.0))
    assert append_entries(path, [other]) == 1
    loaded, _ = read_ledger(path)
    assert {e["id"] for e in loaded} == {entry["id"], other["id"]}


def test_missing_ledger_reads_empty(tmp_path):
    loaded, skipped = read_ledger(tmp_path / "absent.jsonl")
    assert loaded == [] and skipped == 0


def test_load_entries_merges_and_time_orders(tmp_path):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    e1 = dict(manifest_entry(_manifest(stage_total=1.0)),
              created_at="2026-08-01T00:00:00+00:00")
    e2 = dict(manifest_entry(_manifest(stage_total=2.0)),
              created_at="2026-08-02T00:00:00+00:00")
    e1["id"], e2["id"] = entry_id(e1), entry_id(e2)
    append_entries(a, [e2])
    append_entries(b, [e1, e2])  # e2 duplicated across files
    merged = load_entries([a, b])
    assert [e["id"] for e in merged] == [e1["id"], e2["id"]]


def test_default_ledger_path_resolution(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_RUN_LEDGER", raising=False)
    assert default_ledger_path(tmp_path) == tmp_path / "run-ledger.jsonl"
    assert default_ledger_path().name == "run-ledger.jsonl"
    monkeypatch.setenv("REPRO_RUN_LEDGER", str(tmp_path / "env.jsonl"))
    assert default_ledger_path(tmp_path) == tmp_path / "env.jsonl"


# ------------------------------------------------- concurrent appenders

def _hammer(args):
    """One worker of the concurrency hammer: N appends, one call each."""
    path, worker, n = args
    for i in range(n):
        entry = {
            "format": LEDGER_FORMAT,
            "schema_version": LEDGER_SCHEMA_VERSION,
            "kind": "bench",
            "experiment": f"hammer-w{worker}-{i}",
            "scale": "bench",
            "created_at": f"2026-08-08T00:{worker:02d}:{i:02d}+00:00",
            "metrics": {"timing/mean": float(worker * 1000 + i)},
        }
        append_entries(path, [entry])
    return worker


def test_concurrent_appends_lose_nothing(tmp_path):
    """Hammer the atomic-append path from multiple processes.

    Mirrors ``run_saturation_grid --processes``: four processes append
    25 entries each, interleaved arbitrarily.  Every entry must land
    exactly once, every line must parse — no loss, no tearing, no
    duplicates.
    """
    path = tmp_path / "ledger.jsonl"
    n_workers, per_worker = 4, 25
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        done = list(
            pool.map(
                _hammer,
                [(str(path), w, per_worker) for w in range(n_workers)],
            )
        )
    assert sorted(done) == list(range(n_workers))

    # Every line parses — no torn or interleaved writes.
    lines = path.read_text().splitlines()
    assert len(lines) == n_workers * per_worker
    docs = [json.loads(line) for line in lines]

    loaded, skipped = read_ledger(path)
    assert skipped == 0
    assert len(loaded) == n_workers * per_worker
    names = {e["experiment"] for e in loaded}
    assert names == {
        f"hammer-w{w}-{i}"
        for w in range(n_workers)
        for i in range(per_worker)
    }
    assert len({e["id"] for e in docs}) == n_workers * per_worker


# ------------------------------------------------------- runner feeding

@pytest.fixture(autouse=True)
def _obs_state():
    level = log.get_level()
    yield
    log.set_level(level)
    log.close_jsonl()
    metrics.disable()


def test_runner_feeds_ledger_next_to_manifests(tmp_path, capsys, monkeypatch):
    monkeypatch.delenv("REPRO_RUN_LEDGER", raising=False)
    out_dir = tmp_path / "tel"
    assert runner_main(
        ["table1", "--scale", "small", "--telemetry-dir", str(out_dir)]
    ) == 0
    ledger_path = out_dir / "run-ledger.jsonl"
    loaded, skipped = read_ledger(ledger_path)
    assert skipped == 0 and len(loaded) == 1
    entry = loaded[0]
    assert entry["kind"] == "manifest"
    assert entry["experiment"] == "table1"
    assert "timing/experiment.table1" in entry["metrics"]
    assert "# ledger:" in capsys.readouterr().out

    # A second run accumulates (different timings hash differently).
    assert runner_main(
        ["table1", "--scale", "small", "--telemetry-dir", str(out_dir)]
    ) == 0
    loaded, _ = read_ledger(ledger_path)
    assert len(loaded) == 2
    assert len({e["id"] for e in loaded}) == 2


def test_runner_ledger_flag_overrides_destination(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_RUN_LEDGER", raising=False)
    out_dir = tmp_path / "tel"
    custom = tmp_path / "elsewhere" / "fleet.jsonl"
    assert runner_main([
        "table1", "--scale", "small",
        "--telemetry-dir", str(out_dir), "--run-ledger", str(custom),
    ]) == 0
    loaded, _ = read_ledger(custom)
    assert len(loaded) == 1
    assert not (out_dir / "run-ledger.jsonl").exists()


def test_runner_ledger_flag_requires_telemetry_dir(tmp_path):
    with pytest.raises(SystemExit):
        runner_main(["table1", "--run-ledger", str(tmp_path / "l.jsonl")])
