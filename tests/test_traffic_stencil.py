"""Unit tests for stencil workloads and rank mappings."""

import numpy as np
import pytest

from repro.errors import MappingError, TrafficError
from repro.traffic import (
    apply_mapping,
    grid_dims,
    linear_mapping,
    random_mapping,
    stencil_messages,
)


class TestGridDims:
    def test_paper_2d(self):
        assert sorted(grid_dims(3600, 2)) == [60, 60]

    def test_paper_3d(self):
        assert sorted(grid_dims(3600, 3)) == [15, 15, 16]

    def test_small(self):
        assert sorted(grid_dims(12, 2)) == [3, 4]
        assert sorted(grid_dims(24, 3)) == [2, 3, 4]

    def test_prime(self):
        assert sorted(grid_dims(7, 2)) == [1, 7]

    def test_one_dim(self):
        assert grid_dims(9, 1) == (9,)


class TestStencilMessages:
    @pytest.mark.parametrize(
        "name,neighbours", [("2dnn", 4), ("2dnndiag", 8), ("3dnn", 6), ("3dnndiag", 26)]
    )
    def test_neighbour_counts_on_large_grid(self, name, neighbours):
        # 8x8 (or 4x4x4) grids: all wrap-around neighbours distinct.
        n = 64
        msgs = stencil_messages(name, n, total_bytes=1.0)
        per_src = {}
        for s, d, b in msgs:
            per_src.setdefault(s, []).append((d, b))
        assert set(per_src) == set(range(n))
        for s, out in per_src.items():
            assert len(out) == neighbours

    def test_bytes_sum_to_total(self):
        for name in ("2dnn", "2dnndiag", "3dnn", "3dnndiag"):
            msgs = stencil_messages(name, 64, total_bytes=15e6)
            per_src = {}
            for s, d, b in msgs:
                per_src[s] = per_src.get(s, 0.0) + b
            for s, total in per_src.items():
                assert total == pytest.approx(15e6)

    def test_2dnn_split_matches_paper(self):
        # Paper: 2DNN sends 15/4 = 3.75 MB per neighbour.
        msgs = stencil_messages("2dnn", 3600, total_bytes=15e6)
        assert all(b == pytest.approx(15e6 / 4) for _, _, b in msgs)

    def test_symmetry(self):
        # Periodic stencil exchange is symmetric: (s, d) implies (d, s).
        msgs = stencil_messages("3dnn", 27, total_bytes=1.0)
        pairs = {(s, d) for s, d, _ in msgs}
        assert all((d, s) in pairs for s, d in pairs)

    def test_no_self_messages(self):
        for n in (4, 9, 16):
            msgs = stencil_messages("2dnn", n, total_bytes=1.0)
            assert all(s != d for s, d, _ in msgs)

    def test_tiny_grid_merges_duplicates_but_keeps_totals(self):
        # On a 2x2 grid, +1 and -1 wrap to the same neighbour.
        msgs = stencil_messages("2dnn", 4, total_bytes=1.0)
        per_src = {}
        for s, d, b in msgs:
            per_src[s] = per_src.get(s, 0.0) + b
        assert all(v == pytest.approx(1.0) for v in per_src.values())

    def test_explicit_dims(self):
        msgs = stencil_messages("2dnn", 12, total_bytes=1.0, dims=(3, 4))
        assert len({s for s, _, _ in msgs}) == 12

    def test_explicit_dims_validation(self):
        with pytest.raises(TrafficError, match="multiply"):
            stencil_messages("2dnn", 12, dims=(3, 5))
        with pytest.raises(TrafficError, match="dims"):
            stencil_messages("2dnn", 12, dims=(12,))

    def test_unknown_stencil(self):
        with pytest.raises(TrafficError, match="unknown stencil"):
            stencil_messages("5dnn", 32)

    def test_bad_bytes(self):
        with pytest.raises(TrafficError):
            stencil_messages("2dnn", 16, total_bytes=0)


class TestMappings:
    def test_linear(self):
        m = linear_mapping(10, 20)
        assert m.tolist() == list(range(10))

    def test_linear_overflow(self):
        with pytest.raises(MappingError):
            linear_mapping(21, 20)

    def test_random_is_injective(self):
        m = random_mapping(15, 20, seed=3)
        assert len(set(m.tolist())) == 15
        assert all(0 <= h < 20 for h in m)

    def test_random_reproducible(self):
        assert random_mapping(15, 20, seed=3).tolist() == random_mapping(15, 20, seed=3).tolist()

    def test_apply_mapping(self):
        msgs = [(0, 1, 5.0), (1, 2, 7.0)]
        m = np.array([10, 11, 12])
        assert apply_mapping(msgs, m) == [(10, 11, 5.0), (11, 12, 7.0)]

    def test_apply_mapping_range_check(self):
        with pytest.raises(MappingError):
            apply_mapping([(0, 3, 1.0)], np.array([4, 5, 6]))
