"""The telemetry-enabled CLI path: flags, manifest files, event logs."""

import json

import pytest

from repro.experiments.runner import main
from repro.obs import log, metrics

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def _obs_state():
    level = log.get_level()
    yield
    log.set_level(level)
    log.close_jsonl()
    metrics.disable()


def test_runner_without_telemetry_stays_silent(capsys):
    assert main(["table1", "--scale", "small"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out
    assert "stage timings" not in out
    assert metrics.snapshot() is None


def test_runner_writes_manifest_and_event_log(tmp_path, capsys):
    out_dir = tmp_path / "tel"
    assert main([
        "table1", "--scale", "small",
        "--telemetry-dir", str(out_dir), "--log-level", "info",
    ]) == 0

    manifest = json.loads((out_dir / "table1-small.manifest.json").read_text())
    assert manifest["format"] == "repro-manifest-v1"
    assert manifest["experiment"] == "table1"
    assert manifest["scale"] == "small"
    assert manifest["config"]["processes"] == 1
    assert "experiment.table1" in manifest["stage_timings"]
    assert manifest["wall_time_s"] >= 0

    events = [
        json.loads(line)
        for line in (out_dir / "table1-small.events.jsonl").read_text().splitlines()
    ]
    names = [e["event"] for e in events]
    assert "experiment_start" in names
    assert "experiment_done" in names
    assert "manifest_written" in names

    printed = capsys.readouterr().out
    assert "stage timings" in printed
    assert "# manifest:" in printed

    # The registry is torn down after the run.
    assert metrics.snapshot() is None


def test_runner_telemetry_scoped_per_experiment(tmp_path):
    out_dir = tmp_path / "tel"
    assert main([
        "table1", "table2", "--scale", "small", "--telemetry-dir", str(out_dir),
    ]) == 0
    for name in ("table1", "table2"):
        doc = json.loads((out_dir / f"{name}-small.manifest.json").read_text())
        assert doc["experiment"] == name
        # Each manifest holds only its own experiment's span.
        spans = [k for k in doc["stage_timings"] if k.startswith("experiment.")]
        assert spans == [f"experiment.{name}"]
