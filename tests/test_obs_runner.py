"""The telemetry-enabled CLI path: flags, manifest files, event logs."""

import json

import pytest

from repro.experiments.runner import main
from repro.obs import log, metrics

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def _obs_state():
    level = log.get_level()
    yield
    log.set_level(level)
    log.close_jsonl()
    metrics.disable()


def test_runner_without_telemetry_stays_silent(capsys):
    assert main(["table1", "--scale", "small"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out
    assert "stage timings" not in out
    assert metrics.snapshot() is None


def test_runner_writes_manifest_and_event_log(tmp_path, capsys):
    out_dir = tmp_path / "tel"
    assert main([
        "table1", "--scale", "small",
        "--telemetry-dir", str(out_dir), "--log-level", "info",
    ]) == 0

    manifest = json.loads((out_dir / "table1-small.manifest.json").read_text())
    assert manifest["format"] == "repro-manifest-v1"
    assert manifest["experiment"] == "table1"
    assert manifest["scale"] == "small"
    assert manifest["config"]["processes"] == 1
    assert "experiment.table1" in manifest["stage_timings"]
    assert manifest["wall_time_s"] >= 0

    events = [
        json.loads(line)
        for line in (out_dir / "table1-small.events.jsonl").read_text().splitlines()
    ]
    names = [e["event"] for e in events]
    assert "experiment_start" in names
    assert "experiment_done" in names
    assert "manifest_written" in names

    printed = capsys.readouterr().out
    assert "stage timings" in printed
    assert "# manifest:" in printed

    # The registry is torn down after the run.
    assert metrics.snapshot() is None


def test_runner_telemetry_scoped_per_experiment(tmp_path):
    out_dir = tmp_path / "tel"
    assert main([
        "table1", "table2", "--scale", "small", "--telemetry-dir", str(out_dir),
    ]) == 0
    for name in ("table1", "table2"):
        doc = json.loads((out_dir / f"{name}-small.manifest.json").read_text())
        assert doc["experiment"] == name
        # Each manifest holds only its own experiment's span.
        spans = [k for k in doc["stage_timings"] if k.startswith("experiment.")]
        assert spans == [f"experiment.{name}"]


def test_timeseries_flag_requires_telemetry_dir():
    with pytest.raises(SystemExit):
        main(["table1", "--timeseries-window", "100"])


def test_timeseries_window_must_be_positive(tmp_path):
    with pytest.raises(SystemExit):
        main([
            "table1", "--telemetry-dir", str(tmp_path),
            "--timeseries-window", "0",
        ])


def _tiny_sim_experiment(scale="small", seed=0):
    """A seconds-fast cycle-level driver for CLI-path tests."""
    from repro import Jellyfish, PathCache
    from repro.experiments.base import ExperimentResult
    from repro.netsim import SimConfig, Simulator, UniformTraffic

    topo = Jellyfish(8, 6, 4, seed=1)
    cache = PathCache(topo, "ksp", k=2, seed=seed)
    cfg = SimConfig(warmup_cycles=100, sample_cycles=50, n_samples=2)
    result = Simulator(
        topo, cache, "random", UniformTraffic(topo.n_hosts), 0.2,
        config=cfg, seed=seed,
    ).run()
    return ExperimentResult(
        experiment="tiny_sim",
        title="tiny cycle-level run",
        headers=["metric", "value"],
        rows=[["throughput", round(result.accepted_throughput, 3)]],
        scale=scale,
        notes="",
        data={"throughput": result.accepted_throughput},
    )


def test_runner_writes_timeseries_and_steady_report(tmp_path, capsys, monkeypatch):
    from repro.experiments import runner
    from repro.obs.timeseries import load_timeseries

    monkeypatch.setitem(runner.EXPERIMENTS, "tiny_sim", _tiny_sim_experiment)
    out_dir = tmp_path / "tel"
    assert main([
        "tiny_sim", "--scale", "small",
        "--telemetry-dir", str(out_dir), "--timeseries-window", "25",
    ]) == 0

    snap = load_timeseries(out_dir / "tiny_sim-small.timeseries.npz")
    assert snap["window"] == 25
    assert snap["n_runs"] == 1
    assert snap["n_windows"] == 8  # 200 cycles / 25

    manifest = json.loads((out_dir / "tiny_sim-small.manifest.json").read_text())
    assert manifest["config"]["timeseries_window"] == 25
    steady = manifest["steady_state"]
    assert steady["n_runs"] == 1
    assert steady["runs"][0]["warmup_cycles"] == 100
    assert isinstance(steady["runs"][0]["warmup_sufficient"], bool)

    printed = capsys.readouterr().out
    assert "steady state:" in printed
    assert "# timeseries:" in printed


def test_runner_steady_state_flag_reaches_simulator(tmp_path, monkeypatch):
    from repro.experiments import runner

    seen = {}

    def probe(scale="small", seed=0, steady_state=False):
        seen["steady_state"] = steady_state
        return _tiny_sim_experiment(scale, seed)

    monkeypatch.setitem(runner.EXPERIMENTS, "probe", probe)
    assert main(["probe", "--steady-state"]) == 0
    assert seen["steady_state"] is True
    assert main(["probe"]) == 0
    assert seen["steady_state"] is False


def test_git_commit_cached_per_process(monkeypatch):
    import subprocess

    from repro.obs import manifest as obs_manifest

    calls = {"n": 0}
    real_run = subprocess.run

    def counting_run(*args, **kwargs):
        calls["n"] += 1
        return real_run(*args, **kwargs)

    obs_manifest._git_commit.cache_clear()
    monkeypatch.setattr(obs_manifest.subprocess, "run", counting_run)
    try:
        first = obs_manifest._git_commit()
        second = obs_manifest._git_commit()
        assert first == second
        assert calls["n"] == 1  # the subprocess forked exactly once
    finally:
        obs_manifest._git_commit.cache_clear()


def test_profile_flag_requires_telemetry_dir(capsys):
    with pytest.raises(SystemExit):
        main(["table1", "--scale", "small", "--profile"])
    assert "--profile requires --telemetry-dir" in capsys.readouterr().err


def test_profile_writes_pstats_next_to_manifest(tmp_path, capsys):
    import pstats

    out_dir = tmp_path / "tel"
    assert main([
        "table1", "--scale", "small",
        "--telemetry-dir", str(out_dir), "--profile",
    ]) == 0

    dump = out_dir / "table1-small.profile.pstats"
    assert dump.exists()
    stats = pstats.Stats(str(dump))  # the dump is a loadable pstats file
    assert stats.total_calls > 0

    manifest = json.loads((out_dir / "table1-small.manifest.json").read_text())
    assert manifest["profile"] == str(dump)
    assert manifest["config"]["profile"] is True

    out = capsys.readouterr().out
    assert "profile hotspots" in out
    assert "# profile:" in out


def test_unprofiled_manifest_has_no_profile_key(tmp_path):
    out_dir = tmp_path / "tel"
    assert main([
        "table1", "--scale", "small", "--telemetry-dir", str(out_dir),
    ]) == 0
    manifest = json.loads((out_dir / "table1-small.manifest.json").read_text())
    assert "profile" not in manifest
