"""Byte-equivalence of the fast path-table pipeline with the seed kernels.

The fast kernels (bitset/CSR BFS, cached per-source level fields, spur
memoization, trusted Path construction) are pure optimisations: every
scheme must produce *exactly* the paths the original straightforward
implementation produced, RNG draw for RNG draw.  This module pins that
contract with a self-contained reference implementation — a direct
transcription of the seed's deque-BFS shortest path, Yen, Remove-Find and
LLSKR — and compares full PathCache output against it for all six schemes
across several master seeds.  It also pins the parallel and persistent
halves of the pipeline: ``precompute_parallel`` must merge to the identical
table whatever the worker count, and a PathStore roundtrip must reproduce
the table byte-for-byte (with corruption reading as a clean miss).
"""

from __future__ import annotations

import gzip
import heapq
from collections import deque

import numpy as np
import pytest

from repro import Jellyfish, PathCache, PathStore
from repro.core.store import _FORMAT
from repro.obs import log


# --------------------------------------------------------------------------
# Reference implementation: the seed's path machinery, verbatim semantics.
# Kept deliberately independent of repro.core so kernel regressions cannot
# cancel out.
# --------------------------------------------------------------------------

def _ref_bfs_levels(adj, source, banned_nodes=frozenset(), banned_edges=frozenset()):
    n = len(adj)
    dist = [-1] * n
    if source in banned_nodes:
        return dist
    dist[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u] + 1
        for v in adj[u]:
            if dist[v] >= 0 or v in banned_nodes:
                continue
            if banned_edges and (u, v) in banned_edges:
                continue
            dist[v] = du
            queue.append(v)
    return dist


def _ref_shortest_path(
    adj, source, destination, *, tie="min", rng=None,
    banned_nodes=frozenset(), banned_edges=frozenset(),
):
    if source == destination:
        return None if source in banned_nodes else [source]
    if source in banned_nodes or destination in banned_nodes:
        return None
    dist = _ref_bfs_levels(adj, source, banned_nodes, banned_edges)
    if dist[destination] < 0:
        return None
    path = [destination]
    v = destination
    while v != source:
        target = dist[v] - 1
        candidates = []
        for u in adj[v]:
            if dist[u] != target or u in banned_nodes:
                continue
            if banned_edges and (u, v) in banned_edges:
                continue
            candidates.append(u)
            if tie == "min":
                break  # adj is sorted: first hit is the smallest id
        if tie == "min":
            u = candidates[0]
        else:
            # The seed draws even with a single candidate; the fast
            # backwalk must consume the identical RNG stream.
            u = int(candidates[int(rng.integers(len(candidates)))])
        path.append(u)
        v = u
    path.reverse()
    return path


def _ref_k_shortest_paths(adj, source, destination, k, *, tie="min", rng=None):
    first = _ref_shortest_path(adj, source, destination, tie=tie, rng=rng)
    assert first is not None
    accepted = [tuple(first)]
    heap = []
    seen = {tuple(first)}

    def push(nodes):
        if nodes in seen:
            return
        seen.add(nodes)
        if tie == "min":
            heapq.heappush(heap, (len(nodes) - 1, nodes, nodes))
        else:
            heapq.heappush(heap, (len(nodes) - 1, float(rng.random()), nodes))

    while len(accepted) < k:
        prev = accepted[-1]
        for j in range(len(prev) - 1):
            root = prev[: j + 1]
            banned_edges = set()
            for p in accepted:
                if p[: j + 1] == root and len(p) > j + 1:
                    banned_edges.add((p[j], p[j + 1]))
            spur_path = _ref_shortest_path(
                adj, prev[j], destination, tie=tie, rng=rng,
                banned_nodes=set(root[:-1]), banned_edges=banned_edges,
            )
            if spur_path is not None:
                push(root[:-1] + tuple(spur_path))
        if not heap:
            break
        _, _, nodes = heapq.heappop(heap)
        accepted.append(nodes)
    return accepted


def _ref_edge_disjoint(adj, source, destination, k, *, tie="min", rng=None):
    paths = []
    banned = set()
    for _ in range(k):
        nodes = _ref_shortest_path(
            adj, source, destination, tie=tie, rng=rng, banned_edges=banned
        )
        if nodes is None:
            break
        paths.append(tuple(nodes))
        for u, v in zip(nodes, nodes[1:]):
            banned.add((u, v))
            banned.add((v, u))
    return paths


def _ref_llskr(adj, source, destination, k, *, spread=1):
    k_min = max(1, k // 2)
    candidates = _ref_k_shortest_paths(adj, source, destination, k, tie="min")
    limit = (len(candidates[0]) - 1) + spread
    within = [p for p in candidates if len(p) - 1 <= limit]
    if len(within) >= k_min:
        return within
    return candidates[: min(k_min, len(candidates))]


def _ref_select(scheme, adj, s, d, k, rng):
    if scheme == "sp":
        return _ref_k_shortest_paths(adj, s, d, 1, tie="min")
    if scheme == "ksp":
        return _ref_k_shortest_paths(adj, s, d, k, tie="min")
    if scheme == "rksp":
        return _ref_k_shortest_paths(adj, s, d, k, tie="random", rng=rng)
    if scheme == "edksp":
        return _ref_edge_disjoint(adj, s, d, k, tie="min")
    if scheme == "redksp":
        return _ref_edge_disjoint(adj, s, d, k, tie="random", rng=rng)
    if scheme == "llskr":
        return _ref_llskr(adj, s, d, k)
    raise AssertionError(scheme)


def _pair_rng(seed, s, d):
    """The PathCache per-pair RNG derivation, replicated independently."""
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(s, d))
    )


# --------------------------------------------------------------------------
# Scheme equivalence
# --------------------------------------------------------------------------

K = 8
SCHEMES = ["sp", "ksp", "rksp", "edksp", "redksp", "llskr"]


@pytest.fixture(scope="module")
def topo():
    return Jellyfish(36, 24, 16, seed=1)


def _sample_pairs(n, count, seed):
    rng = np.random.default_rng(seed)
    pairs = set()
    while len(pairs) < count:
        s, d = (int(x) for x in rng.integers(0, n, 2))
        if s != d:
            pairs.add((s, d))
    return sorted(pairs)


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("master_seed", [0, 1, 42])
def test_scheme_matches_reference(topo, scheme, master_seed):
    adj = topo.adjacency
    cache = PathCache(topo, scheme, k=K, seed=master_seed)
    for s, d in _sample_pairs(topo.n_switches, 15, seed=master_seed + 100):
        got = [tuple(p) for p in cache.get(s, d)]
        want = [
            tuple(p)
            for p in _ref_select(scheme, adj, s, d, K, _pair_rng(master_seed, s, d))
        ]
        assert got == want, (scheme, master_seed, s, d)


def test_randomized_schemes_consume_identical_rng_stream(topo):
    # Beyond equal paths: the fast kernels must leave the generator at the
    # same position, or downstream draws would silently diverge.
    from repro.core.yen import k_shortest_paths

    adj = topo.adjacency
    for s, d in _sample_pairs(topo.n_switches, 5, seed=9):
        r_fast, r_ref = np.random.default_rng(7), np.random.default_rng(7)
        k_shortest_paths(adj, s, d, K, tie="random", rng=r_fast)
        _ref_k_shortest_paths(adj, s, d, K, tie="random", rng=r_ref)
        assert r_fast.integers(1 << 30) == r_ref.integers(1 << 30)


# --------------------------------------------------------------------------
# Parallel precompute equivalence
# --------------------------------------------------------------------------

def _table(cache):
    return {
        pair: [tuple(p) for p in ps] for pair, ps in cache.export_state().items()
    }


def test_precompute_parallel_matches_serial(topo):
    pairs = _sample_pairs(topo.n_switches, 40, seed=3)
    serial = PathCache(topo, "rksp", k=K, seed=5)
    serial.precompute_parallel(pairs, processes=1)
    parallel = PathCache(topo, "rksp", k=K, seed=5)
    computed = parallel.precompute_parallel(pairs, processes=4)
    assert computed == len(pairs)
    assert _table(parallel) == _table(serial)


def test_precompute_parallel_skips_known_pairs(topo):
    cache = PathCache(topo, "ksp", k=K, seed=0)
    pairs = [(0, 1), (0, 2)]
    assert cache.precompute_parallel(pairs) == 2
    assert cache.precompute_parallel(pairs + [(0, 3)]) == 1


# --------------------------------------------------------------------------
# Persistent store
# --------------------------------------------------------------------------

def test_store_roundtrip_is_byte_identical(topo, tmp_path):
    store = PathStore(tmp_path)
    warm = PathCache(topo, "redksp", k=K, seed=2)
    pairs = _sample_pairs(topo.n_switches, 20, seed=4)
    assert warm.warm(pairs, store=store) == len(pairs)
    assert store.file_for(warm).exists()

    cold = PathCache(topo, "redksp", k=K, seed=2)
    assert cold.warm(pairs, store=store) == 0  # everything came from disk
    assert _table(cold) == _table(warm)


def test_store_key_separates_topology_scheme_k_and_seed(topo, tmp_path):
    store = PathStore(tmp_path)
    base = PathCache(topo, "rksp", k=8, seed=0)
    other_topo = Jellyfish(36, 24, 16, seed=2)
    variants = [
        PathCache(topo, "ksp", k=8, seed=0),
        PathCache(topo, "rksp", k=4, seed=0),
        PathCache(topo, "rksp", k=8, seed=1),
        PathCache(other_topo, "rksp", k=8, seed=0),
    ]
    keys = {store.cache_key(c) for c in [base] + variants}
    assert len(keys) == len(variants) + 1


def test_store_load_survives_corruption(topo, tmp_path):
    store = PathStore(tmp_path)
    cache = PathCache(topo, "sp", k=1, seed=0)
    cache.warm([(0, 1), (1, 2)], store=store)
    target = store.file_for(cache)

    # Truncated gzip and garbage bytes must read as a miss with a logged
    # corruption event, never raise.
    good = target.read_bytes()
    events = []
    log.add_handler(events.append)
    try:
        for payload in [good[: len(good) // 2], b"not a gzip file at all"]:
            target.write_bytes(payload)
            fresh = PathCache(topo, "sp", k=1, seed=0)
            assert store.load(fresh) == 0
            assert len(fresh) == 0
    finally:
        log.remove_handler(events.append)
    corrupt = [e for e in events if e["event"] == "path_store.corrupt_file"]
    assert len(corrupt) == 2
    assert all(str(target) == e["path"] for e in corrupt)

    # A format-tag or key mismatch (old version, renamed file) is a silent
    # miss — valid file, just not ours.
    target.write_bytes(
        gzip.compress(b'{"format": "something-else", "entries": []}')
    )
    fresh = PathCache(topo, "sp", k=1, seed=0)
    assert store.load(fresh) == 0
    target.write_bytes(
        gzip.compress(
            ('{"format": "%s", "key": "deadbeef", "entries": []}' % _FORMAT).encode()
        )
    )
    assert store.load(fresh) == 0


def test_store_merges_partial_warms(topo, tmp_path):
    store = PathStore(tmp_path)
    a = PathCache(topo, "ksp", k=K, seed=0)
    a.warm([(0, 1)], store=store)
    b = PathCache(topo, "ksp", k=K, seed=0)
    b.warm([(2, 3)], store=store)

    merged = PathCache(topo, "ksp", k=K, seed=0)
    assert store.load(merged) == 2
    assert (0, 1) in merged and (2, 3) in merged
