"""Unit tests for topology metrics against networkx references."""

import networkx as nx
import pytest

from repro.topology import Jellyfish
from repro.topology.metrics import (
    average_shortest_path_length,
    bisection_links,
    diameter,
    shortest_path_length_histogram,
)
from repro.topology.rrg import random_regular_graph


def to_nx(adj):
    g = nx.Graph()
    g.add_nodes_from(range(len(adj)))
    for u, nbrs in enumerate(adj):
        for v in nbrs:
            g.add_edge(u, v)
    return g


class TestAgainstNetworkx:
    @pytest.mark.parametrize("n,degree,seed", [(10, 3, 0), (16, 5, 1), (36, 16, 2)])
    def test_average_shortest_path_length(self, n, degree, seed):
        adj = random_regular_graph(n, degree, seed=seed)
        ours = average_shortest_path_length(adj)
        ref = nx.average_shortest_path_length(to_nx(adj))
        assert ours == pytest.approx(ref)

    @pytest.mark.parametrize("n,degree,seed", [(10, 3, 0), (16, 5, 1)])
    def test_diameter(self, n, degree, seed):
        adj = random_regular_graph(n, degree, seed=seed)
        assert diameter(adj) == nx.diameter(to_nx(adj))


class TestEdgeCases:
    def test_trivial_graphs(self):
        assert average_shortest_path_length([[]]) == 0.0
        assert average_shortest_path_length([]) == 0.0
        assert diameter([[]]) == 0

    def test_disconnected_diameter(self):
        adj = [[1], [0], [3], [2]]
        assert diameter(adj) == -1

    def test_histogram_sums_to_pairs(self):
        adj = random_regular_graph(12, 4, seed=3)
        hist = shortest_path_length_histogram(adj)
        assert sum(hist.values()) == 12 * 11

    def test_histogram_consistent_with_average(self):
        adj = random_regular_graph(12, 4, seed=3)
        hist = shortest_path_length_histogram(adj)
        mean = sum(h * c for h, c in hist.items()) / sum(hist.values())
        assert mean == pytest.approx(average_shortest_path_length(adj))

    def test_sampled_estimate_close(self):
        adj = random_regular_graph(36, 16, seed=2)
        exact = average_shortest_path_length(adj)
        sampled = average_shortest_path_length(adj, sample=18, seed=0)
        assert abs(sampled - exact) < 0.2

    def test_bisection_positive_for_connected(self):
        adj = random_regular_graph(16, 4, seed=1)
        assert bisection_links(adj, trials=8, seed=0) > 0

    def test_bisection_trivial(self):
        assert bisection_links([[]]) == 0


class TestTable1:
    """Table I reproduction at the small scale (exact) — the paper reports
    an average shortest path length of 1.54 for RRG(36, 24, 16)."""

    def test_rrg36_average_path_length_band(self):
        topo = Jellyfish(36, 24, 16, seed=1)
        apl = average_shortest_path_length(topo.adjacency)
        # Instances vary slightly; the paper's value is 1.54.
        assert 1.45 <= apl <= 1.65

    def test_rrg36_diameter_small(self):
        topo = Jellyfish(36, 24, 16, seed=1)
        assert diameter(topo.adjacency) <= 3
