"""Unit tests for the switch-level demand helpers."""

import numpy as np
import pytest

from repro import Jellyfish
from repro.errors import TrafficError
from repro.traffic import (
    all_to_all,
    pattern_locality,
    random_permutation,
    switch_demand_matrix,
    switch_pair_flows,
)


@pytest.fixture(scope="module")
def topo():
    return Jellyfish(6, 8, 4, seed=2)  # 4 hosts per switch, 24 hosts


class TestDemandMatrix:
    def test_total_preserved(self, topo):
        pat = random_permutation(topo.n_hosts, seed=1)
        d = switch_demand_matrix(topo, pat)
        assert d.sum() == len(pat)

    def test_known_flows(self, topo):
        # Hosts 0..3 are on switch 0; hosts 4..7 on switch 1.
        d = switch_demand_matrix(topo, [(0, 4), (1, 5), (2, 3)])
        assert d[0, 1] == 2
        assert d[0, 0] == 1
        assert d.sum() == 3

    def test_all_to_all_uniform_off_diagonal(self, topo):
        d = switch_demand_matrix(topo, all_to_all(topo.n_hosts))
        h = topo.hosts_per_switch
        off = d[~np.eye(topo.n_switches, dtype=bool)]
        assert (off == h * h).all()
        assert (np.diag(d) == h * (h - 1)).all()

    def test_empty_rejected(self, topo):
        with pytest.raises(TrafficError):
            switch_demand_matrix(topo, [])


class TestLocality:
    def test_all_to_all_locality(self, topo):
        h = topo.hosts_per_switch
        n = topo.n_hosts
        expect = (h - 1) / (n - 1)
        assert pattern_locality(topo, all_to_all(n)) == pytest.approx(expect)

    def test_fully_local_pattern(self, topo):
        flows = [(0, 1), (1, 2), (2, 0)]  # all on switch 0
        assert pattern_locality(topo, flows) == 1.0

    def test_fully_remote_pattern(self, topo):
        flows = [(0, 4), (4, 8)]
        assert pattern_locality(topo, flows) == 0.0


class TestSwitchPairFlows:
    def test_excludes_local_by_default(self, topo):
        pairs = switch_pair_flows(topo, [(0, 1), (0, 4)])
        assert pairs == [(0, 1)]

    def test_include_local(self, topo):
        pairs = switch_pair_flows(topo, [(0, 1), (0, 4)], include_local=True)
        assert pairs == [(0, 0), (0, 1)]

    def test_deduplicates(self, topo):
        pairs = switch_pair_flows(topo, [(0, 4), (1, 5), (2, 6)])
        assert pairs == [(0, 1)]
