"""Dense link-state telemetry: recorder semantics, engine equality,
and the byte-identity pin across all three engine tiers.

The tentpole pin: a saturation grid's link-state snapshot — and the
``.npz`` written from it — must be byte-identical whether the grid ran
serially, across pool workers, or through the batched multi-lane engine,
exactly like the metrics/trace/time-series artifacts before it.
"""

import hashlib

import numpy as np
import pytest

from repro import Jellyfish, PathCache
from repro.errors import ConfigurationError
from repro.netsim import SimConfig, Simulator, UniformTraffic
from repro.netsim.batchcore import BatchLane, BatchSimulator
from repro.netsim.fastcore import FastSimulator
from repro.netsim.parallel import run_saturation_grid
from repro.netsim.simulator import Simulator as ReferenceSimulator
from repro.obs import linkstate
from repro.obs.linkstate import (
    LINKSTATE_FORMAT,
    MATRIX_COLS,
    ROW_COLS,
    LinkstateRecorder,
    link_endpoints,
    load_linkstate,
    save_linkstate,
)
from repro.traffic import random_permutation

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def _linkstate_disabled():
    """Module state is global; every test starts and ends with it off."""
    linkstate.disable()
    yield
    linkstate.disable()


@pytest.fixture(scope="module")
def topo():
    return Jellyfish(8, 8, 5, seed=3)


@pytest.fixture(scope="module")
def cache(topo):
    return PathCache(topo, "redksp", k=4, seed=1)


FAST = SimConfig(warmup_cycles=100, sample_cycles=100, n_samples=3)


def _sim(topo, cache, rate=0.2, cfg=FAST, seed=5, mechanism="ksp_adaptive"):
    return Simulator(
        topo, cache, mechanism, UniformTraffic(topo.n_hosts), rate,
        config=cfg, seed=np.random.SeedSequence(seed),
    )


def _window_row(n_links, scale=1):
    return {
        "forwarded": np.arange(n_links) * scale,
        "credit_stalls": np.ones(n_links, dtype=np.int64),
        "peak_occupancy": np.full(n_links, 2 * scale),
    }


# ------------------------------------------------------------- recorder

class TestRecorder:
    def test_record_and_snapshot_columns(self):
        rec = LinkstateRecorder(window=10, capacity=2)
        run = rec.begin_run(scheme="ksp", n_links=4)
        rec.record_window(run, start=0, cycles=10, **_window_row(4))
        snap = rec.snapshot()
        assert snap["format"] == LINKSTATE_FORMAT
        assert snap["n_windows"] == 1 and snap["n_links"] == 4
        assert snap["runs"][0]["scheme"] == "ksp"
        for col in ROW_COLS:
            assert snap[f"ls_{col}"].dtype == np.int64
            assert snap[f"ls_{col}"].shape == (1,)
        for col in MATRIX_COLS:
            assert snap[f"ls_{col}"].dtype == np.int64
            assert snap[f"ls_{col}"].shape == (1, 4)
        assert snap["ls_forwarded"][0].tolist() == [0, 1, 2, 3]
        assert snap["ls_peak_occupancy"][0].tolist() == [2, 2, 2, 2]

    def test_begin_run_requires_n_links(self):
        rec = LinkstateRecorder()
        with pytest.raises(ConfigurationError, match="n_links"):
            rec.begin_run(scheme="ksp")

    def test_mismatched_n_links_rejected(self):
        rec = LinkstateRecorder()
        rec.begin_run(n_links=4)
        with pytest.raises(ConfigurationError, match="4 links"):
            rec.begin_run(n_links=6)

    def test_record_before_begin_run_rejected(self):
        rec = LinkstateRecorder()
        with pytest.raises(ConfigurationError, match="begin_run"):
            rec.record_window(0, start=0, cycles=10, **_window_row(4))

    def test_wrong_width_row_rejected(self):
        rec = LinkstateRecorder()
        run = rec.begin_run(n_links=4)
        with pytest.raises(ConfigurationError, match="shape"):
            rec.record_window(run, start=0, cycles=10, **_window_row(3))

    def test_growth_preserves_rows_and_snapshot_equality(self):
        grown = LinkstateRecorder(window=5, capacity=2)
        fresh = LinkstateRecorder(window=5, capacity=64)
        for rec in (grown, fresh):
            run = rec.begin_run(label="x", n_links=3)
            for i in range(10):  # 5x the small recorder's capacity
                rec.record_window(
                    run, start=5 * i, cycles=5, **_window_row(3, scale=i)
                )
        a, b = grown.snapshot(), fresh.snapshot()
        assert a.keys() == b.keys()
        for key in a:
            if isinstance(a[key], np.ndarray):
                np.testing.assert_array_equal(a[key], b[key], err_msg=key)
            else:
                assert a[key] == b[key], key

    def test_merge_offsets_runs_in_task_order(self):
        parent = LinkstateRecorder(window=10)
        for tag in ("a", "b"):
            child = LinkstateRecorder(window=10)
            run = child.begin_run(tag=tag, n_links=2)
            child.set_link_endpoints([0, -1], [1, 0])
            child.record_window(run, start=0, cycles=10, **_window_row(2))
            parent.merge(child.snapshot())
        snap = parent.snapshot()
        assert [r["tag"] for r in snap["runs"]] == ["a", "b"]
        assert snap["ls_run"].tolist() == [0, 1]
        assert snap["ls_index"].tolist() == [0, 0]
        assert snap["link_src"].tolist() == [0, -1]

    def test_merge_rejects_mismatched_window(self):
        a = LinkstateRecorder(window=10)
        b = LinkstateRecorder(window=20)
        with pytest.raises(ConfigurationError, match="window"):
            a.merge(b.snapshot())

    def test_endpoint_tables_pin_one_topology(self):
        rec = LinkstateRecorder()
        rec.begin_run(n_links=2)
        rec.set_link_endpoints([0, 1], [1, 0])
        rec.set_link_endpoints([0, 1], [1, 0])  # idempotent re-validate
        with pytest.raises(ConfigurationError, match="different link"):
            rec.set_link_endpoints([1, 0], [0, 1])

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            LinkstateRecorder(window=0)
        with pytest.raises(ConfigurationError):
            LinkstateRecorder(capacity=0)

    def test_module_state_capture_and_config(self):
        assert linkstate.snapshot() is None
        assert linkstate.config() is None
        linkstate.enable(window=40)
        assert linkstate.enabled()
        assert linkstate.config() == {"window": 40}
        with linkstate.capture(window=7) as rec:
            assert linkstate.active() is rec
            assert linkstate.config() == {"window": 7}
        assert linkstate.active().window == 40
        linkstate.disable()
        assert not linkstate.enabled()


def test_link_endpoints_table(topo):
    ep = link_endpoints(topo)
    src, dst = ep["link_src"], ep["link_dst"]
    assert src.shape == dst.shape == (topo.n_links,)
    n_sw = topo.injection_link_base
    # Switch links connect switches in switch_links() order.
    assert (src[:n_sw] >= 0).all() and (dst[:n_sw] >= 0).all()
    for h in range(topo.n_hosts):
        sw = topo.switch_of_host(h)
        assert src[topo.injection_link_base + h] == -1 - h
        assert dst[topo.injection_link_base + h] == sw
        assert src[topo.ejection_link_base + h] == sw
        assert dst[topo.ejection_link_base + h] == -1 - h


# ------------------------------------------------- simulator integration

class TestSimulatorIntegration:
    def test_windows_cover_run_and_sum_to_totals(self, topo, cache):
        linkstate.enable(window=100)
        sim = _sim(topo, cache)
        sim.run()
        snap = linkstate.snapshot()
        linkstate.disable()
        assert snap["n_links"] == topo.n_links
        # 400 total cycles at window=100: four full windows, no drain rows.
        assert snap["ls_start"].tolist() == [0, 100, 200, 300]
        assert int(snap["ls_cycles"].sum()) == FAST.total_cycles
        fwd = snap["ls_forwarded"]
        # Switch-link forwarded flits sum to the engine's own counter
        # (linkstate is not measure-gated, and drain never flushes).
        n_sw = topo.injection_link_base
        assert int(fwd[:, :n_sw].sum()) == sim.flits_forwarded
        # Every launched flit crosses exactly one injection link.
        inj = fwd[:, topo.injection_link_base : topo.ejection_link_base]
        assert int(inj.sum()) > 0
        # Injection/ejection links hold no VC buffers: peak stays zero;
        # ejection links never stall.
        peak = snap["ls_peak_occupancy"]
        assert int(peak[:, n_sw:].sum()) == 0
        assert int(snap["ls_credit_stalls"][:, topo.ejection_link_base :].sum()) == 0
        meta = snap["runs"][0]
        assert meta["n_links"] == topo.n_links
        assert meta["mechanism"] == "ksp_adaptive"

    def test_final_partial_window_flushes(self, topo, cache):
        linkstate.enable(window=150)
        _sim(topo, cache).run()
        snap = linkstate.snapshot()
        linkstate.disable()
        # 400 cycles at window=150: 150/150/100.
        assert snap["ls_cycles"].tolist() == [150, 150, 100]

    def test_disabled_recorder_costs_nothing(self, topo, cache):
        sim = _sim(topo, cache)
        assert sim._ls is None
        sim.run()
        assert linkstate.snapshot() is None

    def test_reference_engine_matches_fast(self, topo, cache):
        snaps = {}
        for engine in ("fast", "reference"):
            cfg = SimConfig(
                warmup_cycles=100, sample_cycles=100, n_samples=3,
                engine=engine,
            )
            with linkstate.capture(window=100) as rec:
                sim = _sim(topo, cache, cfg=cfg)
                assert isinstance(sim, FastSimulator) == (engine == "fast")
                sim.run()
                snaps[engine] = rec.snapshot()
        fast, ref = snaps["fast"], snaps["reference"]
        assert fast.keys() == ref.keys()
        for key in fast:
            if isinstance(fast[key], np.ndarray):
                np.testing.assert_array_equal(fast[key], ref[key], err_msg=key)
            else:
                assert fast[key] == ref[key], key

    def test_switch_stalls_recorded_under_backpressure(self, topo, cache):
        # The paper's 32-flit buffers absorb core contention, so stalls
        # pool at the injection edge; 2-flit buffers force switch-to-
        # switch credit stalls — the signal the congestion tree walks.
        cfg = SimConfig(
            warmup_cycles=100, sample_cycles=100, n_samples=2, vc_buffer=2,
        )
        with linkstate.capture(window=100) as rec:
            _sim(topo, cache, rate=0.9, cfg=cfg).run()
            snap = rec.snapshot()
        stalls = snap["ls_credit_stalls"].sum(axis=0)
        n_sw = topo.injection_link_base
        assert int(stalls[:n_sw].sum()) > 0
        assert int(stalls[n_sw : topo.ejection_link_base].sum()) > 0

    def test_config_flag_requires_active_recorder(self, topo, cache):
        cfg = SimConfig(
            warmup_cycles=20, sample_cycles=20, n_samples=1, linkstate=True,
        )
        with pytest.raises(ConfigurationError, match="link-state recorder"):
            _sim(topo, cache, cfg=cfg)
        with pytest.raises(ConfigurationError, match="link-state recorder"):
            BatchSimulator(
                topo, cache,
                [BatchLane("ksp_adaptive", UniformTraffic(topo.n_hosts), 0.2)],
                SimConfig(
                    warmup_cycles=20, sample_cycles=20, n_samples=1,
                    batch_lanes=1, linkstate=True,
                ),
            )
        with linkstate.capture(window=100):
            _sim(topo, cache, cfg=cfg).run()  # recorder present: fine

    def test_reference_engine_config_guard(self, topo, cache):
        cfg = SimConfig(
            warmup_cycles=20, sample_cycles=20, n_samples=1,
            engine="reference", linkstate=True,
        )
        with pytest.raises(ConfigurationError, match="link-state recorder"):
            ReferenceSimulator(
                topo, cache, "ksp_adaptive", UniformTraffic(topo.n_hosts),
                0.2, config=cfg, seed=np.random.SeedSequence(5),
            )


# ------------------------------------------------------- persistence

class TestPersistence:
    def test_npz_round_trip(self, tmp_path):
        rec = LinkstateRecorder(window=10)
        run = rec.begin_run(scheme="rksp", rate=0.3, n_links=3)
        rec.set_link_endpoints([0, 1, -1], [1, 0, 0])
        rec.record_window(run, start=0, cycles=10, **_window_row(3))
        snap = rec.snapshot()
        path = save_linkstate(tmp_path / "l.npz", snap)
        back = load_linkstate(path)
        assert back["runs"] == snap["runs"]
        assert back["window"] == snap["window"]
        for key in snap:
            if isinstance(snap[key], np.ndarray):
                np.testing.assert_array_equal(snap[key], back[key], err_msg=key)

    def test_save_disabled_module_state_is_noop(self, tmp_path):
        assert save_linkstate(tmp_path / "none.npz") is None
        assert not (tmp_path / "none.npz").exists()

    def test_load_rejects_foreign_npz(self, tmp_path):
        p = tmp_path / "junk.npz"
        np.savez_compressed(p, data=np.arange(3))
        with pytest.raises(ConfigurationError):
            load_linkstate(p)


# --------------------------- serial == parallel == batched lanes (pin)

def test_grid_linkstate_byte_identical_across_engine_tiers(topo, tmp_path):
    """The tentpole pin: one link-state artifact, three execution tiers.

    Serial in-process (processes=1), pool workers (processes=2), and the
    batched multi-lane engine (batch_lanes=4) must produce SHA-identical
    ``.npz`` files — not merely equivalent snapshots.
    """
    patterns = [random_permutation(topo.n_hosts, seed=s) for s in (0, 1)]
    kwargs = dict(k=2, rates=(0.2, 0.4), seed=9)

    digests, snaps = {}, {}
    modes = {
        "serial": dict(processes=1, batch_lanes=1),
        "pool": dict(processes=2, batch_lanes=1),
        "batched": dict(processes=1, batch_lanes=4),
    }
    for tag, mode in modes.items():
        cfg = SimConfig(
            warmup_cycles=40, sample_cycles=40, n_samples=2,
            batch_lanes=mode["batch_lanes"],
        )
        linkstate.enable(window=25)
        run_saturation_grid(
            topo, ("ksp", "rksp"), ("ksp_adaptive", "ksp_ugal"), patterns,
            processes=mode["processes"], config=cfg, **kwargs,
        )
        snap = linkstate.snapshot()
        linkstate.disable()
        path = tmp_path / f"grid-{tag}.linkstate.npz"
        save_linkstate(path, snap)
        snaps[tag] = snap
        digests[tag] = hashlib.sha256(path.read_bytes()).hexdigest()

    base = snaps["serial"]
    assert base["n_windows"] > 0 and base["n_runs"] == 16
    for tag in ("pool", "batched"):
        other = snaps[tag]
        assert base["runs"] == other["runs"], tag
        for key in base:
            if isinstance(base[key], np.ndarray):
                np.testing.assert_array_equal(
                    base[key], other[key], err_msg=f"{tag}:{key}"
                )
    assert digests["serial"] == digests["pool"] == digests["batched"]
