"""Metrics-registry semantics: counters, gauges, histograms, spans,
disabled-mode no-ops, snapshot round-trips and snapshot merging.

The merge tests pin the contract the parallel pipeline relies on: folding
per-worker snapshots into one registry — in any order — yields exactly
the totals a single serial registry would have recorded.
"""

import json
import math

import pytest

from repro.obs import MetricsRegistry, metrics
from repro.obs.metrics import NOOP

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def _metrics_disabled():
    """Every test starts and ends with metrics off (module state is global)."""
    metrics.disable()
    yield
    metrics.disable()


# ------------------------------------------------------------- primitives

def test_counter_semantics():
    reg = MetricsRegistry()
    c = reg.counter("hits")
    c.inc()
    c.inc(41)
    assert c.value == 42
    assert reg.counter("hits") is c  # same name -> same metric
    assert reg.snapshot()["counters"] == {"hits": 42}


def test_gauge_semantics():
    reg = MetricsRegistry()
    g = reg.gauge("depth")
    g.set(3)
    g.set(1.5)
    assert g.value == 1.5  # last-set, not max, within one registry
    assert reg.snapshot()["gauges"] == {"depth": 1.5}


def test_histogram_semantics():
    reg = MetricsRegistry()
    h = reg.histogram("lat")
    for v in [1.0, 2.0, 4.0, 0.5]:
        h.observe(v)
    assert h.count == 4
    assert h.total == 7.5
    assert h.min == 0.5
    assert h.max == 4.0
    assert h.mean == pytest.approx(1.875)
    doc = h.to_dict()
    assert sum(doc["buckets"].values()) == doc["count"]
    # Exact powers of two share a bucket with values just below them.
    assert doc["min"] == 0.5 and doc["max"] == 4.0


def test_empty_histogram_snapshot_is_json_safe():
    reg = MetricsRegistry()
    reg.histogram("never")
    doc = reg.snapshot()["histograms"]["never"]
    assert doc["count"] == 0
    assert doc["min"] is None and doc["max"] is None
    json.dumps(doc)  # no inf/nan leaks
    assert math.isnan(reg.histogram("never").mean)


def test_span_timer():
    reg = MetricsRegistry()
    with reg.span("stage.a"):
        pass
    with reg.span("stage.a"):
        pass
    doc = reg.snapshot()["timers"]["stage.a"]
    assert doc["count"] == 2
    assert doc["total"] >= 0.0
    # Timers live in their own namespace, not among histograms.
    assert "stage.a" not in reg.snapshot()["histograms"]


def test_array_metric_grows():
    reg = MetricsRegistry()
    a = reg.array("links", 3)
    a.add([1, 2, 3])
    a.add([10, 10, 10, 10])  # longer input grows the accumulator
    assert reg.snapshot()["arrays"]["links"] == [11, 12, 13, 10]


def test_annotate():
    reg = MetricsRegistry()
    reg.annotate("topology", "RRG(12,10,6)")
    assert reg.snapshot()["info"] == {"topology": "RRG(12,10,6)"}


# --------------------------------------------------------- disabled mode

def test_disabled_accessors_return_noop():
    assert not metrics.enabled()
    assert metrics.active() is None
    assert metrics.counter("x") is NOOP
    assert metrics.gauge("x") is NOOP
    assert metrics.histogram("x") is NOOP
    assert metrics.array("x", 5) is NOOP
    assert metrics.span("x") is NOOP
    assert metrics.snapshot() is None
    metrics.annotate("k", "v")  # silently dropped
    metrics.merge_snapshot({"counters": {"x": 1}})  # silently dropped


def test_noop_absorbs_every_operation():
    NOOP.inc()
    NOOP.inc(5)
    NOOP.set(3.0)
    NOOP.observe(1.0)
    NOOP.add([1, 2])
    with metrics.span("nothing"):
        pass


def test_enable_disable_roundtrip():
    reg = metrics.enable()
    assert metrics.enabled() and metrics.active() is reg
    metrics.counter("n").inc(7)
    assert metrics.snapshot()["counters"] == {"n": 7}
    metrics.disable()
    assert metrics.snapshot() is None


def test_capture_scopes_and_restores():
    outer = metrics.enable()
    metrics.counter("n").inc()
    with metrics.capture() as inner:
        metrics.counter("n").inc(10)
        assert metrics.active() is inner
    assert metrics.active() is outer
    assert outer.counters["n"].value == 1
    assert inner.counters["n"].value == 10


# ----------------------------------------------------- snapshot and merge

def _populated() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("a").inc(3)
    reg.gauge("g").set(2.5)
    for v in [0.25, 1.0, 8.0]:
        reg.histogram("h").observe(v)
    with reg.span("t"):
        pass
    reg.array("arr", 2).add([5, 6])
    reg.annotate("who", "test")
    return reg


def test_snapshot_json_roundtrip_merges_identically():
    snap = _populated().snapshot()
    assert snap["format"] == metrics.SNAPSHOT_FORMAT
    wire = json.loads(json.dumps(snap))  # through-JSON round trip
    reg = MetricsRegistry()
    reg.merge(wire)
    again = reg.snapshot()
    assert again["counters"] == snap["counters"]
    assert again["gauges"] == snap["gauges"]
    assert again["histograms"] == snap["histograms"]
    assert again["arrays"] == snap["arrays"]
    assert again["info"] == snap["info"]
    assert again["timers"] == snap["timers"]


def _strip_timers(snap: dict) -> dict:
    return {k: v for k, v in snap.items() if k != "timers"}


def test_merged_worker_snapshots_equal_serial_totals():
    """Two half-runs merged == one full run, section by section."""
    serial = MetricsRegistry()
    workers = [MetricsRegistry(), MetricsRegistry()]
    for i in range(10):
        for reg in (serial, workers[i % 2]):
            reg.counter("ops").inc(i)
            reg.histogram("size").observe(float(i))
            reg.array("links", 4).add([i, 0, 1, 2])
            reg.gauge("peak").set(i)

    merged = MetricsRegistry()
    for w in workers:
        merged.merge(w.snapshot())

    out, ref = merged.snapshot(), serial.snapshot()
    assert out["counters"] == ref["counters"]
    assert out["histograms"] == ref["histograms"]
    assert out["arrays"] == ref["arrays"]
    # Gauges merge by max: the serial registry's last-set value was the
    # maximum here too.
    assert out["gauges"] == {"peak": 9.0}


def test_merge_is_commutative():
    a = _populated().snapshot()
    b = MetricsRegistry()
    b.counter("a").inc(10)
    b.gauge("g").set(99.0)
    b.histogram("h").observe(100.0)
    b.array("arr", 3).add([1, 1, 1])
    b = b.snapshot()

    ab, ba = MetricsRegistry(), MetricsRegistry()
    ab.merge(a), ab.merge(b)
    ba.merge(b), ba.merge(a)
    assert _strip_timers(ab.snapshot()) == _strip_timers(ba.snapshot())


def test_merge_snapshot_into_active_registry():
    reg = metrics.enable()
    metrics.merge_snapshot({"counters": {"x": 4}})
    metrics.merge_snapshot(None)  # worker with telemetry off
    assert reg.counters["x"].value == 4


def test_clear():
    reg = _populated()
    reg.clear()
    snap = reg.snapshot()
    assert snap["counters"] == {} and snap["arrays"] == {} and snap["info"] == {}


# ------------------------------------------- growth and mismatched merges

def test_array_metric_grown_to_preserves_and_pads():
    from repro.obs.metrics import ArrayMetric

    a = ArrayMetric("links", 3)
    a.add([1, 2, 3])
    grown = a._grown_to(5)
    assert grown is a.values and len(a.values) == 5
    assert a.values.tolist() == [1, 2, 3, 0, 0]
    # Shrinking never happens: a smaller request returns the same buffer.
    assert a._grown_to(2) is a.values and len(a.values) == 5
    a.add([1] * 5)
    assert a.values.tolist() == [2, 3, 4, 1, 1]


def test_array_merge_mismatched_sizes_both_orders():
    """A short-array snapshot merges into a long accumulator and vice
    versa; the result is elementwise addition padded with zeros."""
    short = MetricsRegistry()
    short.array("links", 2).add([1, 2])
    long = MetricsRegistry()
    long.array("links", 4).add([10, 10, 10, 10])

    a = MetricsRegistry()
    a.merge(short.snapshot())
    a.merge(long.snapshot())
    b = MetricsRegistry()
    b.merge(long.snapshot())
    b.merge(short.snapshot())
    expect = [11, 12, 10, 10]
    assert a.snapshot()["arrays"]["links"] == expect
    assert b.snapshot()["arrays"]["links"] == expect


def test_histogram_merge_dict_with_unseen_buckets():
    reg = MetricsRegistry()
    h = reg.histogram("lat")
    h.observe(1.0)
    # A worker document whose buckets this histogram has never seen
    # (including the through-JSON case where keys arrive as strings).
    h.merge_dict({
        "count": 3,
        "total": 300.0,
        "min": 50.0,
        "max": 200.0,
        "buckets": {"6": 1, "8": 2},
    })
    assert h.count == 4
    assert h.total == 301.0
    assert h.min == 1.0 and h.max == 200.0
    assert h.buckets[6] == 1 and h.buckets[8] == 2
    assert sum(h.to_dict()["buckets"].values()) == 4


def test_histogram_merge_dict_empty_document_keeps_bounds():
    reg = MetricsRegistry()
    h = reg.histogram("lat")
    h.observe(2.0)
    h.merge_dict({"count": 0, "total": 0.0, "min": None, "max": None})
    assert h.count == 1 and h.min == 2.0 and h.max == 2.0
