"""Cross-engine equivalence: the fast core must be byte-identical.

``FastSimulator`` (``SimConfig.engine == "fast"``, the default) re-implements
the reference four-phase router on flat arrays — SoA packet store, CSR route
tables, ring-buffer VC FIFOs, a calendar queue for channel arrivals — and is
only correct if it is *indistinguishable* from the reference core: same
``SimResult`` (minus the config it echoes), same drain length, same final RNG
state (every random draw happened in the same order), same path-cache
hit/miss counts, and bitwise-identical telemetry artifacts (metrics
snapshots, trace ``.npz``, time-series ``.npz``).

These tests pin that contract across all six routing mechanisms, uniform and
pattern traffic, fixed-budget and steady-state run control, cold and
pre-warmed path caches, and traced runs (tracing forces the fast core onto
its scalar launch fallback and the traced allocator).

The ring-buffer edge tests at the bottom are the fast core's own unit
coverage: FIFO wraparound under full occupancy, credit exhaustion at
capacity 1, and drain-budget exhaustion.
"""

import dataclasses

import numpy as np
import pytest

from repro import Jellyfish, PathCache
from repro.errors import SimulationError
from repro.netsim import SimConfig, Simulator, UniformTraffic, PatternTraffic
from repro.netsim.fastcore import FastSimulator
from repro.obs import metrics, timeseries, trace
from repro.traffic import random_permutation

MECHANISMS = ["sp", "random", "round_robin", "ugal", "ksp_ugal", "ksp_adaptive"]

#: Short but non-trivial: long enough for credit stalls, misroutes and
#: adaptive decisions to occur, short enough to run 6 mechanisms x 2
#: traffics x 2 run-control modes x 2 engines in seconds.
CYCLES = dict(warmup_cycles=60, sample_cycles=60, n_samples=2)
STEADY = dict(
    steady_state=True, steady_window_cycles=30, steady_check_windows=2,
    warmup_cycles=60, max_warmup_cycles=240, sample_cycles=60, n_samples=2,
)


def _topo():
    return Jellyfish(8, 8, 5, seed=3)  # 24 hosts


def _traffic(kind, n_hosts):
    if kind == "uniform":
        return UniformTraffic(n_hosts)
    return PatternTraffic(random_permutation(n_hosts, seed=5))


def _run(engine, mechanism, traffic_kind, *, steady=False, rate=0.4,
         vc_buffer=None, prewarm=False):
    """One full run on ``engine``; returns (fingerprint, simulator)."""
    topo = _topo()
    paths = PathCache(topo, "redksp", k=4, seed=1)
    if prewarm:
        # Includes s == d: hosts sharing a switch still route via the cache.
        for s in range(topo.n_switches):
            for d in range(topo.n_switches):
                paths.get(s, d)
        paths.hits = paths.misses = 0
    knobs = dict(STEADY if steady else CYCLES, engine=engine)
    if vc_buffer is not None:
        knobs["vc_buffer"] = vc_buffer
    cfg = SimConfig(**knobs)
    sim = Simulator(
        topo, paths, mechanism, _traffic(traffic_kind, topo.n_hosts),
        rate, cfg, seed=11,
    )
    result = sim.run()
    extra = sim.drain()
    sim.check_conservation()
    doc = dataclasses.asdict(result)
    doc.pop("config")  # echoes engine name; everything else must match
    fingerprint = {
        "result": doc,
        "drain_cycles": extra,
        "credit_stalls": sim.credit_stalls,
        "rng_state": sim.rng.bit_generator.state,
        "cache": (paths.hits, paths.misses),
    }
    return fingerprint, sim


def _assert_equivalent(mechanism, traffic_kind, **kwargs):
    fast, fsim = _run("fast", mechanism, traffic_kind, **kwargs)
    ref, rsim = _run("reference", mechanism, traffic_kind, **kwargs)
    assert isinstance(fsim, FastSimulator) and fsim.engine_name == "fast"
    assert type(rsim) is Simulator and rsim.engine_name == "reference"
    assert fast == ref
    return fast


class TestResultEquivalence:
    @pytest.mark.parametrize("mechanism", MECHANISMS)
    def test_uniform_traffic(self, mechanism):
        _assert_equivalent(mechanism, "uniform")

    @pytest.mark.parametrize("mechanism", MECHANISMS)
    def test_pattern_traffic(self, mechanism):
        _assert_equivalent(mechanism, "perm")

    @pytest.mark.parametrize("mechanism", MECHANISMS)
    def test_steady_state_uniform(self, mechanism):
        fp = _assert_equivalent(mechanism, "uniform", steady=True)
        # Steady-state control actually engaged (not a vacuous pass).
        assert fp["result"]["warmup_cycles_used"] >= 60
        assert fp["result"]["steady_converged"] is not None

    @pytest.mark.parametrize("mechanism", ["sp", "ksp_ugal", "ksp_adaptive"])
    def test_steady_state_pattern(self, mechanism):
        _assert_equivalent(mechanism, "perm", steady=True)

    def test_high_load_saturation(self):
        # Near saturation the VC ladder, misrouting and credit stalls all
        # work much harder; equivalence must survive the stress.
        fp = _assert_equivalent("ksp_adaptive", "uniform", rate=0.9)
        assert fp["credit_stalls"] > 0

    def test_prewarmed_cache_all_hits(self):
        # A fully warmed cache keeps the fast core on its batched launch
        # path from cycle 0; the cold-cache matrix above exercises the
        # scalar fallback + incremental table growth instead.
        fp = _assert_equivalent("ksp_adaptive", "uniform", prewarm=True)
        hits, misses = fp["cache"]
        assert misses == 0 and hits > 0


class TestTelemetryEquivalence:
    """The artifacts a run writes must not depend on the engine."""

    def _strip_engine_keys(self, snap):
        doc = {k: v for k, v in snap.items() if k != "timers"}
        doc["counters"] = {
            k: v for k, v in snap.get("counters", {}).items()
            if not k.startswith("netsim.engine_runs/")
        }
        doc["gauges"] = {
            k: v for k, v in snap.get("gauges", {}).items()
            if not k.startswith("netsim.cycles_per_sec/")
        }
        return doc

    def _metrics_snapshot(self, engine):
        with metrics.capture() as reg:
            _run(engine, "ksp_adaptive", "uniform")
            return self._strip_engine_keys(reg.snapshot())

    def test_metrics_snapshots_identical(self):
        fast = self._metrics_snapshot("fast")
        ref = self._metrics_snapshot("reference")
        assert fast == ref

    def test_metrics_stamp_engine_identity(self):
        with metrics.capture() as reg:
            _run("fast", "random", "uniform")
            counters = reg.snapshot()["counters"]
        assert counters.get("netsim.engine_runs/fast") == 1
        assert "netsim.engine_runs/reference" not in counters

    def _trace_bytes(self, engine, tmp_path):
        # Tracing disables the batched launch path and switches the fast
        # core to its traced allocator/arrival loops — this doubles as
        # the equivalence check for those variants.
        with trace.capture(sample=16):
            _run(engine, "ksp_adaptive", "uniform")
            out = trace.save_trace(tmp_path / f"{engine}.npz")
        return out.read_bytes()

    def test_trace_npz_byte_identical(self, tmp_path):
        assert self._trace_bytes("fast", tmp_path) == \
            self._trace_bytes("reference", tmp_path)

    def _timeseries_bytes(self, engine, tmp_path):
        with timeseries.capture(window=30):
            _run(engine, "ugal", "uniform")
            out = timeseries.save_timeseries(tmp_path / f"{engine}.npz")
        return out.read_bytes()

    def test_timeseries_npz_byte_identical(self, tmp_path):
        assert self._timeseries_bytes("fast", tmp_path) == \
            self._timeseries_bytes("reference", tmp_path)


class TestRingBufferEdges:
    """Unit coverage of the fast core's flat ring-buffer FIFOs."""

    def test_wraparound_under_full_occupancy(self):
        # Tiny buffers at high load keep FIFOs pinned at capacity, so
        # heads must wrap the ring repeatedly without corrupting order —
        # checked against the reference core's list-based FIFOs.
        fp = _assert_equivalent(
            "ksp_adaptive", "uniform", rate=0.9, vc_buffer=2,
        )
        assert fp["credit_stalls"] > 0
        _, sim = _run("fast", "ksp_adaptive", "uniform", rate=0.9,
                      vc_buffer=2)
        # Post-drain the rings are empty with heads somewhere mid-ring.
        assert all(n == 0 for n in sim._flen)
        assert all(0 <= h < sim._cap for h in sim._fhead)
        assert any(h != 0 for h in sim._fhead)

    def test_credit_exhaustion_at_capacity_one(self):
        # vc_buffer=1 makes every occupied buffer credit-exhausted; the
        # single-slot ring degenerates to head==0 always.
        fp = _assert_equivalent(
            "random", "uniform", rate=0.8, vc_buffer=1,
        )
        assert fp["credit_stalls"] > 0
        _, sim = _run("fast", "random", "uniform", rate=0.8, vc_buffer=1)
        assert sim._cap == 1
        assert all(h == 0 for h in sim._fhead)
        assert all(n == 0 for n in sim._flen)

    def test_drain_budget_exhaustion_raises(self):
        # Mirror of the reference engine's drain-budget test: one cycle
        # can never empty a loaded network, and the failed drain must
        # not lose packets.
        topo = _topo()
        paths = PathCache(topo, "redksp", k=4, seed=1)
        cfg = SimConfig(
            warmup_cycles=100, sample_cycles=100, n_samples=3,
            drain_max_cycles=1,
        )
        sim = Simulator(
            topo, paths, "random", UniformTraffic(topo.n_hosts), 0.9,
            cfg, seed=1,
        )
        assert isinstance(sim, FastSimulator)
        sim.run()
        assert sim.in_flight() > 0
        with pytest.raises(SimulationError, match="failed to drain"):
            sim.drain()
        sim.check_conservation()

    def test_buffers_never_exceed_capacity_mid_run(self):
        # Sample occupancy mid-flight (not just post-drain): stop after
        # warmup only, while the network is still loaded.
        topo = _topo()
        paths = PathCache(topo, "redksp", k=4, seed=1)
        cfg = SimConfig(warmup_cycles=80, sample_cycles=1, n_samples=1,
                        vc_buffer=2)
        sim = Simulator(
            topo, paths, "ksp_adaptive", UniformTraffic(topo.n_hosts),
            0.9, cfg, seed=7,
        )
        sim.run()
        assert sim.in_flight() > 0
        assert all(0 <= n <= sim._cap for n in sim._flen)
        assert sim.credit_stalls > 0  # load actually filled rings to cap
        sim.drain()
        sim.check_conservation()
