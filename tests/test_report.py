"""Unit tests for ASCII charts and result export."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.base import ExperimentResult
from repro.report import (
    bar_chart,
    line_chart,
    result_to_csv,
    result_to_json,
    save_result,
)


@pytest.fixture
def result():
    return ExperimentResult(
        experiment="fig0",
        title="demo",
        headers=["scheme", "value"],
        rows=[["ksp", 0.5], ["redksp", 0.75]],
        scale="small",
        notes="n",
        data={"ksp": {"v": 0.5}, "redksp": {"v": 0.75}},
    )


class TestLineChart:
    def test_renders_all_series_markers(self):
        text = line_chart(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]}, width=20, height=6
        )
        assert "o" in text and "x" in text
        assert "legend" in text
        assert "o=a" in text and "x=b" in text

    def test_extremes_on_grid_edges(self):
        text = line_chart({"a": [(0, 0), (10, 5)]}, width=20, height=6)
        lines = [l for l in text.splitlines() if l.startswith("|")]
        assert lines[0].rstrip()[-1] == "o"   # max y at top-right
        assert lines[-1][1] == "o"             # min y at bottom-left

    def test_single_point_ok(self):
        text = line_chart({"a": [(1.0, 2.0)]})
        assert "o" in text

    def test_title_and_labels(self):
        text = line_chart(
            {"a": [(0, 1), (1, 2)]}, title="T", x_label="load", y_label="lat"
        )
        assert text.splitlines()[0] == "T"
        assert "load" in text and "lat" in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            line_chart({})
        with pytest.raises(ConfigurationError):
            line_chart({"a": []})
        with pytest.raises(ConfigurationError):
            line_chart({"a": [(0, 0)]}, width=2)


class TestBarChart:
    def test_proportional_bars(self):
        text = bar_chart({"a": 1.0, "b": 0.5}, width=10)
        a_line, b_line = text.splitlines()
        assert a_line.count("█") == 10
        assert b_line.count("█") == 5

    def test_zero_values(self):
        text = bar_chart({"a": 0.0, "b": 0.0})
        assert "█" not in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bar_chart({})
        with pytest.raises(ConfigurationError):
            bar_chart({"a": -1.0})


class TestExport:
    def test_json_roundtrip(self, result):
        payload = json.loads(result_to_json(result))
        assert payload["experiment"] == "fig0"
        assert payload["rows"][1] == ["redksp", 0.75]
        assert payload["data"]["ksp"]["v"] == 0.5

    def test_json_handles_numpy(self, result):
        import numpy as np

        result.data["arr"] = np.arange(3)
        result.data["scalar"] = np.float64(1.5)
        payload = json.loads(result_to_json(result))
        assert payload["data"]["arr"] == [0, 1, 2]
        assert payload["data"]["scalar"] == 1.5

    def test_csv(self, result):
        text = result_to_csv(result)
        lines = text.strip().splitlines()
        assert lines[0] == "scheme,value"
        assert lines[2] == "redksp,0.75"

    def test_save_all_formats(self, result, tmp_path):
        for suffix in (".json", ".csv", ".txt"):
            p = save_result(result, tmp_path / f"out{suffix}")
            assert p.exists() and p.read_text()

    def test_save_bad_suffix(self, result, tmp_path):
        with pytest.raises(ConfigurationError, match="suffix"):
            save_result(result, tmp_path / "out.xlsx")

    def test_real_experiment_exports(self, tmp_path):
        from repro.experiments import run_experiment

        r = run_experiment("table1", scale="small", seed=0)
        payload = json.loads(result_to_json(r))
        assert payload["experiment"] == "table1"
        save_result(r, tmp_path / "t1.csv")
