"""Unit tests for ASCII charts and result export."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.base import ExperimentResult
from repro.report import (
    bar_chart,
    line_chart,
    result_to_csv,
    result_to_json,
    save_result,
)


@pytest.fixture
def result():
    return ExperimentResult(
        experiment="fig0",
        title="demo",
        headers=["scheme", "value"],
        rows=[["ksp", 0.5], ["redksp", 0.75]],
        scale="small",
        notes="n",
        data={"ksp": {"v": 0.5}, "redksp": {"v": 0.75}},
    )


class TestLineChart:
    def test_renders_all_series_markers(self):
        text = line_chart(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]}, width=20, height=6
        )
        assert "o" in text and "x" in text
        assert "legend" in text
        assert "o=a" in text and "x=b" in text

    def test_extremes_on_grid_edges(self):
        text = line_chart({"a": [(0, 0), (10, 5)]}, width=20, height=6)
        lines = [l for l in text.splitlines() if l.startswith("|")]
        assert lines[0].rstrip()[-1] == "o"   # max y at top-right
        assert lines[-1][1] == "o"             # min y at bottom-left

    def test_single_point_ok(self):
        text = line_chart({"a": [(1.0, 2.0)]})
        assert "o" in text

    def test_title_and_labels(self):
        text = line_chart(
            {"a": [(0, 1), (1, 2)]}, title="T", x_label="load", y_label="lat"
        )
        assert text.splitlines()[0] == "T"
        assert "load" in text and "lat" in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            line_chart({})
        with pytest.raises(ConfigurationError):
            line_chart({"a": []})
        with pytest.raises(ConfigurationError):
            line_chart({"a": [(0, 0)]}, width=2)


class TestBarChart:
    def test_proportional_bars(self):
        text = bar_chart({"a": 1.0, "b": 0.5}, width=10)
        a_line, b_line = text.splitlines()
        assert a_line.count("█") == 10
        assert b_line.count("█") == 5

    def test_zero_values(self):
        text = bar_chart({"a": 0.0, "b": 0.0})
        assert "█" not in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bar_chart({})
        with pytest.raises(ConfigurationError):
            bar_chart({"a": -1.0})


class TestExport:
    def test_json_roundtrip(self, result):
        payload = json.loads(result_to_json(result))
        assert payload["experiment"] == "fig0"
        assert payload["rows"][1] == ["redksp", 0.75]
        assert payload["data"]["ksp"]["v"] == 0.5

    def test_json_handles_numpy(self, result):
        import numpy as np

        result.data["arr"] = np.arange(3)
        result.data["scalar"] = np.float64(1.5)
        payload = json.loads(result_to_json(result))
        assert payload["data"]["arr"] == [0, 1, 2]
        assert payload["data"]["scalar"] == 1.5

    def test_csv(self, result):
        text = result_to_csv(result)
        lines = text.strip().splitlines()
        assert lines[0] == "scheme,value"
        assert lines[2] == "redksp,0.75"

    def test_save_all_formats(self, result, tmp_path):
        for suffix in (".json", ".csv", ".txt"):
            p = save_result(result, tmp_path / f"out{suffix}")
            assert p.exists() and p.read_text()

    def test_save_bad_suffix(self, result, tmp_path):
        with pytest.raises(ConfigurationError, match="suffix"):
            save_result(result, tmp_path / "out.xlsx")

    def test_real_experiment_exports(self, tmp_path):
        from repro.experiments import run_experiment

        r = run_experiment("table1", scale="small", seed=0)
        payload = json.loads(result_to_json(r))
        assert payload["experiment"] == "table1"
        save_result(r, tmp_path / "t1.csv")


class _FakeStream:
    def __init__(self, tty):
        self._tty = tty

    def isatty(self):
        return self._tty


class TestTerminalCapabilities:
    def test_no_color_disables_ansi(self, monkeypatch):
        from repro.report import supports_ansi

        monkeypatch.delenv("NO_COLOR", raising=False)
        monkeypatch.setenv("TERM", "xterm-256color")
        assert supports_ansi(_FakeStream(tty=True))
        # The NO_COLOR convention: any value, even empty, disables ANSI.
        monkeypatch.setenv("NO_COLOR", "")
        assert not supports_ansi(_FakeStream(tty=True))

    def test_dumb_terminal_and_non_tty_disable_ansi(self, monkeypatch):
        from repro.report import supports_ansi

        monkeypatch.delenv("NO_COLOR", raising=False)
        monkeypatch.setenv("TERM", "dumb")
        assert not supports_ansi(_FakeStream(tty=True))
        monkeypatch.setenv("TERM", "xterm")
        assert not supports_ansi(_FakeStream(tty=False))

    def test_colorize_respects_capability(self, monkeypatch):
        from repro.report import colorize

        monkeypatch.delenv("NO_COLOR", raising=False)
        monkeypatch.setenv("TERM", "xterm")
        assert colorize("hot", "31", _FakeStream(tty=True)) == "\x1b[31mhot\x1b[0m"
        monkeypatch.setenv("NO_COLOR", "1")
        assert colorize("hot", "31", _FakeStream(tty=True)) == "hot"

    def test_term_width_honours_columns(self, monkeypatch):
        from repro.report import term_width

        monkeypatch.setenv("COLUMNS", "44")
        assert term_width() == 44


class TestSparkline:
    def test_scaling_and_glyphs(self):
        from repro.report import sparkline

        s = sparkline([0.0, 1.0], ascii_only=True)
        assert s == " #"  # min and max glyphs
        u = sparkline([0.0, 1.0])
        assert u == "▁█"

    def test_nan_renders_as_gap(self):
        from repro.report import sparkline

        assert sparkline([5.0, float("nan"), 9.0]) == "▁ █"

    def test_width_keeps_most_recent(self):
        from repro.report import sparkline

        assert len(sparkline(list(range(100)), width=10)) == 10

    def test_flat_series_renders_mid_glyph(self):
        from repro.report import sparkline

        assert sparkline([3.0, 3.0, 3.0], ascii_only=True) == "---"

    def test_all_nan_is_blank(self):
        from repro.report import sparkline

        assert sparkline([float("nan")] * 3) == "   "


class TestNarrowTerminals:
    def test_line_chart_clamps_to_terminal(self, monkeypatch):
        monkeypatch.setenv("COLUMNS", "40")
        out = line_chart({"a": [(0, 0), (1, 1)]}, width=120)
        for row in out.splitlines():
            assert len(row) <= 40

    def test_bar_chart_clamps_to_terminal(self, monkeypatch):
        monkeypatch.setenv("COLUMNS", "40")
        out = bar_chart({"scheme-with-a-name": 1.0, "b": 0.5}, width=120)
        for row in out.splitlines():
            assert len(row) <= 40


class TestRenderDashboard:
    def _state(self, **over):
        state = {
            "label": "demo-grid",
            "total": 8,
            "done": 2,
            "elapsed": 10.0,
            "rates": [0.1, 0.2, 0.3],
            "lats": [30.0, 31.0, 29.0],
            "workers": {
                1: {"label": "ksp/random p0", "rate": 0.3, "lat": 29.0,
                    "beats": 5, "stale": False},
            },
        }
        state.update(over)
        return state

    def test_head_line_and_eta(self):
        from repro.report import render_dashboard

        lines = render_dashboard(self._state(), width=100)
        assert "demo-grid" in lines[0]
        assert "2/8 tasks" in lines[0]
        assert "ETA" in lines[0]

    def test_sparkline_rows_show_latest_values(self):
        from repro.report import render_dashboard

        lines = render_dashboard(self._state(), width=100)
        text = "\n".join(lines)
        assert "0.300 flits/host/cycle" in text
        assert "29.0 cycles" in text

    def test_worker_rows(self):
        from repro.report import render_dashboard

        lines = render_dashboard(self._state(), width=100)
        worker = [l for l in lines if "w1 " in l]
        assert len(worker) == 1
        assert "ksp/random p0" in worker[0]
        assert "beats 5" in worker[0]

    def test_stale_worker_is_flagged(self):
        from repro.report import render_dashboard

        state = self._state()
        state["workers"][1].update(stale=True, age=20.0)
        plain = "\n".join(render_dashboard(state, width=100))
        assert "STALE 20.0s" in plain
        ansi = "\n".join(render_dashboard(state, ansi=True, width=100))
        assert "\x1b[31m" in ansi

    def test_lines_clamped_to_width(self):
        from repro.report import render_dashboard

        state = self._state(label="x" * 200)
        for line in render_dashboard(state, width=40):
            assert len(line) <= 40

    def test_empty_state_renders(self):
        from repro.report import render_dashboard

        lines = render_dashboard({}, width=80)
        assert lines and "0/0 tasks" in lines[0]


class TestProfileHotspots:
    def _stats(self):
        import cProfile
        import pstats

        def _work():
            return sum(i * i for i in range(2000))

        pr = cProfile.Profile()
        pr.enable()
        _work()
        pr.disable()
        return pstats.Stats(pr)

    def test_table_shape_and_content(self):
        from repro.report import profile_hotspots_table

        out = profile_hotspots_table(self._stats(), top=5)
        assert "profile hotspots" in out
        header = out.splitlines()[1]
        for col in ("function", "calls", "tottime (s)", "cumtime (s)"):
            assert col in header
        # The generator the workload spent its time in shows up.
        assert "genexpr" in out

    def test_top_bounds_row_count(self):
        from repro.report import profile_hotspots_table

        out = profile_hotspots_table(self._stats(), top=2)
        # title + header + separator + at most 2 data rows
        assert len(out.splitlines()) <= 5
