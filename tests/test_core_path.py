"""Unit tests for the Path / PathSet value types."""

import pytest

from repro.core.path import Path, PathSet
from repro.errors import PathError


class TestPath:
    def test_basic_properties(self):
        p = Path([3, 1, 4])
        assert p.source == 3
        assert p.destination == 4
        assert p.hops == 2
        assert len(p) == 3
        assert list(p) == [3, 1, 4]
        assert p[1] == 1

    def test_edges(self):
        p = Path([3, 1, 4])
        assert p.edges() == [(3, 1), (1, 4)]
        assert p.undirected_edges() == [(1, 3), (1, 4)]

    def test_trivial(self):
        p = Path([5])
        assert p.hops == 0
        assert p.edges() == []

    def test_empty_rejected(self):
        with pytest.raises(PathError):
            Path([])

    def test_loop_rejected(self):
        with pytest.raises(PathError, match="revisits"):
            Path([1, 2, 1])

    def test_equality_and_hash(self):
        assert Path([1, 2]) == Path([1, 2])
        assert Path([1, 2]) != Path([2, 1])
        assert hash(Path([1, 2])) == hash(Path([1, 2]))
        assert {Path([1, 2]), Path([1, 2])} == {Path([1, 2])}

    def test_ordering_by_hops_then_lex(self):
        assert Path([1, 2]) < Path([1, 3, 2])
        assert Path([1, 2, 5]) < Path([1, 3, 5])

    def test_immutable(self):
        p = Path([1, 2])
        with pytest.raises(AttributeError):
            p.nodes = (3, 4)


class TestPathSet:
    def test_basic(self):
        ps = PathSet(1, 4, [Path([1, 4]), Path([1, 2, 4])])
        assert ps.k == 2
        assert ps.minimal == Path([1, 4])
        assert ps.hop_counts() == [1, 2]
        assert ps.mean_hops() == 1.5
        assert ps[1] == Path([1, 2, 4])

    def test_empty_rejected(self):
        with pytest.raises(PathError, match="empty"):
            PathSet(1, 4, [])

    def test_wrong_endpoints_rejected(self):
        with pytest.raises(PathError):
            PathSet(1, 4, [Path([1, 3])])
        with pytest.raises(PathError):
            PathSet(1, 4, [Path([2, 4])])

    def test_duplicates_rejected(self):
        with pytest.raises(PathError, match="duplicate"):
            PathSet(1, 4, [Path([1, 4]), Path([1, 4])])

    def test_equality_and_hash(self):
        a = PathSet(1, 4, [Path([1, 4])])
        b = PathSet(1, 4, [Path([1, 4])])
        assert a == b and hash(a) == hash(b)

    def test_immutable(self):
        ps = PathSet(1, 4, [Path([1, 4])])
        with pytest.raises(AttributeError):
            ps.paths = ()

    def test_iteration(self):
        paths = [Path([1, 4]), Path([1, 2, 4]), Path([1, 3, 4])]
        ps = PathSet(1, 4, paths)
        assert list(ps) == paths
        assert len(ps) == 3
