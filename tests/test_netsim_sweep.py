"""Unit tests for the sweep module's protocol details."""

import pytest

from repro import Jellyfish, PathCache
from repro.netsim import SimConfig, UniformTraffic, latency_curve, saturation_throughput
from repro.netsim.sweep import DEFAULT_RATES, SweepPoint

TINY = SimConfig(warmup_cycles=50, sample_cycles=50, n_samples=2)


@pytest.fixture(scope="module")
def setup():
    topo = Jellyfish(8, 8, 5, seed=3)
    return topo, PathCache(topo, "redksp", k=3, seed=1)


class TestDefaults:
    def test_default_rates_cover_unit_interval(self):
        assert DEFAULT_RATES[0] == pytest.approx(0.05)
        assert DEFAULT_RATES[-1] == pytest.approx(1.0)
        assert len(DEFAULT_RATES) == 20
        assert list(DEFAULT_RATES) == sorted(DEFAULT_RATES)

    def test_sweep_point_is_frozen(self, setup):
        topo, paths = setup
        pts = latency_curve(
            topo, paths, "random", UniformTraffic(topo.n_hosts),
            rates=(0.2,), config=TINY, seed=0,
        )
        assert isinstance(pts[0], SweepPoint)
        with pytest.raises(AttributeError):
            pts[0].rate = 0.9


class TestProtocol:
    def test_points_follow_requested_rates(self, setup):
        topo, paths = setup
        rates = (0.1, 0.3, 0.5)
        pts = latency_curve(
            topo, paths, "random", UniformTraffic(topo.n_hosts),
            rates=rates, config=TINY, seed=0, stop_after_saturation=False,
        )
        assert [p.rate for p in pts] == list(rates)

    def test_zero_throughput_when_always_saturated(self, setup):
        topo, paths = setup
        config = SimConfig(
            warmup_cycles=50, sample_cycles=50, n_samples=2,
            saturation_latency=1.0,  # impossible: every run saturates
        )
        th, pts = saturation_throughput(
            topo, paths, "random", UniformTraffic(topo.n_hosts),
            rates=(0.1, 0.2), config=config, seed=0,
        )
        assert th == 0.0
        assert len(pts) == 1  # stopped at the first saturated point

    def test_distinct_seeds_at_each_rate(self, setup):
        # Each ladder step must use an independent stream; identical
        # consecutive results would indicate stream reuse.
        topo, paths = setup
        pts = latency_curve(
            topo, paths, "random", UniformTraffic(topo.n_hosts),
            rates=(0.3, 0.3), config=TINY, seed=0, stop_after_saturation=False,
        )
        assert pts[0].result.delivered != pts[1].result.delivered
