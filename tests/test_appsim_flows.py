"""Unit tests for FlowSpec validation."""

import numpy as np
import pytest

from repro.appsim import FlowSpec
from repro.errors import SimulationError


class TestFlowSpec:
    def test_basic_construction(self):
        f = FlowSpec(0, 1, 100.0, np.array([3, 4]), message_id=7)
        assert f.nbytes == 100.0
        assert f.links.dtype == np.int64
        assert f.message_id == 7

    def test_links_coerced_from_list(self):
        f = FlowSpec(0, 1, 1.0, [1, 2, 3], message_id=0)
        assert isinstance(f.links, np.ndarray)
        assert f.links.tolist() == [1, 2, 3]

    def test_zero_bytes_rejected(self):
        with pytest.raises(SimulationError):
            FlowSpec(0, 1, 0.0, [1], message_id=0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(SimulationError):
            FlowSpec(0, 1, -5.0, [1], message_id=0)

    def test_path_default_empty(self):
        f = FlowSpec(0, 1, 1.0, [1], message_id=0)
        assert f.path == ()
