"""Tests for the simulator's extended statistics (percentiles, utilisation)."""

import math

import pytest

from repro import Jellyfish, PathCache
from repro.netsim import SimConfig, Simulator, UniformTraffic

FAST = SimConfig(warmup_cycles=100, sample_cycles=100, n_samples=3)


@pytest.fixture(scope="module")
def run_result():
    topo = Jellyfish(8, 8, 5, seed=3)
    paths = PathCache(topo, "redksp", k=4, seed=1)
    sim = Simulator(topo, paths, "random", UniformTraffic(topo.n_hosts), 0.4, FAST, seed=1)
    return sim.run()


class TestLatencyPercentiles:
    def test_percentiles_ordered(self, run_result):
        r = run_result
        assert r.latency_p50 <= r.latency_p99

    def test_p50_near_mean_at_moderate_load(self, run_result):
        r = run_result
        assert r.latency_p50 <= r.mean_latency * 1.5

    def test_percentiles_bounded_by_pipeline_delay(self, run_result):
        # No packet can be faster than injection + ejection channels.
        assert run_result.latency_p50 >= 2 * FAST.channel_latency

    def test_no_traffic_gives_nan(self):
        topo = Jellyfish(8, 8, 5, seed=3)
        paths = PathCache(topo, "sp", k=1, seed=1)
        # Rate so low that (almost surely) nothing is delivered within the
        # 3-sample window: use a fresh simulator with zero warmup and the
        # minimum rate and a tiny measurement span.
        cfg = SimConfig(warmup_cycles=0, sample_cycles=5, n_samples=1)
        sim = Simulator(
            topo, paths, "sp", UniformTraffic(topo.n_hosts), 0.001, cfg, seed=1
        )
        r = sim.run()
        if r.measured_delivered == 0:
            assert math.isnan(r.latency_p50)
            assert math.isnan(r.latency_p99)


class TestLinkUtilisation:
    def test_utilisation_in_unit_interval(self, run_result):
        assert 0.0 <= run_result.mean_link_utilisation <= run_result.max_link_utilisation
        assert run_result.max_link_utilisation <= 1.0 + 1e-9

    def test_utilisation_scales_with_load(self):
        topo = Jellyfish(8, 8, 5, seed=3)
        paths = PathCache(topo, "redksp", k=4, seed=1)

        def util(rate):
            sim = Simulator(
                topo, paths, "random", UniformTraffic(topo.n_hosts), rate, FAST, seed=1
            )
            return sim.run().mean_link_utilisation

        assert util(0.6) > util(0.1)

    def test_single_pair_traffic_loads_few_links(self):
        from repro.netsim import PatternTraffic
        from repro.traffic.patterns import Pattern

        topo = Jellyfish(8, 8, 5, seed=3)
        paths = PathCache(topo, "sp", k=1, seed=1)
        pat = Pattern("one", topo.n_hosts, ((0, topo.n_hosts - 1),))
        sim = Simulator(topo, paths, "sp", PatternTraffic(pat), 0.5, FAST, seed=1)
        r = sim.run()
        # One SP flow touches at most diameter links: mean utilisation is
        # far below the max.
        assert r.max_link_utilisation > 0
        assert r.mean_link_utilisation < r.max_link_utilisation / 2
