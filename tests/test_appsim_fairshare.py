"""Unit tests for max-min fair-share rate computation."""

import numpy as np
import pytest

from repro.appsim.fairshare import maxmin_rates
from repro.errors import SimulationError


def arr(*xs):
    return np.asarray(xs, dtype=np.int64)


class TestBasics:
    def test_single_flow_gets_full_capacity(self):
        rates = maxmin_rates([arr(0, 1)], 10.0, n_links=2)
        assert rates[0] == pytest.approx(10.0)

    def test_equal_sharing_on_common_link(self):
        rates = maxmin_rates([arr(0), arr(0), arr(0)], 9.0, n_links=1)
        assert rates == pytest.approx([3.0, 3.0, 3.0])

    def test_disjoint_flows_independent(self):
        rates = maxmin_rates([arr(0), arr(1)], 5.0, n_links=2)
        assert rates == pytest.approx([5.0, 5.0])

    def test_classic_three_flow_line(self):
        # Line network A-B-C, capacity 1 per link.  Flow 0 uses both links;
        # flows 1 and 2 use one link each.  Max-min: f0=0.5, f1=f2=0.5.
        rates = maxmin_rates([arr(0, 1), arr(0), arr(1)], 1.0, n_links=2)
        assert rates == pytest.approx([0.5, 0.5, 0.5])

    def test_unequal_bottlenecks(self):
        # Flow 0 alone on link 1 after sharing link 0 with flow 1:
        # first fill: both rise to 0.5 (link 0 saturates).
        # Flow 0 keeps... no: flow 0 crosses link 0 too, so both freeze at
        # 0.5 and link 1 is left underused (max-min, not utilisation-max).
        rates = maxmin_rates([arr(0, 1), arr(0)], 1.0, n_links=2)
        assert rates == pytest.approx([0.5, 0.5])

    def test_heterogeneous_capacity(self):
        cap = np.array([1.0, 10.0])
        rates = maxmin_rates([arr(0), arr(1)], cap)
        assert rates == pytest.approx([1.0, 10.0])

    def test_max_min_property(self):
        # After water-filling, every flow's rate is limited by at least
        # one saturated link where it has a maximal rate among users.
        rng = np.random.default_rng(0)
        n_links = 12
        flows = [
            np.unique(rng.integers(0, n_links, size=rng.integers(1, 4)))
            for _ in range(20)
        ]
        cap = np.full(n_links, 4.0)
        rates = maxmin_rates(flows, cap)
        usage = np.zeros(n_links)
        for f, r in zip(flows, rates):
            usage[f] += r
        # Feasibility.
        assert (usage <= cap + 1e-6).all()
        # Bottleneck condition.
        for f, r in zip(flows, rates):
            ok = False
            for link in f:
                if usage[link] >= cap[link] - 1e-6:
                    max_on_link = max(
                        rates[j] for j, g in enumerate(flows) if link in g
                    )
                    if r >= max_on_link - 1e-6:
                        ok = True
                        break
            assert ok, f"flow with rate {r} has no bottleneck"


class TestEdgeCases:
    def test_empty_flow_list(self):
        assert maxmin_rates([], 1.0, n_links=3).size == 0

    def test_linkless_flow_unconstrained(self):
        rates = maxmin_rates([arr(), arr(0)], 2.0, n_links=1)
        assert rates[0] == np.inf
        assert rates[1] == pytest.approx(2.0)

    def test_scalar_capacity_requires_n_links(self):
        with pytest.raises(SimulationError, match="n_links"):
            maxmin_rates([arr(0)], 1.0)

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(SimulationError, match="positive"):
            maxmin_rates([arr(0)], np.array([0.0]))

    def test_many_flows_one_link_exact(self):
        n = 1000
        rates = maxmin_rates([arr(0)] * n, 1.0, n_links=1)
        assert rates == pytest.approx(np.full(n, 1e-3))
