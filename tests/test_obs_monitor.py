"""Live run monitor: heartbeats, state folding, the stale-worker
watchdog, and the inline (processes=1) integration with the parallel
drivers."""

import io
import math
import time

import pytest

from repro import Jellyfish, PathCache
from repro.netsim import SimConfig
from repro.netsim.parallel import run_saturation_grid
from repro.obs import monitor
from repro.obs.monitor import Heartbeater, RunMonitor
from repro.obs import timeseries
from repro.traffic import random_permutation

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def _monitor_disabled():
    monitor.disable()
    timeseries.disable()
    yield
    monitor.disable()
    timeseries.disable()


# ----------------------------------------------------------- heartbeater

class TestHeartbeater:
    def test_callable_sink_receives_task_and_done(self):
        beats = []
        hb = Heartbeater(beats.append, worker=7)
        hb.task("cell 0")
        hb.done()
        assert beats == [
            {"kind": "task", "label": "cell 0", "worker": 7},
            {"kind": "done", "worker": 7},
        ]

    def test_queue_like_sink_uses_put_nowait(self):
        class FakeQueue:
            def __init__(self):
                self.items = []

            def put_nowait(self, msg):
                self.items.append(msg)

        q = FakeQueue()
        Heartbeater(q, worker=1).task("x")
        assert q.items[0]["kind"] == "task"

    def test_window_samples_are_rate_limited(self):
        beats = []
        hb = Heartbeater(beats.append, min_interval=60.0)
        meta = {"n_hosts": 4}
        row = {"cycles": 10, "ejected": 8, "lat_sum": 160}
        hb.window(meta, row)  # first sample goes through
        hb.window(meta, row)  # inside min_interval: dropped
        hb.window(meta, row)
        assert len(beats) == 1
        assert beats[0]["rate"] == pytest.approx(8 / (10 * 4))
        assert beats[0]["lat"] == pytest.approx(20.0)
        # Forced beats ignore the rate limit.
        hb.task("next")
        assert len(beats) == 2

    def test_window_with_no_ejections_posts_nan_latency(self):
        beats = []
        hb = Heartbeater(beats.append)
        hb.window({"n_hosts": 2}, {"cycles": 10, "ejected": 0, "lat_sum": 0})
        assert beats[0]["rate"] == 0.0
        assert math.isnan(beats[0]["lat"])

    def test_sink_exceptions_never_propagate(self):
        def broken(msg):
            raise RuntimeError("monitor died")

        hb = Heartbeater(broken)
        hb.task("x")  # must not raise
        hb.done()
        hb.window({}, {"cycles": 1, "ejected": 1, "lat_sum": 1})


# ------------------------------------------------------------ runmonitor

def _mon(**kwargs):
    kwargs.setdefault("stream", io.StringIO())
    return RunMonitor(**kwargs)


class TestRunMonitor:
    def test_post_folds_heartbeats_into_state(self):
        mon = _mon()
        mon.post({"kind": "task", "label": "cell 3", "worker": 2})
        mon.post({"kind": "window", "rate": 0.4, "lat": 33.0, "worker": 2})
        mon.post({"kind": "done", "worker": 2})
        w = mon._state["workers"][2]
        assert w["label"] == "idle"
        assert w["beats"] == 3
        assert w["rate"] == 0.4 and w["lat"] == 33.0
        assert list(mon._state["rates"]) == [0.4]
        assert list(mon._state["lats"]) == [33.0]

    def test_history_is_bounded(self):
        mon = _mon(history=5)
        for i in range(20):
            mon.post({"kind": "window", "rate": float(i), "lat": 1.0, "worker": 0})
        assert list(mon._state["rates"]) == [15.0, 16.0, 17.0, 18.0, 19.0]

    def test_watchdog_flags_and_warns_once(self):
        mon = _mon(stale_after=0.01)
        mon.post({"kind": "task", "label": "slow cell", "worker": 4})
        time.sleep(0.03)
        assert mon._check_stale() == [4]
        assert mon._state["workers"][4]["stale"]
        assert mon._warned_stale == {4}
        mon._check_stale()  # second pass: still stale, no second warning
        assert mon._warned_stale == {4}
        # A fresh heartbeat clears the flag and re-arms the warning.
        mon.post({"kind": "window", "rate": 0.1, "lat": 5.0, "worker": 4})
        assert not mon._state["workers"][4]["stale"]
        assert mon._warned_stale == set()

    def test_watchdog_ignores_idle_workers(self):
        mon = _mon(stale_after=0.01)
        mon.post({"kind": "task", "label": "cell", "worker": 1})
        mon.post({"kind": "done", "worker": 1})
        time.sleep(0.03)
        assert mon._check_stale() == []

    def test_plain_stream_gets_final_summary(self):
        out = io.StringIO()
        mon = RunMonitor(stream=out, refresh=0.05, plain_interval=0.0)
        mon.begin("demo-run", 3)
        mon.post({"kind": "task", "label": "cell", "worker": 0})
        mon.step()
        mon.step(2)
        mon.finish()
        text = out.getvalue()
        assert "demo-run" in text
        assert "3/3 tasks" in text

    def test_finish_is_idempotent_and_rebeginnable(self):
        mon = _mon(refresh=0.05)
        mon.begin("a", 1)
        mon.finish()
        mon.finish()
        mon.begin("b", 1)
        mon.step()
        mon.finish()
        assert mon._state["done"] == 1

    def test_module_state(self):
        assert monitor.active() is None
        mon = monitor.enable(stream=io.StringIO())
        assert monitor.enabled()
        assert monitor.active() is mon
        monitor.disable()
        assert not monitor.enabled()
        monitor.disable()  # disabling twice is fine


# ----------------------------------------------------------- integration

@pytest.fixture(scope="module")
def topo():
    return Jellyfish(8, 6, 4, seed=1)


def test_grid_inline_feeds_monitor(topo):
    out = io.StringIO()
    mon = monitor.enable(stream=out, refresh=0.05, plain_interval=0.0)
    timeseries.enable(window=10)
    pattern = random_permutation(topo.n_hosts, seed=0)
    cfg = SimConfig(warmup_cycles=20, sample_cycles=20, n_samples=1)
    run_saturation_grid(
        topo, ("ksp",), ("random",), [pattern],
        k=2, rates=(0.2,), config=cfg, seed=9, processes=1,
    )
    assert mon._state["done"] == 1
    workers = mon._state["workers"]
    assert len(workers) == 1
    assert all(w["label"] == "idle" for w in workers.values())
    # The time-series on_window hook fed throughput samples through.
    assert len(mon._state["rates"]) > 0
    assert "saturation-grid" in out.getvalue()


def test_precompute_inline_feeds_monitor(topo):
    out = io.StringIO()
    mon = monitor.enable(stream=out, refresh=0.05, plain_interval=0.0)
    cache = PathCache(topo, "ksp", k=2, seed=0)
    pairs = [(0, 1), (0, 2), (1, 3)]
    n = cache.precompute_parallel(pairs, processes=1)
    assert n == 3
    assert mon._state["done"] == 3
    assert "path-precompute" in out.getvalue()


def test_grid_runs_unmonitored_when_disabled(topo):
    # No monitor, no timeseries: the plain path still works.
    pattern = random_permutation(topo.n_hosts, seed=0)
    cfg = SimConfig(warmup_cycles=20, sample_cycles=20, n_samples=1)
    result = run_saturation_grid(
        topo, ("ksp",), ("random",), [pattern],
        k=2, rates=(0.2,), config=cfg, seed=9, processes=1,
    )
    assert ("ksp", "random") in result
