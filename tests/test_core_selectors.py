"""Unit tests for the selector facade, LLSKR, the cache, and properties."""

import itertools

import numpy as np
import pytest

from repro.core import (
    PathCache,
    compute_paths,
    make_selector,
    SCHEMES,
)
from repro.core.llskr import llskr_paths
from repro.core.properties import (
    average_path_length,
    fraction_disjoint_pairs,
    max_link_sharing,
    path_quality_report,
    pathset_is_edge_disjoint,
    pathset_max_link_sharing,
)
from repro.core.path import Path, PathSet
from repro.errors import ConfigurationError


class TestSelectors:
    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_every_scheme_produces_valid_pathset(self, small_jellyfish, scheme):
        adj = small_jellyfish.adjacency
        rng = np.random.default_rng(0)
        ps = make_selector(scheme).select(adj, 0, 7, 4, rng)
        assert ps.source == 0 and ps.destination == 7
        assert 1 <= ps.k <= 4 or scheme == "llskr"
        for p in ps:
            for u, v in p.edges():
                assert v in adj[u]

    def test_sp_returns_one_path(self, small_jellyfish):
        ps = compute_paths(small_jellyfish.adjacency, 0, 7, 8, "sp")
        assert ps.k == 1

    def test_edksp_disjoint(self, small_jellyfish):
        ps = compute_paths(small_jellyfish.adjacency, 0, 7, 4, "edksp")
        assert pathset_is_edge_disjoint(ps)

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            make_selector("nope")

    def test_registry_names_match_classes(self):
        for name, cls in SCHEMES.items():
            assert cls.name == name

    def test_deterministic_schemes_ignore_rng(self, small_jellyfish):
        adj = small_jellyfish.adjacency
        a = compute_paths(adj, 0, 7, 4, "ksp", rng=np.random.default_rng(1))
        b = compute_paths(adj, 0, 7, 4, "ksp", rng=np.random.default_rng(2))
        assert a == b


class TestLLSKR:
    def test_spread_zero_keeps_only_shortest_length(self, small_jellyfish):
        adj = small_jellyfish.adjacency
        paths = llskr_paths(adj, 0, 7, k_min=1, k_max=16, spread=0)
        lengths = {p.hops for p in paths}
        assert len(lengths) == 1

    def test_spread_window_respected(self, small_jellyfish):
        adj = small_jellyfish.adjacency
        paths = llskr_paths(adj, 0, 7, k_min=1, k_max=16, spread=1)
        shortest = paths[0].hops
        assert all(p.hops <= shortest + 1 for p in paths)

    def test_k_min_enforced_with_long_paths(self, ring_adjacency):
        # Only 2 simple paths exist on a 6-cycle (3 and 3 hops from 0 to 3).
        paths = llskr_paths(ring_adjacency, 0, 3, k_min=2, k_max=8, spread=0)
        assert len(paths) == 2

    def test_k_max_enforced(self, small_jellyfish):
        paths = llskr_paths(small_jellyfish.adjacency, 0, 7, k_min=1, k_max=3, spread=2)
        assert len(paths) <= 3

    def test_invalid_parameters(self, ring_adjacency):
        with pytest.raises(ConfigurationError):
            llskr_paths(ring_adjacency, 0, 3, k_min=4, k_max=2)
        with pytest.raises(ConfigurationError):
            llskr_paths(ring_adjacency, 0, 3, spread=-1)

    def test_selector_flavor(self, small_jellyfish):
        ps = compute_paths(small_jellyfish.adjacency, 0, 7, 8, "llskr")
        assert ps.k >= 1


class TestPathCache:
    def test_memoises(self, small_jellyfish):
        cache = PathCache(small_jellyfish, "rksp", k=4, seed=3)
        a = cache.get(0, 7)
        b = cache.get(0, 7)
        assert a is b
        assert (0, 7) in cache and len(cache) == 1

    def test_order_independent_for_randomized_scheme(self, small_jellyfish):
        c1 = PathCache(small_jellyfish, "redksp", k=4, seed=3)
        c2 = PathCache(small_jellyfish, "redksp", k=4, seed=3)
        # Warm c2 with other pairs first: (0,7) must still match.
        c2.get(3, 9)
        c2.get(1, 2)
        assert c1.get(0, 7) == c2.get(0, 7)

    def test_seed_changes_randomized_paths_somewhere(self, small_jellyfish):
        c1 = PathCache(small_jellyfish, "redksp", k=4, seed=3)
        c2 = PathCache(small_jellyfish, "redksp", k=4, seed=4)
        pairs = [(s, d) for s in range(6) for d in range(6) if s != d]
        assert any(c1.get(s, d) != c2.get(s, d) for s, d in pairs)

    def test_precompute(self, small_jellyfish):
        cache = PathCache(small_jellyfish, "ksp", k=4)
        cache.precompute([(0, 1), (2, 3)])
        assert len(cache) == 2

    def test_all_pairs_count(self, small_jellyfish):
        cache = PathCache(small_jellyfish, "sp", k=1)
        n = small_jellyfish.n_switches
        assert sum(1 for _ in cache.all_pairs()) == n * (n - 1)

    def test_invalid_k(self, small_jellyfish):
        with pytest.raises(ConfigurationError):
            PathCache(small_jellyfish, "ksp", k=0)


class TestProperties:
    def _ps(self, *node_lists):
        paths = [Path(nl) for nl in node_lists]
        return PathSet(paths[0].source, paths[0].destination, paths)

    def test_max_sharing_counts_undirected(self):
        ps = self._ps([0, 1, 2], [0, 1, 3, 2])
        assert pathset_max_link_sharing(ps) == 2  # link (0,1) shared

    def test_disjoint_detection(self):
        ps = self._ps([0, 1, 2], [0, 3, 2])
        assert pathset_is_edge_disjoint(ps)
        assert pathset_max_link_sharing(ps) == 1

    def test_trivial_pathset_sharing_zero(self):
        ps = PathSet(4, 4, [Path([4])])
        assert pathset_max_link_sharing(ps) == 0
        assert pathset_is_edge_disjoint(ps)

    def test_aggregate_metrics(self):
        shared = self._ps([0, 1, 2], [0, 1, 3, 2])
        disjoint = self._ps([5, 6], [5, 7, 6])
        sets = [shared, disjoint]
        assert average_path_length(sets) == pytest.approx((2 + 3 + 1 + 2) / 4)
        assert fraction_disjoint_pairs(sets) == pytest.approx(0.5)
        assert max_link_sharing(sets) == 2

    def test_empty_iterables(self):
        assert average_path_length([]) == 0.0
        assert fraction_disjoint_pairs([]) == 0.0
        assert max_link_sharing([]) == 0

    def test_report_consistent_with_parts(self, small_jellyfish):
        cache = PathCache(small_jellyfish, "ksp", k=4)
        pairs = list(itertools.islice(cache.all_pairs(), 40))
        report = path_quality_report(pairs)
        assert report["pairs"] == 40
        assert report["average_path_length"] == pytest.approx(average_path_length(pairs))
        assert report["fraction_disjoint_pairs"] == pytest.approx(
            fraction_disjoint_pairs(pairs)
        )
        assert report["max_link_sharing"] == max_link_sharing(pairs)


class TestPaperTableShapes:
    """Tables II-IV shape checks on a small Jellyfish: the *relations* the
    paper reports must hold on any reasonable instance."""

    @pytest.fixture(scope="class")
    def reports(self, paper_small_jellyfish):
        out = {}
        for scheme in ("ksp", "rksp", "edksp", "redksp"):
            cache = PathCache(paper_small_jellyfish, scheme, k=8, seed=0)
            pairs = [
                cache.get(s, d)
                for s in range(12)
                for d in range(12)
                if s != d
            ]
            out[scheme] = path_quality_report(pairs)
        return out

    def test_edksp_fully_disjoint(self, reports):
        assert reports["edksp"]["fraction_disjoint_pairs"] == 1.0
        assert reports["redksp"]["fraction_disjoint_pairs"] == 1.0
        assert reports["edksp"]["max_link_sharing"] == 1
        assert reports["redksp"]["max_link_sharing"] == 1

    def test_ksp_shares_links(self, reports):
        assert reports["ksp"]["fraction_disjoint_pairs"] < 1.0
        assert reports["ksp"]["max_link_sharing"] >= 2

    def test_avg_length_similar_across_schemes(self, reports):
        # Table II: heuristics cost little extra length (<~5%).
        base = reports["ksp"]["average_path_length"]
        for scheme in ("rksp", "edksp", "redksp"):
            assert reports[scheme]["average_path_length"] <= base * 1.08
