"""Windowed time-series telemetry: recorder semantics, simulator
integration, steady-state detection, and parallel/serial byte identity.

The byte-identity test is the tentpole pin: a parallel saturation grid's
time-series snapshot — and the ``.npz`` file written from it — must be
byte-identical to the serial run's, exactly like the path tables and the
flight recorder before it.
"""

import hashlib

import numpy as np
import pytest

from repro import Jellyfish, PathCache
from repro.errors import ConfigurationError
from repro.netsim import SimConfig, Simulator, UniformTraffic
from repro.netsim.parallel import run_saturation_grid
from repro.obs import timeseries
from repro.obs.timeseries import (
    TIMESERIES_FORMAT,
    WINDOW_COLS,
    TimeseriesRecorder,
    detect_convergence,
    load_timeseries,
    run_series,
    save_timeseries,
    spans_converged,
    steady_state_report,
)
from repro.traffic import random_permutation

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def _timeseries_disabled():
    """Module state is global; every test starts and ends with it off."""
    timeseries.disable()
    yield
    timeseries.disable()


@pytest.fixture(scope="module")
def topo():
    return Jellyfish(8, 8, 5, seed=3)


@pytest.fixture(scope="module")
def cache(topo):
    return PathCache(topo, "redksp", k=4, seed=1)


FAST = SimConfig(warmup_cycles=100, sample_cycles=100, n_samples=3)


def _sim(topo, cache, rate=0.2, cfg=FAST, seed=5, mechanism="ksp_adaptive"):
    return Simulator(
        topo, cache, mechanism, UniformTraffic(topo.n_hosts), rate,
        config=cfg, seed=np.random.SeedSequence(seed),
    )


# ------------------------------------------------------------- recorder

class TestRecorder:
    def test_record_and_snapshot_columns(self):
        rec = TimeseriesRecorder(window=10, capacity=2, top_links=2)
        run = rec.begin_run(scheme="ksp", n_hosts=4)
        rec.record_window(
            run, start=0, cycles=10, injected=5, ejected=3, lat_sum=90,
            credit_stalls=1, forwarded=7, occupancy=2,
            link_flits=[0, 4, 4, 1],
        )
        snap = rec.snapshot()
        assert snap["format"] == TIMESERIES_FORMAT
        assert snap["n_windows"] == 1
        assert snap["runs"][0]["scheme"] == "ksp"
        for col in WINDOW_COLS:
            assert snap[f"win_{col}"].dtype == np.int64
        assert snap["win_ejected"][0] == 3
        assert snap["win_occupancy"][0] == 2

    def test_top_k_is_deterministic_with_ties(self):
        rec = TimeseriesRecorder(window=10, top_links=3)
        run = rec.begin_run()
        # links 1 and 2 tie at 4 flits: ascending id breaks the tie.
        rec.record_window(
            run, start=0, cycles=10, injected=0, ejected=0, lat_sum=0,
            credit_stalls=0, forwarded=0, occupancy=0,
            link_flits=[0, 4, 4, 9],
        )
        snap = rec.snapshot()
        assert snap["win_top_ids"][0].tolist() == [3, 1, 2]
        assert snap["win_top_flits"][0].tolist() == [9, 4, 4]

    def test_growth_preserves_rows_and_snapshot_equality(self):
        grown = TimeseriesRecorder(window=5, capacity=2, top_links=2)
        fresh = TimeseriesRecorder(window=5, capacity=64, top_links=2)
        for rec in (grown, fresh):
            run = rec.begin_run(label="x")
            for i in range(10):  # 5x the small recorder's capacity
                rec.record_window(
                    run, start=5 * i, cycles=5, injected=i, ejected=i,
                    lat_sum=10 * i, credit_stalls=0, forwarded=2 * i,
                    occupancy=i, link_flits=[i, 0, 1],
                )
        a, b = grown.snapshot(), fresh.snapshot()
        assert a.keys() == b.keys()
        for key in a:
            if isinstance(a[key], np.ndarray):
                np.testing.assert_array_equal(a[key], b[key], err_msg=key)
            else:
                assert a[key] == b[key], key

    def test_merge_offsets_runs_in_task_order(self):
        parent = TimeseriesRecorder(window=10, top_links=1)
        for tag in ("a", "b"):
            child = TimeseriesRecorder(window=10, top_links=1)
            run = child.begin_run(tag=tag)
            child.record_window(
                run, start=0, cycles=10, injected=1, ejected=1, lat_sum=5,
                credit_stalls=0, forwarded=1, occupancy=0,
            )
            parent.merge(child.snapshot())
        snap = parent.snapshot()
        assert [r["tag"] for r in snap["runs"]] == ["a", "b"]
        assert snap["win_run"].tolist() == [0, 1]
        assert snap["win_index"].tolist() == [0, 0]

    def test_merge_rejects_mismatched_window(self):
        a = TimeseriesRecorder(window=10)
        b = TimeseriesRecorder(window=20)
        with pytest.raises(ConfigurationError):
            a.merge(b.snapshot())

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            TimeseriesRecorder(window=0)
        with pytest.raises(ConfigurationError):
            TimeseriesRecorder(top_links=-1)

    def test_top_links_zero_skips_link_columns(self):
        """``top_links=0`` must not allocate, grow, or merge link columns.

        The stubs stay zero-row through growth and merge; the snapshot
        still carries schema-stable ``win_top_*`` keys of shape (n, 0).
        """
        rec = TimeseriesRecorder(window=10, capacity=1, top_links=0)
        assert rec._top_ids.shape == (0, 0)
        assert rec._top_flits.shape == (0, 0)
        run = rec.begin_run()
        for i in range(4):  # forces growth past the 1-row capacity
            rec.record_window(
                run, start=10 * i, cycles=10, injected=i, ejected=i,
                lat_sum=i, credit_stalls=0, forwarded=i, occupancy=0,
                link_flits=[5, 1, 3],
            )
        assert rec._top_ids.shape == (0, 0)  # untouched by _grow_to
        snap = rec.snapshot()
        assert snap["win_top_ids"].shape == (4, 0)
        assert snap["win_top_flits"].shape == (4, 0)
        parent = TimeseriesRecorder(window=10, top_links=0)
        parent.merge(snap)
        assert parent._top_ids.shape == (0, 0)
        merged = parent.snapshot()
        assert merged["n_windows"] == 4
        assert merged["win_top_ids"].shape == (4, 0)
        assert merged["win_injected"].tolist() == [0, 1, 2, 3]

    def test_on_window_hook_sees_meta_and_row(self):
        rec = TimeseriesRecorder(window=10)
        seen = []
        rec.on_window = lambda meta, row: seen.append((meta, row))
        run = rec.begin_run(n_hosts=8)
        rec.record_window(
            run, start=0, cycles=10, injected=4, ejected=2, lat_sum=60,
            credit_stalls=0, forwarded=3, occupancy=1,
        )
        assert len(seen) == 1
        meta, row = seen[0]
        assert meta["n_hosts"] == 8
        assert row["ejected"] == 2 and row["lat_sum"] == 60

    def test_npz_round_trip(self, tmp_path):
        rec = TimeseriesRecorder(window=10, top_links=2)
        run = rec.begin_run(scheme="rksp", rate=0.3)
        rec.record_window(
            run, start=0, cycles=10, injected=3, ejected=2, lat_sum=44,
            credit_stalls=1, forwarded=5, occupancy=7, link_flits=[1, 9, 0],
        )
        snap = rec.snapshot()
        path = save_timeseries(tmp_path / "t.npz", snap)
        back = load_timeseries(path)
        assert back["runs"] == snap["runs"]
        for key in snap:
            if isinstance(snap[key], np.ndarray):
                np.testing.assert_array_equal(snap[key], back[key], err_msg=key)

    def test_load_rejects_foreign_npz(self, tmp_path):
        p = tmp_path / "junk.npz"
        np.savez_compressed(p, data=np.arange(3))
        with pytest.raises(ConfigurationError):
            load_timeseries(p)

    def test_module_state_capture_and_config(self):
        assert timeseries.snapshot() is None
        assert timeseries.config() is None
        timeseries.enable(window=40, top_links=2)
        assert timeseries.enabled()
        assert timeseries.config() == {"window": 40, "top_links": 2}
        with timeseries.capture(window=7) as rec:
            assert timeseries.active() is rec
            assert timeseries.config() == {"window": 7, "top_links": 4}
        assert timeseries.active().window == 40
        timeseries.disable()
        assert not timeseries.enabled()


# ------------------------------------------------- simulator integration

class TestSimulatorIntegration:
    def test_windows_sum_to_run_totals(self, topo, cache):
        rec = timeseries.enable(window=50)
        sim = _sim(topo, cache)
        result = sim.run()
        snap = rec.snapshot()
        # 400 total cycles in 50-cycle windows.
        assert snap["n_windows"] == 8
        assert snap["n_runs"] == 1
        assert snap["win_injected"].sum() == result.injected
        assert snap["win_ejected"].sum() == result.delivered
        assert snap["win_cycles"].sum() == FAST.total_cycles
        assert snap["win_forwarded"].sum() == sim.flits_forwarded
        assert snap["win_credit_stalls"].sum() == sim.credit_stalls
        # Window starts tile the run contiguously.
        starts = snap["win_start"]
        np.testing.assert_array_equal(
            starts[1:], starts[:-1] + snap["win_cycles"][:-1]
        )
        meta = snap["runs"][0]
        assert meta["warmup_cycles_used"] == FAST.warmup_cycles
        assert meta["measured_samples"] == FAST.n_samples

    def test_partial_tail_window_is_flushed(self, topo, cache):
        rec = timeseries.enable(window=300)  # 400 cycles -> 300 + 100
        _sim(topo, cache).run()
        snap = rec.snapshot()
        assert snap["win_cycles"].tolist() == [300, 100]

    def test_recording_does_not_change_results(self, topo, cache):
        baseline = _sim(topo, cache).run()
        timeseries.enable(window=30)
        recorded = _sim(topo, cache).run()
        timeseries.disable()
        assert recorded == baseline

    def test_disabled_simulator_records_nothing(self, topo, cache):
        _sim(topo, cache).run()
        assert timeseries.snapshot() is None

    def test_run_series_derivation(self, topo, cache):
        rec = timeseries.enable(window=100)
        result = _sim(topo, cache).run()
        series = run_series(rec.snapshot(), 0)
        n = topo.n_hosts
        assert series["ejection_rate"].shape == (4,)
        total_ejected = float(
            (series["ejection_rate"] * series["cycles"] * n).sum()
        )
        assert round(total_ejected) == result.delivered
        # Measured-window latency means are positive and finite.
        assert np.isfinite(series["latency"][1:]).all()


# ----------------------------------------------------- steady detection

class TestSteadyDetection:
    def test_spans_converged_basics(self):
        flat = [1.0] * 8
        assert spans_converged(flat, 4, 0.01)
        assert not spans_converged(flat[:7], 4, 0.01)  # too short
        ramp = [float(i) for i in range(8)]
        assert not spans_converged(ramp, 4, 0.01)
        assert spans_converged(ramp, 4, 2.0)  # tolerance wide enough
        assert not spans_converged([1.0, 1.0, float("nan"), 1.0], 2, 0.5)
        assert spans_converged([0.0] * 4, 2, 0.01)  # flat zero converges

    def test_detect_convergence_finds_first_window(self):
        series = [[5.0, 3.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]]
        t = detect_convergence(series, 2, 0.05)
        assert t == 6  # spans (1,1) vs (1,1) first pass at six values
        assert detect_convergence([[1.0, 2.0, 4.0, 8.0]], 2, 0.05) is None
        assert detect_convergence([], 2, 0.05) is None

    def test_steady_state_report_warmup_sufficiency(self):
        rec = TimeseriesRecorder(window=10)
        # Sufficient: converged well inside the 80-cycle warmup.
        good = rec.begin_run(n_hosts=1, warmup_cycles=80)
        # Insufficient: still ramping when warmup ended.
        bad = rec.begin_run(n_hosts=1, warmup_cycles=80)
        rates = {good: [5, 5, 5, 5, 5, 5, 5, 5], bad: [1, 2, 4, 8, 16, 32, 64, 99]}
        for run in (good, bad):
            rec._next_index = 0
            for i, ejected in enumerate(rates[run]):
                rec.record_window(
                    run, start=10 * i, cycles=10, injected=ejected,
                    ejected=ejected, lat_sum=20 * ejected, credit_stalls=0,
                    forwarded=ejected, occupancy=0,
                )
        report = steady_state_report(rec.snapshot(), check_windows=2, rel_tol=0.05)
        verdicts = {r["run"]: r for r in report["runs"]}
        assert verdicts[good]["warmup_sufficient"]
        assert verdicts[good]["converged_at_cycle"] <= 80
        assert not verdicts[bad]["warmup_sufficient"]
        assert report["n_warmup_sufficient"] == 1

    def test_sample_convergence_check(self, topo, cache):
        sim = _sim(topo, cache, cfg=SimConfig(
            warmup_cycles=100, sample_cycles=100, n_samples=4,
            steady_state=True, steady_check_windows=2, steady_rel_tol=0.05,
        ))
        sim._sample_sums = [100.0, 102.0, 101.0, 0.0]
        sim._sample_counts = [1, 1, 1, 0]
        assert sim._samples_converged(3)
        assert not sim._samples_converged(1)  # below the minimum
        sim._sample_sums[2] = 300.0
        assert not sim._samples_converged(3)


# ------------------------------------------------- steady-state control

class TestSteadyStateRuns:
    def test_warmup_extends_until_ceiling_when_never_converging(self, topo, cache):
        cfg = SimConfig(
            warmup_cycles=100, sample_cycles=100, n_samples=2,
            steady_state=True, steady_window_cycles=50,
            steady_check_windows=2, steady_rel_tol=1e-9,
            max_warmup_cycles=300,
        )
        result = _sim(topo, cache, cfg=cfg).run()
        assert result.warmup_cycles_used == 300
        assert result.steady_converged is False

    def test_warmup_extends_past_nominal_when_unconverged(self, topo, cache):
        # warmup_cycles=0 floor: convergence needs at least
        # 2 * check_windows windows, so warmup must extend.
        cfg = SimConfig(
            warmup_cycles=0, sample_cycles=100, n_samples=2,
            steady_state=True, steady_window_cycles=50,
            steady_check_windows=2, steady_rel_tol=0.2,
            max_warmup_cycles=4_000,
        )
        result = _sim(topo, cache, cfg=cfg).run()
        assert result.warmup_cycles_used >= 200
        assert result.steady_converged is True

    def test_measurement_stops_early_when_samples_agree(self, topo, cache):
        cfg = SimConfig(
            warmup_cycles=200, sample_cycles=100, n_samples=6,
            steady_state=True, steady_window_cycles=50,
            steady_check_windows=2, steady_rel_tol=10.0,
            max_warmup_cycles=4_000,
        )
        result = _sim(topo, cache, cfg=cfg).run()
        assert result.measured_samples == 2
        assert len(result.sample_latencies) == 2
        # Normalization uses the measured cycles, not the nominal budget.
        assert result.accepted_throughput == result.measured_delivered / (
            result.n_active_hosts * 2 * cfg.sample_cycles
        )

    def test_fixed_and_converged_runs_agree_on_throughput(self, topo, cache):
        fixed_cfg = SimConfig(warmup_cycles=300, sample_cycles=100, n_samples=8)
        steady_cfg = SimConfig(
            warmup_cycles=100, sample_cycles=100, n_samples=8,
            steady_state=True, steady_window_cycles=100,
            steady_check_windows=2, steady_rel_tol=0.1,
            max_warmup_cycles=2_000,
        )
        fixed = _sim(topo, cache, rate=0.2, cfg=fixed_cfg, seed=11).run()
        steady = _sim(topo, cache, rate=0.2, cfg=steady_cfg, seed=11).run()
        assert steady.steady_converged is not None
        assert steady.accepted_throughput == pytest.approx(
            fixed.accepted_throughput, rel=0.1
        )
        assert steady.mean_latency == pytest.approx(fixed.mean_latency, rel=0.25)

    def test_drain_works_after_early_stop(self, topo, cache):
        cfg = SimConfig(
            warmup_cycles=100, sample_cycles=100, n_samples=6,
            steady_state=True, steady_window_cycles=50,
            steady_check_windows=2, steady_rel_tol=10.0,
        )
        sim = _sim(topo, cache, cfg=cfg)
        result = sim.run()
        assert result.measured_samples < cfg.n_samples
        sim.drain()
        sim.check_conservation()
        assert sim.in_flight() == 0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SimConfig(steady_window_cycles=0)
        with pytest.raises(ConfigurationError):
            SimConfig(steady_rel_tol=0.0)
        with pytest.raises(ConfigurationError):
            SimConfig(warmup_cycles=500, max_warmup_cycles=400)


# -------------------------------------------- parallel == serial (pin)

def test_parallel_grid_timeseries_byte_identical_to_serial(topo, tmp_path):
    patterns = [random_permutation(topo.n_hosts, seed=s) for s in (0, 1)]
    cfg = SimConfig(warmup_cycles=40, sample_cycles=40, n_samples=2)
    kwargs = dict(k=2, rates=(0.2, 0.4), config=cfg, seed=9)

    snaps, digests = {}, {}
    for processes in (1, 2):
        timeseries.enable(window=25, top_links=3)
        run_saturation_grid(
            topo, ("ksp", "rksp"), ("random", "ugal"), patterns,
            processes=processes, **kwargs,
        )
        snap = timeseries.snapshot()
        timeseries.disable()
        path = tmp_path / f"grid-p{processes}.timeseries.npz"
        save_timeseries(path, snap)
        snaps[processes] = snap
        digests[processes] = hashlib.sha256(path.read_bytes()).hexdigest()

    serial, parallel = snaps[1], snaps[2]
    assert serial["n_windows"] == parallel["n_windows"] > 0
    assert serial["runs"] == parallel["runs"]
    for key in serial:
        if isinstance(serial[key], np.ndarray):
            np.testing.assert_array_equal(serial[key], parallel[key], err_msg=key)
        else:
            assert serial[key] == parallel[key], key
    # The persisted artifacts are byte-identical, not merely equivalent.
    assert digests[1] == digests[2]


def test_grid_without_timeseries_still_returns_four_none(topo):
    # The no-telemetry fast path ships (cell, None, None, None, None, None).
    from repro.netsim import parallel
    from repro.topology.serialization import topology_to_dict

    pattern = random_permutation(topo.n_hosts, seed=0)
    cache = PathCache(topo, "ksp", k=2, seed=9)
    pairs = sorted({
        (topo.switch_of_host(s), topo.switch_of_host(d)) for s, d in pattern.flows
    })
    cache.precompute(pairs)
    parallel._grid_init(
        topology_to_dict(topo), 2, 9, {"ksp": cache.export_state()},
    )
    try:
        cfg = SimConfig(warmup_cycles=20, sample_cycles=20, n_samples=1)
        cell, m, t, ts, ls, fs = parallel._run_cell(
            ("ksp", "random", 0, pattern.flows, pattern.n_hosts,
             (0.2,), cfg, (9, 0))
        )
        assert m is None and t is None and ts is None and ls is None
        assert fs is None
        assert cell.scheme == "ksp"
    finally:
        parallel._GRID_STATE[0] = None
        parallel._GRID_OBS[0] = False
        parallel._GRID_TRACE[0] = None
        parallel._GRID_TS[0] = None
        parallel._GRID_LS[0] = None
        parallel._GRID_FS[0] = None
        parallel._GRID_HB[0] = None
