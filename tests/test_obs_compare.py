"""Cross-run regression diffing: thresholds, schema refusal, exit codes.

``python -m repro.experiments compare-runs A B`` is CI's regression gate,
so the exit-code contract is pinned here: 0 for a clean diff, 1 when a
gated quantity regressed, 2 when the manifests refuse to compare.
"""

import json

import pytest

from repro.errors import ComparisonError
from repro.experiments.runner import main as runner_main
from repro.obs.compare import compare_manifests, engines_of, load_manifest
from repro.obs.manifest import (
    MANIFEST_FORMAT,
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
)

pytestmark = pytest.mark.obs


def _manifest(stage_total=1.0, counters=None, wall=2.0):
    snap = {
        "timers": {"experiment.fig9": {"count": 1, "total": stage_total}},
        "counters": counters or {"netsim.flits_forwarded": 1000},
    }
    return build_manifest(
        experiment="fig9", scale="small", seed=0,
        wall_time_s=wall, metrics_snapshot=snap,
    )


# ------------------------------------------------------------- documents

def test_manifest_carries_schema_and_provenance():
    doc = _manifest()
    assert doc["format"] == MANIFEST_FORMAT
    assert doc["schema_version"] == MANIFEST_SCHEMA_VERSION
    assert doc["package_version"]
    # Best-effort provenance: a hex commit inside a git checkout, else None.
    commit = doc["git_commit"]
    assert commit is None or (
        isinstance(commit, str) and len(commit) == 40
    )


def test_identical_manifests_have_no_regressions():
    diff = compare_manifests(_manifest(), _manifest())
    assert diff.regressions == []
    kinds = {d.kind for d in diff.deltas}
    assert kinds == {"wall", "timing", "counter"}


def test_slowed_stage_is_a_regression():
    diff = compare_manifests(
        _manifest(stage_total=1.0), _manifest(stage_total=1.5),
        timing_threshold=0.25,
    )
    names = [d.name for d in diff.regressions]
    assert names == ["experiment.fig9"]
    assert "REGRESSION" in diff.render()


def test_noise_floor_suppresses_fast_stages():
    diff = compare_manifests(
        _manifest(stage_total=0.01), _manifest(stage_total=0.04),
        timing_threshold=0.25, min_seconds=0.05,
    )
    assert diff.regressions == []


def test_wall_time_reported_but_never_gated():
    diff = compare_manifests(_manifest(wall=1.0), _manifest(wall=100.0))
    wall = [d for d in diff.deltas if d.kind == "wall"]
    assert len(wall) == 1 and not wall[0].regression


def test_counters_gated_only_with_metric_threshold():
    base = _manifest(counters={"netsim.flits_forwarded": 1000})
    new = _manifest(counters={"netsim.flits_forwarded": 1200})
    assert compare_manifests(base, new).regressions == []
    diff = compare_manifests(base, new, metric_threshold=0.1)
    assert [d.name for d in diff.regressions] == ["netsim.flits_forwarded"]
    # Drift gates both directions (a counter dropping is as suspicious).
    down = _manifest(counters={"netsim.flits_forwarded": 800})
    assert compare_manifests(base, down, metric_threshold=0.1).regressions


def test_missing_quantities_reported():
    base = _manifest(counters={"a": 1, "b": 2})
    new = _manifest(counters={"a": 1})
    diff = compare_manifests(base, new)
    assert diff.missing == ["counter:b"]
    assert "not in new manifest" in diff.render()


def test_cross_schema_diff_refused():
    base, new = _manifest(), _manifest()
    new["schema_version"] = MANIFEST_SCHEMA_VERSION + 1
    with pytest.raises(ComparisonError, match="schema_version"):
        compare_manifests(base, new)


def test_load_manifest_rejects_non_manifest(tmp_path):
    path = tmp_path / "x.json"
    path.write_text(json.dumps({"format": "something-else"}))
    with pytest.raises(ComparisonError, match="not a run manifest"):
        load_manifest(path)
    with pytest.raises(ComparisonError, match="cannot read"):
        load_manifest(tmp_path / "absent.json")


# ------------------------------------------------------------------ CLI

def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


def test_cli_exit_zero_on_identical(tmp_path, capsys):
    a = _write(tmp_path, "a.json", _manifest())
    b = _write(tmp_path, "b.json", _manifest())
    assert runner_main(["compare-runs", a, b]) == 0
    assert "no regressions" in capsys.readouterr().out


def test_cli_exit_one_on_timing_regression(tmp_path, capsys):
    a = _write(tmp_path, "a.json", _manifest(stage_total=1.0))
    b = _write(tmp_path, "b.json", _manifest(stage_total=2.0))
    assert runner_main(["compare-runs", a, b]) == 1
    assert "REGRESSION" in capsys.readouterr().out
    # A looser threshold accepts the same pair.
    assert runner_main(["compare-runs", a, b, "--threshold", "1.5"]) == 0


def test_cli_exit_two_on_schema_mismatch(tmp_path, capsys):
    doc = _manifest()
    a = _write(tmp_path, "a.json", doc)
    other = dict(doc, schema_version=MANIFEST_SCHEMA_VERSION + 1)
    b = _write(tmp_path, "b.json", other)
    assert runner_main(["compare-runs", a, b]) == 2
    assert "not comparable" in capsys.readouterr().err


# ------------------------------------------------------- engine provenance

def _engine_manifest(engine, stage_total=1.0, counters=None, cps=1.0e5):
    snap = {
        "timers": {"experiment.fig9": {"count": 1, "total": stage_total}},
        "counters": dict(
            counters or {"netsim.flits_forwarded": 1000},
            **{f"netsim.engine_runs/{engine}": 3},
        ),
        "gauges": {f"netsim.cycles_per_sec/{engine}": cps},
    }
    return build_manifest(
        experiment="fig9", scale="small", seed=0,
        wall_time_s=2.0, metrics_snapshot=snap,
    )


def test_engines_of_reads_engine_run_counters():
    assert engines_of(_engine_manifest("fast")) == {"fast"}
    assert engines_of(_engine_manifest("reference")) == {"reference"}
    # Pre-engine manifests (and non-simulator runs) have no engine stamp.
    assert engines_of(_manifest()) == frozenset()
    # A zero count means the engine never actually ran.
    zero = _manifest(counters={"netsim.engine_runs/fast": 0})
    assert engines_of(zero) == frozenset()


def test_cross_engine_timings_reported_but_not_gated():
    base = _engine_manifest("reference", stage_total=1.0)
    new = _engine_manifest("fast", stage_total=5.0)
    diff = compare_manifests(base, new, timing_threshold=0.25)
    # A 5x "slowdown" across different cores is not a regression…
    assert diff.regressions == []
    # …and the diff says why, loudly.
    assert any("cross-engine" in note for note in diff.notes)
    rendered = diff.render()
    assert rendered.startswith("NOTE: cross-engine comparison")
    assert "reference" in rendered and "fast" in rendered


def test_same_engine_timings_still_gate():
    base = _engine_manifest("fast", stage_total=1.0)
    new = _engine_manifest("fast", stage_total=5.0)
    diff = compare_manifests(base, new, timing_threshold=0.25)
    assert diff.notes == []
    assert any(d.kind == "timing" for d in diff.regressions)


def test_cross_engine_counter_drift_still_gates():
    # The engines are byte-equivalent, so counter drift across engines is
    # a reproducibility failure — the cross-engine waiver is timing-only.
    base = _engine_manifest(
        "reference", counters={"netsim.flits_forwarded": 1000}
    )
    new = _engine_manifest("fast", counters={"netsim.flits_forwarded": 1500})
    diff = compare_manifests(base, new, metric_threshold=0.1)
    names = {d.name for d in diff.regressions}
    assert "netsim.flits_forwarded" in names


def test_batched_cross_engine_timings_waived():
    # The timing-gate waiver must cover the batched multi-lane tier the
    # same way it covers fast-vs-reference: a batched grid's timings
    # measure a different core than a per-cell run's.
    base = _engine_manifest("fast", stage_total=1.0)
    new = _engine_manifest("batched", stage_total=5.0)
    diff = compare_manifests(base, new, timing_threshold=0.25)
    assert diff.regressions == []
    assert any("cross-engine" in note for note in diff.notes)
    rendered = diff.render()
    assert "batched" in rendered and "fast" in rendered


def test_mixed_batched_manifest_triggers_waiver():
    # A batched grid with fallback cells stamps BOTH engines
    # (netsim.engine_runs/{fast,batched}); against a pure fast run the
    # engine sets differ, so the waiver must trigger.
    snap = {
        "timers": {"experiment.fig9": {"count": 1, "total": 5.0}},
        "counters": {
            "netsim.flits_forwarded": 1000,
            "netsim.engine_runs/fast": 2,
            "netsim.engine_runs/batched": 6,
        },
    }
    mixed = build_manifest(
        experiment="fig9", scale="small", seed=0,
        wall_time_s=2.0, metrics_snapshot=snap,
    )
    assert engines_of(mixed) == {"batched", "fast"}
    diff = compare_manifests(
        _engine_manifest("fast", stage_total=1.0), mixed,
        timing_threshold=0.25,
    )
    assert diff.regressions == []
    assert any("batched" in note for note in diff.notes)


def test_batched_same_engine_timings_still_gate():
    base = _engine_manifest("batched", stage_total=1.0)
    new = _engine_manifest("batched", stage_total=5.0)
    diff = compare_manifests(base, new, timing_threshold=0.25)
    assert diff.notes == []
    assert any(d.kind == "timing" for d in diff.regressions)


def test_batched_cross_engine_counter_drift_still_gates():
    base = _engine_manifest("fast", counters={"netsim.flits_forwarded": 1000})
    new = _engine_manifest(
        "batched", counters={"netsim.flits_forwarded": 1500}
    )
    diff = compare_manifests(base, new, metric_threshold=0.1)
    assert "netsim.flits_forwarded" in {d.name for d in diff.regressions}


def test_cycles_per_sec_gauges_reported_never_gated():
    base = _engine_manifest("fast", cps=2.0e5)
    new = _engine_manifest("fast", cps=0.5e5)  # 4x throughput drop
    diff = compare_manifests(base, new)
    gauges = [d for d in diff.deltas if d.kind == "gauge"]
    assert [g.name for g in gauges] == ["netsim.cycles_per_sec/fast"]
    assert not any(g.regression for g in gauges)
