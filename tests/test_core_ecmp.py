"""Unit tests for ECMP path enumeration and its Jellyfish weakness."""

import networkx as nx
import numpy as np
import pytest

from repro import Jellyfish, PathCache
from repro.core.ecmp import ecmp_paths
from repro.errors import ConfigurationError, NoPathError
from repro.model import model_throughput
from repro.topology.rrg import random_regular_graph
from repro.traffic import shift


def to_nx(adj):
    g = nx.Graph()
    g.add_nodes_from(range(len(adj)))
    for u, nbrs in enumerate(adj):
        for v in nbrs:
            g.add_edge(u, v)
    return g


class TestEnumeration:
    def test_all_paths_are_shortest(self):
        adj = random_regular_graph(16, 4, seed=2)
        g = to_nx(adj)
        for dst in (3, 9, 15):
            sp = nx.shortest_path_length(g, 0, dst)
            for p in ecmp_paths(adj, 0, dst, 8):
                assert p.hops == sp

    def test_enumerates_every_shortest_path_on_diamond(self):
        adj = [[1, 2], [0, 3], [0, 3], [1, 2]]
        paths = {p.nodes for p in ecmp_paths(adj, 0, 3, 8)}
        assert paths == {(0, 1, 3), (0, 2, 3)}

    def test_count_matches_networkx(self):
        adj = random_regular_graph(14, 5, seed=3)
        g = to_nx(adj)
        for dst in (5, 9, 13):
            ref = list(nx.all_shortest_paths(g, 0, dst))
            ours = ecmp_paths(adj, 0, dst, 1000)
            assert len(ours) == len(ref)
            assert {p.nodes for p in ours} == {tuple(r) for r in ref}

    def test_k_caps_enumeration(self):
        adj = random_regular_graph(14, 5, seed=3)
        assert len(ecmp_paths(adj, 0, 9, 2)) <= 2

    def test_deterministic_prefix_is_lexicographic(self):
        adj = [[1, 2], [0, 3], [0, 3], [1, 2]]
        (p,) = ecmp_paths(adj, 0, 3, 1)
        assert p.nodes == (0, 1, 3)

    def test_rng_sampling_varies(self):
        adj = random_regular_graph(14, 5, seed=3)
        # Pick a destination that actually has several equal-cost paths.
        dst = next(
            d for d in range(1, 14) if len(ecmp_paths(adj, 0, d, 100)) >= 3
        )
        seen = set()
        for s in range(24):
            ps = ecmp_paths(adj, 0, dst, 1, rng=np.random.default_rng(s))
            seen.add(ps[0].nodes)
        assert len(seen) > 1

    def test_trivial_and_missing(self):
        assert ecmp_paths([[1], [0]], 0, 0, 3)[0].nodes == (0,)
        with pytest.raises(NoPathError):
            ecmp_paths([[1], [0], [3], [2]], 0, 2, 3)
        with pytest.raises(ConfigurationError):
            ecmp_paths([[1], [0]], 0, 1, 0)

    def test_selector_registry(self):
        topo = Jellyfish(12, 10, 7, seed=7)
        ps = PathCache(topo, "ecmp", k=4, seed=0).get(0, 5)
        assert 1 <= ps.k <= 4
        hops = {p.hops for p in ps}
        assert len(hops) == 1


class TestJellyfishWeakness:
    """The paper's motivation: ECMP finds little path diversity on
    Jellyfish, so KSP-family schemes beat it under demanding traffic."""

    def test_ecmp_diversity_is_low(self):
        topo = Jellyfish(16, 12, 9, seed=5)
        cache = PathCache(topo, "ecmp", k=8, seed=0)
        counts = [cache.get(s, d).k for s in range(8) for d in range(8) if s != d]
        # Most pairs have far fewer than 8 equal-cost paths.
        assert np.mean(counts) < 6

    def test_ksp_beats_ecmp_on_shift_model(self):
        topo = Jellyfish(12, 10, 7, seed=7)
        n = topo.n_hosts
        pats = [shift(n, a) for a in (1, n // 3, n // 2)]

        def mean_th(scheme):
            cache = PathCache(topo, scheme, k=4, seed=0)
            return float(
                np.mean([model_throughput(topo, p, cache).mean_per_node() for p in pats])
            )

        assert mean_th("redksp") > mean_th("ecmp")
