"""Shared fixtures: small topologies and graphs used across the test suite."""

from __future__ import annotations

import pytest

from repro.topology import Jellyfish


@pytest.fixture(scope="session")
def small_jellyfish() -> Jellyfish:
    """A tiny Jellyfish used by most unit tests: RRG(12, 8, 4), 48 hosts."""
    return Jellyfish(12, 8, 4, seed=7)


@pytest.fixture(scope="session")
def paper_small_jellyfish() -> Jellyfish:
    """The paper's small topology RRG(36, 24, 16) (288 hosts)."""
    return Jellyfish(36, 24, 16, seed=1)


@pytest.fixture()
def ring_adjacency():
    """A deterministic 6-cycle: two edge-disjoint paths between any pair."""
    n = 6
    return [sorted([(i - 1) % n, (i + 1) % n]) for i in range(n)]


@pytest.fixture()
def figure3_graph():
    """The example topology of the paper's Figure 3.

    Nodes: S1=0, A=1, B=2, C=3, E=4, F=5, G=6, H=7, I=8, D1=9.
    Edges give one 3-hop path S1-A-G-D1 and six 4-hop paths.
    """
    edges = [
        (0, 1), (0, 2), (0, 3),          # S1-A, S1-B, S1-C
        (1, 4), (2, 4), (3, 5),          # A-E, B-E, C-F
        (1, 6),                          # A-G  (3-hop path via G)
        (4, 6), (4, 7), (5, 7), (5, 8),  # E-G, E-H, F-H, F-I
        (6, 9), (7, 9), (8, 9),          # G-D1, H-D1, I-D1
    ]
    n = 10
    adj = [[] for _ in range(n)]
    for u, v in edges:
        adj[u].append(v)
        adj[v].append(u)
    return [sorted(x) for x in adj]
