"""Cross-process telemetry aggregation: parallel == serial, exactly.

The pipeline's contract is that per-worker metric snapshots merge into
the parent registry to the *identical* totals a serial run records —
whatever the worker count, shard boundaries, or completion order.  These
tests run the same workload serially and through a 2-process pool and
compare full snapshots section by section (timers and the
``netsim.cycles_per_sec/*`` throughput gauges excluded: wall-clock
quantities can never match across runs; everything else must be exact).
"""

import pytest

from repro import Jellyfish, PathCache
from repro.netsim import SimConfig
from repro.netsim.parallel import run_saturation_grid
from repro.obs import metrics
from repro.traffic import random_permutation

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def _metrics_disabled():
    metrics.disable()
    yield
    metrics.disable()


def _comparable(snap: dict) -> dict:
    doc = {
        k: snap[k] for k in ("counters", "gauges", "histograms", "arrays")
    }
    doc["gauges"] = {
        k: v for k, v in doc["gauges"].items()
        if not k.startswith("netsim.cycles_per_sec/")
    }
    return doc


def test_precompute_parallel_merges_serial_telemetry_totals():
    topo = Jellyfish(12, 10, 6, seed=5)
    pairs = [(s, d) for s in range(12) for d in range(12) if s != d]

    snaps = {}
    for processes in (1, 2):
        metrics.enable()
        cache = PathCache(topo, "rksp", k=3, seed=0)
        assert cache.precompute_parallel(pairs, processes=processes) == len(pairs)
        snaps[processes] = metrics.snapshot()
        metrics.disable()

    serial, parallel = snaps[1], snaps[2]
    assert _comparable(serial) == _comparable(parallel)
    # And the counters actually recorded the warm: one miss per pair plus
    # the Yen spur-query counters from inside the workers.
    assert serial["counters"]["core.cache.miss"] == len(pairs)
    assert serial["counters"]["core.yen.invocations"] == len(pairs)
    assert serial["counters"]["core.yen.spur_queries"] > 0


def test_saturation_grid_merges_serial_telemetry_totals():
    topo = Jellyfish(8, 6, 4, seed=3)
    patterns = [random_permutation(topo.n_hosts, seed=s) for s in (0, 1)]
    cfg = SimConfig(warmup_cycles=40, sample_cycles=40, n_samples=2)
    kwargs = dict(
        k=2, rates=(0.2, 0.4), config=cfg, seed=9,
    )

    results, snaps = {}, {}
    for processes in (1, 2):
        metrics.enable()
        results[processes] = run_saturation_grid(
            topo, ("ksp", "rksp"), ("random", "ugal"), patterns,
            processes=processes, **kwargs,
        )
        snaps[processes] = metrics.snapshot()
        metrics.disable()

    # The grid results themselves are pool-invariant...
    assert results[1] == results[2]
    # ...and so is every aggregated metric: simulator counters, the VC
    # occupancy histogram, and the per-scheme link-flit arrays.
    assert _comparable(snaps[1]) == _comparable(snaps[2])
    counters = snaps[1]["counters"]
    n_cells = 2 * 2 * len(patterns)
    # Sweeps stop early after saturation, so runs is at least one per
    # cell and at most the full rate ladder.
    assert n_cells <= counters["netsim.runs"] <= n_cells * len(kwargs["rates"])
    assert counters["netsim.flits_forwarded"] > 0
    assert set(snaps[1]["arrays"]) == {
        "netsim.link_flits/ksp", "netsim.link_flits/rksp"
    }
    for arr in snaps[1]["arrays"].values():
        assert len(arr) == topo.n_switch_links
        assert sum(arr) > 0


def test_grid_without_telemetry_records_nothing():
    topo = Jellyfish(8, 6, 4, seed=3)
    patterns = [random_permutation(topo.n_hosts, seed=0)]
    cfg = SimConfig(warmup_cycles=20, sample_cycles=20, n_samples=1)
    out = run_saturation_grid(
        topo, ("ksp",), ("random",), patterns,
        k=2, rates=(0.2,), config=cfg, seed=9, processes=1,
    )
    assert set(out) == {("ksp", "random")}
    assert metrics.snapshot() is None
