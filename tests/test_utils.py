"""Unit tests for the utility layer (rng, validation, tables, errors)."""

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    InsufficientPathsError,
    NoPathError,
    PathError,
    ReproError,
    TopologyError,
)
from repro.utils import (
    check_in,
    check_non_negative,
    check_positive_int,
    check_probability,
    ensure_rng,
    format_table,
    spawn_rngs,
)


class TestRng:
    def test_none_gives_fresh_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = ensure_rng(5).integers(1000)
        b = ensure_rng(5).integers(1000)
        assert a == b

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g

    def test_spawn_independence(self):
        rngs = spawn_rngs(7, 3)
        values = [g.integers(10**9) for g in rngs]
        assert len(set(values)) == 3

    def test_spawn_reproducible(self):
        a = [g.integers(10**9) for g in spawn_rngs(7, 3)]
        b = [g.integers(10**9) for g in spawn_rngs(7, 3)]
        assert a == b

    def test_spawn_from_generator(self):
        rngs = spawn_rngs(np.random.default_rng(1), 2)
        assert len(rngs) == 2

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_zero(self):
        assert spawn_rngs(0, 0) == []


class TestValidation:
    def test_positive_int_ok(self):
        assert check_positive_int(3, "x") == 3

    def test_positive_int_rejects(self):
        for bad in (0, -1, 1.5, "2", True):
            with pytest.raises(ConfigurationError):
                check_positive_int(bad, "x")

    def test_non_negative(self):
        assert check_non_negative(0, "x") == 0.0
        assert check_non_negative(2.5, "x") == 2.5
        with pytest.raises(ConfigurationError):
            check_non_negative(-0.1, "x")
        with pytest.raises(ConfigurationError):
            check_non_negative("nope", "x")

    def test_probability(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ConfigurationError):
            check_probability(1.1, "p")

    def test_check_in(self):
        assert check_in("a", ("a", "b"), "mode") == "a"
        with pytest.raises(ConfigurationError, match="mode"):
            check_in("c", ("a", "b"), "mode")


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(["name", "v"], [["abc", 1.23456], ["d", 2]], ndigits=2)
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.23" in text and "2" in text
        assert set(lines[1]) <= {"-", "+"}

    def test_title(self):
        text = format_table(["a"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError, match="row 0"):
            format_table(["a", "b"], [[1]])

    def test_bool_and_str_cells(self):
        text = format_table(["x"], [[True], ["s"]])
        assert "True" in text and "s" in text


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (TopologyError, PathError, ConfigurationError):
            assert issubclass(exc, ReproError)

    def test_no_path_error_message(self):
        e = NoPathError(3, 9, detail="disconnected")
        assert "3" in str(e) and "9" in str(e) and "disconnected" in str(e)

    def test_insufficient_paths_carries_payload(self):
        e = InsufficientPathsError(1, 2, 5, ["p1", "p2"])
        assert e.requested == 5
        assert e.found == ["p1", "p2"]
        assert issubclass(InsufficientPathsError, PathError)
