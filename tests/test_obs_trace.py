"""The packet flight recorder: sampling, ring buffers, persistence,
merge determinism, the latency decomposition, and the route audit.

The route audit is the tentpole correctness check: for every traced
packet the switch sequence reconstructed from its hop-depart events must
equal the route the mechanism chose, and (for the KSP-restricted
mechanisms) that route must be a member of the pair's precomputed path
set at the recorded index.  These tests run it against all six routing
mechanisms and then corrupt a recorded route to prove the audit can
actually fail.
"""

import numpy as np
import pytest

from repro import Jellyfish, PathCache
from repro.errors import ConfigurationError
from repro.netsim import PatternTraffic, SimConfig, Simulator
from repro.netsim.parallel import run_saturation_grid
from repro.obs import trace
from repro.obs.trace import (
    EV_CREDIT_STALL,
    EV_HOP_DEPART,
    EV_INJECT,
    KSP_RESTRICTED_MECHANISMS,
    TraceAnalysis,
    TraceRecorder,
)
from repro.traffic import random_permutation
from repro.traffic.patterns import Pattern

pytestmark = pytest.mark.obs

ALL_MECHANISMS = ("sp", "random", "round_robin", "ugal", "ksp_ugal", "ksp_adaptive")


@pytest.fixture(autouse=True)
def _trace_disabled():
    """Every test starts and ends with tracing off (module state is global)."""
    trace.disable()
    yield
    trace.disable()


@pytest.fixture(scope="module")
def topo():
    return Jellyfish(8, 6, 4, seed=1)


@pytest.fixture(scope="module")
def cache(topo):
    return PathCache(topo, "ksp", k=4, seed=0)


def _run_traced(topo, cache, mechanism, sample=1, rate=0.3):
    trace.enable(sample=sample, event_capacity=1 << 18, packet_capacity=1 << 14)
    n = topo.n_hosts
    pattern = Pattern("perm", n, [(i, (i + 3) % n) for i in range(n)])
    cfg = SimConfig(warmup_cycles=60, sample_cycles=60, n_samples=2)
    sim = Simulator(
        topo, cache, mechanism, PatternTraffic(pattern), rate,
        config=cfg, seed=np.random.SeedSequence(7),
    )
    sim.run()
    snap = trace.snapshot()
    trace.disable()
    return snap


# ------------------------------------------------------------- recorder

def test_sampling_every_nth():
    rec = TraceRecorder(sample=3)
    uids = [rec.sample_packet(0, s, 1, 0, 1, t_create=s) for s in range(9)]
    assert [u >= 0 for u in uids] == [True, False, False] * 3
    assert rec.n_injected == 9
    assert rec.n_packets == 3


def test_invalid_parameters_rejected():
    with pytest.raises(ConfigurationError):
        TraceRecorder(sample=0)
    with pytest.raises(ConfigurationError):
        TraceRecorder(packet_capacity=0)


def test_ring_wrap_keeps_newest_packets():
    rec = TraceRecorder(sample=1, packet_capacity=4)
    for i in range(10):
        uid = rec.sample_packet(0, i, 99, 0, 1, t_create=i)
        rec.set_route(uid, 0, (0, 1), t_launch=i)
        rec.finish(uid, t_deliver=i + 5)
    snap = rec.snapshot()
    assert snap["n_packets"] == 10
    assert snap["packets_dropped"] == 6
    # Chronological order: the four newest uids, oldest first.
    assert snap["pk_uid"].tolist() == [6, 7, 8, 9]
    assert snap["pk_t_create"].tolist() == [6, 7, 8, 9]


def test_wrapped_packet_row_is_not_updated_by_stale_uid():
    rec = TraceRecorder(sample=1, packet_capacity=2)
    first = rec.sample_packet(0, 0, 1, 0, 1, t_create=0)
    for i in range(2):  # overwrite the ring
        rec.sample_packet(0, i + 1, 1, 0, 1, t_create=i + 1)
    rec.set_route(first, 0, (0, 1), t_launch=9)  # stale: row was reused
    rec.finish(first, t_deliver=9)
    snap = rec.snapshot()
    assert 9 not in snap["pk_t_launch"].tolist()
    assert 9 not in snap["pk_t_deliver"].tolist()


def test_route_width_grows_on_demand():
    rec = TraceRecorder(sample=1, route_width=2)
    uid = rec.sample_packet(0, 0, 1, 0, 5, t_create=0)
    rec.set_route(uid, 1, (0, 2, 3, 4, 5), t_launch=1)
    snap = rec.snapshot()
    assert snap["pk_route"].shape[1] == 5
    ana = TraceAnalysis(snap)
    assert ana.intended_route(0) == (0, 2, 3, 4, 5)
    assert snap["pk_hops"][0] == 4


def test_begin_run_closes_prior_packets():
    rec = TraceRecorder(sample=1)
    uid = rec.sample_packet(0, 0, 1, 0, 1, t_create=0)
    rec.begin_run(scheme="ksp", mechanism="sp")
    rec.finish(uid, t_deliver=10)  # prior run's packet no longer updates
    assert rec.snapshot()["pk_t_deliver"][0] == -1


def test_save_load_roundtrip(tmp_path, topo, cache):
    snap = _run_traced(topo, cache, "random")
    path = trace.save_trace(tmp_path / "run.trace.npz", snap)
    back = trace.load_trace(path)
    assert back["format"] == trace.TRACE_FORMAT
    assert back["n_packets"] == snap["n_packets"]
    assert back["runs"] == snap["runs"]
    for key in snap:
        if isinstance(snap[key], np.ndarray):
            np.testing.assert_array_equal(back[key], snap[key])
    # Analyses agree exactly across the round trip.
    assert (
        TraceAnalysis(back).latency_decomposition()
        == TraceAnalysis(snap).latency_decomposition()
    )


def test_load_rejects_foreign_npz(tmp_path):
    path = tmp_path / "other.npz"
    np.savez_compressed(path, format="something-else", x=np.arange(3))
    with pytest.raises(ConfigurationError, match="not a repro-trace"):
        trace.load_trace(path)


def test_merge_offsets_uids_and_runs():
    a = TraceRecorder(sample=1)
    run_a = a.begin_run(scheme="ksp", mechanism="sp")
    ua = a.sample_packet(run_a, 0, 1, 0, 1, t_create=0)
    a.set_route(ua, 0, (0, 1), t_launch=1)
    a.finish(ua, t_deliver=5)

    b = TraceRecorder(sample=1)
    run_b = b.begin_run(scheme="ksp", mechanism="random")
    ub = b.sample_packet(run_b, 2, 3, 1, 0, t_create=2)
    b.set_route(ub, 1, (1, 0), t_launch=3)
    b.finish(ub, t_deliver=9)

    a.merge(b.snapshot())
    snap = a.snapshot()
    assert snap["n_packets"] == 2
    assert snap["pk_uid"].tolist() == [0, 1]
    assert snap["pk_run"].tolist() == [0, 1]
    assert [r["mechanism"] for r in snap["runs"]] == ["sp", "random"]
    # Events carry the same offsets, so analyses see one coherent trace.
    ana = TraceAnalysis(snap)
    assert set(ana.path_shares()) == {"ksp/sp", "ksp/random"}
    assert ana.realized_route(1) == ()


def test_merge_rejects_foreign_snapshot():
    rec = TraceRecorder()
    with pytest.raises(ConfigurationError, match="cannot merge"):
        rec.merge({"format": "bogus"})


# --------------------------------------------------------- module state

def test_disabled_module_state():
    assert not trace.enabled()
    assert trace.active() is None
    assert trace.snapshot() is None
    assert trace.config() is None
    trace.merge_snapshot({"format": trace.TRACE_FORMAT})  # silently dropped
    assert trace.save_trace("/nonexistent/never-written.npz") is None


def test_enable_disable_and_config():
    rec = trace.enable(sample=8, packet_capacity=16)
    assert trace.enabled() and trace.active() is rec
    cfg = trace.config()
    assert cfg["sample"] == 8 and cfg["packet_capacity"] == 16
    trace.disable()
    assert trace.config() is None


def test_capture_scopes_and_restores():
    outer = trace.enable(sample=1)
    with trace.capture(sample=4) as inner:
        assert trace.active() is inner
        assert inner.sample == 4
    assert trace.active() is outer


# ------------------------------------------------- simulator integration

@pytest.mark.parametrize("mechanism", ALL_MECHANISMS)
def test_route_audit_passes(topo, cache, mechanism):
    snap = _run_traced(topo, cache, mechanism)
    assert snap["n_packets"] > 100
    assert snap["packets_dropped"] == 0 and snap["events_dropped"] == 0
    ana = TraceAnalysis(snap)
    violations = ana.audit_routes(paths=cache, topology=topo)
    assert violations == []
    # The KSP-restricted mechanisms never route off the path table.
    if mechanism in KSP_RESTRICTED_MECHANISMS:
        for dist in ana.path_shares().values():
            assert -1 not in dist


def test_route_audit_detects_corruption(topo, cache):
    snap = _run_traced(topo, cache, "sp")
    ana = TraceAnalysis(snap)
    assert ana.audit_routes(paths=cache, topology=topo) == []
    # Corrupt one delivered packet's recorded route: swap in a different
    # (still plausible-length) switch id mid-route or at the endpoint.
    complete = np.flatnonzero(ana._complete_mask())
    row = int(complete[0])
    route = snap["pk_route"]
    width = int((route[row] >= 0).sum())
    col = max(0, width - 1)
    route[row, col] = (route[row, col] + 1) % topo.n_switches
    violations = TraceAnalysis(snap).audit_routes(paths=cache, topology=topo)
    assert violations
    assert any(str(int(snap["pk_uid"][row])) in v for v in violations)


def test_off_table_route_flagged_for_restricted_mechanism(topo, cache):
    snap = _run_traced(topo, cache, "random")
    ana = TraceAnalysis(snap)
    complete = np.flatnonzero(ana._complete_mask())
    row = int(complete[0])
    # Claim the packet was routed off-table: restricted mechanisms must
    # never do that, so the audit flags it even without a PathCache.
    snap["pk_path_index"][row] = -1
    violations = TraceAnalysis(snap).audit_routes()
    assert any("outside the precomputed path set" in v for v in violations)


@pytest.mark.parametrize("mechanism", ("sp", "ugal"))
def test_latency_decomposition_invariant(topo, cache, mechanism):
    """total == source_queue + switch_queue + (hops+2)*channel_latency,
    with both queueing terms non-negative, for every delivered packet."""
    snap = _run_traced(topo, cache, mechanism)
    ana = TraceAnalysis(snap)
    pk = ana._pk
    mask = ana._complete_mask()
    assert mask.sum() > 100
    chan = snap["runs"][0]["channel_latency"]
    total = pk["t_deliver"][mask] - pk["t_create"][mask]
    src_q = pk["t_launch"][mask] - pk["t_create"][mask]
    serial = (pk["hops"][mask] + 2) * chan
    net_q = total - src_q - serial
    assert (src_q >= 0).all()
    assert (net_q >= 0).all()

    decomp = ana.latency_decomposition()
    doc = decomp[f"ksp/{mechanism}"]
    assert doc["count"] == int(mask.sum())
    assert doc["mean_total"] == pytest.approx(
        doc["mean_source_queue"]
        + doc["mean_switch_queue"]
        + doc["mean_serialization"]
    )
    assert doc["mean_serialization"] == pytest.approx(
        (doc["mean_hops"] + 2) * chan
    )


def test_event_stream_shape(topo, cache):
    snap = _run_traced(topo, cache, "sp", sample=4)
    # Sampling traces ~1/4 of injected packets (head-based, so exact).
    assert snap["n_packets"] == -(-snap["n_injected"] // 4)
    assert snap["events_dropped"] == 0
    ana = TraceAnalysis(snap)
    ev = ana._ev
    assert (ev["kind"] == EV_INJECT).sum() == snap["n_packets"]
    # Every delivered packet's realized route matches its hop count.
    pk = ana._pk
    for i in np.flatnonzero(ana._complete_mask()):
        uid = int(pk["uid"][i])
        assert len(ana.realized_route(uid)) == int(pk["hops"][i]) + 1
    stalls = ana.stall_attribution()
    assert stalls["total"] == int((ev["kind"] == EV_CREDIT_STALL).sum())


def test_saturated_run_records_stalls(topo, cache):
    snap = _run_traced(topo, cache, "sp", rate=0.9)
    ana = TraceAnalysis(snap)
    stalls = ana.stall_attribution()
    assert stalls["total"] > 0
    assert sum(stalls["by_switch"].values()) == stalls["total"]
    assert sum(stalls["by_hop"].values()) == stalls["total"]


def test_untraced_simulation_records_nothing(topo, cache):
    n = topo.n_hosts
    pattern = Pattern("perm", n, [(i, (i + 3) % n) for i in range(n)])
    cfg = SimConfig(warmup_cycles=40, sample_cycles=40, n_samples=1)
    sim = Simulator(
        topo, cache, "sp", PatternTraffic(pattern), 0.3,
        config=cfg, seed=np.random.SeedSequence(7),
    )
    sim.run()
    assert trace.snapshot() is None


# --------------------------------------------------------- parallel grid

def test_parallel_grid_trace_equals_serial(topo):
    patterns = [random_permutation(topo.n_hosts, seed=s) for s in (0, 1)]
    cfg = SimConfig(warmup_cycles=40, sample_cycles=40, n_samples=2)
    kwargs = dict(k=2, rates=(0.2, 0.4), config=cfg, seed=9)

    snaps = {}
    for processes in (1, 2):
        trace.enable(sample=2, event_capacity=1 << 17, packet_capacity=1 << 13)
        run_saturation_grid(
            topo, ("ksp", "rksp"), ("random", "ugal"), patterns,
            processes=processes, **kwargs,
        )
        snaps[processes] = trace.snapshot()
        trace.disable()

    serial, parallel = snaps[1], snaps[2]
    assert serial["n_packets"] == parallel["n_packets"] > 0
    for key in serial:
        if isinstance(serial[key], np.ndarray):
            np.testing.assert_array_equal(serial[key], parallel[key], err_msg=key)
        else:
            assert serial[key] == parallel[key], key
