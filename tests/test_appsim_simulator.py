"""Unit and integration tests for the flow-level application simulator."""

import numpy as np
import pytest

from repro import Jellyfish, PathCache
from repro.appsim import FlowSpec, build_workload, run_flows, stencil_time
from repro.errors import ConfigurationError, SimulationError


def flow(nbytes, links, msg=0):
    return FlowSpec(0, 1, nbytes, np.asarray(links, dtype=np.int64), msg)


class TestRunFlows:
    def test_single_flow_time(self):
        r = run_flows([flow(100.0, [0, 1])], 10.0, n_links=2)
        assert r.makespan == pytest.approx(10.0)
        assert r.makespan_ms() == pytest.approx(10_000.0)

    def test_two_equal_flows_share_then_no_speedup(self):
        # Same size, same link: both at cap/2 the whole time.
        r = run_flows([flow(50.0, [0], 0), flow(50.0, [0], 1)], 10.0, n_links=1)
        assert r.makespan == pytest.approx(10.0)
        assert r.flow_completion == pytest.approx([10.0, 10.0])

    def test_short_flow_releases_bandwidth(self):
        # Flow A: 30 bytes, flow B: 90 bytes, shared link cap 10.
        # Phase 1: both at 5 -> A done at t=6 (B has 60 left).
        # Phase 2: B alone at 10 -> done at t=12.
        r = run_flows([flow(30.0, [0], 0), flow(90.0, [0], 1)], 10.0, n_links=1)
        assert r.flow_completion == pytest.approx([6.0, 12.0])
        assert r.makespan == pytest.approx(12.0)

    def test_message_completion_is_max_over_subflows(self):
        flows = [flow(30.0, [0], msg=7), flow(90.0, [1], msg=7)]
        r = run_flows(flows, 10.0, n_links=2)
        assert r.message_completion[7] == pytest.approx(9.0)

    def test_mean_statistics(self):
        flows = [flow(30.0, [0], 0), flow(90.0, [0], 1)]
        r = run_flows(flows, 10.0, n_links=1)
        assert r.mean_flow_completion == pytest.approx(9.0)
        assert r.total_bytes == pytest.approx(120.0)

    def test_empty_rejected(self):
        with pytest.raises(SimulationError, match="no flows"):
            run_flows([], 1.0, n_links=1)

    def test_conservation_total_time_lower_bound(self):
        # Makespan can never beat the most-loaded link's bytes/capacity.
        rng = np.random.default_rng(1)
        flows = [
            flow(float(rng.integers(10, 100)), rng.integers(0, 5, size=2), i)
            for i in range(20)
        ]
        cap = 7.0
        r = run_flows(flows, cap, n_links=5)
        usage = np.zeros(5)
        for f in flows:
            usage[np.unique(f.links)] += f.nbytes
        assert r.makespan >= usage.max() / cap - 1e-9

    def test_simultaneous_batch_completion(self):
        flows = [flow(10.0, [i], i) for i in range(6)]
        r = run_flows(flows, 1.0, n_links=6)
        assert r.flow_completion == pytest.approx(np.full(6, 10.0))


class TestBuildWorkload:
    @pytest.fixture(scope="class")
    def topo(self):
        return Jellyfish(8, 8, 5, seed=3)

    @pytest.fixture(scope="class")
    def paths(self, topo):
        return PathCache(topo, "redksp", k=4, seed=1)

    def test_sp_one_flow_per_message(self, topo, paths):
        msgs = [(0, 9, 100.0), (3, 14, 50.0)]
        flows = build_workload(topo, msgs, paths, mechanism="sp")
        assert len(flows) == 2
        assert {f.message_id for f in flows} == {0, 1}

    def test_random_splits_evenly(self, topo, paths):
        msgs = [(0, 9, 100.0)]
        flows = build_workload(topo, msgs, paths, mechanism="random")
        ss, ds = topo.switch_of_host(0), topo.switch_of_host(9)
        k = paths.get(ss, ds).k
        assert len(flows) == k
        assert sum(f.nbytes for f in flows) == pytest.approx(100.0)
        assert len({f.nbytes for f in flows}) == 1

    def test_adaptive_chunks_cover_message(self, topo, paths):
        msgs = [(0, 9, 100.0)]
        flows = build_workload(topo, msgs, paths, mechanism="ksp_adaptive", chunks=8)
        assert sum(f.nbytes for f in flows) == pytest.approx(100.0)
        # Chunks on the same path merge, so at most k distinct flows.
        ss, ds = topo.switch_of_host(0), topo.switch_of_host(9)
        assert len(flows) <= paths.get(ss, ds).k

    def test_adaptive_spreads_over_multiple_paths(self, topo, paths):
        msgs = [(0, 9, 100.0)]
        flows = build_workload(
            topo, msgs, paths, mechanism="ksp_adaptive", chunks=16, seed=5
        )
        assert len(flows) >= 2  # congestion-aware splitting engaged

    def test_flow_links_include_terminal_links(self, topo, paths):
        msgs = [(0, 9, 100.0)]
        (f,) = build_workload(topo, msgs, paths, mechanism="sp")
        assert topo.injection_link(0) in f.links
        assert topo.ejection_link(9) in f.links

    def test_intra_switch_message(self, topo, paths):
        h0, h1 = topo.hosts_of_switch(2)[0], topo.hosts_of_switch(2)[1]
        (f,) = build_workload(topo, [(h0, h1, 10.0)], paths, mechanism="sp")
        assert len(f.links) == 2  # injection + ejection only

    def test_self_message_rejected(self, topo, paths):
        with pytest.raises(SimulationError, match="self-message"):
            build_workload(topo, [(0, 0, 10.0)], paths)

    def test_unknown_mechanism_rejected(self, topo, paths):
        with pytest.raises(ConfigurationError):
            build_workload(topo, [(0, 9, 10.0)], paths, mechanism="teleport")

    def test_seeded_reproducible(self, topo, paths):
        msgs = [(0, 9, 100.0), (1, 17, 60.0)]

        def build():
            fl = build_workload(topo, msgs, paths, mechanism="ksp_adaptive", seed=4)
            return [(f.nbytes, f.links.tolist(), f.message_id) for f in fl]

        assert build() == build()


class TestStencilTime:
    @pytest.fixture(scope="class")
    def topo(self):
        return Jellyfish(9, 10, 6, seed=2)  # 36 hosts -> 6x6 2-D grid

    def test_basic_run(self, topo):
        r = stencil_time(topo, "2dnn", "redksp", mapping="linear", seed=0,
                         total_bytes=1e6)
        assert r.makespan > 0
        # 36 ranks x 1 MB over 20 GBps: sub-millisecond scale.
        assert r.makespan_ms() < 10.0

    def test_mapping_changes_result(self, topo):
        a = stencil_time(topo, "2dnn", "ksp", mapping="linear", seed=0)
        b = stencil_time(topo, "2dnn", "ksp", mapping="random", seed=0)
        assert a.makespan != b.makespan

    def test_invalid_mapping(self, topo):
        with pytest.raises(ConfigurationError):
            stencil_time(topo, "2dnn", "ksp", mapping="diagonal")

    def test_more_data_takes_longer(self, topo):
        a = stencil_time(topo, "2dnn", "ksp", total_bytes=1e6, seed=0)
        b = stencil_time(topo, "2dnn", "ksp", total_bytes=2e6, seed=0)
        assert b.makespan > a.makespan

    def test_bandwidth_scales_time(self, topo):
        a = stencil_time(topo, "2dnn", "ksp", link_bandwidth=20e9, seed=0)
        b = stencil_time(topo, "2dnn", "ksp", link_bandwidth=10e9, seed=0)
        assert b.makespan == pytest.approx(2 * a.makespan, rel=1e-6)

    def test_shared_path_cache_reused(self, topo):
        pc = PathCache(topo, "redksp", k=4, seed=9)
        r1 = stencil_time(topo, "2dnn", "redksp", paths=pc, seed=0)
        r2 = stencil_time(topo, "2dnn", "redksp", paths=pc, seed=0)
        assert r1.makespan == pytest.approx(r2.makespan)

    def test_iterations_accumulate(self, topo):
        pc = PathCache(topo, "redksp", k=4, seed=9)
        one = stencil_time(topo, "2dnn", "redksp", paths=pc, seed=0, iterations=1)
        three = stencil_time(topo, "2dnn", "redksp", paths=pc, seed=0, iterations=3)
        # Three sequential phases take roughly three times one phase
        # (adaptive choices vary slightly between phases).
        assert three.makespan == pytest.approx(3 * one.makespan, rel=0.25)
        assert three.makespan > one.makespan
        assert three.total_bytes == pytest.approx(3 * one.total_bytes)
        # Completion times are monotone across phase boundaries.
        assert three.flow_completion.max() == pytest.approx(three.makespan)

    def test_iterations_validation(self, topo):
        with pytest.raises(ConfigurationError):
            stencil_time(topo, "2dnn", "ksp", iterations=0)
