"""Unit tests for routing mechanisms (path choice logic in isolation)."""

import numpy as np
import pytest

from repro import Jellyfish, PathCache
from repro.errors import ConfigurationError
from repro.netsim.mechanisms import MECHANISMS, make_mechanism
from repro.netsim.network import NetworkWiring


@pytest.fixture(scope="module")
def setup():
    topo = Jellyfish(12, 10, 6, seed=7)
    wiring = NetworkWiring(topo)
    paths = PathCache(topo, "redksp", k=4, seed=1)
    paths.precompute(
        (s, d) for s in range(topo.n_switches) for d in range(topo.n_switches) if s != d
    )
    occupancy = np.zeros(topo.n_links, dtype=np.int64)
    return topo, wiring, paths, occupancy


def mech(name, setup, seed=0, **kw):
    topo, wiring, paths, occupancy = setup
    occupancy[:] = 0
    return make_mechanism(
        name, wiring, paths, occupancy, np.random.default_rng(seed), **kw
    )


def hosts_for_pair(topo, ssw, dsw):
    return topo.hosts_of_switch(ssw)[0], topo.hosts_of_switch(dsw)[0]


class TestRegistry:
    def test_all_six_mechanisms_present(self):
        assert set(MECHANISMS) == {
            "sp", "random", "round_robin", "ugal", "ksp_ugal", "ksp_adaptive",
        }

    def test_unknown_rejected(self, setup):
        with pytest.raises(ConfigurationError, match="unknown routing"):
            mech("bogus", setup)

    def test_bad_estimate_rejected(self, setup):
        with pytest.raises(ConfigurationError, match="estimate"):
            mech("sp", setup, estimate="sum")


class TestOblivious:
    def test_sp_always_minimal(self, setup):
        topo, _, paths, _ = setup
        m = mech("sp", setup)
        sh, dh = hosts_for_pair(topo, 0, 5)
        for _ in range(8):
            assert m.choose(sh, dh, 0, 5) == paths.get(0, 5).minimal.nodes

    def test_random_covers_all_paths(self, setup):
        topo, _, paths, _ = setup
        m = mech("random", setup)
        sh, dh = hosts_for_pair(topo, 0, 5)
        seen = {m.choose(sh, dh, 0, 5) for _ in range(200)}
        assert seen == {p.nodes for p in paths.get(0, 5)}

    def test_round_robin_cycles_in_order(self, setup):
        topo, _, paths, _ = setup
        m = mech("round_robin", setup)
        sh, dh = hosts_for_pair(topo, 0, 5)
        ps = paths.get(0, 5)
        chosen = [m.choose(sh, dh, 0, 5) for _ in range(2 * ps.k)]
        expected = [ps[i % ps.k].nodes for i in range(2 * ps.k)]
        assert chosen == expected

    def test_round_robin_counters_are_per_host_pair(self, setup):
        topo, _, paths, _ = setup
        m = mech("round_robin", setup)
        h0 = topo.hosts_of_switch(0)[0]
        h1 = topo.hosts_of_switch(0)[1]
        dh = topo.hosts_of_switch(5)[0]
        ps = paths.get(0, 5)
        assert m.choose(h0, dh, 0, 5) == ps[0].nodes
        # A different source host starts its own rotation.
        assert m.choose(h1, dh, 0, 5) == ps[0].nodes
        assert m.choose(h0, dh, 0, 5) == ps[1].nodes


class TestAdaptive:
    def test_ksp_adaptive_prefers_uncongested_candidate(self, setup):
        topo, wiring, paths, occupancy = setup
        m = mech("ksp_adaptive", setup)
        sh, dh = hosts_for_pair(topo, 0, 5)
        ps = paths.get(0, 5)
        # Congest every path's first link except path 0's (rEDKSP paths
        # have distinct first links).  KSP-adaptive samples TWO candidates,
        # so path 0 wins whenever it is drawn: expected frequency is
        # P(path0 sampled) = 1 - C(k-1,2)/C(k,2) = 2/k = 50% for k=4,
        # versus 25% for oblivious random choice.
        for p in ps[1:]:
            occupancy[wiring.first_link(p)] += 500
        wins = sum(m.choose(sh, dh, 0, 5) == ps[0].nodes for _ in range(400))
        assert wins > 400 * 0.35

    def test_ksp_adaptive_single_path_fallback(self, setup):
        topo, wiring, paths, occupancy = setup
        m = mech("ksp_adaptive", setup)
        # An intra-switch pair has only the trivial path.
        sh, dh = topo.hosts_of_switch(3)[0], topo.hosts_of_switch(3)[1]
        assert m.choose(sh, dh, 3, 3) == (3,)

    def test_ksp_ugal_prefers_minimal_at_zero_load(self, setup):
        topo, _, paths, _ = setup
        m = mech("ksp_ugal", setup)
        sh, dh = hosts_for_pair(topo, 0, 5)
        ps = paths.get(0, 5)
        # With equal (zero) queues the shorter minimal path wins every draw.
        for _ in range(16):
            assert m.choose(sh, dh, 0, 5) == ps.minimal.nodes

    def test_ksp_ugal_diverts_when_minimal_congested(self, setup):
        topo, wiring, paths, occupancy = setup
        m = mech("ksp_ugal", setup)
        sh, dh = hosts_for_pair(topo, 0, 5)
        ps = paths.get(0, 5)
        occupancy[wiring.first_link(ps.minimal)] += 10_000
        nonmin = {p.nodes for p in ps[1:]}
        for _ in range(16):
            choice = m.choose(sh, dh, 0, 5)
            if wiring.first_link(choice) != wiring.first_link(ps.minimal):
                assert choice in nonmin
                return
        pytest.fail("KSP-UGAL never diverted from a congested minimal path")

    def test_vanilla_ugal_paths_are_loop_free_and_valid(self, setup):
        topo, _, _, _ = setup
        m = mech("ugal", setup, seed=3)
        sh, dh = hosts_for_pair(topo, 0, 5)
        for _ in range(64):
            nodes = m.choose(sh, dh, 0, 5)
            assert len(set(nodes)) == len(nodes)
            assert nodes[0] == 0 and nodes[-1] == 5
            for u, v in zip(nodes, nodes[1:]):
                assert v in topo.adjacency[u]

    def test_vanilla_ugal_diverts_through_varied_intermediates(self, setup):
        topo, wiring, paths, occupancy = setup
        m = mech("ugal", setup, seed=3)
        sh, dh = hosts_for_pair(topo, 0, 5)
        # Congest vanilla UGAL's OWN minimal path (it keeps a private
        # shortest-path cache, independent of the KSP table).
        minimal = m._shortest(0, 5)
        occupancy[wiring.first_link(minimal)] += 10_000
        seen = {m.choose(sh, dh, 0, 5) for _ in range(128)}
        diverted = {nodes for nodes in seen if nodes != minimal}
        # Valiant-style detours exist and use more than one intermediate.
        assert len(diverted) >= 2

    def test_intra_switch_pair_trivial_for_ugal(self, setup):
        m = mech("ugal", setup)
        topo = setup[0]
        sh, dh = topo.hosts_of_switch(3)[0], topo.hosts_of_switch(3)[1]
        assert m.choose(sh, dh, 3, 3) == (3,)


class TestEstimates:
    def test_path_estimate_accounts_for_downstream_congestion(self, setup):
        topo, wiring, paths, occupancy = setup
        ps = paths.get(0, 5)
        two_hop = next((p for p in ps if p.hops >= 2), None)
        if two_hop is None:
            pytest.skip("no multi-hop path for this pair")
        m_path = mech("ksp_adaptive", setup, estimate="path")
        # Congest the SECOND link: the "first" estimate cannot see it.
        u, v = two_hop.edges()[1]
        occupancy[topo.link_id(u, v)] += 100
        assert m_path._estimate(two_hop.nodes) > 100

    def test_first_estimate_is_blind_to_downstream(self, setup):
        topo, wiring, paths, occupancy = setup
        ps = paths.get(0, 5)
        two_hop = next((p for p in ps if p.hops >= 2), None)
        if two_hop is None:
            pytest.skip("no multi-hop path for this pair")
        m_first = mech("ksp_adaptive", setup, estimate="first")
        u, v = two_hop.edges()[1]
        occupancy[topo.link_id(u, v)] += 100
        assert m_first._estimate(two_hop.nodes) == 0.0

    def test_trivial_path_estimate_zero(self, setup):
        m = mech("ksp_adaptive", setup)
        assert m._estimate((3,)) == 0.0
