"""N-run trend gating over the ledger: the acceptance contract.

Two pins anchor this file: a synthetic ledger with a >=30% engine
cycles/sec drop across three runs must make ``runs trend --gate`` (and
``runs gate``) exit 1, while an all-flat ledger exits 0; and both the
ASCII trend table and the HTML fleet dashboard must render
byte-identically from the same fixture ledger — no timestamps, no
randomness, no iteration-order leaks.
"""

import pytest

from repro.experiments.runner import main as runner_main
from repro.obs.ledger import (
    LEDGER_FORMAT,
    LEDGER_SCHEMA_VERSION,
    append_entries,
    entry_id,
)
from repro.obs.trend import analyze_entries, main as runs_main
from repro.report import trend_dashboard_html, trend_table

pytestmark = pytest.mark.obs


def _entry(i, *, timing=None, cps=None, counter=None, engines=("fast",),
           experiment="fig9", scale="small", host="ci", kind="manifest"):
    """One synthetic ledger entry; ``i`` orders the series in time."""
    metrics = {}
    if timing is not None:
        metrics["timing/experiment.stage"] = float(timing)
    if cps is not None:
        metrics["gauge/netsim.cycles_per_sec/fast"] = float(cps)
    if counter is not None:
        metrics["counter/netsim.flits_forwarded"] = float(counter)
    entry = {
        "format": LEDGER_FORMAT,
        "schema_version": LEDGER_SCHEMA_VERSION,
        "kind": kind,
        "experiment": experiment,
        "scale": scale,
        "host": host,
        "engines": sorted(engines),
        "created_at": f"2026-08-01T00:00:{i:02d}+00:00",
        "metrics": metrics,
    }
    entry["id"] = entry_id(entry)
    return entry


def _timing_series(values, **kw):
    return [_entry(i, timing=v, **kw) for i, v in enumerate(values)]


def _cps_series(values, **kw):
    return [_entry(i, cps=v, **kw) for i, v in enumerate(values)]


# ------------------------------------------------------- gating rules

def test_timing_latest_above_median_gates():
    report = analyze_entries(_timing_series([1.0, 1.0, 1.5]))
    (trend,) = report.regressions
    assert trend.metric == "timing/experiment.stage"
    assert trend.baseline == 1.0 and trend.latest == 1.5


def test_timing_noise_floor_suppresses_fast_stages():
    report = analyze_entries(_timing_series([0.01, 0.01, 0.04]))
    assert report.regressions == []
    # The same relative jump above the floor gates.
    assert analyze_entries(_timing_series([0.1, 0.1, 0.4])).regressions


def test_sustained_timing_changepoint_gates():
    # Latest vs whole-window median passes (1.5 <= 1.25 * 1.25), but the
    # sustained step at run 2 must still gate.
    report = analyze_entries(_timing_series([1.0, 1.0, 1.5, 1.5]))
    (trend,) = report.regressions
    assert trend.changepoint == 2
    assert trend.note == "changepoint at run 2"


def test_cycles_per_sec_gates_downward():
    # The acceptance pin: a >=30% throughput drop across 3 runs gates.
    report = analyze_entries(_cps_series([1.0e5, 1.0e5, 0.6e5]))
    (trend,) = report.regressions
    assert trend.metric == "gauge/netsim.cycles_per_sec/fast"
    # ...and a throughput *improvement* never gates.
    assert analyze_entries(_cps_series([1.0e5, 1.0e5, 2.0e5])).regressions == []


def test_sustained_cps_changepoint_gates():
    report = analyze_entries(
        _cps_series([100e3, 100e3, 70e3, 70e3, 70e3])
    )
    (trend,) = report.regressions
    assert trend.changepoint == 2
    assert trend.shift == pytest.approx(-0.3)


def test_counters_gate_only_with_metric_threshold():
    entries = [_entry(i, counter=c) for i, c in enumerate([1000, 1000, 1300])]
    assert analyze_entries(entries).regressions == []
    report = analyze_entries(entries, metric_threshold=0.1)
    (trend,) = report.regressions
    assert trend.metric == "counter/netsim.flits_forwarded"
    # Either direction: a counter dropping is as suspicious.
    down = [_entry(i, counter=c) for i, c in enumerate([1000, 1000, 700])]
    assert analyze_entries(down, metric_threshold=0.1).regressions


def test_short_series_never_gate():
    report = analyze_entries(_timing_series([1.0, 5.0]))
    assert report.trends and report.regressions == []
    # min_runs is tunable: with min_runs=2 the same series gates.
    assert analyze_entries(_timing_series([1.0, 5.0]), min_runs=2).regressions


def test_window_trims_old_history():
    values = [0.5, 0.5, 0.5, 1.0, 1.0, 1.0]
    assert analyze_entries(_timing_series(values)).regressions
    report = analyze_entries(_timing_series(values), window=3)
    assert report.regressions == []
    (trend,) = report.trends
    assert trend.values == (1.0, 1.0, 1.0)


def test_cross_engine_series_waives_timings():
    entries = _timing_series([1.0, 1.0], engines=("fast",))
    entries.append(_entry(2, timing=5.0, engines=("batched",)))
    report = analyze_entries(entries)
    assert report.regressions == []
    (trend,) = report.trends
    assert trend.note == "cross-engine: not gated"
    assert any("mix engine tiers" in note for note in report.notes)


def test_metric_filter_narrows_analysis():
    entries = [
        _entry(i, timing=t, cps=c)
        for i, (t, c) in enumerate([(1.0, 1e5), (1.0, 1e5), (1.5, 0.5e5)])
    ]
    report = analyze_entries(entries, metric_filter="cycles_per_sec")
    assert {t.metric for t in report.trends} == {
        "gauge/netsim.cycles_per_sec/fast"
    }


def test_series_are_host_scoped():
    # The same experiment on two hosts trends independently: a fast host
    # never sets the baseline for a slow one.
    entries = _timing_series([1.0, 1.0, 1.0], host="a")
    entries += _timing_series([5.0, 5.0, 5.0], host="b")
    report = analyze_entries(entries)
    assert report.n_series == 2
    assert report.regressions == []


# ------------------------------------------------------------------ CLI

def _write_ledger(tmp_path, entries, name="ledger.jsonl"):
    path = tmp_path / name
    append_entries(path, entries)
    return str(path)


def test_cli_gates_injected_cps_regression(tmp_path, capsys):
    """Acceptance pin: injected >=30% cycles/sec drop -> exit 1."""
    path = _write_ledger(
        tmp_path, _cps_series([1.0e5, 1.0e5, 0.6e5])
    )
    assert runs_main(["trend", "--gate", "--ledger", path]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    assert "cycles_per_sec" in out
    # `runs gate` is the same check spelled for CI.
    assert runs_main(["gate", "--ledger", path]) == 1
    # Without --gate the trend table still reports but exits 0.
    assert runs_main(["trend", "--ledger", path]) == 0


def test_cli_all_flat_ledger_exits_zero(tmp_path, capsys):
    """Acceptance pin: a flat trajectory passes the gate."""
    entries = [
        _entry(i, timing=1.0, cps=1.0e5, counter=1000) for i in range(4)
    ]
    path = _write_ledger(tmp_path, entries)
    assert runs_main(["gate", "--ledger", path]) == 0
    assert runs_main(["trend", "--gate", "--ledger", path]) == 0
    assert "no trend regressions" in capsys.readouterr().out


def test_cli_exit_two_without_entries(tmp_path, capsys):
    missing = str(tmp_path / "absent.jsonl")
    assert runs_main(["gate", "--ledger", missing]) == 2
    assert "no ledger entries" in capsys.readouterr().err


def test_cli_merges_multiple_ledgers(tmp_path):
    # Seed ledger (2 flat runs) + fresh ledger (1 regressed run) compose
    # into one gateable series — the CI trend-gate shape.
    seed = _write_ledger(tmp_path, _cps_series([1.0e5, 1.0e5]), "seed.jsonl")
    fresh = _write_ledger(
        tmp_path, [_entry(2, cps=0.6e5)], "fresh.jsonl"
    )
    assert runs_main(["gate", "--ledger", seed, "--ledger", fresh]) == 1
    assert runs_main(["gate", "--ledger", seed]) == 0


def test_cli_list_and_show(tmp_path, capsys):
    entries = _timing_series([1.0, 2.0])
    path = _write_ledger(tmp_path, entries)
    assert runs_main(["list", "--ledger", path]) == 0
    out = capsys.readouterr().out
    assert entries[0]["id"][:12] in out and "fig9" in out

    assert runs_main(["show", entries[0]["id"][:8], "--ledger", path]) == 0
    assert '"experiment": "fig9"' in capsys.readouterr().out

    assert runs_main(["show", "nope", "--ledger", path]) == 2
    assert "no entry" in capsys.readouterr().err
    # Both entries share every prefix of length 0 with each other? No —
    # an ambiguous prefix is the empty string.
    assert runs_main(["show", "", "--ledger", path]) == 2
    assert "ambiguous" in capsys.readouterr().err


def test_runs_cli_reachable_through_runner(tmp_path, capsys):
    path = _write_ledger(tmp_path, _timing_series([1.0, 1.0, 1.0]))
    assert runner_main(["runs", "gate", "--ledger", path]) == 0
    assert "no trend regressions" in capsys.readouterr().out


def test_cli_export_csv_is_pinned(tmp_path, capsys):
    """``runs export --csv``: fixed column order, one row per metric."""
    entries = [
        _entry(0, timing=1.5, cps=2.0e5),
        _entry(1, timing=0.25, experiment="bench_yen", kind="bench",
               scale="bench", host="vm", engines=()),
    ]
    path = _write_ledger(tmp_path, entries)
    assert runs_main(["export", "--csv", "--ledger", path]) == 0
    out = capsys.readouterr().out
    lines = out.splitlines()
    assert lines[0] == (
        "id,created_at,kind,experiment,scale,host,engines,"
        "batch_lanes,seed,metric,value"
    )
    # One row per (entry, metric), metrics sorted by name within entry.
    assert len(lines) == 1 + 3
    assert lines[1] == (
        f"{entries[0]['id']},2026-08-01T00:00:00+00:00,manifest,fig9,"
        "small,ci,fast,,,gauge/netsim.cycles_per_sec/fast,200000.0"
    )
    assert lines[2].endswith("timing/experiment.stage,1.5")
    assert lines[3] == (
        f"{entries[1]['id']},2026-08-01T00:00:01+00:00,bench,bench_yen,"
        "bench,vm,,,,timing/experiment.stage,0.25"
    )

    # --out writes the same bytes to a file.
    out_file = tmp_path / "sub" / "runs.csv"
    assert runs_main(
        ["export", "--csv", "--ledger", path, "--out", str(out_file)]
    ) == 0
    assert out_file.read_text() == out


# ------------------------------------------------------- determinism

def _fixture_entries():
    entries = [
        _entry(i, timing=t, cps=c, counter=1000)
        for i, (t, c) in enumerate(
            [(1.0, 1.0e5), (1.1, 0.9e5), (1.0, 1.0e5), (1.6, 0.6e5)]
        )
    ]
    entries += [
        _entry(10 + i, timing=v, experiment="bench_yen", kind="bench",
               scale="bench", host="vm")
        for i, v in enumerate([0.2, 0.21, 0.2])
    ]
    return entries


def test_ascii_renders_are_byte_deterministic():
    entries = _fixture_entries()
    reports = [analyze_entries(entries) for _ in range(2)]
    a, b = (trend_table(r, show_all=True) for r in reports)
    assert a == b
    assert "REGRESSION" in a
    # Sparklines are part of the stable output.
    assert any(ch in a for ch in "▁▂▃▄▅▆▇█")


def test_html_dashboard_is_byte_deterministic(tmp_path):
    entries = _fixture_entries()
    report = analyze_entries(entries)
    a = trend_dashboard_html(report, entries)
    b = trend_dashboard_html(analyze_entries(list(entries)), entries)
    assert a == b
    assert a.startswith("<!DOCTYPE html>")
    assert "cycles_per_sec" in a and "REGRESSION" in a
    # Self-contained: no external scripts or stylesheets.
    assert "http://" not in a and "https://" not in a

    # The CLI writes exactly this render.
    path = _write_ledger(tmp_path, entries)
    out = tmp_path / "dash" / "fleet.html"
    assert runs_main(
        ["dashboard", "--ledger", path, "--out", str(out)]
    ) == 0
    assert out.read_text() == a
