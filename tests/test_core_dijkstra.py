"""Unit tests for the tie-breaking shortest-path routines."""

import networkx as nx
import numpy as np
import pytest

from repro.core.dijkstra import bfs_levels, shortest_path
from repro.errors import ConfigurationError
from repro.topology.rrg import random_regular_graph


def to_nx(adj):
    g = nx.Graph()
    g.add_nodes_from(range(len(adj)))
    for u, nbrs in enumerate(adj):
        for v in nbrs:
            g.add_edge(u, v)
    return g


class TestBfsLevels:
    def test_matches_networkx(self):
        adj = random_regular_graph(20, 4, seed=0)
        ref = nx.single_source_shortest_path_length(to_nx(adj), 0)
        dist = bfs_levels(adj, 0)
        for v, d in ref.items():
            assert dist[v] == d

    def test_banned_node_unreachable(self, ring_adjacency):
        # Banning both neighbours of node 3 on a 6-cycle isolates it.
        dist = bfs_levels(ring_adjacency, 0, banned_nodes={2, 4})
        assert dist[3] == -1

    def test_banned_source(self, ring_adjacency):
        dist = bfs_levels(ring_adjacency, 0, banned_nodes={0})
        assert (dist == -1).all()

    def test_banned_edges_directed(self, ring_adjacency):
        # Banning 0->1 leaves the long way around: 1 is then 5 hops away.
        dist = bfs_levels(ring_adjacency, 0, banned_edges={(0, 1)})
        assert dist[1] == 5


class TestShortestPathDeterministic:
    def test_optimal_length(self):
        adj = random_regular_graph(24, 5, seed=1)
        g = to_nx(adj)
        for dst in range(1, 24):
            path = shortest_path(adj, 0, dst)
            assert path is not None
            assert len(path) - 1 == nx.shortest_path_length(g, 0, dst)

    def test_valid_edges(self):
        adj = random_regular_graph(24, 5, seed=1)
        path = shortest_path(adj, 0, 17)
        for u, v in zip(path, path[1:]):
            assert v in adj[u]

    def test_deterministic(self):
        adj = random_regular_graph(24, 5, seed=1)
        assert shortest_path(adj, 0, 17) == shortest_path(adj, 0, 17)

    def test_trivial_pair(self, ring_adjacency):
        assert shortest_path(ring_adjacency, 2, 2) == [2]

    def test_trivial_pair_banned(self, ring_adjacency):
        assert shortest_path(ring_adjacency, 2, 2, banned_nodes={2}) is None

    def test_unreachable_returns_none(self):
        adj = [[1], [0], [3], [2]]
        assert shortest_path(adj, 0, 2) is None

    def test_banned_endpoint_returns_none(self, ring_adjacency):
        assert shortest_path(ring_adjacency, 0, 3, banned_nodes={3}) is None
        assert shortest_path(ring_adjacency, 0, 3, banned_nodes={0}) is None

    def test_small_id_bias(self):
        # Diamond: 0-1-3 and 0-2-3 tie; "min" must take the path through 1.
        adj = [[1, 2], [0, 3], [0, 3], [1, 2]]
        assert shortest_path(adj, 0, 3, tie="min") == [0, 1, 3]

    def test_invalid_tie_rejected(self, ring_adjacency):
        with pytest.raises(ConfigurationError):
            shortest_path(ring_adjacency, 0, 3, tie="bogus")


class TestShortestPathRandomized:
    def test_optimal_length_preserved(self):
        adj = random_regular_graph(24, 5, seed=1)
        g = to_nx(adj)
        rng = np.random.default_rng(0)
        for dst in range(1, 24):
            path = shortest_path(adj, 0, dst, tie="random", rng=rng)
            assert len(path) - 1 == nx.shortest_path_length(g, 0, dst)

    def test_explores_both_diamond_branches(self):
        adj = [[1, 2], [0, 3], [0, 3], [1, 2]]
        rng = np.random.default_rng(0)
        seen = {
            tuple(shortest_path(adj, 0, 3, tie="random", rng=rng))
            for _ in range(64)
        }
        assert seen == {(0, 1, 3), (0, 2, 3)}

    def test_roughly_uniform_on_diamond(self):
        adj = [[1, 2], [0, 3], [0, 3], [1, 2]]
        rng = np.random.default_rng(1)
        hits = sum(
            shortest_path(adj, 0, 3, tie="random", rng=rng)[1] == 1
            for _ in range(400)
        )
        assert 120 <= hits <= 280  # ~200 expected

    def test_seeded_reproducible(self):
        adj = random_regular_graph(24, 5, seed=1)
        a = shortest_path(adj, 0, 17, tie="random", rng=np.random.default_rng(5))
        b = shortest_path(adj, 0, 17, tie="random", rng=np.random.default_rng(5))
        assert a == b

    def test_respects_bans(self, ring_adjacency):
        rng = np.random.default_rng(0)
        path = shortest_path(
            ring_adjacency, 0, 3, tie="random", rng=rng, banned_edges={(0, 1), (1, 0)}
        )
        assert path == [0, 5, 4, 3]
