"""Per-pair flow telemetry: recorder semantics, engine equality, merge
algebra, and the byte-identity pin across all three engine tiers.

The tentpole pin: a saturation grid's flow-stats snapshot — and the
``.npz`` written from it — must be byte-identical whether the grid ran
serially, across pool workers, or through the batched multi-lane engine,
exactly like the metrics/trace/time-series/link-state artifacts before
it.  The exactness pin: per-pair percentiles reconstructed from the
histogram must equal ``np.percentile`` over the raw per-pair latencies.
"""

import hashlib
import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Jellyfish, PathCache
from repro.errors import ConfigurationError
from repro.netsim import SimConfig, Simulator, UniformTraffic
from repro.netsim.batchcore import BatchLane, BatchSimulator
from repro.netsim.fastcore import FastSimulator
from repro.netsim.parallel import run_saturation_grid
from repro.netsim.simulator import Simulator as ReferenceSimulator
from repro.obs import flowstats
from repro.obs.fairness import pair_stats
from repro.obs.flowstats import (
    FLOWSTATS_FORMAT,
    HIST_COLS,
    PAIR_COLS,
    FlowstatsRecorder,
    latency_bins,
    load_flowstats,
    pair_endpoints,
    save_flowstats,
)
from repro.traffic import random_permutation

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def _flowstats_disabled():
    """Module state is global; every test starts and ends with it off."""
    flowstats.disable()
    yield
    flowstats.disable()


@pytest.fixture(scope="module")
def topo():
    return Jellyfish(8, 8, 5, seed=3)


@pytest.fixture(scope="module")
def cache(topo):
    return PathCache(topo, "redksp", k=4, seed=1)


FAST = SimConfig(warmup_cycles=100, sample_cycles=100, n_samples=3)

#: The fixed shape every synthetic-recorder test shares.
SHAPE = dict(n_hosts=3, n_pairs=9, n_bins=12)


def _sim(topo, cache, rate=0.2, cfg=FAST, seed=5, mechanism="ksp_adaptive"):
    return Simulator(
        topo, cache, mechanism, UniformTraffic(topo.n_hosts), rate,
        config=cfg, seed=np.random.SeedSequence(seed),
    )


def _snapshots_equal(a, b, tag=""):
    assert a.keys() == b.keys(), tag
    for key in a:
        if isinstance(a[key], np.ndarray):
            np.testing.assert_array_equal(
                a[key], b[key], err_msg=f"{tag}:{key}"
            )
        else:
            assert a[key] == b[key], f"{tag}:{key}"


# ------------------------------------------------------------- recorder

class TestRecorder:
    def test_record_and_snapshot_columns(self):
        rec = FlowstatsRecorder()
        run = rec.begin_run(scheme="ksp", **SHAPE)
        rec.record_run(run, [1, 1, 3], [2, 5, 7])
        snap = rec.snapshot()
        assert snap["format"] == FLOWSTATS_FORMAT
        assert snap["n_runs"] == 1 and snap["n_pairs"] == 9
        assert snap["runs"][0]["scheme"] == "ksp"
        for col in PAIR_COLS:
            assert snap[f"fs_{col}"].dtype == np.int64
            assert snap[f"fs_{col}"].shape == (1, 9)
        for col in HIST_COLS:
            assert snap[f"fs_{col}"].dtype == np.int64
            assert snap[f"fs_{col}"].shape == (3,)
        assert snap["fs_delivered"][0].tolist() == [0, 2, 0, 1, 0, 0, 0, 0, 0]
        assert snap["fs_lat_sum"][0].tolist() == [0, 7, 0, 7, 0, 0, 0, 0, 0]
        assert snap["fs_lat_max"][0].tolist() == [-1, 5, -1, 7, -1, -1, -1, -1, -1]
        # COO rows in canonical (run, pair, bin) order, counts positive.
        assert snap["fs_run"].tolist() == [0, 0, 0]
        assert snap["fs_pair"].tolist() == [1, 1, 3]
        assert snap["fs_bin"].tolist() == [2, 5, 7]
        assert snap["fs_count"].tolist() == [1, 1, 1]

    def test_begin_run_requires_shape_metadata(self):
        rec = FlowstatsRecorder()
        for missing in ("n_hosts", "n_pairs", "n_bins"):
            meta = dict(SHAPE)
            del meta[missing]
            with pytest.raises(ConfigurationError, match=missing):
                rec.begin_run(**meta)

    def test_mismatched_shape_rejected(self):
        rec = FlowstatsRecorder()
        rec.begin_run(**SHAPE)
        with pytest.raises(ConfigurationError, match="cannot share"):
            rec.begin_run(n_hosts=3, n_pairs=9, n_bins=13)

    def test_record_run_validation(self):
        rec = FlowstatsRecorder()
        run = rec.begin_run(**SHAPE)
        with pytest.raises(ConfigurationError, match="unknown run"):
            rec.record_run(run + 1, [0], [0])
        with pytest.raises(ConfigurationError, match="equal-length"):
            rec.record_run(run, [0, 1], [0])
        with pytest.raises(ConfigurationError, match="pair ids"):
            rec.record_run(run, [9], [0])
        with pytest.raises(ConfigurationError, match="latencies"):
            rec.record_run(run, [0], [12])
        rec.record_run(run, [], [])  # empty streams are a no-op

    def test_repeated_record_run_accumulates(self):
        once = FlowstatsRecorder()
        twice = FlowstatsRecorder()
        r0 = once.begin_run(**SHAPE)
        once.record_run(r0, [4, 2, 4, 4], [3, 1, 3, 0])
        r1 = twice.begin_run(**SHAPE)
        twice.record_run(r1, [4, 2], [3, 1])
        twice.record_run(r1, [4, 4], [3, 0])
        _snapshots_equal(once.snapshot(), twice.snapshot())
        snap = twice.snapshot()
        # The duplicate (pair 4, lat 3) folded into one count-2 row.
        assert snap["fs_pair"].tolist() == [2, 4, 4]
        assert snap["fs_bin"].tolist() == [1, 0, 3]
        assert snap["fs_count"].tolist() == [1, 1, 2]

    def test_endpoint_tables_pin_one_host_count(self):
        rec = FlowstatsRecorder()
        ep = pair_endpoints(3)
        rec.set_pair_endpoints(ep["pair_src"], ep["pair_dst"])
        rec.set_pair_endpoints(ep["pair_src"], ep["pair_dst"])  # idempotent
        with pytest.raises(ConfigurationError, match="different pair"):
            rec.set_pair_endpoints(ep["pair_dst"], ep["pair_src"])
        with pytest.raises(ConfigurationError, match="1-D"):
            rec.set_pair_endpoints([0, 1], [0])

    def test_merge_offsets_runs_in_task_order(self):
        parent = FlowstatsRecorder()
        for tag in ("a", "b"):
            child = FlowstatsRecorder()
            ep = pair_endpoints(3)
            run = child.begin_run(tag=tag, **SHAPE)
            child.set_pair_endpoints(ep["pair_src"], ep["pair_dst"])
            child.record_run(run, [1], [2])
            parent.merge(child.snapshot())
        snap = parent.snapshot()
        assert [r["tag"] for r in snap["runs"]] == ["a", "b"]
        assert snap["fs_run"].tolist() == [0, 1]
        assert snap["fs_delivered"].shape == (2, 9)
        assert snap["pair_src"].tolist() == pair_endpoints(3)["pair_src"].tolist()

    def test_merge_rejects_foreign_format_and_shape(self):
        rec = FlowstatsRecorder()
        rec.begin_run(**SHAPE)
        with pytest.raises(ConfigurationError, match="format"):
            rec.merge({"format": "something-else"})
        other = FlowstatsRecorder()
        other.begin_run(n_hosts=2, n_pairs=4, n_bins=12)
        with pytest.raises(ConfigurationError, match="cannot share"):
            rec.merge(other.snapshot())

    def test_module_state_capture_and_config(self):
        assert flowstats.snapshot() is None
        assert flowstats.config() is None
        flowstats.enable()
        assert flowstats.enabled()
        # The recorder has no constructor parameters, so the enabled
        # config is the *falsy* {} — the grid plumbing must test
        # ``is not None``, never truthiness.
        assert flowstats.config() == {}
        outer = flowstats.active()
        with flowstats.capture() as rec:
            assert flowstats.active() is rec
            assert rec is not outer
        assert flowstats.active() is outer
        flowstats.disable()
        assert not flowstats.enabled()
        assert flowstats.config() is None


def test_latency_bins_is_a_pure_config_function():
    cfg = SimConfig(warmup_cycles=100, sample_cycles=100, n_samples=3)
    assert latency_bins(cfg) == 100 + cfg.measure_cycles
    steady = SimConfig(
        warmup_cycles=100, sample_cycles=100, n_samples=3,
        steady_state=True, steady_window_cycles=50, max_warmup_cycles=400,
    )
    assert latency_bins(steady) == 400 + 50 + steady.measure_cycles


def test_pair_endpoints_table():
    ep = pair_endpoints(3)
    assert ep["pair_src"].tolist() == [0, 0, 0, 1, 1, 1, 2, 2, 2]
    assert ep["pair_dst"].tolist() == [0, 1, 2, 0, 1, 2, 0, 1, 2]
    with pytest.raises(ConfigurationError):
        pair_endpoints(0)


# ------------------------------------------------- simulator integration

class TestSimulatorIntegration:
    def test_totals_and_endpoints_cover_the_run(self, topo, cache):
        flowstats.enable()
        sim = _sim(topo, cache)
        result = sim.run()
        snap = flowstats.snapshot()
        flowstats.disable()
        n = topo.n_hosts
        assert snap["n_hosts"] == n and snap["n_pairs"] == n * n
        assert snap["n_bins"] == latency_bins(FAST)
        # Every measured delivery lands in exactly one pair row and one
        # histogram cell (flow stats are measure-gated, like latencies).
        assert int(snap["fs_delivered"].sum()) == result.measured_delivered
        assert int(snap["fs_count"].sum()) == result.measured_delivered
        assert int(snap["fs_lat_sum"].sum()) == sum(sim._latencies)
        ep = pair_endpoints(n)
        assert snap["pair_src"].tolist() == ep["pair_src"].tolist()
        assert snap["pair_dst"].tolist() == ep["pair_dst"].tolist()
        meta = snap["runs"][0]
        assert meta["mechanism"] == "ksp_adaptive"
        assert meta["n_bins"] == snap["n_bins"]

    def test_disabled_recorder_costs_nothing(self, topo, cache):
        sim = _sim(topo, cache)
        assert sim._fs is None
        sim.run()
        assert flowstats.snapshot() is None

    def test_reference_engine_matches_fast(self, topo, cache):
        snaps = {}
        for engine in ("fast", "reference"):
            cfg = SimConfig(
                warmup_cycles=100, sample_cycles=100, n_samples=3,
                engine=engine,
            )
            with flowstats.capture() as rec:
                sim = _sim(topo, cache, cfg=cfg)
                assert isinstance(sim, FastSimulator) == (engine == "fast")
                sim.run()
                snaps[engine] = rec.snapshot()
        _snapshots_equal(snaps["fast"], snaps["reference"])

    def test_histogram_percentiles_match_np_percentile(self, topo, cache):
        """The exactness pin: digests == np.percentile over raw streams."""
        with flowstats.capture() as rec:
            sim = _sim(topo, cache, rate=0.4)
            sim.run()
            snap = rec.snapshot()
        raw_pairs = np.asarray(sim._fs_pairs, dtype=np.int64)
        raw_lats = np.asarray(sim._latencies, dtype=np.int64)
        stats = pair_stats(snap, 0)
        assert len(stats) == len(set(raw_pairs.tolist())) > 0
        for s in stats:
            lats = raw_lats[raw_pairs == s["pair"]]
            assert s["delivered"] == lats.size
            assert s["max"] == int(lats.max())
            assert s["mean"] == pytest.approx(float(lats.mean()))
            p50, p99 = np.percentile(lats, (50, 99))
            assert s["p50"] == pytest.approx(float(p50), abs=1e-9)
            assert s["p99"] == pytest.approx(float(p99), abs=1e-9)

    def test_config_flag_requires_active_recorder(self, topo, cache):
        cfg = SimConfig(
            warmup_cycles=20, sample_cycles=20, n_samples=1, flowstats=True,
        )
        with pytest.raises(ConfigurationError, match="flow-stats recorder"):
            _sim(topo, cache, cfg=cfg)
        with pytest.raises(ConfigurationError, match="flow-stats recorder"):
            BatchSimulator(
                topo, cache,
                [BatchLane("ksp_adaptive", UniformTraffic(topo.n_hosts), 0.2)],
                SimConfig(
                    warmup_cycles=20, sample_cycles=20, n_samples=1,
                    batch_lanes=1, flowstats=True,
                ),
            )
        with flowstats.capture():
            _sim(topo, cache, cfg=cfg).run()  # recorder present: fine

    def test_reference_engine_config_guard(self, topo, cache):
        cfg = SimConfig(
            warmup_cycles=20, sample_cycles=20, n_samples=1,
            engine="reference", flowstats=True,
        )
        with pytest.raises(ConfigurationError, match="flow-stats recorder"):
            ReferenceSimulator(
                topo, cache, "ksp_adaptive", UniformTraffic(topo.n_hosts),
                0.2, config=cfg, seed=np.random.SeedSequence(5),
            )


# ------------------------------------------------------- persistence

class TestPersistence:
    def test_npz_round_trip(self, tmp_path):
        rec = FlowstatsRecorder()
        ep = pair_endpoints(3)
        run = rec.begin_run(scheme="rksp", rate=0.3, **SHAPE)
        rec.set_pair_endpoints(ep["pair_src"], ep["pair_dst"])
        rec.record_run(run, [1, 4, 4], [2, 5, 5])
        snap = rec.snapshot()
        path = save_flowstats(tmp_path / "f.npz", snap)
        back = load_flowstats(path)
        assert back["runs"] == snap["runs"]
        assert back["n_bins"] == snap["n_bins"]
        for key in snap:
            if isinstance(snap[key], np.ndarray):
                np.testing.assert_array_equal(snap[key], back[key], err_msg=key)

    def test_save_disabled_module_state_is_noop(self, tmp_path):
        assert save_flowstats(tmp_path / "none.npz") is None
        assert not (tmp_path / "none.npz").exists()

    def test_load_rejects_foreign_npz(self, tmp_path):
        p = tmp_path / "junk.npz"
        np.savez_compressed(p, data=np.arange(3))
        with pytest.raises(ConfigurationError):
            load_flowstats(p)


# ------------------------------------------------------- merge algebra

#: One shard: up to three runs, each a stream of (pair, latency) events.
_events = st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 11)), max_size=20
)
_shard = st.lists(_events, max_size=3)


def _build(shard, tag):
    rec = FlowstatsRecorder()
    ep = pair_endpoints(3)
    for j, events in enumerate(shard):
        run = rec.begin_run(tag=f"{tag}{j}", **SHAPE)
        rec.set_pair_endpoints(ep["pair_src"], ep["pair_dst"])
        if events:
            rec.record_run(
                run, [p for p, _ in events], [l for _, l in events]
            )
    return rec.snapshot()


def _merged(*snaps):
    rec = FlowstatsRecorder()
    for snap in snaps:
        rec.merge(snap)
    return rec.snapshot()


def _run_multiset(snap):
    """Per-run canonical rows, order-insensitively comparable."""
    hist_run = snap["fs_run"]
    out = []
    for r, meta in enumerate(snap["runs"]):
        rows = hist_run == r
        out.append(
            (
                json.dumps(meta, sort_keys=True),
                tuple(snap["fs_delivered"][r].tolist()),
                tuple(snap["fs_lat_sum"][r].tolist()),
                tuple(snap["fs_lat_max"][r].tolist()),
                tuple(
                    zip(
                        snap["fs_pair"][rows].tolist(),
                        snap["fs_bin"][rows].tolist(),
                        snap["fs_count"][rows].tolist(),
                    )
                ),
            )
        )
    return sorted(out)


class TestMergeAlgebra:
    @settings(max_examples=25, deadline=None)
    @given(shard=_shard)
    def test_identity(self, shard):
        snap = _build(shard, "s")
        # Empty ⊕ x == x, and x ⊕ empty == x.
        _snapshots_equal(_merged(FlowstatsRecorder().snapshot(), snap), snap)
        _snapshots_equal(_merged(snap, FlowstatsRecorder().snapshot()), snap)

    @settings(max_examples=25, deadline=None)
    @given(a=_shard, b=_shard, c=_shard)
    def test_associativity(self, a, b, c):
        sa, sb, sc = _build(a, "a"), _build(b, "b"), _build(c, "c")
        _snapshots_equal(
            _merged(_merged(sa, sb), sc), _merged(sa, _merged(sb, sc))
        )
        # ... and both equal the flat task-order merge.
        _snapshots_equal(_merged(_merged(sa, sb), sc), _merged(sa, sb, sc))

    @settings(max_examples=25, deadline=None)
    @given(a=_shard, b=_shard)
    def test_commutative_up_to_run_order(self, a, b):
        # Task order is the canonical order, so ⊕ is *not* commutative
        # on raw bytes — but the per-run records themselves must be
        # preserved verbatim whichever side merged first.
        sa, sb = _build(a, "a"), _build(b, "b")
        assert _run_multiset(_merged(sa, sb)) == _run_multiset(_merged(sb, sa))


# --------------------------- serial == parallel == batched lanes (pin)

def test_grid_flowstats_byte_identical_across_engine_tiers(topo, tmp_path):
    """The tentpole pin: one flow-stats artifact, three execution tiers.

    Serial in-process (processes=1), pool workers (processes=2), and the
    batched multi-lane engine (batch_lanes=4) must produce SHA-identical
    ``.npz`` files — not merely equivalent snapshots.
    """
    patterns = [random_permutation(topo.n_hosts, seed=s) for s in (0, 1)]
    kwargs = dict(k=2, rates=(0.2, 0.4), seed=9)

    digests, snaps = {}, {}
    modes = {
        "serial": dict(processes=1, batch_lanes=1),
        "pool": dict(processes=2, batch_lanes=1),
        "batched": dict(processes=1, batch_lanes=4),
    }
    for tag, mode in modes.items():
        cfg = SimConfig(
            warmup_cycles=40, sample_cycles=40, n_samples=2,
            batch_lanes=mode["batch_lanes"],
        )
        flowstats.enable()
        run_saturation_grid(
            topo, ("ksp", "rksp"), ("ksp_adaptive", "ksp_ugal"), patterns,
            processes=mode["processes"], config=cfg, **kwargs,
        )
        snap = flowstats.snapshot()
        flowstats.disable()
        path = tmp_path / f"grid-{tag}.flowstats.npz"
        save_flowstats(path, snap)
        snaps[tag] = snap
        digests[tag] = hashlib.sha256(path.read_bytes()).hexdigest()

    base = snaps["serial"]
    assert base["n_runs"] == 16 and int(base["fs_delivered"].sum()) > 0
    for tag in ("pool", "batched"):
        _snapshots_equal(base, snaps[tag], tag)
    assert digests["serial"] == digests["pool"] == digests["batched"]
