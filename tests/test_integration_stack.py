"""Cross-subsystem integration tests: topology -> paths -> model/netsim/appsim.

These check that the three evaluation instruments agree with each other on
the same workload — the property that makes the reproduction trustworthy.
"""

import numpy as np
import pytest

from repro import Jellyfish, PathCache
from repro.appsim import build_workload, run_flows
from repro.model import model_throughput
from repro.netsim import PatternTraffic, SimConfig, Simulator
from repro.traffic import random_permutation, shift, switch_pair_flows

FAST = SimConfig(warmup_cycles=200, sample_cycles=200, n_samples=5)


@pytest.fixture(scope="module")
def topo():
    return Jellyfish(10, 10, 6, seed=11)  # 40 hosts, mildly stressed


class TestModelVsNetsim:
    def test_accepted_throughput_tracks_model_under_saturation_load(self, topo):
        """Drive the network at full injection: the accepted throughput per
        scheme should rank in the same order as the model's prediction."""
        pat = shift(topo.n_hosts, topo.n_hosts // 2)
        outcomes = {}
        for scheme in ("sp", "redksp"):
            cache = PathCache(topo, scheme, k=4, seed=0)
            model = model_throughput(topo, pat, cache).mean_per_node()
            sim = Simulator(
                topo, cache, "random", PatternTraffic(pat), 1.0, FAST, seed=2
            )
            r = sim.run()
            outcomes[scheme] = (model, r.accepted_throughput)
        assert outcomes["redksp"][0] > outcomes["sp"][0]
        assert outcomes["redksp"][1] > outcomes["sp"][1]

    def test_model_upper_bounds_delivered_roughly(self, topo):
        """The fluid model is optimistic: simulated accepted throughput at
        full load does not exceed the model by more than protocol slack."""
        pat = random_permutation(topo.n_hosts, seed=5)
        cache = PathCache(topo, "redksp", k=4, seed=0)
        model = model_throughput(topo, pat, cache).mean_per_node()
        sim = Simulator(topo, cache, "random", PatternTraffic(pat), 1.0, FAST, seed=2)
        r = sim.run()
        assert r.accepted_throughput <= model * 1.15


class TestModelVsAppsim:
    def test_completion_time_inverse_of_model_rate(self, topo):
        """For a permutation where every message has equal size, the flow
        simulator's makespan is roughly bytes / (model rate x bandwidth)."""
        pat = random_permutation(topo.n_hosts, seed=3)
        cache = PathCache(topo, "redksp", k=4, seed=0)
        model = model_throughput(topo, pat, cache).min_per_flow()
        nbytes = 10e6
        bw = 20e9
        msgs = [(s, d, nbytes) for s, d in pat.flows]
        flows = build_workload(topo, msgs, cache, mechanism="random")
        r = run_flows(flows, bw, topo.n_links)
        # The straggler flow finishes no sooner than the fluid bound.
        lower = nbytes / (bw * 1.0)  # absolute floor: full link speed
        assert r.makespan >= lower * 0.99
        upper = nbytes / (bw * max(model, 1e-9))
        assert r.makespan <= upper * 1.6


class TestPathCacheSharing:
    def test_one_cache_serves_all_three_instruments(self, topo):
        pat = random_permutation(topo.n_hosts, seed=9)
        cache = PathCache(topo, "redksp", k=4, seed=0)
        cache.precompute(switch_pair_flows(topo, pat))
        size_before = len(cache)

        model_throughput(topo, pat, cache)
        msgs = [(s, d, 1e6) for s, d in pat.flows]
        run_flows(build_workload(topo, msgs, cache, mechanism="random"),
                  20e9, topo.n_links)
        sim = Simulator(topo, cache, "ksp_adaptive", PatternTraffic(pat), 0.3,
                        FAST, seed=0)
        sim.run()
        # Pattern pairs were precomputed; instruments added only the
        # trivial intra-switch pairs (if any).
        assert len(cache) >= size_before
