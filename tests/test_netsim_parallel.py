"""Tests for the process-parallel sweep grid (and pickling support)."""

import pickle

import numpy as np
import pytest

from repro import Jellyfish, PathCache
from repro.core.path import Path, PathSet
from repro.errors import ConfigurationError
from repro.netsim import SimConfig, run_saturation_grid
from repro.obs import metrics
from repro.obs import timeseries as obs_timeseries
from repro.traffic import random_permutation, shift

TINY = SimConfig(warmup_cycles=50, sample_cycles=50, n_samples=2)


@pytest.fixture(scope="module")
def topo():
    return Jellyfish(8, 8, 5, seed=3)


class TestPickling:
    def test_path_roundtrip(self):
        p = Path([3, 1, 4])
        assert pickle.loads(pickle.dumps(p)) == p

    def test_pathset_roundtrip(self):
        ps = PathSet(1, 4, [Path([1, 4]), Path([1, 2, 4])])
        again = pickle.loads(pickle.dumps(ps))
        assert again == ps
        assert again.minimal == ps.minimal

    def test_cache_state_roundtrip(self, topo):
        cache = PathCache(topo, "redksp", k=3, seed=0)
        cache.precompute([(0, 1), (2, 5)])
        state = pickle.loads(pickle.dumps(cache.export_state()))
        fresh = PathCache(topo, "redksp", k=3, seed=0)
        fresh.import_state(state)
        assert fresh.get(0, 1) == cache.get(0, 1)
        assert len(fresh) == 2


class TestGrid:
    def test_inline_grid_shape(self, topo):
        pats = [random_permutation(topo.n_hosts, seed=0)]
        grid = run_saturation_grid(
            topo, ["sp", "redksp"], ["random", "ksp_adaptive"], pats,
            k=3, rates=(0.2, 0.6, 1.0), config=TINY, seed=0, processes=1,
        )
        assert set(grid) == {
            ("sp", "random"), ("sp", "ksp_adaptive"),
            ("redksp", "random"), ("redksp", "ksp_adaptive"),
        }
        assert all(0.0 <= v <= 1.0 for v in grid.values())

    def test_parallel_matches_inline(self, topo):
        pats = [shift(topo.n_hosts, 7)]
        kwargs = dict(
            k=3, rates=(0.3, 0.9), config=TINY, seed=4,
        )
        inline = run_saturation_grid(
            topo, ["redksp"], ["random"], pats, processes=1, **kwargs
        )
        parallel = run_saturation_grid(
            topo, ["redksp"], ["random"], pats, processes=2, **kwargs
        )
        assert inline == parallel

    def test_averages_over_patterns(self, topo):
        pats = [random_permutation(topo.n_hosts, seed=s) for s in range(2)]
        grid = run_saturation_grid(
            topo, ["sp"], ["random"], pats,
            k=1, rates=(0.5, 1.0), config=TINY, seed=0,
        )
        assert len(grid) == 1

    def test_validation(self, topo):
        pats = [random_permutation(topo.n_hosts, seed=0)]
        with pytest.raises(ConfigurationError):
            run_saturation_grid(topo, [], ["random"], pats, rates=(0.5,))
        with pytest.raises(ConfigurationError):
            run_saturation_grid(
                topo, ["sp"], ["random"], pats, rates=(0.5,), processes=0
            )


def _strip_engine_identity(snap):
    """Drop the keys that legitimately differ between engine tiers."""
    out = {}
    for section, values in snap.items():
        if not isinstance(values, dict) or section == "timers":
            continue
        out[section] = {
            k: v for k, v in values.items()
            if not (
                k.startswith("netsim.engine_runs/")
                or k.startswith("netsim.cycles_per_sec/")
            )
        }
    return out


def _grid_with_telemetry(topo, schemes, mechanisms, pats, batch_lanes,
                         processes=1, **kwargs):
    cfg = SimConfig(
        warmup_cycles=50, sample_cycles=50, n_samples=2,
        batch_lanes=batch_lanes,
    )
    with metrics.capture() as reg:
        with obs_timeseries.capture(window=30, top_links=4) as tsr:
            grid = run_saturation_grid(
                topo, schemes, mechanisms, pats, config=cfg,
                processes=processes, **kwargs,
            )
            ts = tsr.snapshot()
        snap = reg.snapshot()
    return grid, _strip_engine_identity(snap), ts


def _assert_ts_equal(a, b):
    assert a.keys() == b.keys()
    for k in a:
        if isinstance(a[k], np.ndarray):
            assert np.array_equal(a[k], b[k]), k
        else:
            assert a[k] == b[k], k


class TestGridBatching:
    """run_saturation_grid(batch_lanes=N) vs the per-cell fast engine."""

    KW = dict(k=4, rates=(0.2, 0.5, 0.8), seed=9)

    def test_batched_grid_matches_per_cell(self, topo):
        # ugal is not batchable and must fall back per cell inside the
        # same grid; everything (cell throughputs, merged metrics minus
        # the engine identity stamps, time-series artifacts) must be
        # byte-identical to the per-cell run.
        pats = [random_permutation(topo.n_hosts, seed=s) for s in (5, 6)]
        mechs = ["sp", "ksp_adaptive", "ugal"]
        base = _grid_with_telemetry(topo, ["redksp"], mechs, pats, 1, **self.KW)
        bat = _grid_with_telemetry(topo, ["redksp"], mechs, pats, 4, **self.KW)
        assert base[0] == bat[0]
        assert base[1] == bat[1]
        _assert_ts_equal(base[2], bat[2])

    def test_batched_engine_stamped(self, topo):
        pats = [random_permutation(topo.n_hosts, seed=5)]
        cfg = SimConfig(
            warmup_cycles=50, sample_cycles=50, n_samples=2, batch_lanes=4,
        )
        with metrics.capture() as reg:
            run_saturation_grid(
                topo, ["redksp"], ["ksp_adaptive", "ugal"], pats,
                config=cfg, **self.KW,
            )
            snap = reg.snapshot()
        # Batchable cells ran on the batched tier, ugal fell back.
        assert snap["counters"]["netsim.engine_runs/batched"] > 0
        assert snap["counters"]["netsim.engine_runs/fast"] > 0
        assert snap["gauges"]["netsim.cycles_per_sec/batched"] > 0

    def test_batched_pool_matches_inline(self, topo):
        pats = [random_permutation(topo.n_hosts, seed=s) for s in (5, 6)]
        mechs = ["random", "ksp_ugal"]
        inline = _grid_with_telemetry(
            topo, ["redksp"], mechs, pats, 3, **self.KW
        )
        pooled = _grid_with_telemetry(
            topo, ["redksp"], mechs, pats, 3, processes=2, **self.KW
        )
        assert inline[0] == pooled[0]
        assert inline[1] == pooled[1]
        _assert_ts_equal(inline[2], pooled[2])

    def test_steady_state_rejects_batching(self, topo):
        pats = [random_permutation(topo.n_hosts, seed=0)]
        cfg = SimConfig(
            warmup_cycles=50, sample_cycles=50, n_samples=2,
            batch_lanes=2, steady_state=True,
        )
        with pytest.raises(ConfigurationError, match="steady_state"):
            run_saturation_grid(
                topo, ["redksp"], ["random"], pats,
                k=3, rates=(0.5,), config=cfg, seed=0,
            )
