"""Tests for the process-parallel sweep grid (and pickling support)."""

import pickle

import pytest

from repro import Jellyfish, PathCache
from repro.core.path import Path, PathSet
from repro.errors import ConfigurationError
from repro.netsim import SimConfig, run_saturation_grid
from repro.traffic import random_permutation, shift

TINY = SimConfig(warmup_cycles=50, sample_cycles=50, n_samples=2)


@pytest.fixture(scope="module")
def topo():
    return Jellyfish(8, 8, 5, seed=3)


class TestPickling:
    def test_path_roundtrip(self):
        p = Path([3, 1, 4])
        assert pickle.loads(pickle.dumps(p)) == p

    def test_pathset_roundtrip(self):
        ps = PathSet(1, 4, [Path([1, 4]), Path([1, 2, 4])])
        again = pickle.loads(pickle.dumps(ps))
        assert again == ps
        assert again.minimal == ps.minimal

    def test_cache_state_roundtrip(self, topo):
        cache = PathCache(topo, "redksp", k=3, seed=0)
        cache.precompute([(0, 1), (2, 5)])
        state = pickle.loads(pickle.dumps(cache.export_state()))
        fresh = PathCache(topo, "redksp", k=3, seed=0)
        fresh.import_state(state)
        assert fresh.get(0, 1) == cache.get(0, 1)
        assert len(fresh) == 2


class TestGrid:
    def test_inline_grid_shape(self, topo):
        pats = [random_permutation(topo.n_hosts, seed=0)]
        grid = run_saturation_grid(
            topo, ["sp", "redksp"], ["random", "ksp_adaptive"], pats,
            k=3, rates=(0.2, 0.6, 1.0), config=TINY, seed=0, processes=1,
        )
        assert set(grid) == {
            ("sp", "random"), ("sp", "ksp_adaptive"),
            ("redksp", "random"), ("redksp", "ksp_adaptive"),
        }
        assert all(0.0 <= v <= 1.0 for v in grid.values())

    def test_parallel_matches_inline(self, topo):
        pats = [shift(topo.n_hosts, 7)]
        kwargs = dict(
            k=3, rates=(0.3, 0.9), config=TINY, seed=4,
        )
        inline = run_saturation_grid(
            topo, ["redksp"], ["random"], pats, processes=1, **kwargs
        )
        parallel = run_saturation_grid(
            topo, ["redksp"], ["random"], pats, processes=2, **kwargs
        )
        assert inline == parallel

    def test_averages_over_patterns(self, topo):
        pats = [random_permutation(topo.n_hosts, seed=s) for s in range(2)]
        grid = run_saturation_grid(
            topo, ["sp"], ["random"], pats,
            k=1, rates=(0.5, 1.0), config=TINY, seed=0,
        )
        assert len(grid) == 1

    def test_validation(self, topo):
        pats = [random_permutation(topo.n_hosts, seed=0)]
        with pytest.raises(ConfigurationError):
            run_saturation_grid(topo, [], ["random"], pats, rates=(0.5,))
        with pytest.raises(ConfigurationError):
            run_saturation_grid(
                topo, ["sp"], ["random"], pats, rates=(0.5,), processes=0
            )
