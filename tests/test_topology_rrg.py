"""Unit tests for random regular graph construction."""

import networkx as nx
import pytest

from repro.errors import ConstructionError, TopologyError
from repro.topology.rrg import is_connected, is_regular, random_regular_graph


def to_nx(adj):
    g = nx.Graph()
    g.add_nodes_from(range(len(adj)))
    for u, nbrs in enumerate(adj):
        for v in nbrs:
            g.add_edge(u, v)
    return g


class TestRandomRegularGraph:
    @pytest.mark.parametrize("n,degree", [(4, 3), (10, 3), (12, 4), (36, 16), (20, 19)])
    def test_regular_and_connected(self, n, degree):
        adj = random_regular_graph(n, degree, seed=0)
        assert len(adj) == n
        assert is_regular(adj, degree)
        assert is_connected(adj)

    def test_simple_graph_no_self_loops_or_parallel_edges(self):
        adj = random_regular_graph(24, 5, seed=3)
        for u, nbrs in enumerate(adj):
            assert u not in nbrs
            assert len(set(nbrs)) == len(nbrs)

    def test_symmetric(self):
        adj = random_regular_graph(18, 7, seed=2)
        for u, nbrs in enumerate(adj):
            for v in nbrs:
                assert u in adj[v]

    def test_matches_networkx_view(self):
        adj = random_regular_graph(30, 6, seed=5)
        g = to_nx(adj)
        assert nx.is_connected(g)
        degrees = {d for _, d in g.degree()}
        assert degrees == {6}

    def test_seed_reproducibility(self):
        a = random_regular_graph(16, 5, seed=11)
        b = random_regular_graph(16, 5, seed=11)
        assert a == b

    def test_different_seeds_differ(self):
        a = random_regular_graph(16, 5, seed=11)
        b = random_regular_graph(16, 5, seed=12)
        assert a != b

    def test_odd_parity_rejected(self):
        with pytest.raises(TopologyError, match="even"):
            random_regular_graph(5, 3)

    def test_degree_too_large_rejected(self):
        with pytest.raises(TopologyError, match="degree"):
            random_regular_graph(4, 4)

    def test_negative_degree_rejected(self):
        with pytest.raises(TopologyError):
            random_regular_graph(4, -1)

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            random_regular_graph(0, 0)

    def test_single_node_zero_degree(self):
        assert random_regular_graph(1, 0) == [[]]

    def test_degree_zero_multi_node_disconnected(self):
        with pytest.raises(ConstructionError):
            random_regular_graph(3, 0)

    def test_complete_graph_corner(self):
        # degree = n-1 forces the complete graph.
        adj = random_regular_graph(6, 5, seed=1)
        for u, nbrs in enumerate(adj):
            assert nbrs == [v for v in range(6) if v != u]

    def test_degree_one_perfect_matching_disconnected_raises(self):
        # A 1-regular graph on >2 nodes is a perfect matching (never
        # connected), so construction must fail with ConstructionError.
        with pytest.raises(ConstructionError):
            random_regular_graph(6, 1, seed=0)

    def test_two_nodes_degree_one(self):
        assert random_regular_graph(2, 1, seed=0) == [[1], [0]]

    def test_helpers_on_irregular_input(self):
        assert not is_regular([[1], [0, 2], [1]], 1)
        assert is_connected([[1], [0, 2], [1]])
        assert not is_connected([[1], [0], [3], [2]])
        assert is_connected([])
