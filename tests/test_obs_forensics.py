"""Congestion forensics: causal stall attribution over link state.

The anchor test validates the backpressure tree on a synthetic
single-bottleneck topology whose congestion wave is known a priori —
the walk must recover exactly that root, that child chain, and stop at
the injection edge.  The rest pins ranking determinism, onset
detection, the trace/path-cache joins, and byte-deterministic
ASCII/HTML renders from one live telemetry run.
"""

import numpy as np
import pytest

from repro import Jellyfish, PathCache
from repro.errors import ConfigurationError
from repro.netsim import SimConfig, Simulator, UniformTraffic
from repro.obs import linkstate, trace
from repro.obs.forensics import (
    congestion_onset,
    congestion_tree,
    deep_dive_docs,
    forensics_report,
    link_label,
    link_path_attribution,
    main as inspect_main,
    rank_stalled_links,
    run_label,
    run_windows,
    static_link_paths,
)
from repro.obs.linkstate import LinkstateRecorder, save_linkstate
from repro.report import forensics_html

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def _telemetry_disabled():
    linkstate.disable()
    trace.disable()
    yield
    linkstate.disable()
    trace.disable()


# ------------------------------------------- synthetic single bottleneck
#
# A three-switch chain with one congested core link, known a priori:
#
#   h0 -> s0 -> s1 -> s2 -> h1          (forward direction, loaded)
#         s0 <- s1 <- s2                (reverse direction, idle)
#
# The bottleneck is s1->s2.  Its backpressure fills s1, stalling the
# link feeding s1 (s0->s1), which fills s0 and stalls the injection
# link h0->s0.  The recovered tree must be exactly that chain.

LINKS = [
    (0, 1),    # 0: s0->s1    (stalled: one hop upstream of the root)
    (1, 2),    # 1: s1->s2    (the bottleneck root)
    (2, 1),    # 2: s2->s1    (reverse, idle)
    (1, 0),    # 3: s1->s0    (reverse, idle)
    (-1, 0),   # 4: h0->s0    (injection, stalled: the edge symptom)
    (-2, 2),   # 5: h1->s2    (injection, idle)
    (2, -2),   # 6: s2->h1    (ejection)
    (0, -1),   # 7: s0->h0    (ejection)
]


def _bottleneck_snap(stall_rows, *, window=100, forwarded=None):
    """A snapshot over LINKS with the given per-window stall vectors."""
    rec = LinkstateRecorder(window=window)
    n = len(LINKS)
    run = rec.begin_run(
        scheme="redksp", mechanism="ksp_adaptive", rate=0.5,
        n_hosts=2, n_links=n, warmup_cycles=0, channel_latency=1,
    )
    rec.set_link_endpoints([u for u, _ in LINKS], [v for _, v in LINKS])
    for i, stalls in enumerate(stall_rows):
        rec.record_window(
            run, start=i * window, cycles=window,
            forwarded=forwarded if forwarded is not None else [10] * n,
            credit_stalls=stalls,
            peak_occupancy=[3] * n,
        )
    return rec.snapshot()


def test_congestion_tree_recovers_known_bottleneck():
    """The acceptance pin: a priori bottleneck, exact recovered tree."""
    #                    s0->s1  s1->s2  s2->s1 s1->s0  h0->s0  rest...
    snap = _bottleneck_snap([[40,  100,    0,     0,     200,   0, 0, 0]])
    tree = congestion_tree(snap)
    assert tree is not None
    # Root: the most-stalled *switch-sourced* link — the bottleneck
    # s1->s2, even though the raw maximum (200) sits on the injection
    # edge, which is the symptom, not the cause.
    assert tree["link"] == 1 and tree["label"] == "s1->s2"
    assert tree["credit_stalls"] == 100
    # One child: the only stalled link feeding s1.
    assert [c["label"] for c in tree["children"]] == ["s0->s1"]
    child = tree["children"][0]
    assert child["credit_stalls"] == 40
    # Its child: the stalled injection link feeding s0 ...
    assert [g["label"] for g in child["children"]] == ["h0->s0"]
    leaf = child["children"][0]
    assert leaf["credit_stalls"] == 200
    # ... which bottoms out the walk: nothing is upstream of a source.
    assert leaf["children"] == []
    # Shares are fractions of all stalls (340).
    assert tree["share"] == pytest.approx(100 / 340)


def test_congestion_tree_depth_and_children_caps():
    snap = _bottleneck_snap([[40, 100, 0, 0, 200, 0, 0, 0]])
    shallow = congestion_tree(snap, max_depth=1)
    assert [c["label"] for c in shallow["children"]] == ["s0->s1"]
    assert shallow["children"][0]["children"] == []
    assert congestion_tree(snap, max_depth=0)["children"] == []


def test_congestion_tree_explicit_root_and_injection_fallback():
    # Explicit root overrides the default choice.
    snap = _bottleneck_snap([[40, 100, 0, 0, 200, 0, 0, 0]])
    tree = congestion_tree(snap, root=0)
    assert tree["label"] == "s0->s1"
    # With only injection links stalled, the edge maximum is the whole
    # story: the fallback roots there and the tree is a single node.
    edge_only = _bottleneck_snap([[0, 0, 0, 0, 200, 0, 0, 0]])
    tree = congestion_tree(edge_only)
    assert tree["label"] == "h0->s0" and tree["children"] == []


def test_congestion_tree_terminates_on_cycles():
    # Both directions of the s0<->s1 pair stalled: the walk must visit
    # each link at most once instead of ping-ponging forever.
    snap = _bottleneck_snap([[50, 0, 0, 30, 0, 0, 0, 0]])
    tree = congestion_tree(snap)
    assert tree["label"] == "s0->s1"
    assert [c["label"] for c in tree["children"]] == ["s1->s0"]
    assert tree["children"][0]["children"] == []  # s0->s1 already visited


def test_congestion_tree_none_without_stalls():
    snap = _bottleneck_snap([[0] * len(LINKS)])
    assert congestion_tree(snap) is None


def test_rank_stalled_links_deterministic_with_ties():
    # Links 0 and 1 tie at 50: ascending link id breaks the tie.
    snap = _bottleneck_snap([[50, 50, 0, 0, 20, 0, 0, 0]])
    ranked = rank_stalled_links(snap, top=10)
    assert [e["link"] for e in ranked] == [0, 1, 4]  # zero-stall links cut
    assert ranked[0]["label"] == "s0->s1"
    assert ranked[0]["share"] == pytest.approx(50 / 120)
    assert ranked[0]["forwarded"] == 10 and ranked[0]["peak_occupancy"] == 3
    assert len(rank_stalled_links(snap, top=2)) == 2


def test_congestion_onset_finds_the_knee():
    idle = [0] * len(LINKS)
    rows = [idle, idle]
    rows.append([0, 10, 0, 0, 0, 0, 0, 0])     # window 2: first stalls
    for _ in range(8):
        rows.append([0, 100, 0, 0, 0, 0, 0, 0])  # plateau at 100/window
    snap = _bottleneck_snap(rows)
    onset = congestion_onset(snap, 0)
    assert onset is not None
    assert onset["plateau"] == pytest.approx(100.0)
    assert onset["threshold"] == pytest.approx(50.0)
    # First window at >= half the plateau is the first full-stall window.
    assert onset["onset_window"] == 3
    assert onset["onset_cycle"] == 300
    assert onset["converged_at"] is not None


def test_congestion_onset_none_cases():
    quiet = _bottleneck_snap([[0] * len(LINKS)] * 4)
    assert congestion_onset(quiet, 0) is None
    # A transient that dies back to zero is not congestion.
    rows = [[0, 50, 0, 0, 0, 0, 0, 0]] + [[0] * len(LINKS)] * 9
    assert congestion_onset(_bottleneck_snap(rows), 0) is None


def test_run_windows_masks_and_orders():
    rec = LinkstateRecorder(window=10)
    for tag in ("a", "b"):
        run = rec.begin_run(tag=tag, n_links=2)
        for i in range(2):
            rec.record_window(
                run, start=10 * i, cycles=10,
                forwarded=[run + 1, i], credit_stalls=[0, 0],
                peak_occupancy=[0, 0],
            )
    snap = rec.snapshot()
    w = run_windows(snap, 1)
    assert w["start"].tolist() == [0, 10]
    assert w["forwarded"][:, 0].tolist() == [2, 2]


def test_labels():
    assert link_label(3, -1) == "s3->h0"
    assert link_label(-5, 2) == "h4->s2"
    snap = _bottleneck_snap([[0] * len(LINKS)])
    assert run_label(snap, 0) == "redksp/ksp_adaptive @ 0.5"
    assert run_label(snap, 9) == "run9"


def test_format_guard():
    with pytest.raises(ConfigurationError, match="repro-linkstate-v1"):
        rank_stalled_links({"format": "nope"})


# --------------------------------------------------- live telemetry joins

@pytest.fixture(scope="module")
def live():
    """One traced + link-state run on a real topology, shared read-only."""
    topo = Jellyfish(8, 8, 5, seed=3)
    cache = PathCache(topo, "redksp", k=4, seed=1)
    cfg = SimConfig(warmup_cycles=100, sample_cycles=100, n_samples=2)
    with trace.capture(sample=1) as tr, linkstate.capture(window=100) as ls:
        sim = Simulator(
            topo, cache, "ksp_adaptive", UniformTraffic(topo.n_hosts), 0.9,
            config=cfg, seed=np.random.SeedSequence(5),
        )
        sim.run()
        tr_snap, ls_snap = tr.snapshot(), ls.snapshot()
    return topo, cache, ls_snap, tr_snap


def test_link_path_attribution_joins_trace(live):
    topo, cache, ls_snap, tr_snap = live
    attribution = link_path_attribution(ls_snap, tr_snap)
    launched = int((np.asarray(tr_snap["pk_t_launch"]) >= 0).sum())
    assert launched > 0
    # Every launched traced packet crosses exactly one injection link.
    inj_total = sum(
        attribution[topo.injection_link_base + h]["packets"]
        for h in range(topo.n_hosts)
        if topo.injection_link_base + h in attribution
    )
    assert inj_total == launched
    # All attribution rides under this run's scheme/mechanism label.
    some = attribution[next(iter(sorted(attribution)))]
    assert all(lab == "redksp/ksp_adaptive" for lab, _ in some["paths"])
    assert some["packets"] == sum(some["paths"].values())
    assert some["packets"] == sum(some["pairs"].values())

    with pytest.raises(ConfigurationError, match="repro-trace-v1"):
        link_path_attribution(ls_snap, {"format": "nope"})


def test_static_link_paths_covers_cached_routes(live):
    topo, cache, ls_snap, _ = live
    table = static_link_paths(ls_snap, cache)
    assert table  # the run warmed pairs into the cache
    state = cache.export_state()
    (s, d), ps = sorted(state.items())[0]
    # Every path index of the first cached pair appears on the links of
    # its own route.
    pair_links = {
        lid for lid, triples in table.items()
        if any(t[0] == s and t[1] == d for t in triples)
    }
    for idx in range(ps.k):
        nodes = ps[idx].nodes
        assert len(nodes) == 1 or pair_links  # single-switch pairs add none
    for lid, triples in table.items():
        assert triples == sorted(triples) or len(set(triples)) == len(triples)


# ----------------------------------------------- reports (deterministic)

def test_forensics_report_ascii_deterministic(live):
    _, _, ls_snap, tr_snap = live
    a = forensics_report(ls_snap, trace=tr_snap)
    b = forensics_report(ls_snap, trace=tr_snap)
    assert a == b
    assert "congestion forensics" in a
    assert "credit-stall attribution" in a
    assert "flits forwarded per 100-cycle window" in a
    assert "hot-link path attribution" in a


def test_forensics_report_handles_quiet_snapshot():
    snap = _bottleneck_snap([[0] * len(LINKS)], forwarded=[0] * len(LINKS))
    text = forensics_report(snap)
    assert "no credit stalls recorded" in text
    assert "congestion onset: none" in text


def test_forensics_report_rejects_bad_run():
    snap = _bottleneck_snap([[0] * len(LINKS)])
    with pytest.raises(ConfigurationError, match="out of range"):
        forensics_report(snap, run=5)


def test_forensics_html_deterministic(live):
    _, _, ls_snap, tr_snap = live
    docs = [deep_dive_docs(ls_snap, name="t", trace=tr_snap)]
    a = forensics_html(docs)
    b = forensics_html([deep_dive_docs(ls_snap, name="t", trace=tr_snap)])
    assert a == b
    assert a.startswith("<!DOCTYPE html>")
    assert "http://" not in a and "https://" not in a  # self-contained
    assert "Flits forwarded" in a and "Credit stalls" in a


def test_tree_renders_in_html():
    snap = _bottleneck_snap([[40, 100, 0, 0, 200, 0, 0, 0]])
    page = forensics_html([deep_dive_docs(snap, name="bottleneck")])
    assert "s1-&gt;s2" in page  # the recovered root, escaped
    assert "backpressure tree" in page


# --------------------------------------------------------------- the CLI

def test_inspect_cli_end_to_end(tmp_path, capsys):
    snap = _bottleneck_snap([[40, 100, 0, 0, 200, 0, 0, 0]])
    save_linkstate(tmp_path / "bottleneck-small.linkstate.npz", snap)
    out = tmp_path / "dive" / "deep.html"
    assert inspect_main([str(tmp_path), "--html", str(out)]) == 0
    text = capsys.readouterr().out
    assert "congestion forensics [bottleneck-small]" in text
    assert "s1->s2" in text
    assert out.exists() and out.read_text().startswith("<!DOCTYPE html>")

    # Single-file form works too, and renders are byte-identical.
    assert inspect_main(
        [str(tmp_path / "bottleneck-small.linkstate.npz")]
    ) == 0
    again = capsys.readouterr().out
    assert again.splitlines()[0] == text.splitlines()[0]


def test_inspect_cli_exit_codes(tmp_path, capsys):
    assert inspect_main([str(tmp_path / "missing")]) == 2
    assert "does not exist" in capsys.readouterr().out
    assert inspect_main([str(tmp_path)]) == 2
    assert "no *.linkstate.npz" in capsys.readouterr().out


def test_inspect_cli_reachable_through_runner(tmp_path, capsys):
    from repro.experiments.runner import main as runner_main

    snap = _bottleneck_snap([[40, 100, 0, 0, 200, 0, 0, 0]])
    save_linkstate(tmp_path / "x-small.linkstate.npz", snap)
    assert runner_main(["inspect", str(tmp_path)]) == 0
    assert "congestion forensics [x-small]" in capsys.readouterr().out
