"""The shared latency-percentile helper and SLO gauge stamping.

Pins the deduplication of the engines' percentile code: the one
tuple-form ``np.percentile`` call in :mod:`repro.netsim.stats` must be
equivalent to both historical spellings (the reference engine's two
scalar calls and the batched engine's tuple call), and the gauge
stamping must expose a run's latency tail to the manifest even with
flowstats disabled.
"""

import numpy as np
import pytest

from repro import Jellyfish, PathCache
from repro.netsim import SimConfig, Simulator, UniformTraffic
from repro.netsim.stats import latency_percentiles, stamp_latency_gauges
from repro.obs import metrics

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def _metrics_disabled():
    metrics.disable()
    yield
    metrics.disable()


def test_matches_both_historical_spellings():
    rng = np.random.default_rng(11)
    for size in (1, 2, 7, 100, 999):
        lats = rng.integers(0, 400, size=size).tolist()
        p50, p99 = latency_percentiles(lats)
        # The reference engine's former two scalar calls ...
        assert p50 == float(np.percentile(np.asarray(lats), 50))
        assert p99 == float(np.percentile(np.asarray(lats), 99))
        # ... and the batched engine's former tuple call.
        t50, t99 = np.percentile(np.asarray(lats, dtype=np.float64), (50, 99))
        assert (p50, p99) == (float(t50), float(t99))


def test_empty_sample_is_nan_pair():
    p50, p99 = latency_percentiles([])
    assert np.isnan(p50) and np.isnan(p99)


def test_stamp_keeps_the_worst_value_and_skips_nan():
    reg = metrics.enable()
    stamp_latency_gauges(reg, 10.0, 50.0, 20.0)
    stamp_latency_gauges(reg, 5.0, 80.0, 15.0)   # only p99 is worse
    assert reg.gauge("netsim.latency_p50").value == 10.0
    assert reg.gauge("netsim.latency_p99").value == 80.0
    assert reg.gauge("netsim.mean_latency").value == 20.0
    nan = float("nan")
    stamp_latency_gauges(reg, nan, nan, nan)     # empty run: no poison
    assert reg.gauge("netsim.latency_p99").value == 80.0
    stamp_latency_gauges(None, 1.0, 1.0, 1.0)    # disabled: no-op


def test_simulator_stamps_slo_gauges_without_flowstats():
    topo = Jellyfish(8, 8, 5, seed=3)
    cache = PathCache(topo, "redksp", k=4, seed=1)
    cfg = SimConfig(warmup_cycles=100, sample_cycles=100, n_samples=2)
    reg = metrics.enable()
    result = Simulator(
        topo, cache, "ksp_adaptive", UniformTraffic(topo.n_hosts), 0.2,
        config=cfg, seed=np.random.SeedSequence(5),
    ).run()
    metrics.disable()
    assert reg.gauge("netsim.latency_p50").value == result.latency_p50
    assert reg.gauge("netsim.latency_p99").value == result.latency_p99
    assert reg.gauge("netsim.mean_latency").value == pytest.approx(
        result.mean_latency
    )
