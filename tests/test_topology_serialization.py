"""Unit tests for topology save/load."""

import json

import pytest

from repro.errors import TopologyError
from repro.topology import (
    Jellyfish,
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)


class TestRoundtrip:
    def test_dict_roundtrip_preserves_instance(self, small_jellyfish):
        doc = topology_to_dict(small_jellyfish)
        rebuilt = topology_from_dict(doc)
        assert rebuilt.adjacency == small_jellyfish.adjacency
        assert rebuilt.n_switches == small_jellyfish.n_switches
        assert rebuilt.ports == small_jellyfish.ports
        assert rebuilt.uplinks == small_jellyfish.uplinks

    def test_file_roundtrip(self, small_jellyfish, tmp_path):
        p = save_topology(small_jellyfish, tmp_path / "topo.json")
        rebuilt = load_topology(p)
        assert rebuilt.adjacency == small_jellyfish.adjacency

    def test_link_ids_stable_after_reload(self, small_jellyfish, tmp_path):
        p = save_topology(small_jellyfish, tmp_path / "topo.json")
        rebuilt = load_topology(p)
        for u, v in small_jellyfish.switch_links():
            assert rebuilt.link_id(u, v) == small_jellyfish.link_id(u, v)

    def test_document_is_plain_json(self, small_jellyfish):
        doc = topology_to_dict(small_jellyfish)
        json.dumps(doc)  # must not raise


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(TopologyError, match="format"):
            topology_from_dict({"format": "other"})

    def test_missing_field_rejected(self, small_jellyfish):
        doc = topology_to_dict(small_jellyfish)
        del doc["adjacency"]
        with pytest.raises(TopologyError, match="missing"):
            topology_from_dict(doc)

    def test_corrupted_adjacency_rejected(self, small_jellyfish):
        doc = topology_to_dict(small_jellyfish)
        doc["adjacency"][0] = doc["adjacency"][0][:-1]  # break regularity
        with pytest.raises(TopologyError):
            topology_from_dict(doc)
