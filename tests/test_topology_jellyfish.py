"""Unit tests for the Jellyfish wrapper (host bookkeeping, link ids)."""

import pytest

from repro.errors import TopologyError
from repro.topology import Jellyfish


class TestConstruction:
    def test_paper_parameters(self):
        topo = Jellyfish(36, 24, 16, seed=1)
        assert topo.n_switches == 36
        assert topo.ports == 24
        assert topo.uplinks == 16
        assert topo.hosts_per_switch == 8
        assert topo.n_hosts == 288

    def test_adjacency_is_regular(self, small_jellyfish):
        topo = small_jellyfish
        assert all(len(nbrs) == topo.uplinks for nbrs in topo.adjacency)

    def test_ports_less_than_uplinks_rejected(self):
        with pytest.raises(TopologyError, match="ports"):
            Jellyfish(8, 3, 4)

    def test_uplinks_not_below_n_rejected(self):
        with pytest.raises(TopologyError, match="uplinks"):
            Jellyfish(4, 8, 4)

    def test_explicit_adjacency_accepted(self):
        ring = [[1, 3], [0, 2], [1, 3], [0, 2]]
        topo = Jellyfish(4, 4, 2, adjacency=ring)
        assert topo.adjacency == ring

    def test_explicit_adjacency_wrong_degree_rejected(self):
        with pytest.raises(TopologyError, match="degree"):
            Jellyfish(4, 4, 2, adjacency=[[1], [0, 2], [1, 3], [2]])

    def test_explicit_adjacency_asymmetric_rejected(self):
        bad = [[1, 2], [0, 2], [0, 3], [2, 0]]
        with pytest.raises(TopologyError):
            Jellyfish(4, 4, 2, adjacency=bad)

    def test_explicit_adjacency_wrong_count_rejected(self):
        with pytest.raises(TopologyError, match="switches"):
            Jellyfish(5, 4, 2, adjacency=[[1, 3], [0, 2], [1, 3], [0, 2]])

    def test_seed_reproducibility(self):
        a = Jellyfish(12, 8, 4, seed=5)
        b = Jellyfish(12, 8, 4, seed=5)
        assert a.adjacency == b.adjacency


class TestHostMapping:
    def test_linear_layout(self, small_jellyfish):
        topo = small_jellyfish
        for h in range(topo.n_hosts):
            s = topo.switch_of_host(h)
            assert h in topo.hosts_of_switch(s)

    def test_hosts_partition(self, small_jellyfish):
        topo = small_jellyfish
        seen = set()
        for s in range(topo.n_switches):
            hosts = set(topo.hosts_of_switch(s))
            assert not (hosts & seen)
            seen |= hosts
        assert seen == set(range(topo.n_hosts))

    def test_host_out_of_range(self, small_jellyfish):
        with pytest.raises(TopologyError):
            small_jellyfish.switch_of_host(small_jellyfish.n_hosts)
        with pytest.raises(TopologyError):
            small_jellyfish.switch_of_host(-1)

    def test_switch_out_of_range(self, small_jellyfish):
        with pytest.raises(TopologyError):
            small_jellyfish.hosts_of_switch(small_jellyfish.n_switches)


class TestLinkIds:
    def test_switch_link_count(self, small_jellyfish):
        topo = small_jellyfish
        assert topo.n_switch_links == topo.n_switches * topo.uplinks

    def test_link_ids_unique_and_dense(self, small_jellyfish):
        topo = small_jellyfish
        ids = [topo.link_id(u, v) for u, v in topo.switch_links()]
        assert sorted(ids) == list(range(topo.n_switch_links))

    def test_directed_ids_differ(self, small_jellyfish):
        topo = small_jellyfish
        u, v = next(iter(topo.switch_links()))
        assert topo.link_id(u, v) != topo.link_id(v, u)

    def test_missing_link_raises(self, small_jellyfish):
        topo = small_jellyfish
        # find a non-adjacent pair
        for v in range(topo.n_switches):
            if v != 0 and v not in topo.adjacency[0]:
                with pytest.raises(TopologyError, match="no switch link"):
                    topo.link_id(0, v)
                return
        pytest.skip("graph is complete")

    def test_injection_ejection_ranges(self, small_jellyfish):
        topo = small_jellyfish
        inj = [topo.injection_link(h) for h in range(topo.n_hosts)]
        ej = [topo.ejection_link(h) for h in range(topo.n_hosts)]
        all_ids = set(range(topo.n_switch_links)) | set(inj) | set(ej)
        assert len(all_ids) == topo.n_links
        assert max(all_ids) == topo.n_links - 1

    def test_injection_out_of_range(self, small_jellyfish):
        with pytest.raises(TopologyError):
            small_jellyfish.injection_link(-1)
        with pytest.raises(TopologyError):
            small_jellyfish.ejection_link(small_jellyfish.n_hosts)

    def test_path_link_ids(self, small_jellyfish):
        topo = small_jellyfish
        u = 0
        v = topo.adjacency[0][0]
        w = next(x for x in topo.adjacency[v] if x != u)
        ids = topo.path_link_ids([u, v, w])
        assert ids == [topo.link_id(u, v), topo.link_id(v, w)]

    def test_undirected_edges_count(self, small_jellyfish):
        topo = small_jellyfish
        edges = topo.undirected_edges()
        assert len(edges) == topo.n_switch_links // 2
        assert all(u < v for u, v in edges)
