"""Hypothesis property tests on the core data structures and invariants."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.appsim.fairshare import maxmin_rates
from repro.core.dijkstra import shortest_path
from repro.core.remove_find import edge_disjoint_paths
from repro.core.yen import k_shortest_paths
from repro.model import model_throughput
from repro.core.cache import PathCache
from repro.topology.jellyfish import Jellyfish
from repro.topology.metrics import average_shortest_path_length
from repro.topology.rrg import is_connected, is_regular, random_regular_graph
from repro.traffic.patterns import random_destinations, random_permutation, shift
from repro.traffic.stencil import grid_dims, stencil_messages

# ---------------------------------------------------------------- strategies

# (n, degree) pairs with even parity, degree >= 3 so connectivity is whp.
rrg_params = st.integers(6, 18).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.integers(3, min(n - 1, 8)).filter(lambda d, n=n: (n * d) % 2 == 0),
    )
)


def to_nx(adj):
    g = nx.Graph()
    g.add_nodes_from(range(len(adj)))
    for u, nbrs in enumerate(adj):
        for v in nbrs:
            g.add_edge(u, v)
    return g


# -------------------------------------------------------------------- graphs


class TestRRGProperties:
    @given(params=rrg_params, seed=st.integers(0, 2**20))
    @settings(max_examples=40, deadline=None)
    def test_regular_connected_simple(self, params, seed):
        n, d = params
        adj = random_regular_graph(n, d, seed=seed)
        assert is_regular(adj, d)
        assert is_connected(adj)
        for u, nbrs in enumerate(adj):
            assert u not in nbrs
            assert len(set(nbrs)) == len(nbrs)
            assert all(u in adj[v] for v in nbrs)


class TestShortestPathProperties:
    @given(params=rrg_params, seed=st.integers(0, 2**20), dst=st.integers(1, 17))
    @settings(max_examples=40, deadline=None)
    def test_bfs_optimality_both_tie_policies(self, params, seed, dst):
        n, d = params
        dst %= n
        if dst == 0:
            dst = n - 1
        adj = random_regular_graph(n, d, seed=seed)
        ref = nx.shortest_path_length(to_nx(adj), 0, dst)
        rng = np.random.default_rng(seed)
        for tie in ("min", "random"):
            path = shortest_path(adj, 0, dst, tie=tie, rng=rng)
            assert len(path) - 1 == ref
            for u, v in zip(path, path[1:]):
                assert v in adj[u]


class TestYenProperties:
    @given(
        params=rrg_params,
        seed=st.integers(0, 2**20),
        k=st.integers(1, 6),
        tie=st.sampled_from(["min", "random"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_sorted_unique_simple(self, params, seed, k, tie):
        n, d = params
        adj = random_regular_graph(n, d, seed=seed)
        rng = np.random.default_rng(seed)
        paths = k_shortest_paths(adj, 0, n - 1, k, tie=tie, rng=rng)
        hops = [p.hops for p in paths]
        assert hops == sorted(hops)
        assert len({p.nodes for p in paths}) == len(paths)
        for p in paths:
            assert p.source == 0 and p.destination == n - 1
            assert len(set(p.nodes)) == len(p.nodes)

    @given(params=rrg_params, seed=st.integers(0, 2**20))
    @settings(max_examples=20, deadline=None)
    def test_lengths_match_networkx_reference(self, params, seed):
        n, d = params
        adj = random_regular_graph(n, d, seed=seed)
        g = to_nx(adj)
        ours = [p.hops for p in k_shortest_paths(adj, 0, n - 1, 4)]
        ref = []
        for i, p in enumerate(nx.shortest_simple_paths(g, 0, n - 1)):
            if i == 4:
                break
            ref.append(len(p) - 1)
        assert ours == ref


class TestRemoveFindProperties:
    @given(
        params=rrg_params,
        seed=st.integers(0, 2**20),
        k=st.integers(1, 8),
        tie=st.sampled_from(["min", "random"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_pairwise_disjoint_and_bounded(self, params, seed, k, tie):
        n, d = params
        adj = random_regular_graph(n, d, seed=seed)
        rng = np.random.default_rng(seed)
        paths = edge_disjoint_paths(adj, 0, n - 1, k, tie=tie, rng=rng)
        assert 1 <= len(paths) <= min(k, d)
        used = set()
        for p in paths:
            for e in p.undirected_edges():
                assert e not in used
                used.add(e)
        ref = nx.shortest_path_length(to_nx(adj), 0, n - 1)
        assert paths[0].hops == ref


# ------------------------------------------------------------------- traffic


class TestPatternProperties:
    @given(n=st.integers(2, 200), seed=st.integers(0, 2**20))
    @settings(max_examples=50)
    def test_permutation_is_derangement_bijection(self, n, seed):
        p = random_permutation(n, seed=seed)
        dsts = p.destinations()
        assert sorted(dsts.tolist()) == list(range(n))
        assert (dsts != np.arange(n)).all()

    @given(n=st.integers(2, 60), amount=st.integers(-100, 100))
    @settings(max_examples=50)
    def test_shift_structure(self, n, amount):
        if amount % n == 0:
            return
        p = shift(n, amount)
        assert all((d - s) % n == amount % n for s, d in p.flows)

    @given(n=st.integers(3, 40), x=st.integers(1, 6), seed=st.integers(0, 2**20))
    @settings(max_examples=50)
    def test_random_x_counts(self, n, x, seed):
        if x > n - 1:
            return
        p = random_destinations(n, x, seed=seed)
        assert len(p) == n * x
        per_src = {}
        for s, d in p.flows:
            assert s != d
            per_src.setdefault(s, set()).add(d)
        assert all(len(v) == x for v in per_src.values())


class TestStencilProperties:
    @given(
        name=st.sampled_from(["2dnn", "2dnndiag", "3dnn", "3dnndiag"]),
        n=st.integers(4, 120),
    )
    @settings(max_examples=50, deadline=None)
    def test_bytes_conserved_and_symmetric(self, name, n):
        msgs = stencil_messages(name, n, total_bytes=1.0)
        per_src = {}
        pairs = set()
        for s, d, b in msgs:
            assert s != d
            per_src[s] = per_src.get(s, 0.0) + b
            pairs.add((s, d))
        assert set(per_src) == set(range(n))
        for total in per_src.values():
            assert total == pytest.approx(1.0)
        assert all((d, s) in pairs for s, d in pairs)

    @given(n=st.integers(1, 4000), ndim=st.integers(1, 4))
    @settings(max_examples=80)
    def test_grid_dims_factorises(self, n, ndim):
        dims = grid_dims(n, ndim)
        assert len(dims) == ndim
        prod = 1
        for d in dims:
            prod *= d
        assert prod == n


# ----------------------------------------------------------------- fairshare


class TestFairshareProperties:
    @given(
        n_flows=st.integers(1, 40),
        n_links=st.integers(1, 15),
        seed=st.integers(0, 2**20),
    )
    @settings(max_examples=50, deadline=None)
    def test_feasible_and_bottlenecked(self, n_flows, n_links, seed):
        rng = np.random.default_rng(seed)
        flows = [
            np.unique(rng.integers(0, n_links, size=int(rng.integers(1, 4))))
            for _ in range(n_flows)
        ]
        cap = rng.uniform(1.0, 10.0, size=n_links)
        rates = maxmin_rates(flows, cap)
        usage = np.zeros(n_links)
        for f, r in zip(flows, rates):
            usage[f] += r
        assert (usage <= cap * (1 + 1e-9) + 1e-9).all()
        for f, r in zip(flows, rates):
            assert any(
                usage[link] >= cap[link] * (1 - 1e-9) - 1e-9
                and r >= max(rates[j] for j, g in enumerate(flows) if link in g) - 1e-6
                for link in f
            )


# --------------------------------------------------------------------- model


class TestModelProperties:
    @given(seed=st.integers(0, 2**10))
    @settings(max_examples=10, deadline=None)
    def test_rates_in_unit_interval(self, seed):
        topo = Jellyfish(8, 8, 5, seed=3)
        cache = PathCache(topo, "redksp", k=3, seed=0)
        pat = random_permutation(topo.n_hosts, seed=seed)
        r = model_throughput(topo, pat, cache)
        assert (r.per_flow > 0).all()
        assert (r.per_flow <= 1 + 1e-12).all()
        assert 0 < r.mean_per_node() <= 1 + 1e-12


# ------------------------------------------------------------------ topology


class TestMetricsProperties:
    @given(params=rrg_params, seed=st.integers(0, 2**20))
    @settings(max_examples=20, deadline=None)
    def test_apl_bounds(self, params, seed):
        n, d = params
        adj = random_regular_graph(n, d, seed=seed)
        apl = average_shortest_path_length(adj)
        assert 1.0 <= apl <= n
