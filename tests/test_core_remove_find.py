"""Unit tests for the Remove-Find edge-disjoint path computation."""

import networkx as nx
import numpy as np
import pytest

from repro.core.remove_find import edge_disjoint_paths
from repro.errors import InsufficientPathsError, NoPathError
from repro.topology.rrg import random_regular_graph


def assert_pairwise_disjoint(paths):
    used = set()
    for p in paths:
        for e in p.undirected_edges():
            assert e not in used, f"link {e} reused"
            used.add(e)


class TestDisjointness:
    @pytest.mark.parametrize("tie", ["min", "random"])
    def test_paths_pairwise_edge_disjoint(self, tie):
        adj = random_regular_graph(20, 6, seed=4)
        rng = np.random.default_rng(0)
        for dst in (5, 11, 19):
            paths = edge_disjoint_paths(adj, 0, dst, 6, tie=tie, rng=rng)
            assert_pairwise_disjoint(paths)

    def test_first_path_is_shortest(self):
        adj = random_regular_graph(20, 6, seed=4)
        g = nx.Graph(
            (u, v) for u, nbrs in enumerate(adj) for v in nbrs
        )
        paths = edge_disjoint_paths(adj, 0, 11, 6)
        assert paths[0].hops == nx.shortest_path_length(g, 0, 11)

    def test_nondecreasing_lengths(self):
        adj = random_regular_graph(20, 6, seed=4)
        hops = [p.hops for p in edge_disjoint_paths(adj, 0, 11, 6)]
        assert hops == sorted(hops)

    def test_count_bounded_by_degree(self):
        # At most ``degree`` edge-disjoint paths can leave the source.
        adj = random_regular_graph(20, 4, seed=4)
        paths = edge_disjoint_paths(adj, 0, 11, 10)
        assert len(paths) <= 4

    def test_matches_menger_bound(self):
        # Count never exceeds the max-flow (edge connectivity) bound.
        adj = random_regular_graph(14, 5, seed=6)
        g = nx.Graph((u, v) for u, nbrs in enumerate(adj) for v in nbrs)
        for dst in (3, 7, 13):
            paths = edge_disjoint_paths(adj, 0, dst, 12)
            bound = len(list(nx.edge_disjoint_paths(g, 0, dst)))
            assert len(paths) <= bound


class TestRing:
    def test_exactly_two_paths_on_cycle(self, ring_adjacency):
        paths = edge_disjoint_paths(ring_adjacency, 0, 3, 4)
        assert len(paths) == 2
        assert sorted(p.hops for p in paths) == [3, 3]
        assert_pairwise_disjoint(paths)

    def test_error_mode(self, ring_adjacency):
        with pytest.raises(InsufficientPathsError):
            edge_disjoint_paths(ring_adjacency, 0, 3, 4, on_shortfall="error")


class TestEdgeCases:
    def test_no_path(self):
        with pytest.raises(NoPathError):
            edge_disjoint_paths([[1], [0], [3], [2]], 0, 2, 2)

    def test_trivial_pair(self, ring_adjacency):
        paths = edge_disjoint_paths(ring_adjacency, 2, 2, 4)
        assert len(paths) == 1 and paths[0].nodes == (2,)

    def test_k_one_is_plain_shortest(self, ring_adjacency):
        paths = edge_disjoint_paths(ring_adjacency, 0, 2, 1)
        assert len(paths) == 1
        assert paths[0].hops == 2

    def test_reproducible_with_seed(self):
        adj = random_regular_graph(20, 6, seed=4)
        a = edge_disjoint_paths(adj, 0, 11, 6, tie="random", rng=np.random.default_rng(1))
        b = edge_disjoint_paths(adj, 0, 11, 6, tie="random", rng=np.random.default_rng(1))
        assert a == b

    def test_paper_claim_k8_exists_on_small_topology(self, paper_small_jellyfish):
        """Paper: with k=8, edge-disjoint paths exist for all pairs of the
        evaluation topologies (y=16 >> k=8).  Spot-check a slice of pairs."""
        adj = paper_small_jellyfish.adjacency
        for dst in range(1, 12):
            paths = edge_disjoint_paths(adj, 0, dst, 8)
            assert len(paths) == 8
            assert_pairwise_disjoint(paths)
