"""Flow-level SLO analysis: fairness math, exact percentile digests,
victim detection and attribution, the ``flows`` CLI, and the derived
gauges' paths into compare-runs and the N-run trend gate.

The acceptance pins: histogram percentiles equal ``np.percentile``, the
HTML report is byte-deterministic, and ``runs gate`` exits non-zero on
an injected >= 30% p99 regression.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.obs import fairness, flowstats
from repro.obs.compare import compare_manifests
from repro.obs.fairness import (
    flow_docs,
    flowstats_report,
    jain_index,
    match_run,
    pair_stats,
    percentiles_from_hist,
    run_summary,
    snapshot_gauges,
    victim_link_attribution,
    victim_pairs,
)
from repro.obs.flowstats import (
    FlowstatsRecorder,
    pair_endpoints,
    save_flowstats,
)
from repro.obs.ledger import (
    LEDGER_FORMAT,
    LEDGER_SCHEMA_VERSION,
    append_entries,
    entry_id,
)
from repro.obs.linkstate import LinkstateRecorder
from repro.obs.trend import main as runs_main
from repro.report import flowstats_html

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def _flowstats_disabled():
    flowstats.disable()
    yield
    flowstats.disable()


SHAPE = dict(n_hosts=3, n_pairs=9, n_bins=64)


def _snap(per_run_events, metas=None):
    """A synthetic snapshot: one (pairs, latencies) stream per run."""
    rec = FlowstatsRecorder()
    ep = pair_endpoints(3)
    for i, events in enumerate(per_run_events):
        meta = dict(SHAPE, **(metas[i] if metas else {}))
        run = rec.begin_run(**meta)
        rec.set_pair_endpoints(ep["pair_src"], ep["pair_dst"])
        if events:
            rec.record_run(run, [p for p, _ in events], [l for _, l in events])
    return rec.snapshot()


# ----------------------------------------------------------- pure math

def test_percentiles_from_hist_matches_np_percentile():
    rng = np.random.default_rng(7)
    qs = (0, 25, 50, 90, 99, 100)
    for _ in range(50):
        sample = rng.integers(0, 40, size=rng.integers(1, 200))
        bins, counts = np.unique(sample, return_counts=True)
        got = percentiles_from_hist(bins, counts, qs)
        want = np.percentile(sample, qs)
        np.testing.assert_allclose(got, want, atol=1e-9)


def test_percentiles_from_hist_empty_is_nan():
    assert all(np.isnan(v) for v in percentiles_from_hist([], [], (50, 99)))


def test_jain_index():
    assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)
    # Textbook: one active flow out of n scores 1/n over raw values —
    # but zero-delivery pairs are excluded here, so starvation does not
    # masquerade as unfairness.
    assert jain_index([9, 0, 0]) == pytest.approx(1.0)
    assert jain_index([1, 3]) == pytest.approx(16 / (2 * 10))
    assert np.isnan(jain_index([]))
    assert np.isnan(jain_index([0, 0]))


# ----------------------------------------------------- per-run analysis

def test_pair_stats_digests_and_range_check():
    snap = _snap([[(1, 4), (1, 8), (5, 2)]])
    stats = pair_stats(snap, 0)
    assert [s["pair"] for s in stats] == [1, 5]
    s1 = stats[0]
    assert (s1["src"], s1["dst"], s1["label"]) == (0, 1, "h0->h1")
    assert s1["delivered"] == 2 and s1["mean"] == 6.0 and s1["max"] == 8
    assert s1["p50"] == pytest.approx(6.0)  # midpoint of {4, 8}
    with pytest.raises(ConfigurationError, match="out of range"):
        pair_stats(snap, 1)
    with pytest.raises(ConfigurationError, match="format"):
        pair_stats({"format": "junk"}, 0)


def test_victim_pairs_semantics():
    # Seven quiet pairs at p99 10 and one at 30: median 10, ratio 3.
    events = [(p, 10) for p in range(7)] + [(7, 30)]
    stats = pair_stats(_snap([events]), 0)
    victims = victim_pairs(stats, k=2.0)
    assert [v["pair"] for v in victims] == [7]
    assert victims[0]["ratio"] == pytest.approx(3.0)
    assert victim_pairs(stats, k=3.5) == []
    with pytest.raises(ConfigurationError, match="k must be > 0"):
        victim_pairs(stats, k=0)
    # All-zero latencies: no meaningful spread, no victims.
    assert victim_pairs(pair_stats(_snap([[(0, 0), (1, 0)]]), 0)) == []
    assert victim_pairs([]) == []


def test_run_summary_and_gauges_pick_the_worst_run():
    metas = [{"scheme": "ksp", "mechanism": "m", "rate": 0.2}] * 2
    snap = _snap(
        [
            [(p, 10) for p in range(4)],            # fair, p99 10
            [(0, 10), (1, 10), (2, 10), (2, 50)],   # skewed, p99 up
        ],
        metas,
    )
    s0, s1 = run_summary(snap, 0), run_summary(snap, 1)
    assert s0["jain"] == pytest.approx(1.0)
    assert s0["worst"]["p99"] == pytest.approx(10.0)
    assert s1["jain"] < 1.0
    assert s1["worst"]["pair"] == 2
    gauges = snapshot_gauges(snap)
    assert gauges["netsim.fairness_jain"] == pytest.approx(s1["jain"])
    assert gauges["netsim.worst_pair_p99"] == pytest.approx(s1["worst"]["p99"])
    # A snapshot with no deliveries contributes no gauges at all.
    assert snapshot_gauges(_snap([[]])) == {}


def test_match_run_positional_then_unique_meta():
    meta = [
        {"scheme": "ksp", "mechanism": "a", "rate": 0.2},
        {"scheme": "rksp", "mechanism": "a", "rate": 0.2},
    ]
    snap = _snap([[(0, 1)], [(0, 1)]], meta)
    same = {"runs": [dict(m) for m in meta]}
    assert match_run(snap, 1, same) == 1
    # Reordered sibling: fall back to the unique metadata match.
    flipped = {"runs": [dict(meta[1]), dict(meta[0])]}
    assert match_run(snap, 1, flipped) == 0
    # Ambiguous (duplicate meta) or missing: no match.
    dupes = {"runs": [dict(meta[0]), dict(meta[0])]}
    assert match_run(snap, 1, dupes) is None
    assert match_run(snap, 0, {"runs": []}) is None


def test_victim_link_attribution_joins_the_stall_record():
    meta = {"scheme": "ksp", "mechanism": "a", "rate": 0.2}
    ls = LinkstateRecorder(window=10)
    run = ls.begin_run(n_links=3, **meta)
    # link 0: switch core s0->s1 (dominant staller); link 1: host 0's
    # injection link; link 2: host 1's injection link (never stalls).
    ls.set_link_endpoints([0, -1, -2], [1, 0, 0])
    ls.record_window(
        run, start=0, cycles=10,
        forwarded=[5, 5, 5], credit_stalls=[30, 10, 0],
        peak_occupancy=[2, 0, 0],
    )
    victims = [
        {"pair": 1, "src": 0, "dst": 1, "label": "h0->h1"},
        {"pair": 5, "src": 1, "dst": 2, "label": "h1->h2"},
    ]
    out = victim_link_attribution(victims, ls.snapshot(), 0)
    assert [a["injection_stalls"] for a in out] == [10, 0]
    for a in out:
        assert a["suspect"]["label"] == "s0->s1"
        assert a["suspect"]["credit_stalls"] == 30
        assert a["suspect"]["share"] == pytest.approx(0.75)


# ------------------------------------------------------ report + CLI

def _victim_snap():
    metas = [{"scheme": "ksp", "mechanism": "ksp_adaptive", "rate": 0.4}]
    events = [(p, 10) for p in range(7)] + [(7, 30), (8, 12)]
    return _snap([events], metas)


def test_flowstats_report_is_deterministic_and_complete():
    snap = _victim_snap()
    text = flowstats_report(snap, k=2.0)
    assert text == flowstats_report(snap, k=2.0)
    assert "ksp/ksp_adaptive @ 0.4" in text
    assert "victim pairs (p99 > 2x median): 1" in text
    assert "*h2->h1" in text          # victim pair 7 flagged in the table
    assert "dst host 0.." in text     # heatmap axis label
    with pytest.raises(ConfigurationError, match="out of range"):
        flowstats_report(snap, run=3)


def test_flowstats_html_is_byte_deterministic():
    docs = [flow_docs(_victim_snap(), name="t")]
    html = flowstats_html(docs)
    assert html == flowstats_html(docs)
    assert html.startswith("<!DOCTYPE html>")
    assert "Jain index" in html
    assert "Victim pairs" in html


class TestFlowsCLI:
    def test_reports_directory_and_writes_html(self, tmp_path, capsys):
        save_flowstats(tmp_path / "demo.flowstats.npz", _victim_snap())
        out = tmp_path / "flow.html"
        assert fairness.main([str(tmp_path), "--html", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "flow-level SLOs [demo]" in printed
        assert "victim pairs" in printed
        assert out.exists() and out.read_text().startswith("<!DOCTYPE html>")
        # Byte-determinism of the written artifact across invocations.
        first = out.read_bytes()
        assert fairness.main([str(tmp_path), "--html", str(out)]) == 0
        capsys.readouterr()
        assert out.read_bytes() == first

    def test_single_file_and_run_selection(self, tmp_path, capsys):
        path = tmp_path / "demo.flowstats.npz"
        save_flowstats(path, _victim_snap())
        assert fairness.main([str(path), "--run", "0", "--top", "3"]) == 0
        assert "== run 0:" in capsys.readouterr().out

    def test_exit_two_without_artifacts(self, tmp_path, capsys):
        assert fairness.main([str(tmp_path)]) == 2
        assert "no *.flowstats.npz" in capsys.readouterr().out
        assert fairness.main([str(tmp_path / "absent")]) == 2

    def test_joins_sibling_linkstate(self, tmp_path, capsys):
        from repro.obs.linkstate import save_linkstate

        save_flowstats(tmp_path / "demo.flowstats.npz", _victim_snap())
        ls = LinkstateRecorder(window=10)
        run = ls.begin_run(
            n_links=3, scheme="ksp", mechanism="ksp_adaptive", rate=0.4,
        )
        ls.set_link_endpoints([0, -3, -2], [1, 0, 0])
        ls.record_window(
            run, start=0, cycles=10,
            forwarded=[5, 5, 5], credit_stalls=[30, 10, 0],
            peak_occupancy=[2, 0, 0],
        )
        save_linkstate(tmp_path / "demo.linkstate.npz", ls.snapshot())
        assert fairness.main([str(tmp_path)]) == 0
        printed = capsys.readouterr().out
        assert "injection stalls 10" in printed
        assert "top stalled link s0->s1" in printed


# ------------------------------------- derived gauges downstream paths

def _manifest(gauges):
    return {
        "format": "repro-manifest-v1",
        "schema_version": 1,
        "metrics": {"gauges": gauges},
    }


def test_compare_runs_surfaces_slo_gauges_report_only():
    base = _manifest(
        {"netsim.latency_p99": 100.0, "netsim.fairness_jain": 0.9,
         "netsim.worst_pair_p99": 150.0, "netsim.mean_latency": 40.0,
         "netsim.other_gauge": 1.0}
    )
    new = _manifest(
        {"netsim.latency_p99": 160.0, "netsim.fairness_jain": 0.5,
         "netsim.worst_pair_p99": 300.0, "netsim.mean_latency": 80.0,
         "netsim.other_gauge": 2.0}
    )
    diff = compare_manifests(base, new)
    names = {d.name for d in diff.deltas if d.kind == "gauge"}
    assert names == {
        "netsim.latency_p99", "netsim.fairness_jain",
        "netsim.worst_pair_p99", "netsim.mean_latency",
    }
    # Report-only: the single-pair diff never gates SLO gauges — the
    # N-run trend analysis owns their regression thresholds.
    assert not diff.regressions


def _entry(i, metrics):
    entry = {
        "format": LEDGER_FORMAT,
        "schema_version": LEDGER_SCHEMA_VERSION,
        "kind": "manifest",
        "experiment": "fig11",
        "scale": "small",
        "host": "ci",
        "engines": ["fast"],
        "created_at": f"2026-08-01T00:00:{i:02d}+00:00",
        "metrics": {k: float(v) for k, v in metrics.items()},
    }
    entry["id"] = entry_id(entry)
    return entry


def _p99_series(values):
    return [
        _entry(i, {"gauge/netsim.latency_p99": v})
        for i, v in enumerate(values)
    ]


def test_runs_gate_fails_injected_p99_regression(tmp_path, capsys):
    """Acceptance pin: injected >= 30% p99 bump -> non-zero exit."""
    bad = tmp_path / "bad.jsonl"
    append_entries(bad, _p99_series([100.0, 100.0, 100.0, 130.0]))
    assert runs_main(["gate", "--ledger", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "latency_p99" in out

    flat = tmp_path / "flat.jsonl"
    append_entries(flat, _p99_series([100.0, 101.0, 100.0, 100.0]))
    assert runs_main(["gate", "--ledger", str(flat)]) == 0


def test_runs_gate_fails_fairness_collapse(tmp_path, capsys):
    bad = tmp_path / "jain.jsonl"
    append_entries(
        bad,
        [
            _entry(i, {"gauge/netsim.fairness_jain": v})
            for i, v in enumerate([0.9, 0.9, 0.9, 0.6])
        ],
    )
    assert runs_main(["gate", "--ledger", str(bad)]) == 1
    assert "fairness_jain" in capsys.readouterr().out
