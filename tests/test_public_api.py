"""Public API surface tests: documented entry points exist and re-export."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.topology",
            "repro.core",
            "repro.traffic",
            "repro.model",
            "repro.netsim",
            "repro.appsim",
            "repro.report",
            "repro.experiments",
            "repro.utils",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__, f"{module} lacks a docstring"
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_quickstart_snippet_from_readme(self):
        # The README quickstart must keep working verbatim.
        from repro import Jellyfish, PathCache

        topo = Jellyfish(12, 10, 7, seed=1)
        paths = PathCache(topo, scheme="redksp", k=4, seed=1)
        ps = paths.get(0, 5)
        assert ps.k >= 1

    def test_docstrings_on_public_callables(self):
        import inspect

        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not inspect.getdoc(obj):
                undocumented.append(name)
        assert not undocumented, f"missing docstrings: {undocumented}"


class TestPacketRecord:
    def test_packet_fields(self):
        from repro.netsim.packet import Packet

        p = Packet(0, 5, (1, 2, 3), (0, 1, 4), t_create=7)
        assert p.hops == 2
        assert p.hop == 0
        assert p.in_link == -1
        p.t_deliver = 19
        assert p.latency == 12
        assert "0->5" in repr(p)
