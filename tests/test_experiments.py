"""Integration tests for the experiment drivers (small scale)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.base import ExperimentResult
from repro.experiments.presets import (
    SCALES,
    latency_preset,
    model_preset,
    netsim_preset,
    pathprops_preset,
    stencil_preset,
    topo_trio,
)


class TestPresets:
    def test_all_scales_defined(self):
        for scale in SCALES:
            trio = topo_trio(scale)
            assert len(trio) == 3
            for spec in trio:
                assert spec.n_hosts > 0
                assert (spec.n * spec.y) % 2 == 0, f"{spec.label} has odd parity"
                assert spec.y < spec.n

    def test_paper_scale_matches_table1(self):
        trio = topo_trio("paper")
        assert [t.label for t in trio] == [
            "RRG(36,24,16)", "RRG(720,24,19)", "RRG(2880,48,38)",
        ]
        assert [t.n_hosts for t in trio] == [288, 3600, 28800]

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            topo_trio("huge")

    @pytest.mark.parametrize("figure", [4, 5, 6])
    def test_model_presets(self, figure):
        for scale in SCALES:
            p = model_preset(scale, figure)
            assert p["topo"].n_hosts > p["random_x"]
            assert p["k"] >= 1

    @pytest.mark.parametrize("figure", [7, 8, 9, 10])
    def test_netsim_presets(self, figure):
        for scale in SCALES:
            p = netsim_preset(scale, figure)
            assert len(p["rates"]) > 2
            assert set(p["schemes"]) <= {"ksp", "rksp", "edksp", "redksp"}

    @pytest.mark.parametrize("figure", [11, 12, 13])
    def test_latency_presets(self, figure):
        for scale in SCALES:
            p = latency_preset(scale, figure)
            assert p["mechanism"] == "ksp_adaptive"

    def test_pathprops_and_stencil_presets(self):
        for scale in SCALES:
            pp = pathprops_preset(scale)
            assert len(pp["pair_sample"]) == 3
            sp = stencil_preset(scale)
            assert sp["link_bandwidth"] > 0


class TestRegistry:
    def test_all_sixteen_paper_experiments_registered(self):
        from repro.experiments.runner import PAPER_EXPERIMENTS

        expected = {f"table{i}" for i in range(1, 7)} | {
            f"fig{i}" for i in range(4, 14)
        }
        assert set(PAPER_EXPERIMENTS) == expected
        assert expected <= set(EXPERIMENTS)

    def test_extension_experiments_prefixed(self):
        from repro.experiments.runner import PAPER_EXPERIMENTS

        extras = set(EXPERIMENTS) - set(PAPER_EXPERIMENTS)
        assert all(name.startswith("ext_") for name in extras)
        assert "ext_failures" in extras

    def test_unknown_experiment(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            run_experiment("fig99")


class TestSmallScaleRuns:
    """Each driver must run end-to-end at small scale and produce a
    well-formed, paper-shaped table.  The heavier drivers are exercised by
    the benchmark suite; here we check the fast ones and one of each kind."""

    def _check(self, result: ExperimentResult):
        assert result.rows
        for row in result.rows:
            assert len(row) == len(result.headers)
        text = result.to_text()
        assert result.experiment in text

    def test_table1(self):
        r = run_experiment("table1", scale="small", seed=0)
        self._check(r)
        for label, d in r.data.items():
            assert 1.0 < d["apl"] < 3.0

    def test_tables_2_3_4_share_computation(self):
        r2 = run_experiment("table2", scale="small", seed=1)
        r3 = run_experiment("table3", scale="small", seed=1)
        r4 = run_experiment("table4", scale="small", seed=1)
        for r in (r2, r3, r4):
            self._check(r)
        # Table III/IV invariants: ED schemes fully disjoint.
        for label, per_scheme in r3.data.items():
            assert per_scheme["edksp"]["fraction_disjoint_pairs"] == 1.0
            assert per_scheme["redksp"]["max_link_sharing"] <= 1

    def test_fig4_model(self):
        r = run_experiment("fig4", scale="small", seed=0)
        self._check(r)
        # Multi-path schemes beat SP on permutation at small scale.
        assert r.data["redksp"]["permutation"] > r.data["sp"]["permutation"]

    def test_table5_stencil(self):
        r = run_experiment("table5", scale="small", seed=0)
        self._check(r)
        assert set(r.data) == {"redksp", "ksp", "rksp"}
        for scheme, per_app in r.data.items():
            for app, ms in per_app.items():
                assert ms > 0

    def test_ext_failures(self):
        r = run_experiment("ext_failures", scale="small", seed=0)
        self._check(r)
        # Edge-disjoint schemes never lose a pair to a single failure.
        single = min(r.data["edksp"])
        assert r.data["edksp"][single]["pair_survival"] == 1.0
        assert r.data["redksp"][single]["pair_survival"] == 1.0

    def test_cli_main(self, capsys):
        from repro.experiments.runner import main

        assert main(["table1", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
