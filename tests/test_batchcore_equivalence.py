"""Batched-engine equivalence: every lane must be byte-identical serial.

``BatchSimulator`` (:mod:`repro.netsim.batchcore`) steps N independent
runs in lock-step numpy lanes, and is only correct if each lane is
*indistinguishable* from running that lane's configuration alone on the
serial fast engine, in lane order, on one shared path cache: same
``SimResult`` (minus the echoed config), same drain length, same final
RNG state (every random draw replayed bit-exactly), same path-cache
hit/miss totals, and bitwise-identical telemetry artifacts (metrics
snapshots, time-series ``.npz``).

The serial reference for an N-lane batch is N sequential fast-engine
runs sharing one ``PathCache``: construct lane 0 (warming the cache for
its traffic), run it, drain it, then lane 1, and so on — exactly the
execution the batched grid tier replaces.

Mechanisms batch in (scheme, n_vcs) groups: ``sp`` / ``random`` /
``round_robin`` bound their VC ladder by switch count while the ``ksp_*``
mechanisms bound it by the longest cached path, so the matrix runs one
group of each (5 mechanisms x uniform/permutation traffic x mixed rates
and seeds) plus the mixing error.  The edge-case classes at the bottom
pin the lane-masking semantics: a single-lane batch equals the plain
fast engine, lanes finishing drain in non-monotonic order stay exact,
and a lane exhausting the drain budget mid-batch raises without losing
packets.

On telemetry mismatches the failing artifacts are dumped under
``BATCH_EQ_ARTIFACTS`` (default ``batch-eq-artifacts/``) so CI can
upload them for inspection.
"""

import dataclasses
import os
from pathlib import Path

import numpy as np
import pytest

from repro import Jellyfish, PathCache
from repro.errors import ConfigurationError, SimulationError
from repro.netsim import SimConfig, Simulator, UniformTraffic, PatternTraffic
from repro.netsim.batchcore import BatchLane, BatchSimulator
from repro.netsim.fastcore import FastSimulator
from repro.netsim.parallel import run_saturation_grid
from repro.obs import metrics, timeseries, trace
from repro.obs.trace import TraceAnalysis
from repro.traffic import random_permutation

CYCLES = dict(warmup_cycles=60, sample_cycles=60, n_samples=2)

#: One batchable group per VC-ladder bound (mechanisms must agree on
#: n_vcs to share a buffer layout; see BatchSimulator).
GROUPS = {
    "hopcap": ["sp", "random", "round_robin"],
    "ksp": ["ksp_ugal", "ksp_adaptive"],
}


def _topo():
    return Jellyfish(8, 8, 5, seed=3)  # 24 hosts


def _traffic(kind, n_hosts):
    if kind == "uniform":
        return UniformTraffic(n_hosts)
    return PatternTraffic(random_permutation(n_hosts, seed=5))


def _lane_specs(group, n_hosts):
    """Mechanisms x traffics with varied rates and seeds (one n_vcs group)."""
    lanes = []
    for i, mechanism in enumerate(GROUPS[group]):
        for j, kind in enumerate(("uniform", "perm")):
            lanes.append(
                BatchLane(
                    mechanism,
                    _traffic(kind, n_hosts),
                    injection_rate=0.3 + 0.1 * ((i + j) % 3),
                    seed=11 + 2 * i + j,
                )
            )
    return lanes


def _lane_fingerprint(result, drain_cycles, stalls, rng):
    doc = dataclasses.asdict(result)
    doc.pop("config")  # echoes batch_lanes; everything else must match
    return {
        "result": doc,
        "drain_cycles": drain_cycles,
        "credit_stalls": stalls,
        "rng_state": rng.bit_generator.state,
    }


def _run_serial(lanes, knobs=CYCLES, drain=True):
    """The serial reference: N sequential fast runs on one shared cache."""
    topo = _topo()
    paths = PathCache(topo, "redksp", k=4, seed=1)
    cfg = SimConfig(**knobs, engine="fast")
    fps = []
    for lane in lanes:
        sim = Simulator(
            topo, paths, lane.mechanism, lane.traffic,
            lane.injection_rate, cfg, seed=lane.seed,
        )
        assert isinstance(sim, FastSimulator)
        result = sim.run()
        extra = sim.drain() if drain else -1
        sim.check_conservation()
        fps.append(
            _lane_fingerprint(result, extra, sim.credit_stalls, sim.rng)
        )
    return fps, (paths.hits, paths.misses)


def _run_batch(lanes, knobs=CYCLES, drain=True, publish=True, observe=None):
    topo = _topo()
    paths = PathCache(topo, "redksp", k=4, seed=1)
    cfg = SimConfig(**knobs, engine="fast", batch_lanes=len(lanes))
    batch = BatchSimulator(topo, paths, lanes, cfg)
    results = batch.run(publish=publish, observe=observe)
    drains = batch.drain() if drain else [-1] * len(lanes)
    batch.check_conservation()
    fps = [
        _lane_fingerprint(
            results[i], drains[i], int(batch.credit_stalls[i]), batch.rngs[i]
        )
        for i in range(len(lanes))
    ]
    return fps, (paths.hits, paths.misses), batch


def _assert_equivalent(lanes, knobs=CYCLES):
    serial, scache = _run_serial(lanes, knobs)
    batch, bcache, sim = _run_batch(lanes, knobs, publish=False)
    assert sim.engine_name == "batched"
    for i, (s, b) in enumerate(zip(serial, batch)):
        assert s == b, f"lane {i} diverged from its serial run"
    assert scache == bcache
    return batch


class TestLaneEquivalence:
    @pytest.mark.parametrize("group", sorted(GROUPS))
    def test_mechanism_group(self, group):
        # 6 (or 4) lanes: every mechanism of the group x uniform/perm
        # traffic, rates 0.3-0.5, distinct seeds — each lane must match
        # its serial fast-engine run bit for bit.
        _assert_equivalent(_lane_specs(group, _topo().n_hosts))

    def test_duplicate_lanes_are_independent(self):
        # Identical configs in different lanes must produce identical
        # fingerprints (no cross-lane bleed through shared arrays).
        spec = BatchLane("ksp_adaptive", _traffic("uniform", 24), 0.4, seed=7)
        fps, _, _ = _run_batch([spec, spec, spec])
        assert fps[0] == fps[1] == fps[2]

    def test_high_load_contention(self):
        # Near saturation the clean-cycle fast path gives way to the
        # sequential sweep; equivalence must survive heavy contention.
        lanes = [
            BatchLane("ksp_adaptive", _traffic("uniform", 24), 0.9, seed=3),
            BatchLane("ksp_ugal", _traffic("perm", 24), 0.85, seed=4),
        ]
        batch = _assert_equivalent(lanes)
        assert sum(fp["credit_stalls"] for fp in batch) > 0

    def test_tiny_buffers_force_dirty_cycles(self):
        # vc_buffer=2 keeps rings pinned at capacity: rotation, credit
        # exhaustion and within-cycle credit visibility all work hard.
        _assert_equivalent(
            [
                BatchLane("ksp_adaptive", _traffic("uniform", 24), 0.9, seed=3),
                BatchLane("ksp_adaptive", _traffic("perm", 24), 0.7, seed=5),
            ],
            knobs=dict(CYCLES, vc_buffer=2),
        )


class TestTelemetryEquivalence:
    """Published artifacts must not depend on the engine tier."""

    def _dump(self, tag, serial_doc, batch_doc):
        art = Path(os.environ.get("BATCH_EQ_ARTIFACTS", "batch-eq-artifacts"))
        art.mkdir(parents=True, exist_ok=True)
        for name, doc in (("serial", serial_doc), ("batched", batch_doc)):
            path = art / f"{tag}-{name}"
            if isinstance(doc, bytes):
                path.with_suffix(".npz").write_bytes(doc)
            else:
                path.with_suffix(".txt").write_text(repr(doc))
        return art

    def _strip_engine_keys(self, snap):
        doc = {k: v for k, v in snap.items() if k != "timers"}
        doc["counters"] = {
            k: v for k, v in snap.get("counters", {}).items()
            if not k.startswith("netsim.engine_runs/")
        }
        doc["gauges"] = {
            k: v for k, v in snap.get("gauges", {}).items()
            if not k.startswith("netsim.cycles_per_sec/")
        }
        return doc

    def test_metrics_snapshots_identical(self):
        lanes = _lane_specs("ksp", _topo().n_hosts)
        with metrics.capture() as reg:
            _run_serial(lanes)
            serial = self._strip_engine_keys(reg.snapshot())
        with metrics.capture() as reg:
            _run_batch(lanes)
            batched = self._strip_engine_keys(reg.snapshot())
        if serial != batched:  # pragma: no cover - failure path
            art = self._dump("metrics", serial, batched)
            pytest.fail(f"metrics snapshots diverged (dumped under {art})")

    def test_metrics_stamp_engine_identity(self):
        lanes = _lane_specs("ksp", _topo().n_hosts)
        with metrics.capture() as reg:
            _run_batch(lanes)
            counters = reg.snapshot()["counters"]
            gauges = reg.snapshot()["gauges"]
        assert counters.get("netsim.engine_runs/batched") == len(lanes)
        assert "netsim.engine_runs/fast" not in counters
        assert gauges.get("netsim.cycles_per_sec/batched", 0) > 0

    def test_timeseries_npz_byte_identical(self, tmp_path):
        lanes = _lane_specs("ksp", _topo().n_hosts)
        with timeseries.capture(window=30):
            _run_serial(lanes)
            serial = timeseries.save_timeseries(tmp_path / "serial.npz")
        with timeseries.capture(window=30):
            _run_batch(lanes)
            batched = timeseries.save_timeseries(tmp_path / "batched.npz")
        sb, bb = serial.read_bytes(), batched.read_bytes()
        if sb != bb:  # pragma: no cover - failure path
            art = self._dump("timeseries", sb, bb)
            pytest.fail(f"time-series artifacts diverged (dumped under {art})")

    def test_publish_lane_splits_per_lane(self):
        # The grid tier publishes each lane under its own capture; a
        # lane's split registry must equal what a serial run of that lane
        # would capture at the same point in a shared-cache sequence
        # (later lanes see the cache the earlier ones warmed).
        lanes = [
            BatchLane("ksp_adaptive", _traffic("perm", 24), 0.4, seed=11),
            BatchLane("ksp_ugal", _traffic("perm", 24), 0.3, seed=12),
        ]
        _, _, batch = _run_batch(lanes, publish=False, observe=True)
        splits = []
        for i in range(len(lanes)):
            with metrics.capture() as reg:
                batch.publish_lane(i)
                splits.append(self._strip_engine_keys(reg.snapshot()))
        topo = _topo()
        paths = PathCache(topo, "redksp", k=4, seed=1)
        cfg = SimConfig(**CYCLES, engine="fast")
        for i, lane in enumerate(lanes):
            with metrics.capture() as reg:
                sim = Simulator(
                    topo, paths, lane.mechanism, lane.traffic,
                    lane.injection_rate, cfg, seed=lane.seed,
                )
                sim.run()
                solo = self._strip_engine_keys(reg.snapshot())
            assert splits[i] == solo, f"lane {i} split diverged"


class TestTracedGridFallback:
    """Tracing forces the per-cell engine without losing correctness.

    The batched engine refuses the flight recorder (per-packet events
    would interleave across lanes), so a traced grid under a
    ``batch_lanes > 1`` config falls back to per-cell runs.  The route-
    membership audit must pass over every packet traced through that
    fallback, and the grid numbers must equal the untraced batched run.
    """

    def test_route_audit_passes_under_batched_config(self):
        topo = _topo()
        pats = [random_permutation(topo.n_hosts, seed=5)]
        cfg = SimConfig(**CYCLES, batch_lanes=4)
        kw = dict(k=4, rates=(0.3, 0.5), config=cfg, seed=1, processes=1)
        with trace.capture(sample=16) as rec:
            traced_grid = run_saturation_grid(
                topo, ["redksp"], ["ksp_adaptive", "ksp_ugal"], pats, **kw
            )
            snap = rec.snapshot()
        assert snap["n_packets"] > 0
        assert snap["packets_dropped"] == 0 and snap["events_dropped"] == 0
        # The grid warms its caches with PathCache(topo, scheme, k, seed).
        cache = PathCache(topo, "redksp", k=4, seed=1)
        ana = TraceAnalysis(snap)
        assert ana.audit_routes(paths={"redksp": cache}, topology=topo) == []
        # Restricted mechanisms never route off the path table.
        for dist in ana.path_shares().values():
            assert -1 not in dist
        # The same grid untraced batches its lanes; numbers must agree.
        plain_grid = run_saturation_grid(
            topo, ["redksp"], ["ksp_adaptive", "ksp_ugal"], pats, **kw
        )
        assert traced_grid == plain_grid


class TestLaneMasking:
    """Early-draining lanes are masked; the rest keep stepping exactly."""

    def test_single_lane_batch_equals_fast_engine(self):
        lane = BatchLane("ksp_adaptive", _traffic("uniform", 24), 0.4, seed=11)
        _assert_equivalent([lane])

    def test_non_monotonic_finish_order(self):
        # Lane 0 carries far more load than lanes 1/2, so it keeps
        # draining long after they are masked (finish order 1/2 before 0,
        # i.e. not lane order) — the compacted allocator scan must keep
        # lane 0 bit-exact to the end.
        lanes = [
            BatchLane("ksp_adaptive", _traffic("uniform", 24), 0.9, seed=3),
            BatchLane("ksp_adaptive", _traffic("uniform", 24), 0.05, seed=4),
            BatchLane("ksp_ugal", _traffic("perm", 24), 0.1, seed=5),
        ]
        batch = _assert_equivalent(lanes)
        drains = [fp["drain_cycles"] for fp in batch]
        assert drains[0] > max(drains[1], drains[2])

    def test_drain_budget_exhaustion_mid_batch(self):
        # A loaded lane cannot drain in 150 cycles; a nearly idle lane
        # can.  The failed drain must raise, name the stuck lane, keep
        # the drained lane finished, and lose no packets anywhere.
        lanes = [
            BatchLane("random", _traffic("uniform", 24), 0.9, seed=1),
            BatchLane("random", _traffic("uniform", 24), 0.02, seed=2),
        ]
        topo = _topo()
        paths = PathCache(topo, "redksp", k=4, seed=1)
        cfg = SimConfig(
            warmup_cycles=100, sample_cycles=100, n_samples=3,
            drain_max_cycles=150, engine="fast", batch_lanes=2,
        )
        batch = BatchSimulator(topo, paths, lanes, cfg)
        batch.run(publish=False)
        assert batch.in_flight(0) > 0
        with pytest.raises(SimulationError, match="failed to drain"):
            batch.drain()
        assert batch.in_flight(0) > 0  # stuck lane kept its packets
        assert batch.in_flight(1) == 0  # idle lane finished draining
        batch.check_conservation()


class TestBatchValidation:
    """Engine/lane interplay must fail loudly, not fall back silently."""

    def test_reference_engine_rejects_batch_lanes(self):
        with pytest.raises(ConfigurationError, match="reference"):
            SimConfig(engine="reference", batch_lanes=2)

    def test_batch_lanes_below_one_rejected(self):
        with pytest.raises(ConfigurationError, match="batch_lanes"):
            SimConfig(batch_lanes=0)

    def test_reference_single_lane_still_allowed(self):
        cfg = SimConfig(engine="reference", batch_lanes=1)
        assert cfg.batch_lanes == 1

    def _one_lane(self):
        return [BatchLane("sp", _traffic("uniform", 24), 0.4, seed=1)]

    def test_steady_state_rejected(self):
        with pytest.raises(ConfigurationError, match="fixed-budget"):
            BatchSimulator(
                _topo(), PathCache(_topo(), "redksp", k=4, seed=1),
                self._one_lane(), SimConfig(**CYCLES, steady_state=True),
            )

    def test_unbatchable_mechanism_rejected(self):
        with pytest.raises(ConfigurationError, match="ugal"):
            BatchSimulator(
                _topo(), PathCache(_topo(), "redksp", k=4, seed=1),
                [BatchLane("ugal", _traffic("uniform", 24), 0.4)],
                SimConfig(**CYCLES),
            )

    def test_tracing_rejected(self):
        with trace.capture(sample=4):
            with pytest.raises(ConfigurationError, match="flight recorder"):
                BatchSimulator(
                    _topo(), PathCache(_topo(), "redksp", k=4, seed=1),
                    self._one_lane(), SimConfig(**CYCLES),
                )

    def test_mixed_vc_groups_rejected(self):
        # sp bounds the VC ladder by switch count, ksp_ugal by the
        # longest cached path: one buffer layout cannot serve both.
        lanes = [
            BatchLane("sp", _traffic("uniform", 24), 0.4, seed=1),
            BatchLane("ksp_ugal", _traffic("uniform", 24), 0.4, seed=2),
        ]
        with pytest.raises(ConfigurationError, match="VC count"):
            BatchSimulator(
                _topo(), PathCache(_topo(), "redksp", k=4, seed=1),
                lanes, SimConfig(**CYCLES),
            )

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one lane"):
            BatchSimulator(
                _topo(), PathCache(_topo(), "redksp", k=4, seed=1),
                [], SimConfig(**CYCLES),
            )

    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigurationError, match="injection_rate"):
            BatchSimulator(
                _topo(), PathCache(_topo(), "redksp", k=4, seed=1),
                [BatchLane("sp", _traffic("uniform", 24), 0.0)],
                SimConfig(**CYCLES),
            )
