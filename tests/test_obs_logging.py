"""Structured logger, progress reporting, and run-manifest documents."""

import json

import pytest

from repro import Jellyfish
from repro.obs import Progress, build_manifest, log, topology_hash, write_manifest
from repro.obs.manifest import MANIFEST_FORMAT, MANIFEST_SCHEMA_VERSION
from repro.obs.progress import format_eta

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def _log_state():
    """Restore the module-global level/sinks no matter what a test does."""
    level = log.get_level()
    yield
    log.set_level(level)
    log.close_jsonl()


@pytest.fixture()
def events():
    captured = []
    log.add_handler(captured.append)
    yield captured
    log.remove_handler(captured.append)


# ------------------------------------------------------------------ log

def test_level_threshold_filters_records(events):
    log.set_level("warning")
    log.info("quiet_event")
    log.warning("loud_event", n=1)
    assert [e["event"] for e in events] == ["loud_event"]
    log.set_level("debug")
    log.debug("now_visible")
    assert events[-1]["event"] == "now_visible"


def test_record_shape(events):
    log.error("boom", path="/tmp/x", n=3)
    rec = events[-1]
    assert rec["level"] == "error"
    assert rec["event"] == "boom"
    assert rec["path"] == "/tmp/x" and rec["n"] == 3
    assert isinstance(rec["ts"], float)


def test_unknown_level_rejected():
    with pytest.raises(ValueError, match="unknown log level"):
        log.set_level("verbose")


def test_jsonl_sink(tmp_path):
    target = tmp_path / "sub" / "run.events.jsonl"
    log.open_jsonl(target)  # creates parent directories
    log.warning("first", a=1)
    log.warning("second", b=[1, 2])
    log.close_jsonl()
    records = [json.loads(line) for line in target.read_text().splitlines()]
    assert [r["event"] for r in records] == ["first", "second"]
    assert records[1]["b"] == [1, 2]


def test_jsonl_records_durable_before_close(tmp_path):
    """Every record is on disk as soon as it is emitted (flush-on-write),
    so a crashed run still leaves a complete event log."""
    target = tmp_path / "run.events.jsonl"
    log.open_jsonl(target)
    log.warning("mid_run", n=1)
    # Read back while the sink is still open.
    records = [json.loads(line) for line in target.read_text().splitlines()]
    assert [r["event"] for r in records] == ["mid_run"]
    log.close_jsonl()


def test_jsonl_sink_context_manager(tmp_path):
    target = tmp_path / "run.events.jsonl"
    with log.jsonl_sink(target) as path:
        assert path == target
        log.warning("inside")
    log.warning("outside")  # sink is closed: not written to the file
    records = [json.loads(line) for line in target.read_text().splitlines()]
    assert [r["event"] for r in records] == ["inside"]


def test_jsonl_sink_closes_on_error(tmp_path):
    target = tmp_path / "run.events.jsonl"
    with pytest.raises(RuntimeError, match="boom"):
        with log.jsonl_sink(target):
            log.warning("before_crash")
            raise RuntimeError("boom")
    log.warning("after_crash")  # must not land in the file
    records = [json.loads(line) for line in target.read_text().splitlines()]
    assert [r["event"] for r in records] == ["before_crash"]


# ------------------------------------------------------------- progress

def test_progress_reports_completion_and_eta(events):
    log.set_level("info")
    p = Progress(4, "unit-test", min_interval=0.0)
    for _ in range(4):
        p.step()
    progress = [e for e in events if e["event"] == "progress"]
    assert len(progress) == 4
    last = progress[-1]
    assert last["label"] == "unit-test"
    assert last["completed"] == 4 and last["total"] == 4
    assert last["pct"] == 100.0
    assert last["eta_s"] is None or last["eta_s"] == 0.0


def test_progress_rate_limited_but_final_always_logs(events):
    log.set_level("info")
    p = Progress(100, "quiet", min_interval=3600.0)
    for _ in range(100):
        p.step()
    progress = [e for e in events if e["event"] == "progress"]
    # First step logs (timer starts at -inf), then silence until the last.
    assert [e["completed"] for e in progress] == [1, 100]


def test_format_eta_rendering():
    assert format_eta(0) == "0:00"
    assert format_eta(45) == "0:45"
    assert format_eta(75.4) == "1:15"
    assert format_eta(3599) == "59:59"
    assert format_eta(3600) == "1:00:00"
    assert format_eta(12000) == "3:20:00"
    assert format_eta(-5) == "0:00"  # clamped, never negative


class _FakeTime:
    """Deterministic monotonic clock for pinning the ETA math."""

    def __init__(self):
        self.now = 100.0

    def monotonic(self):
        return self.now


def test_progress_eta_guards_zero_elapsed_and_zero_rate(events, monkeypatch):
    log.set_level("info")
    clock = _FakeTime()
    monkeypatch.setattr("repro.obs.progress.time", clock)
    p = Progress(4, "guard", min_interval=0.0)
    # First step lands with zero elapsed time: no rate yet, ETA unknown —
    # never inf or nan.
    p.step()
    first = [e for e in events if e["event"] == "progress"][-1]
    assert first["eta_s"] is None and first["eta"] is None
    # With measurable progress the ETA extrapolates from the rate.
    clock.now += 10.0
    p.step()
    second = [e for e in events if e["event"] == "progress"][-1]
    assert second["eta_s"] == pytest.approx(10.0)  # 2 done in 10s, 2 left
    assert second["eta"] == "0:10"
    # Completion always reports a zero ETA.
    p.step(2)
    last = [e for e in events if e["event"] == "progress"][-1]
    assert last["eta_s"] == 0.0 and last["eta"] == "0:00"


def test_progress_eta_renders_hours(events, monkeypatch):
    log.set_level("info")
    clock = _FakeTime()
    monkeypatch.setattr("repro.obs.progress.time", clock)
    p = Progress(3, "slow", min_interval=0.0)
    clock.now += 3600.0  # one item per hour -> two hours left
    p.step()
    rec = [e for e in events if e["event"] == "progress"][-1]
    assert rec["eta_s"] == pytest.approx(7200.0)
    assert rec["eta"] == "2:00:00"


# ------------------------------------------------------------- manifest

def test_topology_hash_is_content_identity():
    a = Jellyfish(8, 6, 4, seed=3)
    b = Jellyfish(8, 6, 4, seed=3)
    c = Jellyfish(8, 6, 4, seed=4)
    assert topology_hash(a) == topology_hash(b)
    assert topology_hash(a) != topology_hash(c)
    assert len(topology_hash(a)) == 64  # sha256 hex


def test_build_and_write_manifest(tmp_path):
    snap = {
        "counters": {"core.cache.hit": 5},
        "timers": {"stage.topology": {"count": 1, "total": 0.25}},
        "info": {"topology_hash": "abc"},
    }
    doc = build_manifest(
        experiment="fig9",
        scale="small",
        seed=7,
        config={"processes": 2},
        wall_time_s=1.23456,
        metrics_snapshot=snap,
    )
    assert doc["format"] == MANIFEST_FORMAT
    assert doc["schema_version"] == MANIFEST_SCHEMA_VERSION
    assert doc["git_commit"] is None or len(doc["git_commit"]) == 40
    assert doc["experiment"] == "fig9" and doc["seed"] == 7
    assert doc["wall_time_s"] == 1.235
    assert doc["stage_timings"] == snap["timers"]
    assert doc["info"] == {"topology_hash": "abc"}
    assert doc["metrics"]["counters"] == {"core.cache.hit": 5}
    assert doc["package_version"]

    path = write_manifest(doc, tmp_path / "out")
    assert path.name == "fig9-small.manifest.json"
    assert json.loads(path.read_text()) == json.loads(json.dumps(doc))
    assert not list(path.parent.glob("*.tmp.*"))  # atomic write cleaned up
