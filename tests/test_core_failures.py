"""Unit tests for link-failure analysis of path sets."""

import numpy as np
import pytest

from repro import Jellyfish, PathCache
from repro.core.failures import (
    failure_resilience,
    normalise_failures,
    pair_survives,
    sample_link_failures,
    surviving_paths,
)
from repro.core.path import Path, PathSet
from repro.errors import ConfigurationError, TrafficError


def ps(*node_lists):
    paths = [Path(nl) for nl in node_lists]
    return PathSet(paths[0].source, paths[0].destination, paths)


class TestSurvival:
    def test_failed_link_kills_crossing_path(self):
        p = ps([0, 1, 2], [0, 3, 2])
        alive = surviving_paths(p, {(0, 1)})
        assert alive == [Path([0, 3, 2])]

    def test_direction_agnostic(self):
        p = ps([0, 1, 2])
        assert not surviving_paths(p, {(1, 0)})
        assert not surviving_paths(p, {(0, 1)})

    def test_no_failures_keeps_everything(self):
        p = ps([0, 1, 2], [0, 3, 2])
        assert len(surviving_paths(p, set())) == 2

    def test_pair_survives(self):
        p = ps([0, 1, 2], [0, 3, 2])
        assert pair_survives(p, {(0, 1)})
        assert not pair_survives(p, {(0, 1), (0, 3)})

    def test_trivial_path_always_survives(self):
        p = PathSet(4, 4, [Path([4])])
        assert pair_survives(p, {(0, 1), (2, 3)})

    def test_normalise(self):
        assert normalise_failures([(3, 1), (1, 3)]) == frozenset({(1, 3)})


class TestSampling:
    def test_sample_counts_and_validity(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
        failed = sample_link_failures(edges, 2, rng=np.random.default_rng(0))
        assert len(failed) == 2
        assert failed <= normalise_failures(edges)

    def test_sample_too_many(self):
        with pytest.raises(TrafficError):
            sample_link_failures([(0, 1)], 2)

    def test_sample_invalid_count(self):
        with pytest.raises(ConfigurationError):
            sample_link_failures([(0, 1)], 0)

    def test_reproducible(self):
        edges = [(i, i + 1) for i in range(20)]
        a = sample_link_failures(edges, 5, rng=np.random.default_rng(3))
        b = sample_link_failures(edges, 5, rng=np.random.default_rng(3))
        assert a == b


class TestResilience:
    @pytest.fixture(scope="class")
    def topo(self):
        return Jellyfish(16, 12, 9, seed=5)

    @pytest.fixture(scope="class")
    def pairs(self, topo):
        return [(s, d) for s in range(6) for d in range(6) if s != d]

    def test_single_failure_cannot_disconnect_edksp_pair(self, topo, pairs):
        cache = PathCache(topo, "edksp", k=4, seed=0)
        cache.precompute(pairs)
        report = failure_resilience(cache, pairs, n_failures=1, trials=30, seed=0)
        # Disjoint paths: one cable kills at most one of the k paths.
        assert report["pair_survival"] == 1.0
        assert report["path_survival"] >= 1 - 1 / 4 - 1e-9

    def test_edksp_more_resilient_than_ksp(self, topo, pairs):
        results = {}
        for scheme in ("ksp", "redksp"):
            cache = PathCache(topo, scheme, k=8, seed=0)
            cache.precompute(pairs)
            results[scheme] = failure_resilience(
                cache, pairs, n_failures=4, trials=40, seed=1
            )
        assert (
            results["redksp"]["pair_survival"]
            >= results["ksp"]["pair_survival"]
        )

    def test_more_failures_hurt_more(self, topo, pairs):
        cache = PathCache(topo, "ksp", k=4, seed=0)
        cache.precompute(pairs)
        few = failure_resilience(cache, pairs, n_failures=1, trials=20, seed=2)
        many = failure_resilience(cache, pairs, n_failures=12, trials=20, seed=2)
        assert many["path_survival"] < few["path_survival"]

    def test_report_fields(self, topo, pairs):
        cache = PathCache(topo, "sp", k=1, seed=0)
        report = failure_resilience(cache, pairs[:4], n_failures=2, trials=5, seed=0)
        assert set(report) == {"pair_survival", "path_survival", "n_failures", "trials"}
        assert 0 <= report["pair_survival"] <= 1
