"""Unit tests for Yen's k-shortest paths against a networkx reference."""

import networkx as nx
import numpy as np
import pytest

from repro.core.yen import k_shortest_paths
from repro.errors import (
    ConfigurationError,
    InsufficientPathsError,
    NoPathError,
)
from repro.topology.rrg import random_regular_graph


def to_nx(adj):
    g = nx.Graph()
    g.add_nodes_from(range(len(adj)))
    for u, nbrs in enumerate(adj):
        for v in nbrs:
            g.add_edge(u, v)
    return g


class TestCorrectness:
    @pytest.mark.parametrize("k", [1, 2, 4, 8])
    def test_lengths_match_networkx(self, k):
        adj = random_regular_graph(16, 4, seed=2)
        g = to_nx(adj)
        for dst in (3, 9, 15):
            ours = k_shortest_paths(adj, 0, dst, k)
            ref = []
            for i, p in enumerate(nx.shortest_simple_paths(g, 0, dst)):
                if i == k:
                    break
                ref.append(len(p) - 1)
            assert [p.hops for p in ours] == ref

    def test_paths_are_simple_and_valid(self):
        adj = random_regular_graph(16, 4, seed=2)
        for p in k_shortest_paths(adj, 0, 9, 8):
            nodes = list(p)
            assert len(set(nodes)) == len(nodes)
            for u, v in zip(nodes, nodes[1:]):
                assert v in adj[u]

    def test_paths_unique(self):
        adj = random_regular_graph(16, 4, seed=2)
        paths = k_shortest_paths(adj, 0, 9, 8)
        assert len({p.nodes for p in paths}) == len(paths)

    def test_nondecreasing_lengths(self):
        adj = random_regular_graph(16, 4, seed=2)
        hops = [p.hops for p in k_shortest_paths(adj, 0, 9, 8)]
        assert hops == sorted(hops)

    def test_endpoints(self):
        adj = random_regular_graph(16, 4, seed=2)
        for p in k_shortest_paths(adj, 2, 11, 6):
            assert p.source == 2 and p.destination == 11

    def test_first_is_shortest(self):
        adj = random_regular_graph(16, 4, seed=2)
        g = to_nx(adj)
        paths = k_shortest_paths(adj, 0, 9, 4)
        assert paths[0].hops == nx.shortest_path_length(g, 0, 9)


class TestVanillaBias:
    def test_figure3_vanilla_shares_first_link(self, figure3_graph):
        """The paper's Figure 3(a): vanilla KSP(3) from S1(0) to D1(9)
        funnels all three paths through low-id node A(1)."""
        paths = k_shortest_paths(figure3_graph, 0, 9, 3, tie="min")
        assert [p.hops for p in paths] == [3, 4, 4]
        # All three paths leave S1 via A (node 1) — the bias pathology.
        assert all(p.nodes[1] == 1 for p in paths)

    def test_figure3_randomized_spreads(self, figure3_graph):
        """rKSP escapes the shared S1->A link in at least some draws."""
        rng = np.random.default_rng(0)
        spread_seen = False
        for _ in range(32):
            paths = k_shortest_paths(figure3_graph, 0, 9, 3, tie="random", rng=rng)
            assert [p.hops for p in paths] == [3, 4, 4]
            first_hops = {p.nodes[1] for p in paths}
            if len(first_hops) > 1:
                spread_seen = True
                break
        assert spread_seen


class TestEdgeCases:
    def test_no_path_raises(self):
        adj = [[1], [0], [3], [2]]
        with pytest.raises(NoPathError):
            k_shortest_paths(adj, 0, 2, 3)

    def test_same_endpoint_single_trivial_path(self, ring_adjacency):
        paths = k_shortest_paths(ring_adjacency, 2, 2, 4)
        assert len(paths) == 1
        assert paths[0].nodes == (2,)

    def test_same_endpoint_error_mode(self, ring_adjacency):
        with pytest.raises(InsufficientPathsError):
            k_shortest_paths(ring_adjacency, 2, 2, 4, on_shortfall="error")

    def test_shortfall_truncates(self, ring_adjacency):
        # A 6-cycle has exactly 2 simple paths between any two nodes.
        paths = k_shortest_paths(ring_adjacency, 0, 3, 5)
        assert len(paths) == 2

    def test_shortfall_error_carries_found(self, ring_adjacency):
        with pytest.raises(InsufficientPathsError) as exc:
            k_shortest_paths(ring_adjacency, 0, 3, 5, on_shortfall="error")
        assert len(exc.value.found) == 2
        assert exc.value.requested == 5

    def test_invalid_k(self, ring_adjacency):
        with pytest.raises(ConfigurationError):
            k_shortest_paths(ring_adjacency, 0, 3, 0)

    def test_invalid_shortfall_mode(self, ring_adjacency):
        with pytest.raises(ConfigurationError):
            k_shortest_paths(ring_adjacency, 0, 3, 2, on_shortfall="pad")


class TestRandomizedVariant:
    def test_same_multiset_of_lengths_as_deterministic(self):
        # Randomization must not change the path-length distribution.
        adj = random_regular_graph(16, 4, seed=2)
        rng = np.random.default_rng(3)
        for dst in (5, 9, 13):
            det = [p.hops for p in k_shortest_paths(adj, 0, dst, 8)]
            ran = [p.hops for p in k_shortest_paths(adj, 0, dst, 8, tie="random", rng=rng)]
            assert det == ran

    def test_reproducible_with_seed(self):
        adj = random_regular_graph(16, 4, seed=2)
        a = k_shortest_paths(adj, 0, 9, 8, tie="random", rng=np.random.default_rng(7))
        b = k_shortest_paths(adj, 0, 9, 8, tie="random", rng=np.random.default_rng(7))
        assert a == b

    def test_randomized_paths_are_simple(self):
        adj = random_regular_graph(16, 4, seed=2)
        rng = np.random.default_rng(3)
        for p in k_shortest_paths(adj, 0, 9, 8, tie="random", rng=rng):
            assert len(set(p.nodes)) == len(p.nodes)
