"""Unit and integration tests for the Eq. 1 throughput model."""

import numpy as np
import pytest

from repro import Jellyfish, PathCache
from repro.errors import ModelError
from repro.model import model_throughput
from repro.traffic import all_to_all, random_permutation, shift


@pytest.fixture(scope="module")
def topo():
    return Jellyfish(12, 8, 4, seed=7)  # 48 hosts


def cache(topo, scheme="ksp", k=4):
    return PathCache(topo, scheme, k=k, seed=0)


class TestMechanics:
    def test_per_flow_capped_at_one(self, topo):
        r = model_throughput(topo, random_permutation(topo.n_hosts, seed=1), cache(topo))
        assert (r.per_flow <= 1.0 + 1e-12).all()
        assert (r.per_flow > 0).all()

    def test_intra_switch_flow_full_rate(self, topo):
        # Two hosts on the same switch, alone in the network: rate 1.
        h0, h1 = list(topo.hosts_of_switch(0))[:2]
        r = model_throughput(topo, [(h0, h1)], cache(topo))
        assert r.per_flow[0] == pytest.approx(1.0)

    def test_single_flow_multi_path_is_injection_bound(self, topo):
        # One lonely flow: k sub-flows all share the injection link, so the
        # flow rate is exactly 1 regardless of k.
        r = model_throughput(topo, [(0, topo.n_hosts - 1)], cache(topo, k=4))
        assert r.per_flow[0] == pytest.approx(1.0)

    def test_link_load_counts_subflows(self, topo):
        flows = [(0, topo.n_hosts - 1)]
        pc = cache(topo, k=4)
        r = model_throughput(topo, flows, pc)
        # The injection link of host 0 carries one usage per sub-flow.
        ss = topo.switch_of_host(0)
        ds = topo.switch_of_host(topo.n_hosts - 1)
        k = pc.get(ss, ds).k
        assert r.link_load[topo.injection_link(0)] == k
        assert r.link_load[topo.ejection_link(topo.n_hosts - 1)] == k

    def test_empty_flows_rejected(self, topo):
        with pytest.raises(ModelError, match="empty"):
            model_throughput(topo, [], cache(topo))

    def test_self_flow_rejected(self, topo):
        with pytest.raises(ModelError, match="self-flow"):
            model_throughput(topo, [(3, 3)], cache(topo))

    def test_out_of_range_rejected(self, topo):
        with pytest.raises(ModelError, match="host range"):
            model_throughput(topo, [(0, topo.n_hosts)], cache(topo))

    def test_result_accessors(self, topo):
        pat = random_permutation(topo.n_hosts, seed=1)
        r = model_throughput(topo, pat, cache(topo))
        assert r.mean_per_flow() == pytest.approx(float(r.per_flow.mean()))
        assert r.min_per_flow() == pytest.approx(float(r.per_flow.min()))
        # In a permutation, per-node aggregate equals per-flow rates.
        assert r.mean_per_node() == pytest.approx(r.mean_per_flow())
        assert r.per_node().shape == (topo.n_hosts,)
        assert r.max_link_utilisation() >= 1.0

    def test_two_flows_sharing_bottleneck_split_it(self):
        # Hand-built 4-cycle with 1 host per switch: flows 0->2 and 1->3
        # with k=2 use edge-disjoint halves; each flow gets rate 1.
        ring = [[1, 3], [0, 2], [1, 3], [0, 2]]
        topo = Jellyfish(4, 3, 2, adjacency=ring)
        pc = PathCache(topo, "edksp", k=2, seed=0)
        r = model_throughput(topo, [(0, 2), (1, 3)], pc)
        # Each 2-hop sub-flow path pair overlaps the other flow's on every
        # switch link (0-1-2 vs 1-2-3 share link 1-2, etc.), load 2 per
        # switch link, but injection load is also 2 -> rate 1/2 + 1/2 = 1.
        assert r.per_flow == pytest.approx([1.0, 1.0])


class TestPaperShapes:
    """The ordering claims of Figures 4-6 must hold on a small Jellyfish."""

    @pytest.fixture(scope="class")
    def results(self):
        # Under-subscribed like the paper's topologies (hosts < uplinks):
        # 3 hosts vs 7 uplinks per switch.  Averages over several pattern
        # instances, as the paper does.
        topo = Jellyfish(12, 10, 7, seed=7)
        n = topo.n_hosts
        perms = [random_permutation(n, seed=s) for s in range(4)]
        shifts = [shift(n, a) for a in (1, n // 3, n // 2)]
        patterns = {
            "perm": perms,
            "shift": shifts,
            "a2a": [all_to_all(n)],
        }
        out = {}
        for scheme in ("sp", "ksp", "rksp", "edksp", "redksp"):
            pc = PathCache(topo, scheme, k=4, seed=0)
            out[scheme] = {
                name: float(
                    np.mean(
                        [model_throughput(topo, p, pc).mean_per_node() for p in pats]
                    )
                )
                for name, pats in patterns.items()
            }
        return out

    def test_multipath_beats_single_path(self, results):
        for scheme in ("ksp", "rksp", "edksp", "redksp"):
            for pattern in ("perm", "shift", "a2a"):
                assert results[scheme][pattern] > results["sp"][pattern]

    def test_redksp_at_least_matches_ksp(self, results):
        # On paper-scale instances rEDKSP strictly wins; a 12-switch toy
        # leaves little headroom, so allow a small tolerance.
        for pattern in ("perm", "shift", "a2a"):
            assert results["redksp"][pattern] >= results["ksp"][pattern] * 0.95

    def test_randomization_does_not_hurt_much(self, results):
        # rKSP vs KSP, rEDKSP vs EDKSP: randomization helps or is neutral.
        for base, rand in (("ksp", "rksp"), ("edksp", "redksp")):
            for pattern in ("perm", "a2a"):
                assert results[rand][pattern] >= results[base][pattern] * 0.95

    def test_values_in_unit_band(self, results):
        for per_scheme in results.values():
            for v in per_scheme.values():
                assert 0 < v <= 1.0 + 1e-9


class TestLinkLoadInvariants:
    def test_injection_loads_sum_to_subflow_count(self, topo):
        pat = random_permutation(topo.n_hosts, seed=2)
        pc = cache(topo, k=4)
        r = model_throughput(topo, pat, pc)
        inj = r.link_load[topo.injection_link_base : topo.injection_link_base + topo.n_hosts]
        ej = r.link_load[topo.ejection_link_base :]
        # Every sub-flow crosses exactly one injection and one ejection link.
        assert inj.sum() == ej.sum()
        total_subflows = sum(
            pc.get(topo.switch_of_host(s), topo.switch_of_host(d)).k
            for s, d in pat.flows
        )
        assert inj.sum() == total_subflows

    def test_switch_link_load_counts_path_hops(self, topo):
        pat = random_permutation(topo.n_hosts, seed=2)
        pc = cache(topo, k=4)
        r = model_throughput(topo, pat, pc)
        switch_load = r.link_load[: topo.n_switch_links].sum()
        total_hops = sum(
            p.hops
            for s, d in pat.flows
            for p in pc.get(topo.switch_of_host(s), topo.switch_of_host(d))
        )
        assert switch_load == total_hops

    def test_carried_load_feasible_after_rating(self, topo):
        # Rate every sub-flow at the model's prediction and re-accumulate
        # carried load: no link may exceed unit capacity.
        import numpy as np

        pat = random_permutation(topo.n_hosts, seed=2)
        pc = cache(topo, k=4)
        r = model_throughput(topo, pat, pc)
        carried = np.zeros(topo.n_links)
        for s, d in pat.flows:
            ss, ds = topo.switch_of_host(s), topo.switch_of_host(d)
            for p in pc.get(ss, ds):
                ids = [topo.injection_link(s), *topo.path_link_ids(p.nodes),
                       topo.ejection_link(d)]
                rate = 1.0 / r.link_load[ids].max()
                carried[ids] += rate
        assert (carried <= 1.0 + 1e-9).all()


class TestSeedStability:
    def test_model_is_deterministic_given_cache(self, topo):
        pat = random_permutation(topo.n_hosts, seed=5)
        pc = cache(topo, "redksp")
        a = model_throughput(topo, pat, pc)
        b = model_throughput(topo, pat, pc)
        assert np.array_equal(a.per_flow, b.per_flow)
