"""Unit and integration tests for the flit-level simulator."""

import numpy as np
import pytest

from repro import Jellyfish, PathCache
from repro.errors import ConfigurationError, SimulationError, TrafficError
from repro.netsim import (
    PatternTraffic,
    SimConfig,
    Simulator,
    UniformTraffic,
    latency_curve,
    saturation_throughput,
)
from repro.netsim.network import NetworkWiring
from repro.traffic import random_permutation, shift
from repro.traffic.patterns import Pattern

FAST = SimConfig(warmup_cycles=100, sample_cycles=100, n_samples=3)


@pytest.fixture(scope="module")
def topo():
    return Jellyfish(8, 8, 5, seed=3)  # 24 hosts


@pytest.fixture(scope="module")
def paths(topo):
    pc = PathCache(topo, "redksp", k=4, seed=1)
    return pc


class TestNetworkWiring:
    def test_port_maps_consistent(self, topo):
        w = NetworkWiring(topo)
        for s in range(topo.n_switches):
            for p, t in enumerate(topo.adjacency[s]):
                assert topo.adjacency[t][w.peer_port[s][p]] == s
                assert w.port_of[s][t] == p

    def test_route_ports_roundtrip(self, topo, paths):
        w = NetworkWiring(topo)
        ps = paths.get(0, 5)
        dst_host = topo.hosts_of_switch(5)[0]
        for p in ps:
            route = w.route_ports(p, dst_host)
            assert len(route) == p.hops + 1
            # Walking the ports reproduces the switch path.
            s = 0
            for i, port in enumerate(route[:-1]):
                s = topo.adjacency[s][port]
                assert s == p.nodes[i + 1]

    def test_route_rejects_wrong_destination_switch(self, topo, paths):
        w = NetworkWiring(topo)
        ps = paths.get(0, 5)
        wrong_host = topo.hosts_of_switch(3)[0]
        with pytest.raises(SimulationError, match="ends at switch"):
            w.route_ports(ps.minimal, wrong_host)

    def test_route_rejects_non_adjacent_step(self, topo):
        w = NetworkWiring(topo)
        non_nbr = next(
            v for v in range(topo.n_switches)
            if v != 0 and v not in topo.adjacency[0]
        )
        with pytest.raises(SimulationError, match="not a link"):
            w.route_ports((0, non_nbr), topo.hosts_of_switch(non_nbr)[0])

    def test_first_link(self, topo, paths):
        w = NetworkWiring(topo)
        p = paths.get(0, 5).minimal
        assert w.first_link(p) == topo.link_id(p.nodes[0], p.nodes[1])
        assert w.first_link((3,)) == -1


class TestTrafficSpecs:
    def test_uniform_never_self(self):
        t = UniformTraffic(10)
        rng = np.random.default_rng(0)
        assert all(t.dest(3, rng) != 3 for _ in range(100))

    def test_uniform_covers_all(self):
        t = UniformTraffic(6)
        rng = np.random.default_rng(0)
        assert {t.dest(2, rng) for _ in range(200)} == {0, 1, 3, 4, 5}

    def test_uniform_needs_two_hosts(self):
        with pytest.raises(TrafficError):
            UniformTraffic(1)

    def test_pattern_sources_restricted(self):
        pat = Pattern("two", 10, ((0, 1), (4, 2)))
        t = PatternTraffic(pat)
        assert t.sources().tolist() == [0, 4]
        rng = np.random.default_rng(0)
        assert t.dest(0, rng) == 1

    def test_pattern_multi_destination(self):
        pat = Pattern("fan", 10, ((0, 1), (0, 2), (0, 3)))
        t = PatternTraffic(pat)
        rng = np.random.default_rng(0)
        assert {t.dest(0, rng) for _ in range(100)} == {1, 2, 3}

    def test_switch_pairs_cover_pattern(self, topo):
        pat = random_permutation(topo.n_hosts, seed=0)
        t = PatternTraffic(pat)
        pairs = t.switch_pairs(topo)
        expect = {
            (topo.switch_of_host(s), topo.switch_of_host(d)) for s, d in pat.flows
        }
        assert set(pairs) == expect


class TestSimulatorMechanics:
    @pytest.mark.parametrize(
        "mechanism", ["sp", "random", "round_robin", "ugal", "ksp_ugal", "ksp_adaptive"]
    )
    def test_conservation_every_mechanism(self, topo, paths, mechanism):
        sim = Simulator(
            topo, paths, mechanism, UniformTraffic(topo.n_hosts), 0.3, FAST, seed=1
        )
        r = sim.run()
        sim.check_conservation()
        assert r.delivered > 0

    def test_zero_load_latency_is_pipeline_delay(self, topo, paths):
        # At a very low rate there is no queueing: latency of each packet is
        # exactly (hops + 2) * channel_latency, so the mean is a weighted
        # sum strictly inside the min/max pipeline delays.
        sim = Simulator(
            topo, paths, "sp", UniformTraffic(topo.n_hosts), 0.01,
            SimConfig(warmup_cycles=0, sample_cycles=500, n_samples=2), seed=1,
        )
        r = sim.run()
        lat = r.mean_latency
        cl = sim.config.channel_latency
        max_hops = max(
            p.hops for ps in paths._store.values() for p in ps
        )
        assert 2 * cl <= lat <= (max_hops + 2) * cl

    def test_accepted_tracks_offered_at_low_load(self, topo, paths):
        sim = Simulator(
            topo, paths, "random", UniformTraffic(topo.n_hosts), 0.2,
            SimConfig(warmup_cycles=200, sample_cycles=200, n_samples=5), seed=1,
        )
        r = sim.run()
        assert r.accepted_throughput == pytest.approx(0.2, rel=0.15)
        assert not r.saturated

    def test_full_load_still_makes_progress(self, topo, paths):
        # Deadlock freedom: at rate 1.0 the network must keep delivering.
        sim = Simulator(
            topo, paths, "random", UniformTraffic(topo.n_hosts), 1.0, FAST, seed=1
        )
        r = sim.run()
        sim.check_conservation()
        assert r.measured_delivered > 0

    def test_buffers_never_overflow(self, topo, paths):
        # Pokes reference-engine internals (per-buffer deques); the fast
        # engine's ring buffers get their own edge tests in
        # tests/test_simcore_equivalence.py.
        cfg = SimConfig(
            warmup_cycles=100, sample_cycles=100, n_samples=3, vc_buffer=4,
            engine="reference",
        )
        sim = Simulator(
            topo, paths, "random", UniformTraffic(topo.n_hosts), 0.9, cfg, seed=1
        )
        sim.run()
        assert sim.engine_name == "reference"
        for idx, q in enumerate(sim.in_q):
            assert len(q) <= cfg.vc_buffer
            assert 0 <= sim.free[idx] <= cfg.vc_buffer

    def test_occupancy_returns_to_in_flight_counts(self, topo, paths):
        # Reads reference-engine packet objects (in_q entries, _arrivals).
        cfg = SimConfig(
            warmup_cycles=100, sample_cycles=100, n_samples=3,
            engine="reference",
        )
        sim = Simulator(
            topo, paths, "random", UniformTraffic(topo.n_hosts), 0.1, cfg, seed=1
        )
        sim.run()
        # occupancy must equal queued-plus-flying switch-link packets.
        expect = np.zeros_like(sim.occupancy)
        for q in sim.in_q:
            for pkt in q:
                if pkt.in_link >= 0:
                    expect[pkt.in_link] += 1
        for (_, _, idx, pkt) in sim._arrivals:
            if idx >= 0 and pkt.in_link >= 0:
                expect[pkt.in_link] += 1
        assert np.array_equal(sim.occupancy, expect)

    def test_pattern_nonsenders_never_inject(self, topo, paths):
        pat = Pattern("one", topo.n_hosts, ((0, topo.n_hosts - 1),))
        sim = Simulator(topo, paths, "sp", PatternTraffic(pat), 0.5, FAST, seed=1)
        sim.run()
        assert set(sim.source_q) <= {0}

    def test_invalid_rate_rejected(self, topo, paths):
        for rate in (0.0, -0.1, 1.5):
            with pytest.raises(ConfigurationError):
                Simulator(topo, paths, "sp", UniformTraffic(topo.n_hosts), rate, FAST)

    def test_seeded_runs_reproduce(self, topo, paths):
        def run():
            sim = Simulator(
                topo, paths, "ksp_adaptive", UniformTraffic(topo.n_hosts),
                0.4, FAST, seed=42,
            )
            return sim.run()

        a, b = run(), run()
        assert a.delivered == b.delivered
        assert a.sample_latencies == b.sample_latencies

    def test_vc_count_covers_longest_route(self, topo, paths):
        sim = Simulator(
            topo, paths, "ugal", UniformTraffic(topo.n_hosts), 0.3, FAST, seed=1
        )
        assert sim.n_vcs >= sim.mechanism.max_route_hops() + 1

    @pytest.mark.parametrize("mechanism", ["random", "ugal", "ksp_adaptive"])
    def test_drain_empties_network(self, topo, paths, mechanism):
        # Deadlock-freedom: after stopping injection every packet departs.
        sim = Simulator(
            topo, paths, mechanism, UniformTraffic(topo.n_hosts), 0.9, FAST, seed=1
        )
        sim.run()
        extra = sim.drain()
        assert sim.in_flight() == 0
        assert sim.injected == sim.delivered
        assert extra >= 0
        sim.check_conservation()

    def test_drain_budget_exhaustion_raises(self, topo, paths):
        # A heavily loaded network cannot possibly empty in one cycle, so
        # an absurd drain budget must hit the SimulationError path instead
        # of silently returning with packets still in flight.
        cfg = SimConfig(
            warmup_cycles=100, sample_cycles=100, n_samples=3,
            drain_max_cycles=1,
        )
        sim = Simulator(
            topo, paths, "random", UniformTraffic(topo.n_hosts), 0.9, cfg, seed=1
        )
        sim.run()
        assert sim.in_flight() > 0
        with pytest.raises(SimulationError, match="failed to drain"):
            sim.drain()
        # The failed drain loses nothing: conservation still holds.
        sim.check_conservation()

    def test_zero_warmup_run(self, topo, paths):
        # warmup_cycles=0 means measurement starts at cycle 0; the run
        # must still produce coherent statistics and drain cleanly.
        cfg = SimConfig(warmup_cycles=0, sample_cycles=100, n_samples=3)
        sim = Simulator(
            topo, paths, "random", UniformTraffic(topo.n_hosts), 0.2, cfg, seed=2
        )
        result = sim.run()
        assert result.injected > 0
        assert result.measured_delivered == result.delivered
        assert result.mean_latency > 0
        assert not result.saturated
        sim.drain()
        sim.check_conservation()


class TestSimConfig:
    def test_defaults_match_paper(self):
        cfg = SimConfig()
        assert cfg.channel_latency == 10
        assert cfg.vc_buffer == 32
        assert cfg.warmup_cycles == 500
        assert cfg.measure_cycles == 5000
        assert cfg.n_samples == 10
        assert cfg.saturation_latency == 500.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SimConfig(channel_latency=0)
        with pytest.raises(ConfigurationError):
            SimConfig(warmup_cycles=-1)
        with pytest.raises(ConfigurationError):
            SimConfig(saturation_latency=0)

    def test_totals(self):
        cfg = SimConfig(warmup_cycles=100, sample_cycles=50, n_samples=4)
        assert cfg.total_cycles == 300


class TestSweeps:
    def test_latency_curve_monotone_latency(self, topo, paths):
        pts = latency_curve(
            topo, paths, "random", UniformTraffic(topo.n_hosts),
            rates=(0.1, 0.5, 0.9), config=FAST, seed=0,
            stop_after_saturation=False,
        )
        lats = [p.result.mean_latency for p in pts]
        assert lats[0] < lats[-1]

    def test_curve_stops_after_saturation(self, topo, paths):
        pts = latency_curve(
            topo, paths, "random", UniformTraffic(topo.n_hosts),
            rates=(0.9, 0.95, 1.0),
            config=SimConfig(
                warmup_cycles=100, sample_cycles=100, n_samples=3,
                saturation_latency=30.0,  # absurdly low: saturates instantly
            ),
            seed=0,
        )
        assert len(pts) == 1
        assert pts[0].result.saturated

    def test_saturation_throughput_reports_last_good_rate(self, topo, paths):
        th, pts = saturation_throughput(
            topo, paths, "random", UniformTraffic(topo.n_hosts),
            rates=(0.05, 0.1, 0.95, 1.0), config=FAST, seed=0,
        )
        assert 0.05 <= th <= 1.0
        good = [p.rate for p in pts if not p.result.saturated]
        assert th == (good[-1] if good else 0.0)

    def test_empty_rates_rejected(self, topo, paths):
        with pytest.raises(ConfigurationError):
            latency_curve(topo, paths, "random", UniformTraffic(topo.n_hosts), rates=())
