"""Arena-backed path caches are indistinguishable from dict-backed ones.

The tentpole contract of the CSR arena: attaching a table as a
:class:`~repro.core.arena.PathArena` instead of materialised PathSets
must not change a single bit of any engine's results or telemetry — the
arena is storage, not behaviour.  This module pins that across all three
engine tiers (reference, fast, batched), plus the perf mechanics the
arena exists for: the per-cache route core is built once and shared by
every VC layout, grid workers receive a tiny shared-memory descriptor
instead of pickled path tables, parallel precompute merges worker-owned
arena shards, and a 5000-switch topology warms and runs under an
on-demand pair budget (the ``slow``-marked smoke).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pickle

import numpy as np
import pytest

from repro import ArenaStore, Jellyfish, PathArena, PathCache
from repro.netsim import PatternTraffic, SimConfig, Simulator, UniformTraffic
from repro.netsim.batchcore import BatchLane, BatchSimulator
from repro.netsim.fastcore import FastSimulator
from repro.netsim.parallel import _ship_states, run_saturation_grid
from repro.obs import metrics
from repro.traffic import random_permutation
from repro.traffic.patterns import Pattern

CYCLES = dict(warmup_cycles=60, sample_cycles=60, n_samples=2)


def _topo():
    return Jellyfish(8, 8, 5, seed=3)  # 24 hosts


def _dict_cache(topo):
    """A fully warmed dict-backed cache, counters reset (the legacy way)."""
    paths = PathCache(topo, "redksp", k=4, seed=1)
    for s in range(topo.n_switches):
        for d in range(topo.n_switches):
            paths.get(s, d)
    paths.hits = paths.misses = 0
    return paths


def _arena_cache(topo):
    """The same table attached as a CSR arena to a fresh cache."""
    arena = PathArena.from_cache(_dict_cache(topo))
    paths = PathCache(topo, "redksp", k=4, seed=1)
    paths.attach_arena(arena)
    assert len(paths._store) == 0  # nothing materialised yet
    return paths


def _sha(doc) -> str:
    blob = json.dumps(doc, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def _strip_timers(snap):
    # Wall-clock timers and throughput gauges differ run to run;
    # everything else must match.
    doc = {k: v for k, v in (snap or {}).items() if k != "timers"}
    doc["gauges"] = {
        k: v
        for k, v in doc.get("gauges", {}).items()
        if not k.startswith("netsim.cycles_per_sec/")
    }
    return doc


def _run_single(paths, engine, mechanism="ksp_adaptive", rate=0.4):
    topo = paths.topology
    cfg = SimConfig(**CYCLES, engine=engine)
    with metrics.capture() as reg:
        sim = Simulator(
            topo, paths, mechanism,
            PatternTraffic(random_permutation(topo.n_hosts, seed=5)),
            rate, cfg, seed=11,
        )
        result = sim.run()
        extra = sim.drain()
    sim.check_conservation()
    doc = dataclasses.asdict(result)
    doc.pop("config")
    return _sha({
        "result": doc,
        "drain_cycles": extra,
        "credit_stalls": sim.credit_stalls,
        "rng_state": sim.rng.bit_generator.state,
        "cache": (paths.hits, paths.misses),
        "telemetry": _strip_timers(reg.snapshot()),
    })


def _run_batched(paths):
    topo = paths.topology
    lanes = [
        BatchLane(
            mech,
            PatternTraffic(random_permutation(topo.n_hosts, seed=5)),
            injection_rate=0.3 + 0.1 * i,
            seed=11 + i,
        )
        for i, mech in enumerate(("ksp_ugal", "ksp_adaptive"))
    ]
    cfg = SimConfig(**CYCLES, engine="fast", batch_lanes=len(lanes))
    with metrics.capture() as reg:
        batch = BatchSimulator(topo, paths, lanes, cfg)
        results = batch.run()
        drains = batch.drain()
    batch.check_conservation()
    return _sha({
        "results": [
            {
                k: v
                for k, v in dataclasses.asdict(results[i]).items()
                if k != "config"
            }
            for i in range(len(lanes))
        ],
        "drains": drains,
        "stalls": [int(s) for s in batch.credit_stalls],
        "rng_states": [r.bit_generator.state for r in batch.rngs],
        "cache": (paths.hits, paths.misses),
        "telemetry": _strip_timers(reg.snapshot()),
    })


class TestEngineEquivalence:
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_single_engine_sha_identical(self, engine):
        topo = _topo()
        assert _run_single(_arena_cache(topo), engine) == _run_single(
            _dict_cache(topo), engine
        )

    def test_fast_engine_across_mechanisms(self):
        topo = _topo()
        for mechanism in ("sp", "random", "ksp_ugal"):
            assert _run_single(
                _arena_cache(topo), "fast", mechanism
            ) == _run_single(_dict_cache(topo), "fast", mechanism)

    def test_batched_engine_sha_identical(self):
        topo = _topo()
        assert _run_batched(_arena_cache(topo)) == _run_batched(
            _dict_cache(topo)
        )


class TestRouteCoreSharing:
    def test_route_core_built_once_across_vc_layouts(self):
        # Two mechanisms with different VC ladders on one cache: the CSR
        # route tables must be built once and shared; only the thin
        # per-n_vcs view (the baked rf_nxt hop targets) differs.
        topo = _topo()
        paths = _arena_cache(topo)
        for mechanism, rate in (("sp", 0.3), ("ksp_adaptive", 0.3)):
            sim = Simulator(
                topo, paths, mechanism, UniformTraffic(topo.n_hosts),
                rate, SimConfig(**CYCLES, engine="fast"), seed=7,
            )
            assert isinstance(sim, FastSimulator)
            sim.run()
        views = paths.__dict__["_fastcore_tables"]
        core = paths.__dict__["_route_core"]
        assert len(views) >= 2  # sp's hop cap != the KSP ladder bound
        for n_vcs, view in views.items():
            assert view.core is core
            assert view.r_nodes is core.r_nodes  # shared, not copied
            for j in range(len(core.rf_slot)):
                assert view.rf_nxt[j] == (
                    core.rf_slot[j] * n_vcs + core.rf_vc[j]
                )


class TestGridShipping:
    def _warm_caches(self, topo, schemes, pairs):
        caches = {}
        for scheme in schemes:
            cache = PathCache(topo, scheme, k=4, seed=1)
            cache.precompute(pairs)
            caches[scheme] = cache
        return caches

    def test_pool_payload_is_descriptor_not_pickled_tables(self):
        topo = _topo()
        pairs = [
            (s, d) for s in range(topo.n_switches)
            for d in range(topo.n_switches) if s != d
        ]
        caches = self._warm_caches(topo, ("ksp", "redksp"), pairs)
        legacy_blob = pickle.dumps(
            {s: c.export_state() for s, c in caches.items()}
        )

        states, shms = _ship_states(caches, processes=2)
        try:
            blob = pickle.dumps(states)
            # The entire per-worker payload is a few hundred bytes of
            # descriptor — no path data, no PathSet pickles — where the
            # legacy snapshot shipped the whole table per worker.
            assert len(blob) < 2048
            assert b"PathSet" not in blob and b"paths" not in blob
            assert len(legacy_blob) > 10 * len(blob)
            for scheme, cache in caches.items():
                attached = PathArena.from_shm(states[scheme])
                for s, d in pairs[:20]:
                    assert [
                        p.nodes for p in attached.pathset(s, d)
                    ] == [p.nodes for p in cache.get(s, d)]
                del attached
        finally:
            for shm in shms:
                shm.close()
                shm.unlink()

    def test_inline_ship_is_arena_backed(self):
        topo = _topo()
        caches = self._warm_caches(topo, ("ksp",), [(0, 1), (2, 3)])
        states, shms = _ship_states(caches, processes=1)
        assert shms == []
        assert isinstance(states["ksp"], PathArena)
        assert sorted(states["ksp"].pairs()) == [(0, 1), (2, 3)]

    def test_grid_results_identical_inline_vs_pool(self):
        topo = _topo()
        kwargs = dict(
            schemes=("redksp",),
            mechanisms=("sp", "ksp_adaptive"),
            patterns=[random_permutation(topo.n_hosts, seed=5)],
            k=4,
            rates=[0.2, 0.4],
            config=SimConfig(warmup_cycles=40, sample_cycles=40, n_samples=1),
            seed=9,
        )
        inline = run_saturation_grid(topo, processes=1, **kwargs)
        pooled = run_saturation_grid(topo, processes=2, **kwargs)
        assert inline == pooled


class TestParallelPrecomputeShards:
    def test_worker_shards_merge_into_arena(self):
        topo = Jellyfish(36, 24, 16, seed=1)
        rng = np.random.default_rng(3)
        pairs = set()
        while len(pairs) < 40:
            s, d = (int(x) for x in rng.integers(0, topo.n_switches, 2))
            if s != d:
                pairs.add((s, d))
        pairs = sorted(pairs)

        serial = PathCache(topo, "rksp", k=8, seed=5)
        serial.precompute_parallel(pairs, processes=1)
        parallel = PathCache(topo, "rksp", k=8, seed=5)
        assert parallel.precompute_parallel(pairs, processes=4) == len(pairs)
        # Worker results land as merged arena shards, not dict entries.
        assert parallel.arena is not None
        assert sorted(parallel.arena.pairs()) == pairs
        for s, d in pairs:
            assert [p.nodes for p in parallel.peek(s, d)] == [
                p.nodes for p in serial.get(s, d)
            ]


@pytest.mark.slow
class TestLargeTopologySmoke:
    def test_5k_switch_on_demand_precompute_and_run(self, tmp_path):
        # A 5000-switch Jellyfish is far beyond full-table reach (25M
        # pairs); the on-demand pipeline — warm only the pairs a pattern
        # touches, persist and reload them as a memory-mapped arena — must
        # take it through a full cycle-accurate run in seconds.
        topo = Jellyfish(5000, 12, 8, seed=1)
        rng = np.random.default_rng(0)
        hosts = rng.choice(topo.n_hosts, size=(40, 2), replace=False)
        flows = [(int(a), int(b)) for a, b in hosts if int(a) != int(b)][:32]
        pattern = Pattern("smoke", topo.n_hosts, flows)
        pairs = sorted({
            (topo.switch_of_host(s), topo.switch_of_host(d))
            for s, d in flows
        })

        store = ArenaStore(tmp_path)
        warm = PathCache(topo, "rksp", k=4, seed=2)
        assert warm.warm(pairs, store=store) == len(pairs)

        paths = PathCache(topo, "rksp", k=4, seed=2)
        assert store.load(paths) == len(pairs)  # mmap-backed, zero compute
        cfg = SimConfig(warmup_cycles=30, sample_cycles=30, n_samples=1)
        sim = Simulator(
            topo, paths, "ksp_adaptive", PatternTraffic(pattern),
            0.3, cfg, seed=5,
        )
        result = sim.run()
        sim.drain()
        sim.check_conservation()
        assert result.delivered > 0
        assert paths.misses == 0  # every route came from the arena
