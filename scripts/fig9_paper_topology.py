#!/usr/bin/env python
"""Figure 7/9 on the paper's real small topology RRG(36,24,16).

Uses the paper's k=8 and rate ladder but a shortened measurement window
(5 x 300 cycles instead of 10 x 500) so the sweep finishes in tens of
minutes on one core.  Results feed EXPERIMENTS.md.
"""

import time

from repro import Jellyfish, PathCache
from repro.netsim import PatternTraffic, SimConfig, saturation_throughput
from repro.traffic import random_permutation, random_shift
from repro.utils.tables import format_table

TOPO = (36, 24, 16)
K = 8
SCHEMES = ("ksp", "redksp")
MECHANISMS = ("random", "round_robin", "ugal", "ksp_ugal", "ksp_adaptive")
RATES = [round(0.05 * i, 2) for i in range(8, 21)]  # 0.40 .. 1.00
CONFIG = SimConfig(warmup_cycles=300, sample_cycles=300, n_samples=5)


def main() -> None:
    topo = Jellyfish(*TOPO, seed=1)
    n = topo.n_hosts
    for name, pattern in (
        ("permutation", random_permutation(n, seed=3)),
        ("shift", random_shift(n, seed=3)),
    ):
        rows = []
        for scheme in SCHEMES:
            cache = PathCache(topo, scheme, k=K, seed=1)
            row = [scheme]
            for mech in MECHANISMS:
                t0 = time.time()
                th, _ = saturation_throughput(
                    topo, cache, mech, PatternTraffic(pattern),
                    rates=RATES, config=CONFIG, seed=0,
                )
                row.append(th)
                print(
                    f"# {name} {scheme} {mech}: throughput={th:.2f} "
                    f"({time.time() - t0:.0f}s)",
                    flush=True,
                )
            rows.append(row)
        print(
            format_table(
                ["scheme"] + list(MECHANISMS), rows,
                title=f"saturation throughput, {name} on RRG(36,24,16), k={K}",
                ndigits=2,
            ),
            flush=True,
        )


if __name__ == "__main__":
    main()
