#!/usr/bin/env python
"""Quick flit-level check on the paper's real small topology RRG(36,24,16).

A single-core-friendly version of the Figures 7/9 protocol: k = 8, shift
traffic (where the paper's differences are largest) plus one permutation,
coarse rate ladder, shortened 3 x 200-cycle measurement window.  Prints
one line per cell so partial runs are still usable.
"""

import time

from repro import Jellyfish, PathCache
from repro.netsim import PatternTraffic, SimConfig, saturation_throughput
from repro.traffic import random_permutation, random_shift
from repro.utils.tables import format_table

K = 8
SCHEMES = ("ksp", "redksp")
MECHANISMS = ("random", "round_robin", "ksp_ugal", "ksp_adaptive")
RATES = [0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
CONFIG = SimConfig(warmup_cycles=200, sample_cycles=200, n_samples=3)


def main() -> None:
    topo = Jellyfish(36, 24, 16, seed=1)
    n = topo.n_hosts
    for name, pattern in (
        ("shift", random_shift(n, seed=3)),
        ("permutation", random_permutation(n, seed=3)),
    ):
        rows = []
        for scheme in SCHEMES:
            cache = PathCache(topo, scheme, k=K, seed=1)
            row = [scheme]
            for mech in MECHANISMS:
                t0 = time.time()
                th, _ = saturation_throughput(
                    topo, cache, mech, PatternTraffic(pattern),
                    rates=RATES, config=CONFIG, seed=0,
                )
                row.append(th)
                print(
                    f"# {name} {scheme} {mech}: throughput={th:.2f} "
                    f"({time.time() - t0:.0f}s)",
                    flush=True,
                )
            rows.append(row)
        print(
            format_table(
                ["scheme"] + list(MECHANISMS), rows,
                title=f"saturation throughput, {name} on RRG(36,24,16), k={K}",
                ndigits=2,
            ),
            flush=True,
        )


if __name__ == "__main__":
    main()
