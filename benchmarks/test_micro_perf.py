"""Micro-benchmarks of the performance-critical primitives.

These are real pytest-benchmark measurements (multiple rounds) for the
inner-loop building blocks, so regressions in the hot paths show up even
when the experiment-level benchmarks drown them in fixed cost.
"""

import numpy as np
import pytest

from repro import Jellyfish, PathCache
from repro.appsim.fairshare import maxmin_rates
from repro.core.yen import k_shortest_paths
from repro.netsim import SimConfig, Simulator, UniformTraffic, run_saturation_grid
from repro.obs import flowstats
from repro.obs import linkstate
from repro.obs import metrics
from repro.obs import timeseries
from repro.obs import trace
from repro.topology.metrics import average_shortest_path_length
from repro.topology.rrg import random_regular_graph
from repro.traffic import random_permutation


@pytest.fixture(scope="module")
def topo36():
    return Jellyfish(36, 24, 16, seed=1)


def test_perf_rrg_construction(benchmark):
    """Incremental Jellyfish construction, paper small topology."""
    adj = benchmark(random_regular_graph, 36, 16, 1)
    assert len(adj) == 36


def test_perf_bfs_metrics(benchmark, topo36):
    """All-pairs BFS average shortest path length on RRG(36,24,16)."""
    apl = benchmark(average_shortest_path_length, topo36.adjacency)
    assert 1.3 < apl < 1.8


def test_perf_yen_k8(benchmark, topo36):
    """One Yen KSP(8) invocation on the paper's small topology."""
    paths = benchmark(k_shortest_paths, topo36.adjacency, 0, 20, 8)
    assert len(paths) == 8


def test_perf_edksp_pathcache_warm(benchmark, topo36):
    """Remove-Find over 100 switch pairs."""

    def warm():
        cache = PathCache(topo36, "redksp", k=8, seed=0)
        cache.precompute((0, d) for d in range(1, 26))
        cache.precompute((7, d) for d in range(8, 33))
        return cache

    cache = benchmark(warm)
    assert len(cache) == 50


def test_perf_precompute_allpairs_rksp(benchmark, topo36):
    """Warm all-pairs rKSP(8) precompute on RRG(36,24,16).

    The acceptance benchmark of the fast-path pipeline: every pair of the
    paper's small topology through Yen with randomized tie-breaking.
    """

    def warm():
        cache = PathCache(topo36, "rksp", k=8, seed=0)
        cache.precompute(
            (s, d) for s in range(36) for d in range(36) if s != d
        )
        return cache

    cache = benchmark.pedantic(warm, rounds=2, iterations=1)
    assert len(cache) == 36 * 35


def test_perf_fairshare_waterfill(benchmark):
    """Max-min water-filling: 2000 flows over 500 links."""
    rng = np.random.default_rng(0)
    flows = [np.unique(rng.integers(0, 500, size=5)) for _ in range(2000)]

    rates = benchmark(maxmin_rates, flows, 10.0, 500)
    assert (rates > 0).all()


@pytest.mark.obs
def test_perf_simulator_cycles(benchmark):
    """Flit-level simulator throughput: cycles/second at moderate load.

    This is the telemetry layer's perf guard: the simulator is now
    instrumented (flit/stall tallies, link-flit array, occupancy
    sampling) but metrics stay *disabled* here, and ``compare.py`` gates
    this benchmark against the pre-instrumentation baseline — so any
    disabled-mode overhead above the threshold fails the perf harness.
    """
    assert not metrics.enabled()
    assert not timeseries.enabled()
    benchmark.extra_info["engines"] = ["fast"]
    topo = Jellyfish(12, 10, 6, seed=7)
    cache = PathCache(topo, "redksp", k=4, seed=1)
    cfg = SimConfig(warmup_cycles=100, sample_cycles=100, n_samples=2)

    def run():
        sim = Simulator(
            topo, cache, "ksp_adaptive", UniformTraffic(topo.n_hosts),
            0.5, cfg, seed=0,
        )
        return sim.run()

    r = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert r.delivered > 0
    assert metrics.snapshot() is None


@pytest.mark.obs
def test_perf_simulator_cycles_reference(benchmark):
    """The same workload on the reference (object-per-packet) engine.

    Committed next to ``test_perf_simulator_cycles`` so every benchmark
    export records the fast-core speedup as the ratio of the two rows;
    the CI perf-smoke job gates the fast row, and this one documents
    what it is being compared against.
    """
    benchmark.extra_info["engines"] = ["reference"]
    topo = Jellyfish(12, 10, 6, seed=7)
    cache = PathCache(topo, "redksp", k=4, seed=1)
    cfg = SimConfig(
        warmup_cycles=100, sample_cycles=100, n_samples=2,
        engine="reference",
    )

    def run():
        sim = Simulator(
            topo, cache, "ksp_adaptive", UniformTraffic(topo.n_hosts),
            0.5, cfg, seed=0,
        )
        return sim.run()

    r = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert r.delivered > 0


@pytest.fixture(scope="module")
def grid_workload():
    """Shared saturation-grid workload for the engine-tier comparison.

    A mid-size topology with long average paths: enough vectorizable
    router work per cycle for the batched tier to amortise its per-cycle
    fixed costs, at a load below the congestion knee.  The batched win
    grows with topology size (more lanes' worth of numpy work per
    interpreter pass), so this size keeps the CI gate's 2x well clear
    of single-box timing noise.
    """
    topo = Jellyfish(128, 10, 6, seed=7)
    pats = [random_permutation(topo.n_hosts, seed=s) for s in range(4)]
    return topo, pats


def _run_grid(topo, pats, batch_lanes):
    cfg = SimConfig(
        warmup_cycles=200, sample_cycles=200, n_samples=2,
        batch_lanes=batch_lanes,
    )
    return run_saturation_grid(
        topo, ["redksp"], ["ksp_adaptive", "ksp_ugal"], pats,
        k=4, rates=(0.3,), config=cfg, seed=0, processes=1,
    )


@pytest.mark.obs
def test_perf_grid_percell(benchmark, grid_workload):
    """Warm saturation grid on the per-cell fast engine (batch_lanes=1).

    The baseline row of the batched-tier speedup: ``compare.py
    --require-speedup`` divides this row's mean by the batched row's and
    the CI perf-smoke job fails below 2x.
    """
    benchmark.extra_info["engines"] = ["fast"]
    topo, pats = grid_workload
    grid = benchmark.pedantic(
        lambda: _run_grid(topo, pats, 1),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    assert all(0.0 <= v <= 1.0 for v in grid.values())


@pytest.mark.obs
def test_perf_grid_batched(benchmark, grid_workload):
    """The same warm grid on the batched multi-lane engine (8 lanes).

    Produces byte-identical grid results to the per-cell row (pinned by
    ``tests/test_batchcore_equivalence.py``); only the wall clock may
    differ.
    """
    benchmark.extra_info["engines"] = ["batched"]
    topo, pats = grid_workload
    grid = benchmark.pedantic(
        lambda: _run_grid(topo, pats, 8),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    assert all(0.0 <= v <= 1.0 for v in grid.values())


def test_perf_path_index_map(benchmark):
    """Memoised ``PathCache.path_index_map`` vs per-call dict rebuild.

    The launch loop used to rebuild ``{path nodes: index}`` for every
    traced packet; the memoised map makes the lookup O(1) after the
    first call per pair.  Benchmarked over every warmed pair to show the
    amortised cost (compare ``test_perf_path_index_map_rebuild``).
    """
    topo = Jellyfish(12, 10, 6, seed=7)
    cache = PathCache(topo, "redksp", k=4, seed=1)
    pairs = [(s, d) for s in range(10) for d in range(10) if s != d]
    cache.precompute(pairs)
    for s, d in pairs:
        cache.path_index_map(s, d)

    def lookup():
        total = 0
        for s, d in pairs:
            total += len(cache.path_index_map(s, d))
        return total

    n = benchmark(lookup)
    assert n > 0


def test_perf_path_index_map_rebuild(benchmark):
    """The pre-memoisation behaviour: rebuild the index map per call."""
    topo = Jellyfish(12, 10, 6, seed=7)
    cache = PathCache(topo, "redksp", k=4, seed=1)
    pairs = [(s, d) for s in range(10) for d in range(10) if s != d]
    cache.precompute(pairs)

    def rebuild():
        total = 0
        for s, d in pairs:
            total += len({p.nodes: i for i, p in enumerate(cache.get(s, d))})
        return total

    n = benchmark(rebuild)
    assert n > 0


@pytest.mark.obs
def test_perf_simulator_cycles_traced(benchmark):
    """The same workload with the flight recorder at ``--trace-sample 64``.

    Reports the sampled-tracing overhead next to the untraced run, so the
    cost of ``--trace-sample 64`` is a number in every benchmark
    comparison (and, once a committed baseline includes this row, gated
    like the other ``simulator`` benchmarks).
    """
    assert not trace.enabled()
    benchmark.extra_info["engines"] = ["fast"]
    topo = Jellyfish(12, 10, 6, seed=7)
    cache = PathCache(topo, "redksp", k=4, seed=1)
    cfg = SimConfig(warmup_cycles=100, sample_cycles=100, n_samples=2)

    def run():
        with trace.capture(sample=64) as rec:
            sim = Simulator(
                topo, cache, "ksp_adaptive", UniformTraffic(topo.n_hosts),
                0.5, cfg, seed=0,
            )
            result = sim.run()
        assert rec.n_packets > 0
        return result

    r = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert r.delivered > 0
    assert not trace.enabled()


@pytest.mark.obs
def test_perf_simulator_cycles_timeseries(benchmark):
    """The same workload with the windowed time-series recorder on.

    Reports the cost of ``--timeseries-window 100`` (per-window flushes,
    latency tracking, per-window link-flit tallies) next to the plain and
    traced runs, so enabled-mode overhead is a number in every benchmark
    comparison.
    """
    assert not timeseries.enabled()
    benchmark.extra_info["engines"] = ["fast"]
    topo = Jellyfish(12, 10, 6, seed=7)
    cache = PathCache(topo, "redksp", k=4, seed=1)
    cfg = SimConfig(warmup_cycles=100, sample_cycles=100, n_samples=2)

    def run():
        with timeseries.capture(window=100) as rec:
            sim = Simulator(
                topo, cache, "ksp_adaptive", UniformTraffic(topo.n_hosts),
                0.5, cfg, seed=0,
            )
            result = sim.run()
        assert rec.n_windows > 0
        return result

    r = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert r.delivered > 0
    assert not timeseries.enabled()


@pytest.mark.obs
def test_perf_simulator_cycles_linkstate(benchmark):
    """The same workload with the dense link-state recorder on.

    The congestion-forensics perf guard: ``--linkstate 100`` tallies
    per-link forwarded flits and credit stalls every cycle and samples
    peak VC occupancy at end of cycle, all into preallocated window
    matrices.  The CI perf-smoke job gates this row against the plain
    ``test_perf_simulator_cycles`` run and fails when the enabled-mode
    overhead exceeds 10%.
    """
    assert not linkstate.enabled()
    benchmark.extra_info["engines"] = ["fast"]
    topo = Jellyfish(12, 10, 6, seed=7)
    cache = PathCache(topo, "redksp", k=4, seed=1)
    cfg = SimConfig(warmup_cycles=100, sample_cycles=100, n_samples=2)

    def run():
        with linkstate.capture(window=100) as rec:
            sim = Simulator(
                topo, cache, "ksp_adaptive", UniformTraffic(topo.n_hosts),
                0.5, cfg, seed=0,
            )
            result = sim.run()
        assert rec.n_windows > 0
        return result

    r = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert r.delivered > 0
    assert not linkstate.enabled()


@pytest.mark.obs
def test_perf_simulator_cycles_flowstats(benchmark):
    """The same workload with the per-pair flow-stats recorder on.

    The flow-SLO perf guard: ``--flowstats`` tags every measured ejection
    with its (src, dst) pair and folds the per-run latency lists into
    dense per-pair columns plus an exact latency histogram at end of run.
    The CI perf-smoke job gates this row against the plain
    ``test_perf_simulator_cycles`` run and fails when the enabled-mode
    overhead exceeds 10%.
    """
    assert not flowstats.enabled()
    benchmark.extra_info["engines"] = ["fast"]
    topo = Jellyfish(12, 10, 6, seed=7)
    cache = PathCache(topo, "redksp", k=4, seed=1)
    cfg = SimConfig(warmup_cycles=100, sample_cycles=100, n_samples=2)

    def run():
        with flowstats.capture() as rec:
            sim = Simulator(
                topo, cache, "ksp_adaptive", UniformTraffic(topo.n_hosts),
                0.5, cfg, seed=0,
            )
            result = sim.run()
        assert len(rec.runs) > 0
        return result

    r = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert r.delivered > 0
    assert not flowstats.enabled()


# --------------------------------------------------------------------------
# Path-table store: legacy gzip-JSON vs CSR arena, at production scale
# --------------------------------------------------------------------------

@pytest.fixture(scope="module")
def store_workload(tmp_path_factory):
    """A 1024-switch Jellyfish with 5000 on-demand pairs, persisted twice.

    Large enough that the legacy store's per-path JSON parse dominates its
    load, which is exactly the cost the arena's mmap load removes; the
    same warmed table is saved once through each store so the two load
    rows read identical content.
    """
    import pickle

    from repro.core.store import ArenaStore, PathStore

    topo = Jellyfish(1024, 10, 6, seed=7)
    rng = np.random.default_rng(1)
    pairs = set()
    while len(pairs) < 5000:
        s, d = (int(x) for x in rng.integers(0, topo.n_switches, 2))
        if s != d:
            pairs.add((s, d))
    cache = PathCache(topo, "sp", k=1, seed=3)
    cache.precompute(sorted(pairs))
    legacy = PathStore(tmp_path_factory.mktemp("legacy-store"))
    arena = ArenaStore(tmp_path_factory.mktemp("arena-store"))
    legacy.save(cache)
    arena.save(cache)
    return topo, cache, legacy, arena


def test_perf_store_load_legacy_json(benchmark, store_workload):
    """Warm start through the legacy gzip-JSON store: parse every path.

    The baseline row of the arena-store speedup gate: ``compare.py
    --require-speedup`` divides this row's mean by the arena row's and
    the CI perf-smoke job fails below 3x.
    """
    topo, _, legacy, _ = store_workload

    def load():
        fresh = PathCache(topo, "sp", k=1, seed=3)
        return legacy.load(fresh)

    assert benchmark(load) == 5000


def test_perf_store_load_arena_mmap(benchmark, store_workload):
    """The same warm start through the memory-mapped CSR arena store.

    Loads attach the flat arrays without touching path bytes; PathSet
    views materialise lazily on first use, so a warm start costs file
    metadata instead of a 5000-table JSON parse.
    """
    topo, _, _, arena = store_workload

    def load():
        fresh = PathCache(topo, "sp", k=1, seed=3)
        return arena.load(fresh)

    assert benchmark(load) == 5000


def test_perf_ship_states_legacy_pickle(benchmark, store_workload):
    """Per-worker path-table shipping, the pre-arena way: pickle round
    trip of the ``{(s, d): PathSet}`` snapshot plus ``import_state``.

    This is what every pool worker paid at initializer time (the payload
    also crossed the process pipe); the payload bytes land in
    ``extra_info`` next to the descriptor row's.
    """
    import pickle

    topo, cache, _, _ = store_workload
    state = cache.export_state()
    benchmark.extra_info["payload_bytes"] = len(pickle.dumps(state))

    def ship():
        worker = PathCache(topo, "sp", k=1, seed=3)
        worker.import_state(pickle.loads(pickle.dumps(state)))
        return len(worker)

    assert benchmark(ship) == 5000


def test_perf_ship_states_arena_shm(benchmark, store_workload):
    """The same shipping through a shared-memory arena descriptor.

    The parent copies the arena into one SharedMemory block once per
    grid; each worker then unpickles a ~200-byte descriptor and attaches
    zero-copy views.  Gated >= 3x over the pickle row by the CI
    perf-smoke job (measured closer to 100x).
    """
    import pickle

    from repro.core.arena import PathArena

    topo, cache, _, _ = store_workload
    shm, descriptor = PathArena.from_cache(cache).to_shm()
    benchmark.extra_info["payload_bytes"] = len(pickle.dumps(descriptor))
    try:

        def ship():
            worker = PathCache(topo, "sp", k=1, seed=3)
            worker.attach_arena(
                PathArena.from_shm(pickle.loads(pickle.dumps(descriptor)))
            )
            return len(worker)

        assert benchmark(ship) == 5000
    finally:
        shm.close()
        shm.unlink()
