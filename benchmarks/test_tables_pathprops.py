"""Benchmarks for Tables I-IV: topology metrics and path quality."""

from repro.experiments import run_experiment


def test_table1_topology(once):
    """Table I: build the topology trio and measure avg shortest path."""
    r = once(run_experiment, "table1", scale="small", seed=0)
    for label, d in r.data.items():
        assert d["apl"] > 1.0


def test_table2_path_length(once):
    """Table II: average path length per scheme."""
    r = once(run_experiment, "table2", scale="small", seed=0)
    for label, per_scheme in r.data.items():
        base = per_scheme["ksp"]["average_path_length"]
        # The heuristics add at most a few percent of length (paper: <=4.6%).
        for scheme in ("rksp", "edksp", "redksp"):
            assert per_scheme[scheme]["average_path_length"] <= base * 1.10


def test_table3_disjoint_fraction(once):
    """Table III: ED schemes 100% disjoint; KSP schemes far below."""
    r = once(run_experiment, "table3", scale="small", seed=0)
    for label, per_scheme in r.data.items():
        assert per_scheme["edksp"]["fraction_disjoint_pairs"] == 1.0
        assert per_scheme["redksp"]["fraction_disjoint_pairs"] == 1.0
        assert per_scheme["ksp"]["fraction_disjoint_pairs"] < 0.5


def test_table4_max_sharing(once):
    """Table IV: worst-case link sharing 1 for ED schemes, >1 for KSP."""
    r = once(run_experiment, "table4", scale="small", seed=0)
    for label, per_scheme in r.data.items():
        assert per_scheme["edksp"]["max_link_sharing"] <= 1
        assert per_scheme["redksp"]["max_link_sharing"] <= 1
        assert per_scheme["ksp"]["max_link_sharing"] >= 2
