"""Benchmarks for Figures 7-10: flit-level saturation throughput."""

import numpy as np

from repro.experiments import run_experiment


def _sanity(data, schemes=("ksp", "redksp")):
    for scheme in schemes:
        for mech, th in data[scheme].items():
            assert 0.0 <= th <= 1.0


def test_fig7_saturation_permutation_small(once):
    """Figure 7: permutation saturation throughput, small topology."""
    r = once(run_experiment, "fig7", scale="small", seed=0)
    _sanity(r.data)
    # rEDKSP at least matches KSP on average across mechanisms.
    mean = lambda s: np.mean(list(r.data[s].values()))
    assert mean("redksp") >= mean("ksp") - 0.05


def test_fig8_saturation_permutation_medium(once):
    """Figure 8: permutation saturation throughput, larger topology."""
    r = once(run_experiment, "fig8", scale="small", seed=0)
    _sanity(r.data)


def test_fig9_saturation_shift_small(once):
    """Figure 9: shift saturation throughput, small topology."""
    r = once(run_experiment, "fig9", scale="small", seed=0)
    _sanity(r.data)
    # The paper's headline on demanding shift traffic: KSP-adaptive is the
    # best mechanism and beats KSP-UGAL clearly.
    for scheme in ("ksp", "redksp"):
        assert r.data[scheme]["ksp_adaptive"] >= r.data[scheme]["ksp_ugal"]


def test_fig10_saturation_shift_medium(once):
    """Figure 10: shift saturation throughput, larger topology."""
    r = once(run_experiment, "fig10", scale="small", seed=0)
    _sanity(r.data)
