"""Benchmarks for Tables V and VI: stencil communication times."""

from repro.experiments import run_experiment

APPS = ("2dnn", "2dnndiag", "3dnn", "3dnndiag")


def _sanity(data):
    for scheme, per_app in data.items():
        for app in APPS:
            assert per_app[app] > 0
    # rEDKSP is competitive overall: mean time within 10% of the best
    # scheme (at paper scale it wins outright; toy scale leaves noise).
    means = {s: sum(per_app[a] for a in APPS) / len(APPS) for s, per_app in data.items()}
    assert means["redksp"] <= min(means.values()) * 1.10


def test_table5_stencil_linear_mapping(once):
    """Table V: linear mapping communication times."""
    r = once(run_experiment, "table5", scale="small", seed=0)
    _sanity(r.data)


def test_table6_stencil_random_mapping(once):
    """Table VI: random mapping communication times."""
    r = once(run_experiment, "table6", scale="small", seed=0)
    _sanity(r.data)
