"""Ablation benchmarks for the design choices DESIGN.md calls out.

- ``k`` sweep: how path count affects quality and modelled throughput;
- randomization on/off at fixed selector (the Figures 4-6 claim isolated);
- adaptive latency-estimate flavour ("path" vs classic UGAL-L "first");
- adaptive chunk count in the flow-level simulator;
- model-versus-flow-simulator agreement on one workload.
"""

import numpy as np

from repro import Jellyfish, PathCache
from repro.appsim import build_workload, run_flows
from repro.core.properties import path_quality_report
from repro.experiments.presets import TopoSpec
from repro.model import model_throughput
from repro.netsim import PatternTraffic, SimConfig, saturation_throughput
from repro.traffic import random_permutation, shift


def test_ablation_k_sweep(once):
    """Path quality as k grows: sharing worsens for KSP, never for rEDKSP."""

    def sweep():
        topo = Jellyfish(16, 12, 9, seed=5)
        out = {}
        for k in (2, 4, 8):
            for scheme in ("ksp", "redksp"):
                cache = PathCache(topo, scheme, k=k, seed=0)
                out[(scheme, k)] = path_quality_report(cache.all_pairs())
        return out

    reports = once(sweep)
    for k in (2, 4, 8):
        assert reports[("redksp", k)]["max_link_sharing"] <= 1
    assert (
        reports[("ksp", 8)]["max_link_sharing"]
        >= reports[("ksp", 2)]["max_link_sharing"]
    )


def test_ablation_randomization_effect(once):
    """Randomization isolated: rKSP vs KSP and rEDKSP vs EDKSP under the
    model on demanding shift traffic (the Figures 4-6 mechanism)."""

    def run():
        topo = Jellyfish(12, 10, 7, seed=7)
        n = topo.n_hosts
        pats = [shift(n, a) for a in (1, n // 3, n // 2)]
        out = {}
        for scheme in ("ksp", "rksp", "edksp", "redksp"):
            cache = PathCache(topo, scheme, k=4, seed=0)
            out[scheme] = float(
                np.mean([model_throughput(topo, p, cache).mean_per_node() for p in pats])
            )
        return out

    th = once(run)
    assert th["rksp"] >= th["ksp"] * 0.97
    assert th["redksp"] >= th["edksp"] * 0.97


def test_ablation_adaptive_estimate(once):
    """KSP-adaptive with whole-path estimate vs classic first-hop UGAL-L."""

    def run():
        spec = TopoSpec(12, 10, 6)
        topo = Jellyfish(spec.n, spec.x, spec.y, seed=7)
        pat = shift(topo.n_hosts, topo.n_hosts // 2)
        cache = PathCache(topo, "redksp", k=4, seed=1)
        rates = [round(0.05 * i, 2) for i in range(1, 21)]
        out = {}
        for estimate in ("path", "first"):
            cfg = SimConfig(
                warmup_cycles=200, sample_cycles=200, n_samples=5,
                adaptive_estimate=estimate,
            )
            th, _ = saturation_throughput(
                topo, cache, "ksp_adaptive", PatternTraffic(pat),
                rates=rates, config=cfg, seed=0,
            )
            out[estimate] = th
        return out

    th = once(run)
    # The richer estimate never hurts (and usually helps on shifts).
    assert th["path"] >= th["first"] - 0.05


def test_ablation_adaptive_chunks(once):
    """Flow-level adaptive splitting: more chunks -> more balanced load."""

    def run():
        topo = Jellyfish(16, 12, 9, seed=5)
        cache = PathCache(topo, "redksp", k=4, seed=0)
        msgs = [
            (s, d, 15e6)
            for s, d in random_permutation(topo.n_hosts, seed=3).flows
        ]
        out = {}
        for chunks in (1, 4, 16):
            flows = build_workload(
                topo, msgs, cache, mechanism="ksp_adaptive", chunks=chunks, seed=2
            )
            r = run_flows(flows, 20e9, topo.n_links)
            out[chunks] = r.makespan
        return out

    makespans = once(run)
    # Splitting across paths cannot be slower than single-assignment by
    # more than noise, and usually is faster.
    assert makespans[16] <= makespans[1] * 1.05


def test_ablation_failure_resilience(once):
    """Reliability extension: edge-disjoint path sets survive random link
    failures better than vanilla KSP's overlapping paths."""
    from repro.core.failures import failure_resilience

    def run():
        topo = Jellyfish(16, 12, 9, seed=5)
        pairs = [(s, d) for s in range(8) for d in range(8) if s != d]
        out = {}
        for scheme in ("ksp", "redksp"):
            cache = PathCache(topo, scheme, k=8, seed=0)
            cache.precompute(pairs)
            out[scheme] = failure_resilience(
                cache, pairs, n_failures=6, trials=40, seed=1
            )
        return out

    reports = once(run)
    assert (
        reports["redksp"]["path_survival"]
        >= reports["ksp"]["path_survival"] - 0.02
    )
    assert reports["redksp"]["pair_survival"] >= reports["ksp"]["pair_survival"]


def test_ablation_ecmp_baseline(once):
    """Extension baseline: ECMP's equal-cost-only diversity loses to the
    KSP family on demanding traffic (the Jellyfish motivation)."""

    def run():
        topo = Jellyfish(12, 10, 7, seed=7)
        n = topo.n_hosts
        pats = [shift(n, a) for a in (1, n // 3, n // 2)]
        out = {}
        for scheme in ("ecmp", "ksp", "redksp"):
            cache = PathCache(topo, scheme, k=4, seed=0)
            out[scheme] = float(
                np.mean([model_throughput(topo, p, cache).mean_per_node() for p in pats])
            )
        return out

    th = once(run)
    assert th["redksp"] > th["ecmp"]
    assert th["ksp"] >= th["ecmp"] * 0.95


def test_ablation_model_vs_flow_simulator(once):
    """The Eq. 1 model and the flow-level simulator agree on scheme
    ordering for the same permutation workload."""

    def run():
        topo = Jellyfish(12, 10, 6, seed=7)
        pat = random_permutation(topo.n_hosts, seed=4)
        out = {}
        for scheme in ("sp", "redksp"):
            cache = PathCache(topo, scheme, k=4, seed=0)
            model = model_throughput(topo, pat, cache).mean_per_node()
            msgs = [(s, d, 15e6) for s, d in pat.flows]
            flows = build_workload(
                topo, msgs, cache,
                mechanism="sp" if scheme == "sp" else "random",
            )
            sim = run_flows(flows, 20e9, topo.n_links)
            out[scheme] = {"model": model, "makespan": sim.makespan}
        return out

    r = once(run)
    # Higher modelled throughput must mean a faster exchange.
    assert r["redksp"]["model"] > r["sp"]["model"]
    assert r["redksp"]["makespan"] < r["sp"]["makespan"]
