"""Benchmarks for Figures 11-13: latency-versus-load curves."""

from repro.experiments import run_experiment


def _check_curves(data):
    for scheme, points in data.items():
        assert points, f"{scheme} produced no pre-saturation points"
        rates = [r for r, _ in points]
        lats = [l for _, l in points]
        assert rates == sorted(rates)
        # Latency at the highest surviving load exceeds the zero-load
        # latency (the hockey-stick shape).
        assert lats[-1] >= lats[0]


def test_fig11_latency_uniform(once):
    """Figure 11: uniform-random traffic latency curve."""
    r = once(run_experiment, "fig11", scale="small", seed=0)
    _check_curves(r.data)


def test_fig12_latency_permutation(once):
    """Figure 12: random-permutation latency curve."""
    r = once(run_experiment, "fig12", scale="small", seed=0)
    _check_curves(r.data)


def test_fig13_latency_shift(once):
    """Figure 13: random-shift latency curve."""
    r = once(run_experiment, "fig13", scale="small", seed=0)
    _check_curves(r.data)
