#!/usr/bin/env python
"""Compare two pytest-benchmark JSON exports and flag regressions.

Usage::

    python benchmarks/compare.py NEW.json [BASELINE.json]

With one argument the baseline defaults to the newest ``BENCH_*.json`` in
this directory other than ``NEW.json`` itself ("newest" by filename sort,
so name committed baselines ``BENCH_<date>_<seq>_<label>.json``).  Benchmarks are matched by
name; a benchmark whose mean slows down by more than the threshold (25%
by default, ``--threshold 0.25``) **and** whose name touches the path-table
hot paths (Yen, BFS, precompute) fails the comparison — exit status 1 —
so the perf harness can gate on it:

    PYTHONPATH=src python -m pytest benchmarks/test_micro_perf.py \\
        --benchmark-json=new.json
    python benchmarks/compare.py new.json

Other benchmarks are reported but only warn: the experiment-level runs
are noisy enough that gating on them would flake.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Substrings of benchmark names that are gated (hot-path primitives whose
#: regressions the fast path-table pipeline exists to prevent, plus the
#: simulator cycle loop the telemetry layer must not slow down and the
#: batched saturation-grid tier).
GATED = ("yen", "bfs", "precompute", "simulator", "grid")


def load_means(path: Path) -> dict:
    with open(path) as fh:
        doc = json.load(fh)
    return {b["name"]: float(b["stats"]["mean"]) for b in doc["benchmarks"]}


def slim_export(src: Path, dst: Path) -> None:
    """Strip raw per-round samples from a pytest-benchmark export.

    Large exports (tens of thousands of ``stats.data`` samples) bloat
    committed baselines; everything ``load_means`` and the comparison
    table read is the summary statistics, which are kept verbatim.  The
    slimmed file stays loadable by older ``compare.py`` revisions.
    """
    with open(src) as fh:
        doc = json.load(fh)
    for bench in doc.get("benchmarks", ()):
        stats = bench.get("stats")
        if isinstance(stats, dict):
            stats.pop("data", None)
    with open(dst, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")


def require_speedup(path: Path, base_name: str, new_name: str,
                    ratio: float) -> int:
    """Exit non-zero unless mean(base_name) / mean(new_name) >= ratio.

    Both rows come from the *same* export — this gates a speedup between
    two benchmarks of one run (e.g. the per-cell vs batched saturation
    grid), not a cross-run regression.
    """
    means = load_means(path)
    missing = [n for n in (base_name, new_name) if n not in means]
    if missing:
        print(f"benchmark row(s) not in {path}: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    achieved = means[base_name] / means[new_name]
    print(
        f"{base_name}: {means[base_name] * 1e3:.2f} ms\n"
        f"{new_name}: {means[new_name] * 1e3:.2f} ms\n"
        f"speedup: {achieved:.2f}x (required >= {ratio:.2f}x)"
    )
    if achieved < ratio:
        print(f"speedup below required {ratio:.2f}x", file=sys.stderr)
        return 1
    return 0


def default_baseline(new: Path) -> Path | None:
    here = Path(__file__).parent
    candidates = sorted(
        (p for p in here.glob("BENCH_*.json") if p.resolve() != new.resolve()),
        key=lambda p: p.name,
    )
    return candidates[-1] if candidates else None


def compare(new_means: dict, base_means: dict, threshold: float):
    """Yield (name, base_mean, new_mean, ratio, gated) per common benchmark."""
    for name in sorted(new_means):
        if name not in base_means:
            continue
        base, new = base_means[name], new_means[name]
        ratio = new / base if base > 0 else float("inf")
        gated = any(tag in name.lower() for tag in GATED)
        yield name, base, new, ratio, gated


def _import_ledger():
    """Import ``repro.obs.ledger``, adding ``src`` to the path if needed."""
    try:
        from repro.obs import ledger
    except ImportError:
        sys.path.insert(0, str(Path(__file__).parent.parent / "src"))
        from repro.obs import ledger
    return ledger


def feed_ledger(export_path: Path, ledger_path: Path) -> int:
    """Append every benchmark row of ``export_path`` to the run ledger.

    Each row becomes a content-hash-deduplicated ``kind="bench"`` entry
    (see ``repro.obs.ledger.bench_entries``), so re-ingesting a committed
    ``BENCH_*.json`` is a no-op and the checked-in seed ledger can be
    regenerated from the exports at any time::

        for b in benchmarks/BENCH_*.json; do
            python benchmarks/compare.py "$b" --ledger benchmarks/LEDGER_seed.jsonl --ledger-only
        done

    Returns the number of entries actually appended.
    """
    ledger = _import_ledger()
    with open(export_path) as fh:
        doc = json.load(fh)
    entries = ledger.bench_entries(doc)
    appended = ledger.append_entries(ledger_path, entries)
    print(
        f"ledger: {ledger_path} += {appended} of {len(entries)} row(s) "
        f"from {export_path}"
    )
    return appended


def _is_manifest(path: Path) -> bool:
    """True if ``path`` is a run manifest rather than a benchmark export."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return False
    fmt = doc.get("format", "") if isinstance(doc, dict) else ""
    return isinstance(fmt, str) and fmt.startswith("repro-manifest")


def _delegate_manifests(args) -> int:
    """Route manifest inputs to the run differ (``repro.obs.compare``)."""
    try:
        from repro.obs.compare import main as compare_runs
    except ImportError:
        sys.path.insert(0, str(Path(__file__).parent.parent / "src"))
        from repro.obs.compare import main as compare_runs

    # The run differ takes (base, new); this script takes (new, base).
    return compare_runs(
        [str(args.baseline), str(args.new), "--threshold", str(args.threshold)]
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "new", type=Path,
        help="pytest-benchmark JSON (or run manifest) to check",
    )
    parser.add_argument(
        "baseline", type=Path, nargs="?", default=None,
        help="baseline JSON (default: newest benchmarks/BENCH_*.json)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="max allowed slowdown fraction on gated benchmarks (default 0.25)",
    )
    parser.add_argument(
        "--slim", type=Path, metavar="OUT", default=None,
        help="write a slimmed copy of NEW (summary stats only, raw "
             "samples stripped) to OUT and exit",
    )
    parser.add_argument(
        "--require-speedup", nargs=3, metavar=("BASE", "NEWROW", "RATIO"),
        default=None,
        help="gate mean(BASE)/mean(NEWROW) >= RATIO within NEW's rows "
             "(exit 1 below RATIO) and exit",
    )
    parser.add_argument(
        "--ledger", type=Path, metavar="PATH", default=None,
        help="append NEW's benchmark rows to the run ledger at PATH "
             "(content-deduplicated; trendable via "
             "'python -m repro.experiments runs')",
    )
    parser.add_argument(
        "--ledger-only", action="store_true",
        help="with --ledger: exit after appending, skip the comparison",
    )
    args = parser.parse_args(argv)

    if args.ledger_only and args.ledger is None:
        parser.error("--ledger-only requires --ledger")
    if args.ledger is not None:
        feed_ledger(args.new, args.ledger)
        if args.ledger_only:
            return 0

    if args.slim is not None:
        slim_export(args.new, args.slim)
        print(f"slimmed {args.new} -> {args.slim}")
        return 0

    if args.require_speedup is not None:
        base_name, new_name, ratio = args.require_speedup
        return require_speedup(args.new, base_name, new_name, float(ratio))

    if _is_manifest(args.new):
        if args.baseline is None:
            print(
                "manifest comparison needs an explicit baseline manifest",
                file=sys.stderr,
            )
            return 2
        return _delegate_manifests(args)

    baseline = args.baseline or default_baseline(args.new)
    if baseline is None:
        print("no baseline BENCH_*.json found; nothing to compare", file=sys.stderr)
        return 2

    new_means = load_means(args.new)
    base_means = load_means(baseline)
    print(f"baseline: {baseline}")
    print(f"new:      {args.new}\n")
    print(
        f"{'benchmark':50s} {'base (ms)':>10s} {'new (ms)':>10s}"
        f" {'delta':>8s} {'ratio':>7s}"
    )

    failures = []
    for name, base, new, ratio, gated in compare(new_means, base_means, args.threshold):
        flag = ""
        if ratio > 1 + args.threshold:
            flag = " REGRESSION" if gated else " (slower, not gated)"
            if gated:
                failures.append((name, ratio))
        delta = 100.0 * (ratio - 1.0)
        print(
            f"{name:50s} {base * 1e3:10.2f} {new * 1e3:10.2f}"
            f" {delta:+7.1f}% {ratio:7.2f}{flag}"
        )

    missing = sorted(set(base_means) - set(new_means))
    if missing:
        print(f"\nnot in new run: {', '.join(missing)}")

    if failures:
        print(f"\n{len(failures)} gated regression(s) above "
              f"{100 * args.threshold:.0f}%:", file=sys.stderr)
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print("\nno gated regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
