"""Benchmark configuration.

Every benchmark regenerates one paper table/figure (or an ablation) at the
``small`` preset scale and runs it once under pytest-benchmark, asserting
the paper's qualitative relations on the produced data.  Medium/paper
scales are available through ``python -m repro.experiments <id> --scale
medium|paper``.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark harness and return its
    result (the experiment tables are multi-second deterministic runs, so
    statistical repetition buys nothing)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
