"""Benchmarks for Figures 4-6: the throughput-model comparison."""

from repro.experiments import run_experiment


def _check_relations(data):
    # Multi-path beats single-path on every pattern (the paper's headline).
    for pattern, sp_value in data["sp"].items():
        if pattern == "all-to-all":
            continue  # SP can tie on lightly-loaded toy all-to-all
        assert data["redksp"][pattern] > sp_value
    # rEDKSP is within noise of the best scheme everywhere.
    for pattern in data["redksp"]:
        best = max(data[s][pattern] for s in ("ksp", "rksp", "edksp", "redksp"))
        assert data["redksp"][pattern] >= best * 0.93


def test_fig4_model_small_topology(once):
    """Figure 4: model throughput, small topology of the trio."""
    r = once(run_experiment, "fig4", scale="small", seed=0)
    _check_relations(r.data)


def test_fig5_model_medium_topology(once):
    """Figure 5: model throughput, medium topology of the trio."""
    r = once(run_experiment, "fig5", scale="small", seed=0)
    _check_relations(r.data)


def test_fig6_model_large_topology(once):
    """Figure 6: model throughput, large topology of the trio."""
    r = once(run_experiment, "fig6", scale="small", seed=0)
    _check_relations(r.data)
