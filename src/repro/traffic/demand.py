"""Demand-matrix helpers: host flows viewed at the switch level.

Several analyses (and the adaptive-routing discussion in the paper) reason
about *switch-pair* demand rather than individual host flows.  These
helpers aggregate host-level flows into switch-level demand matrices and
quantify a pattern's locality — the fraction of traffic that never leaves
its source switch.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.errors import TrafficError
from repro.topology.jellyfish import Jellyfish

__all__ = ["switch_demand_matrix", "pattern_locality", "switch_pair_flows"]


def switch_demand_matrix(
    topology: Jellyfish,
    flows: Iterable[Tuple[int, int]],
) -> np.ndarray:
    """``D[s, t]`` = number of host flows from switch ``s`` to switch ``t``.

    Intra-switch flows land on the diagonal.
    """
    n = topology.n_switches
    demand = np.zeros((n, n), dtype=np.int64)
    count = 0
    for src, dst in flows:
        demand[topology.switch_of_host(src), topology.switch_of_host(dst)] += 1
        count += 1
    if count == 0:
        raise TrafficError("flow set is empty")
    return demand


def pattern_locality(topology: Jellyfish, flows: Iterable[Tuple[int, int]]) -> float:
    """Fraction of flows whose endpoints share a switch (no network hops)."""
    demand = switch_demand_matrix(topology, flows)
    return float(np.trace(demand) / demand.sum())


def switch_pair_flows(
    topology: Jellyfish,
    flows: Iterable[Tuple[int, int]],
    include_local: bool = False,
) -> list[Tuple[int, int]]:
    """Distinct (source switch, destination switch) pairs with demand.

    The list is what a path cache must be warmed with; ``include_local``
    keeps intra-switch pairs (which need only the trivial path).
    """
    pairs = set()
    for src, dst in flows:
        s = topology.switch_of_host(src)
        t = topology.switch_of_host(dst)
        if s != t or include_local:
            pairs.add((s, t))
    return sorted(pairs)
