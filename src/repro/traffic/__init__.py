"""Traffic patterns, stencil workloads, and process-to-node mappings.

The evaluation uses two kinds of workload:

- *synthetic patterns* over compute nodes (hosts): random permutation,
  shift-N, Random(X), all-to-all, and uniform-random
  (:mod:`repro.traffic.patterns`);
- *application workloads*: 2D/3D nearest-neighbour stencil exchanges with
  and without diagonals, generated as (src rank, dst rank, bytes) message
  lists (:mod:`repro.traffic.stencil`) and placed on hosts through a linear
  or random rank mapping (:mod:`repro.traffic.mapping`).
"""

from repro.traffic.patterns import (
    Pattern,
    all_to_all,
    random_destinations,
    random_permutation,
    random_shift,
    shift,
)
from repro.traffic.stencil import (
    STENCILS,
    grid_dims,
    stencil_messages,
)
from repro.traffic.mapping import linear_mapping, random_mapping, apply_mapping
from repro.traffic.demand import (
    pattern_locality,
    switch_demand_matrix,
    switch_pair_flows,
)

__all__ = [
    "pattern_locality",
    "switch_demand_matrix",
    "switch_pair_flows",
    "Pattern",
    "random_permutation",
    "shift",
    "random_shift",
    "random_destinations",
    "all_to_all",
    "STENCILS",
    "grid_dims",
    "stencil_messages",
    "linear_mapping",
    "random_mapping",
    "apply_mapping",
]
