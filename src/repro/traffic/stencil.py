"""Stencil (nearest-neighbour) application workloads.

Generates the communication sets of the four CODES applications in Section
IV-E as ``(source rank, destination rank, bytes)`` messages:

=============== ========== =====================================
name             neighbours  geometry
=============== ========== =====================================
``2dnn``         4           2-D grid, ±1 per axis
``2dnndiag``     8           2-D grid, full Moore neighbourhood
``3dnn``         6           3-D grid, ±1 per axis
``3dnndiag``     26          3-D grid, full Moore neighbourhood
=============== ========== =====================================

Grids are periodic (torus), so every rank has the full neighbour count and
"each process sends to 4 neighbours" holds exactly, as in the paper's trace
description.  Each rank sends ``total_bytes`` split evenly over its
neighbours (the paper's 15 MB / process).

This module replaces the paper's DUMPI traces: the evaluation consumes
nothing from a trace beyond this (src, dst, bytes) multiset.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence, Tuple

from repro.errors import TrafficError
from repro.utils.validation import check_positive_int

__all__ = ["STENCILS", "grid_dims", "stencil_messages"]

#: stencil name -> (dimensionality, include diagonals)
STENCILS: Dict[str, Tuple[int, bool]] = {
    "2dnn": (2, False),
    "2dnndiag": (2, True),
    "3dnn": (3, False),
    "3dnndiag": (3, True),
}


def grid_dims(n_ranks: int, ndim: int) -> Tuple[int, ...]:
    """Factor ``n_ranks`` into ``ndim`` near-equal grid dimensions.

    Chooses the factorisation minimising the spread between the largest and
    smallest dimension (e.g. 3600 ranks -> (60, 60) in 2-D and
    (16, 15, 15) in 3-D, the paper's choices).  Raises if ``n_ranks`` has no
    ``ndim``-factor decomposition other than degenerate 1-sized dims and
    even that fails.
    """
    check_positive_int(n_ranks, "n_ranks")
    check_positive_int(ndim, "ndim")
    best: Tuple[int, ...] | None = None

    def search(remaining: int, dims_left: int, acc: List[int]):
        nonlocal best
        if dims_left == 1:
            cand = tuple(sorted(acc + [remaining], reverse=True))
            if best is None or (cand[0] - cand[-1], cand[0]) < (
                best[0] - best[-1], best[0]
            ):
                best = cand
            return
        f = 1
        while f * f <= remaining:
            if remaining % f == 0:
                search(remaining // f, dims_left - 1, acc + [f])
                search(f, dims_left - 1, acc + [remaining // f])
            f += 1

    search(n_ranks, ndim, [])
    assert best is not None
    return best


def _neighbour_offsets(ndim: int, diagonals: bool) -> List[Tuple[int, ...]]:
    if diagonals:
        return [
            off
            for off in itertools.product((-1, 0, 1), repeat=ndim)
            if any(off)
        ]
    offsets = []
    for axis in range(ndim):
        for delta in (-1, 1):
            off = [0] * ndim
            off[axis] = delta
            offsets.append(tuple(off))
    return offsets


def stencil_messages(
    name: str,
    n_ranks: int,
    total_bytes: float = 15e6,
    dims: Sequence[int] | None = None,
) -> List[Tuple[int, int, float]]:
    """Messages of one stencil exchange: ``(src rank, dst rank, bytes)``.

    ``total_bytes`` is the per-rank send volume, split evenly over the
    rank's neighbours.  ``dims`` overrides the automatic grid factorisation
    (must multiply to ``n_ranks``).
    """
    try:
        ndim, diagonals = STENCILS[name]
    except KeyError:
        raise TrafficError(
            f"unknown stencil {name!r}; choose from {sorted(STENCILS)}"
        ) from None
    check_positive_int(n_ranks, "n_ranks")
    if total_bytes <= 0:
        raise TrafficError(f"total_bytes must be > 0, got {total_bytes}")

    if dims is None:
        shape = grid_dims(n_ranks, ndim)
    else:
        shape = tuple(int(d) for d in dims)
        if len(shape) != ndim:
            raise TrafficError(
                f"{name} needs {ndim} dims, got {len(shape)}"
            )
        prod = 1
        for d in shape:
            prod *= d
        if prod != n_ranks:
            raise TrafficError(
                f"dims {shape} multiply to {prod}, expected {n_ranks}"
            )
    if min(shape) < 1:
        raise TrafficError(f"degenerate grid {shape}")

    offsets = _neighbour_offsets(ndim, diagonals)

    # rank <-> coordinate conversion, row-major.
    strides = [1] * ndim
    for i in range(ndim - 2, -1, -1):
        strides[i] = strides[i + 1] * shape[i + 1]

    def coord(rank: int) -> Tuple[int, ...]:
        return tuple((rank // strides[i]) % shape[i] for i in range(ndim))

    def rank_of(c: Sequence[int]) -> int:
        return sum((c[i] % shape[i]) * strides[i] for i in range(ndim))

    messages: List[Tuple[int, int, float]] = []
    for src in range(n_ranks):
        c = coord(src)
        # On tiny grids opposite wrap-around neighbours coincide (dim 2) or
        # degenerate to the rank itself (dim 1).  Merge duplicates and
        # normalise over the surviving multiplicity so each rank's sends
        # always total total_bytes.
        dests: Dict[int, int] = {}
        for off in offsets:
            dst = rank_of([c[i] + off[i] for i in range(ndim)])
            if dst != src:
                dests[dst] = dests.get(dst, 0) + 1
        weight = sum(dests.values())
        for dst, multiplicity in sorted(dests.items()):
            messages.append((src, dst, total_bytes * multiplicity / weight))
    return messages
