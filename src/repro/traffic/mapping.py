"""Process-to-node (rank -> host) mappings.

The paper simulates two placements of application ranks onto compute nodes:
*linear* (rank ``r`` on host ``r``) and *random* (a random bijection).  A
mapping is a numpy array ``m`` with ``m[rank] = host``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import MappingError
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["linear_mapping", "random_mapping", "apply_mapping"]


def linear_mapping(n_ranks: int, n_hosts: int) -> np.ndarray:
    """Rank ``r`` runs on host ``r`` (requires ``n_ranks <= n_hosts``)."""
    if n_ranks > n_hosts:
        raise MappingError(
            f"cannot place {n_ranks} ranks on {n_hosts} hosts"
        )
    return np.arange(n_ranks, dtype=np.int64)


def random_mapping(n_ranks: int, n_hosts: int, seed: SeedLike = None) -> np.ndarray:
    """A uniform random injective rank -> host placement."""
    if n_ranks > n_hosts:
        raise MappingError(
            f"cannot place {n_ranks} ranks on {n_hosts} hosts"
        )
    rng = ensure_rng(seed)
    return rng.permutation(n_hosts)[:n_ranks].astype(np.int64)


def apply_mapping(
    messages: Sequence[Tuple[int, int, float]],
    mapping: np.ndarray,
) -> List[Tuple[int, int, float]]:
    """Translate rank-level messages to host-level via ``mapping``."""
    n_ranks = len(mapping)
    out: List[Tuple[int, int, float]] = []
    for src, dst, nbytes in messages:
        if not (0 <= src < n_ranks and 0 <= dst < n_ranks):
            raise MappingError(
                f"message ({src}->{dst}) references rank outside [0, {n_ranks})"
            )
        out.append((int(mapping[src]), int(mapping[dst]), nbytes))
    return out
