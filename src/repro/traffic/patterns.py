"""Synthetic traffic patterns over compute nodes.

A static pattern is a :class:`Pattern`: a named tuple-of-flows where each
flow is an ordered ``(source host, destination host)`` pair.  The patterns
match Section IV-A of the paper:

- *random permutation* — each node talks to at most one node (a permutation
  with fixed points removed by swapping);
- *shift-N* — node ``i`` talks to ``(i + N) mod n``; *random shift* draws
  ``N`` uniformly;
- *Random(X)* — each node picks ``X`` distinct random destinations;
- *all-to-all* — every ordered pair.

The uniform-random condition of the Booksim experiments is per-packet (a
fresh destination for every packet), so it lives in the simulator's
injection process rather than here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import TrafficError
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "Pattern",
    "random_permutation",
    "shift",
    "random_shift",
    "random_destinations",
    "all_to_all",
]


@dataclass(frozen=True)
class Pattern:
    """A static traffic pattern: named, ordered collection of host flows."""

    name: str
    n_hosts: int
    flows: Tuple[Tuple[int, int], ...]

    def __post_init__(self):
        for s, d in self.flows:
            if not (0 <= s < self.n_hosts and 0 <= d < self.n_hosts):
                raise TrafficError(
                    f"flow ({s}, {d}) outside host range [0, {self.n_hosts})"
                )
            if s == d:
                raise TrafficError(f"self-flow ({s}, {d}) not allowed")

    def __len__(self) -> int:
        return len(self.flows)

    def __iter__(self):
        return iter(self.flows)

    def sources(self) -> np.ndarray:
        return np.fromiter((s for s, _ in self.flows), dtype=np.int64, count=len(self.flows))

    def destinations(self) -> np.ndarray:
        return np.fromiter((d for _, d in self.flows), dtype=np.int64, count=len(self.flows))


def random_permutation(n_hosts: int, seed: SeedLike = None) -> Pattern:
    """A random permutation pattern with no fixed points.

    Fixed points of the drawn permutation are eliminated by swapping with a
    cyclic neighbour, so every host sends to exactly one *other* host and
    receives from exactly one (for ``n_hosts >= 2``).
    """
    check_positive_int(n_hosts, "n_hosts")
    if n_hosts < 2:
        raise TrafficError("a permutation needs at least 2 hosts")
    rng = ensure_rng(seed)
    perm = rng.permutation(n_hosts)
    fixed = np.flatnonzero(perm == np.arange(n_hosts))
    if fixed.size == 1:
        i = int(fixed[0])
        j = (i + 1) % n_hosts
        perm[i], perm[j] = perm[j], perm[i]
    elif fixed.size > 1:
        # Rotate the fixed points among themselves.
        perm[fixed] = perm[np.roll(fixed, 1)]
    flows = tuple((int(i), int(perm[i])) for i in range(n_hosts))
    return Pattern("random-permutation", n_hosts, flows)


def shift(n_hosts: int, amount: int) -> Pattern:
    """The shift-N pattern: host ``i`` sends to ``(i + amount) mod n``."""
    check_positive_int(n_hosts, "n_hosts")
    amount %= n_hosts
    if amount == 0:
        raise TrafficError("shift amount must be nonzero modulo n_hosts")
    flows = tuple((i, (i + amount) % n_hosts) for i in range(n_hosts))
    return Pattern(f"shift-{amount}", n_hosts, flows)


def random_shift(n_hosts: int, seed: SeedLike = None) -> Pattern:
    """A shift-N pattern with N drawn uniformly from [1, n_hosts)."""
    if n_hosts < 2:
        raise TrafficError("a shift needs at least 2 hosts")
    rng = ensure_rng(seed)
    return shift(n_hosts, int(rng.integers(1, n_hosts)))


def random_destinations(n_hosts: int, x: int, seed: SeedLike = None) -> Pattern:
    """The Random(X) pattern: each host sends to X distinct other hosts."""
    check_positive_int(n_hosts, "n_hosts")
    check_positive_int(x, "x")
    if x > n_hosts - 1:
        raise TrafficError(
            f"Random({x}) impossible with {n_hosts} hosts (max X={n_hosts - 1})"
        )
    rng = ensure_rng(seed)
    flows = []
    for s in range(n_hosts):
        # Sample from [0, n-2] and skip over s to exclude the self-flow.
        picks = rng.choice(n_hosts - 1, size=x, replace=False)
        for d in picks:
            d = int(d)
            flows.append((s, d if d < s else d + 1))
    return Pattern(f"random({x})", n_hosts, tuple(flows))


def all_to_all(n_hosts: int) -> Pattern:
    """Every host sends to every other host."""
    check_positive_int(n_hosts, "n_hosts")
    flows = tuple(
        (s, d) for s in range(n_hosts) for d in range(n_hosts) if s != d
    )
    return Pattern("all-to-all", n_hosts, flows)
