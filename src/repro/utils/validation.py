"""Small argument-validation helpers used across the library.

These raise :class:`repro.errors.ConfigurationError` with messages that name
the offending parameter, so misconfigured experiments fail fast and clearly
rather than deep inside a simulator loop.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import ConfigurationError

__all__ = [
    "check_positive_int",
    "check_non_negative",
    "check_probability",
    "check_in",
]


def check_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer >= 1 and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise ConfigurationError(f"{name} must be an int, got {value!r}")
    if value < 1:
        raise ConfigurationError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_non_negative(value: Any, name: str) -> float:
    """Validate that ``value`` is a number >= 0 and return it as ``float``."""
    try:
        v = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(f"{name} must be a number, got {value!r}") from None
    if v < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    return v


def check_probability(value: Any, name: str) -> float:
    """Validate that ``value`` lies in [0, 1] and return it as ``float``."""
    v = check_non_negative(value, name)
    if v > 1:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    return v


def check_in(value: Any, allowed: Iterable[Any], name: str) -> Any:
    """Validate that ``value`` is one of ``allowed`` and return it."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ConfigurationError(f"{name} must be one of {allowed}, got {value!r}")
    return value
