"""Shared utilities: seeded RNG handling, validation, table formatting."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_positive_int,
    check_non_negative,
    check_probability,
    check_in,
)
from repro.utils.tables import format_table

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "check_positive_int",
    "check_non_negative",
    "check_probability",
    "check_in",
    "format_table",
]
