"""Plain-text table rendering for experiment output.

The experiment drivers print tables shaped like the paper's (same rows, same
columns).  This formatter keeps that output dependency-free and stable enough
to diff between runs.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table"]


def _cell(value: Any, ndigits: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{ndigits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str = "",
    ndigits: int = 3,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows = [[_cell(v, ndigits) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(sep)
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
