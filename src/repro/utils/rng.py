"""Seeded random-number-generator plumbing.

Every stochastic entry point in the library accepts a ``seed`` argument that
may be ``None`` (fresh OS entropy), an ``int``, or an existing
:class:`numpy.random.Generator`.  :func:`ensure_rng` normalises all three to a
``Generator`` so internal code never touches global random state — a
requirement for reproducible experiments and for running parameter sweeps in
parallel without correlated streams.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

__all__ = ["SeedLike", "ensure_rng", "spawn_rngs"]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Passing an existing ``Generator`` returns it unchanged (shared stream);
    anything else creates a new independent generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Create ``n`` statistically independent generators from one seed.

    Used by experiment sweeps so that each repetition (topology sample,
    traffic instance) gets its own stream: results are then independent of
    how many repetitions run or in which order.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    if isinstance(seed, np.random.SeedSequence):
        seq = seed
    elif isinstance(seed, np.random.Generator):
        # Derive children from the generator's own stream.
        seq = np.random.SeedSequence(int(seed.integers(0, 2**63)))
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
