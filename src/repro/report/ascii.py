"""Terminal charts without plotting dependencies.

Two chart kinds cover the paper's figures: :func:`line_chart` for the
latency-versus-load curves (Figures 11-13) and :func:`bar_chart` for the
throughput comparisons (Figures 4-10).  The telemetry layer adds two
summary views: :func:`stage_timing_table` for a run's span timers and
:func:`link_load_report` for per-scheme link-utilization arrays (the
paper's KSP-piles-paths-onto-the-same-links claim, made visible).

Terminal-capability helpers live here too: :func:`supports_ansi` (honours
``NO_COLOR``, ``TERM=dumb`` and non-TTY streams), :func:`term_width`,
:func:`colorize`, :func:`sparkline`, and :func:`render_dashboard` — the
pure state-to-lines renderer behind the live run monitor
(:mod:`repro.obs.monitor`).  Charts clamp their width to the terminal so
narrow sessions degrade to narrower bars instead of wrapped garbage.
"""

from __future__ import annotations

import math
import os
import shutil
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.tables import format_table

__all__ = [
    "line_chart",
    "bar_chart",
    "stage_timing_table",
    "link_load_report",
    "latency_decomposition_table",
    "path_share_table",
    "profile_hotspots_table",
    "ledger_table",
    "trend_table",
    "linkstate_heatmap",
    "stall_attribution_table",
    "flow_pair_table",
    "fairness_table",
    "congestion_tree_text",
    "supports_ansi",
    "term_width",
    "colorize",
    "sparkline",
    "render_dashboard",
]

_MARKERS = "ox+*#@%&"

# ------------------------------------------------- terminal capabilities
def supports_ansi(stream=None) -> bool:
    """Whether ``stream`` (default stdout) should receive ANSI escapes.

    False when the ``NO_COLOR`` convention is in force (any value),
    ``TERM`` is ``dumb``/unset-to-nothing, or the stream is not a TTY —
    redirected output gets plain text.
    """
    if os.environ.get("NO_COLOR") is not None:
        return False
    if os.environ.get("TERM", "") == "dumb":
        return False
    if stream is None:
        import sys

        stream = sys.stdout
    isatty = getattr(stream, "isatty", None)
    return bool(isatty and isatty())


def term_width(default: int = 80) -> int:
    """Best-effort terminal column count (``COLUMNS`` wins, else ioctl)."""
    try:
        return shutil.get_terminal_size((default, 24)).columns
    except (ValueError, OSError):
        return default


def colorize(text: str, code: str, stream=None) -> str:
    """Wrap ``text`` in an SGR escape iff the stream supports ANSI.

    ``code`` is the SGR parameter string (e.g. ``"31"`` red, ``"1;33"``
    bold yellow); with ANSI unsupported the text passes through unchanged.
    """
    if not supports_ansi(stream):
        return text
    return f"\x1b[{code}m{text}\x1b[0m"


_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"
_SPARK_ASCII = " .:-=+*#"


def sparkline(
    values: Sequence[float], *, width: Optional[int] = None, ascii_only: bool = False
) -> str:
    """One-line min-max-scaled chart of ``values`` (NaNs render as gaps).

    ``width`` keeps only the most recent values; ``ascii_only`` swaps the
    unicode eighth-blocks for plain ASCII shades (dumb terminals).
    """
    vals = [float(v) for v in values]
    if width is not None and width > 0:
        vals = vals[-width:]
    finite = [v for v in vals if not math.isnan(v)]
    if not finite:
        return " " * len(vals)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    glyphs = _SPARK_ASCII if ascii_only else _SPARK_BLOCKS
    top = len(glyphs) - 1
    out = []
    for v in vals:
        if math.isnan(v):
            out.append(" ")
        elif span == 0:
            out.append(glyphs[top // 2])
        else:
            out.append(glyphs[int(round((v - lo) / span * top))])
    return "".join(out)


def line_chart(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more (x, y) series on a character grid.

    Each series gets a marker from ``o x + * ...``; the legend maps markers
    back to labels.  Points outside a degenerate range collapse gracefully
    (a single point renders mid-axis).
    """
    if not series:
        raise ConfigurationError("line_chart needs at least one series")
    if width < 8 or height < 4:
        raise ConfigurationError("chart too small to render")
    # Narrow terminals get a narrower grid, never wrapped rows.
    width = max(8, min(width, term_width() - 2))
    pts = [(x, y) for s in series.values() for x, y in s]
    if not pts:
        raise ConfigurationError("all series are empty")
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (label, points), marker in zip(series.items(), _MARKERS):
        for x, y in points:
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = int(round((y - y_min) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (top {y_max:.4g}, bottom {y_min:.4g})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_min:.4g} .. {x_max:.4g}")
    legend = "  ".join(
        f"{marker}={label}" for (label, _), marker in zip(series.items(), _MARKERS)
    )
    lines.append(" legend: " + legend)
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    *,
    width: int = 40,
    title: str = "",
    fmt: str = "{:.3f}",
) -> str:
    """Render labelled horizontal bars scaled to the maximum value."""
    if not values:
        raise ConfigurationError("bar_chart needs at least one value")
    if width < 4:
        raise ConfigurationError("chart too small to render")
    top = max(values.values())
    if top < 0:
        raise ConfigurationError("bar_chart needs non-negative values")
    label_w = max(len(k) for k in values)
    # Keep label + bar + value inside the terminal on narrow sessions.
    width = max(4, min(width, term_width() - label_w - 13))
    lines = [title] if title else []
    for label, v in values.items():
        if v < 0:
            raise ConfigurationError("bar_chart needs non-negative values")
        n = int(round(v / top * width)) if top > 0 else 0
        lines.append(f"{label.ljust(label_w)} | {'█' * n}{' ' * (width - n)} {fmt.format(v)}")
    return "\n".join(lines)


def stage_timing_table(
    timers: Mapping[str, Mapping],
    *,
    title: str = "stage timings",
) -> str:
    """Render a metrics snapshot's ``timers`` section as a table.

    ``timers`` maps span name to a histogram document (``count`` /
    ``total`` / ``min`` / ``max`` in seconds, as produced by
    :meth:`repro.obs.metrics.MetricsRegistry.snapshot`).  Rows are sorted
    by total time, descending — where the wall time actually went.
    """
    if not timers:
        return f"{title}: (no spans recorded)"
    rows = []
    for name, doc in sorted(
        timers.items(), key=lambda kv: kv[1].get("total", 0.0), reverse=True
    ):
        count = int(doc.get("count", 0))
        total = float(doc.get("total", 0.0))
        mean_ms = 1e3 * total / count if count else float("nan")
        max_ms = 1e3 * float(doc.get("max") or 0.0)
        rows.append([name, count, round(total, 3), round(mean_ms, 1), round(max_ms, 1)])
    return format_table(
        ["stage", "count", "total (s)", "mean (ms)", "max (ms)"],
        rows,
        title=title,
    )


def link_load_report(
    link_flits: Mapping[str, Sequence[int]],
    *,
    top_n: int = 5,
    title: str = "link load by scheme",
) -> str:
    """Per-scheme link-load-imbalance summary from flit-count arrays.

    ``link_flits`` maps a scheme label to its per-directed-link flit
    counts (the ``netsim.link_flits/<scheme>`` arrays of a metrics
    snapshot).  For each scheme the report shows total flits, the
    max/mean ratio over links that carried traffic (the imbalance figure:
    deterministic KSP concentrates flits on few links, so its ratio sits
    well above a randomized scheme's on the same topology and seed) and
    the ``top_n`` hottest link ids.
    """
    if not link_flits:
        return f"{title}: (no link data recorded)"
    rows = []
    hottest_lines = []
    for scheme, counts in sorted(link_flits.items()):
        arr = np.asarray(counts, dtype=np.float64)
        total = float(arr.sum())
        mean = float(arr.mean()) if arr.size else 0.0
        peak = float(arr.max()) if arr.size else 0.0
        ratio = peak / mean if mean > 0 else float("nan")
        used = int((arr > 0).sum())
        rows.append(
            [scheme, int(total), used, round(mean, 1), int(peak), round(ratio, 2)]
        )
        order = np.argsort(arr)[::-1][:top_n]
        hottest = ", ".join(
            f"#{int(i)}:{int(arr[i])}" for i in order if arr[i] > 0
        )
        hottest_lines.append(f"  {scheme} hottest links: {hottest or '(none)'}")
    out = format_table(
        ["scheme", "flits", "links used", "mean/link", "max/link", "max/mean"],
        rows,
        title=title,
    )
    return out + "\n" + "\n".join(hottest_lines)


def profile_hotspots_table(
    stats,
    *,
    top: int = 10,
    title: str = "profile hotspots (cumulative)",
) -> str:
    """Render a :class:`pstats.Stats` as a top-``top`` cumulative table.

    One row per function, sorted by cumulative time: calls, total time
    spent inside the function itself, cumulative time including callees,
    and ``file:line(name)`` trimmed to the basename — the same view
    ``print_stats`` gives, but aligned with the other telemetry tables
    and bounded to the hotspots that matter.
    """
    entries = []
    for (filename, lineno, func), (cc, nc, tt, ct, _callers) in (
        stats.stats.items()
    ):
        entries.append((ct, tt, nc, cc, filename, lineno, func))
    if not entries:
        return f"{title}: (no calls recorded)"
    entries.sort(reverse=True)
    rows = []
    for ct, tt, nc, cc, filename, lineno, func in entries[:top]:
        calls = str(nc) if nc == cc else f"{nc}/{cc}"
        where = f"{os.path.basename(filename)}:{lineno}({func})"
        rows.append([where, calls, round(tt, 3), round(ct, 3)])
    return format_table(
        ["function", "calls", "tottime (s)", "cumtime (s)"],
        rows,
        title=title,
    )


def latency_decomposition_table(
    decomp: Mapping[str, Mapping],
    *,
    title: str = "latency decomposition (cycles)",
) -> str:
    """Render a :meth:`TraceAnalysis.latency_decomposition` result.

    One row per ``scheme/mechanism`` label: how many packets were traced
    to delivery and where their cycles went — waiting at the source NIC,
    queued inside switches, or pure serialization (channel traversals).
    The three components sum to the total, so a scheme whose ``switch
    queue`` column dominates is congestion-bound, not path-length-bound.
    """
    if not decomp:
        return f"{title}: (no delivered packets traced)"
    rows = []
    for label, doc in sorted(decomp.items()):
        rows.append(
            [
                label,
                int(doc["count"]),
                round(float(doc["mean_total"]), 1),
                round(float(doc["mean_source_queue"]), 1),
                round(float(doc["mean_switch_queue"]), 1),
                round(float(doc["mean_serialization"]), 1),
                round(float(doc["mean_hops"]), 2),
            ]
        )
    return format_table(
        ["run", "packets", "total", "src queue", "switch queue", "serialize", "hops"],
        rows,
        title=title,
    )


def path_share_table(
    shares: Mapping[str, Mapping[int, int]],
    *,
    title: str = "path-index load share",
) -> str:
    """Render a :meth:`TraceAnalysis.path_shares` result.

    One row per ``scheme/mechanism`` label showing what fraction of traced
    packets took each precomputed path index (``k0`` is the shortest
    path).  ``off-table`` counts packets routed outside the k-path set —
    Valiant composites under vanilla UGAL; anything else would be flagged
    by the route audit.
    """
    if not shares:
        return f"{title}: (no routed packets traced)"
    indices = sorted(
        {i for dist in shares.values() for i in dist if i >= 0}
    )
    header = ["run", "packets"] + [f"k{i}" for i in indices] + ["off-table"]
    rows = []
    for label, dist in sorted(shares.items()):
        total = sum(dist.values())
        row = [label, total]
        for i in indices:
            pct = 100.0 * dist.get(i, 0) / total if total else 0.0
            row.append(f"{pct:.1f}%")
        off = 100.0 * dist.get(-1, 0) / total if total else 0.0
        row.append(f"{off:.1f}%")
        rows.append(row)
    return format_table(header, rows, title=title)


def ledger_table(
    entries: Sequence[Mapping],
    *,
    title: str = "run ledger",
) -> str:
    """Tabulate run-ledger entries (``repro.obs.ledger`` documents).

    One row per entry in ledger (time) order: id, timestamp, kind,
    what ran, where, which engine tiers, and wall time.  Deterministic
    for a fixed ledger — no terminal-width dependence — so the output
    is diffable between invocations.
    """
    if not entries:
        return f"{title}: (no entries)"
    rows = []
    for e in entries:
        created = str(e.get("created_at") or "")[:19]
        wall = e.get("wall_time_s")
        engines = ",".join(e.get("engines") or ()) or "-"
        rows.append(
            [
                str(e.get("id", ""))[:12],
                created,
                str(e.get("kind", "")),
                str(e.get("experiment", "")),
                str(e.get("scale", "")),
                str(e.get("host") or "-"),
                engines,
                f"{float(wall):.3f}" if wall is not None else "-",
            ]
        )
    out = format_table(
        ["id", "created", "kind", "experiment", "scale", "host", "engines",
         "wall (s)"],
        rows,
        title=title,
    )
    return out + f"\n{len(entries)} entr{'y' if len(entries) == 1 else 'ies'}"


# --------------------------------------------------- congestion forensics
_HEAT_SHADES = " .:-=+*#"


def linkstate_heatmap(
    rows: Sequence[Sequence[int]],
    row_labels: Sequence[str],
    *,
    max_cols: int = 64,
    title: str = "link-state heatmap",
    axis: str = "window",
) -> str:
    """Render per-link window series as a links-by-windows shade grid.

    ``rows[i][w]`` is link ``i``'s value in window ``w``; all rows share
    one global scale (blank = 0 up to ``#`` = the grid maximum).  When
    there are more windows than ``max_cols``, adjacent windows collapse
    into fixed bins by maximum, so a long run still fits one screen.
    ``axis`` names the column dimension in the footer (flow heatmaps
    reuse this grid with hosts as columns).  Deterministic: no terminal
    queries, fixed shade alphabet.
    """
    if len(rows) != len(row_labels):
        raise ConfigurationError(
            f"{len(rows)} rows but {len(row_labels)} labels"
        )
    if not rows:
        return f"{title}: (no links)"
    grid = np.asarray([list(r) for r in rows], dtype=np.int64)
    n_windows = grid.shape[1]
    if n_windows > max_cols:
        bins = np.array_split(np.arange(n_windows), max_cols)
        grid = np.stack([grid[:, b].max(axis=1) for b in bins], axis=1)
    hi = int(grid.max())
    top = len(_HEAT_SHADES) - 1
    width = max(len(lab) for lab in row_labels)
    lines = [title] if title else []
    for label, row in zip(row_labels, grid):
        if hi == 0:
            shades = " " * len(row)
        else:
            # 0 stays blank; anything non-zero gets at least the
            # faintest shade.
            idx = np.ceil(row / hi * top).astype(np.int64)
            shades = "".join(_HEAT_SHADES[int(i)] for i in idx)
        lines.append(f"   {label.ljust(width)} |{shades}|")
    axis = f"{axis} 0..{n_windows - 1}"
    if n_windows > max_cols:
        axis += f" ({grid.shape[1]} bins, max-pooled)"
    lines.append(f"   {' ' * width}  {axis}; scale blank=0 .. '#'={hi}")
    return "\n".join(lines)


def flow_pair_table(
    rows: Sequence[Mapping],
    *,
    victim_ids: Optional[Set[int]] = None,
    title: str = "worst flows by p99 latency",
) -> str:
    """Tabulate per-pair digests from :func:`repro.obs.fairness.pair_stats`.

    ``victim_ids`` marks pairs flagged by the victim detector with a
    ``*`` in the first column.
    """
    if not rows:
        return f"{title}: (no measured flows)"
    victims = victim_ids or set()
    body = [
        [
            ("*" if int(e["pair"]) in victims else "") + str(e["label"]),
            int(e["delivered"]),
            f"{float(e['mean']):.1f}",
            f"{float(e['p50']):.1f}",
            f"{float(e['p99']):.1f}",
            int(e["max"]),
        ]
        for e in rows
    ]
    return format_table(
        ["pair", "delivered", "mean", "p50", "p99", "max"],
        body,
        title=title,
    )


def fairness_table(
    summaries: Sequence[Mapping],
    *,
    title: str = "per-run flow fairness",
) -> str:
    """Tabulate per-run rollups from :func:`repro.obs.fairness.run_summary`."""
    if not summaries:
        return f"{title}: (no runs)"

    def _f(v, spec=".1f"):
        v = float(v)
        return "-" if v != v else format(v, spec)

    body = [
        [
            str(s["label"]),
            int(s["pairs_active"]),
            int(s["delivered"]),
            _f(s["jain"], ".4f"),
            _f(s["median_p99"]),
            _f(s["worst"]["p99"]) if s["worst"] is not None else "-",
            _f(s["spread"], ".2f"),
            len(s["victims"]),
        ]
        for s in summaries
    ]
    return format_table(
        [
            "run", "pairs", "delivered", "jain", "p99 med",
            "p99 worst", "spread", "victims",
        ],
        body,
        title=title,
    )


def stall_attribution_table(
    ranked: Sequence[Mapping],
    *,
    title: str = "credit-stall attribution (hottest links)",
) -> str:
    """Tabulate :func:`repro.obs.forensics.rank_stalled_links` output."""
    if not ranked:
        return f"{title}: (no stalls recorded)"
    rows = [
        [
            f"#{int(e['link'])}",
            str(e["label"]),
            int(e["credit_stalls"]),
            f"{100.0 * float(e['share']):.1f}%",
            int(e["forwarded"]),
            int(e["peak_occupancy"]),
        ]
        for e in ranked
    ]
    return format_table(
        ["link", "endpoints", "stalls", "share", "forwarded", "peak occ"],
        rows,
        title=title,
    )


def congestion_tree_text(
    tree: Mapping,
    *,
    title: str = "backpressure tree (stall wave, downstream root to upstream leaves)",
) -> str:
    """Render a :func:`repro.obs.forensics.congestion_tree` as text.

    The root is the saturated link; each ``<-`` level is one hop further
    upstream — the links stalled because the level below them could not
    drain.
    """
    lines = [title] if title else []

    def emit(node: Mapping, depth: int) -> None:
        indent = "   " + "   " * depth
        arrow = "<- " if depth else ""
        lines.append(
            f"{indent}{arrow}{node['label']}  "
            f"stalls={int(node['credit_stalls'])} "
            f"({100.0 * float(node['share']):.1f}%)  "
            f"fwd={int(node['forwarded'])}  "
            f"peak={int(node['peak_occupancy'])}"
        )
        for child in node.get("children", ()):
            emit(child, depth + 1)

    emit(tree, 0)
    return "\n".join(lines)


#: Metric prefixes shown by default in trend tables (the gated families
#: plus the latency/fairness SLO gauges).
_TREND_DEFAULT_PREFIXES = (
    "timing/",
    "gauge/netsim.cycles_per_sec/",
    "gauge/netsim.latency_",
    "gauge/netsim.mean_latency",
    "gauge/netsim.fairness_",
    "gauge/netsim.worst_pair_",
)


def trend_table(
    report,
    *,
    show_all: bool = False,
    spark_width: int = 16,
    title: str = "metric trends",
) -> str:
    """Render a :class:`repro.obs.trend.TrendReport` as sparkline tables.

    One row per (series, metric): run count, a fixed-width sparkline of
    the window (oldest to newest), the window-median baseline, the
    latest value, the relative delta, and a flag column — ``REGRESSION``
    for gated drifts, the changepoint/cross-engine note otherwise.  By
    default only the gated metric families (timings, cycles/sec) and
    any regressed metric are shown; ``show_all`` includes counters and
    other gauges.  Deterministic: fixed sparkline width, no terminal
    queries.
    """
    lines = [f"NOTE: {note}" for note in report.notes]
    shown = [
        t
        for t in report.trends
        if show_all
        or t.regression
        or t.metric.startswith(_TREND_DEFAULT_PREFIXES)
    ]
    if not shown:
        lines.append(f"{title}: (no trendable metrics)")
        return "\n".join(lines)
    rows = []
    for t in shown:
        delta = 100.0 * (t.ratio - 1.0) if t.baseline > 0 else float("inf")
        flag = "REGRESSION" if t.regression else ""
        if t.note:
            flag = (flag + " " + t.note).strip()
        rows.append(
            [
                t.label,
                t.metric,
                len(t.values),
                sparkline(t.values, width=spark_width),
                f"{t.baseline:.4g}",
                f"{t.latest:.4g}",
                f"{delta:+.1f}%",
                flag,
            ]
        )
    lines.append(
        format_table(
            ["series", "metric", "n", "trend", "baseline", "latest",
             "delta", "flag"],
            rows,
            title=title,
        )
    )
    n = len(report.regressions)
    lines.append(
        f"{n} trend regression(s)" if n else "no trend regressions"
    )
    return "\n".join(lines)


def render_dashboard(
    state: Mapping, *, ansi: bool = False, width: Optional[int] = None
) -> List[str]:
    """Render the live monitor's state dict as dashboard lines.

    Pure function — the monitor owns timing, queues and cursor movement;
    this owns layout, so tests can assert on lines without a TTY.  Expects
    the state shape :class:`repro.obs.monitor.RunMonitor` maintains:
    ``label`` / ``done`` / ``total`` / ``elapsed``, recent ``rates`` and
    ``lats`` window samples, and a ``workers`` map of per-worker dicts
    (``label``, ``rate``, ``lat``, ``beats``, ``age``, ``stale``).
    """
    cols = width if width is not None else term_width()
    cols = max(30, cols)
    spark_w = max(8, min(24, cols - 56))
    lines: List[str] = []

    label = str(state.get("label") or "run")
    done = int(state.get("done", 0))
    total = int(state.get("total", 0))
    elapsed = float(state.get("elapsed", 0.0))
    from repro.obs.progress import format_eta

    head = f"◉ {label} · {done}/{total} tasks · {format_eta(elapsed)} elapsed"
    if total > 0 and 0 < done < total and elapsed > 0:
        head += f" · ETA {format_eta(elapsed * (total - done) / done)}"
    lines.append(head)

    rates = list(state.get("rates") or [])
    lats = list(state.get("lats") or [])
    ascii_only = not ansi
    if rates:
        cur = next((v for v in reversed(rates) if not math.isnan(v)), float("nan"))
        lines.append(
            f"  throughput {sparkline(rates, width=spark_w, ascii_only=ascii_only)}"
            f" {cur:.3f} flits/host/cycle"
        )
    if lats:
        cur = next((v for v in reversed(lats) if not math.isnan(v)), float("nan"))
        lines.append(
            f"  latency    {sparkline(lats, width=spark_w, ascii_only=ascii_only)}"
            f" {cur:.1f} cycles"
        )

    workers = state.get("workers") or {}
    for wid in sorted(workers):
        w = workers[wid]
        stale = bool(w.get("stale"))
        mark = "◌" if stale else "●"
        wl = str(w.get("label") or "idle")
        rate = w.get("rate")
        lat = w.get("lat")
        tail = ""
        if rate is not None and not math.isnan(rate):
            tail += f"  rate {rate:.3f}"
        if lat is not None and not math.isnan(lat):
            tail += f"  lat {lat:.1f}"
        tail += f"  beats {int(w.get('beats', 0))}"
        if stale:
            age = float(w.get("age", 0.0))
            flag = f"STALE {age:.1f}s"
            if ansi:
                flag = f"\x1b[31m{flag}\x1b[0m"
            tail += f"  {flag}"
        line = f"  {mark} w{wid} {wl}{tail}"
        lines.append(line)

    # Clamp every line to the terminal; ANSI escapes are only ever in the
    # tail of stale rows, which survive clamping in practice — but never
    # emit a line that would wrap.
    out = []
    for line in lines:
        if ansi and "\x1b[" in line:
            out.append(line)
        else:
            out.append(line[:cols])
    return out
