"""Terminal charts without plotting dependencies.

Two chart kinds cover the paper's figures: :func:`line_chart` for the
latency-versus-load curves (Figures 11-13) and :func:`bar_chart` for the
throughput comparisons (Figures 4-10).
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["line_chart", "bar_chart"]

_MARKERS = "ox+*#@%&"


def line_chart(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more (x, y) series on a character grid.

    Each series gets a marker from ``o x + * ...``; the legend maps markers
    back to labels.  Points outside a degenerate range collapse gracefully
    (a single point renders mid-axis).
    """
    if not series:
        raise ConfigurationError("line_chart needs at least one series")
    if width < 8 or height < 4:
        raise ConfigurationError("chart too small to render")
    pts = [(x, y) for s in series.values() for x, y in s]
    if not pts:
        raise ConfigurationError("all series are empty")
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (label, points), marker in zip(series.items(), _MARKERS):
        for x, y in points:
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = int(round((y - y_min) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (top {y_max:.4g}, bottom {y_min:.4g})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_min:.4g} .. {x_max:.4g}")
    legend = "  ".join(
        f"{marker}={label}" for (label, _), marker in zip(series.items(), _MARKERS)
    )
    lines.append(" legend: " + legend)
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    *,
    width: int = 40,
    title: str = "",
    fmt: str = "{:.3f}",
) -> str:
    """Render labelled horizontal bars scaled to the maximum value."""
    if not values:
        raise ConfigurationError("bar_chart needs at least one value")
    if width < 4:
        raise ConfigurationError("chart too small to render")
    top = max(values.values())
    if top < 0:
        raise ConfigurationError("bar_chart needs non-negative values")
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for label, v in values.items():
        if v < 0:
            raise ConfigurationError("bar_chart needs non-negative values")
        n = int(round(v / top * width)) if top > 0 else 0
        lines.append(f"{label.ljust(label_w)} | {'█' * n}{' ' * (width - n)} {fmt.format(v)}")
    return "\n".join(lines)
