"""Machine-readable export of experiment results (JSON / CSV) and the
static HTML fleet dashboard rendered from the run ledger."""

from __future__ import annotations

import csv
import html as _html
import io
import json
from pathlib import Path
from typing import Any, List, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.experiments.base import ExperimentResult

__all__ = [
    "result_to_json",
    "result_to_csv",
    "save_result",
    "trend_dashboard_html",
    "forensics_html",
    "flowstats_html",
]


def _jsonable(value: Any):
    """Recursively coerce result payloads (numpy scalars, tuples) to JSON."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "tolist"):  # numpy array or scalar
        return value.tolist()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def result_to_json(result: ExperimentResult, indent: int = 2) -> str:
    """Serialise a full ExperimentResult (table + raw data) to JSON."""
    payload = {
        "experiment": result.experiment,
        "title": result.title,
        "scale": result.scale,
        "notes": result.notes,
        "headers": list(result.headers),
        "rows": _jsonable(result.rows),
        "data": _jsonable(result.data),
    }
    return json.dumps(payload, indent=indent)


def result_to_csv(result: ExperimentResult) -> str:
    """Serialise the result's table (headers + rows) to CSV."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(result.headers)
    for row in result.rows:
        writer.writerow(row)
    return buf.getvalue()


# ------------------------------------------------------ fleet dashboard
#
# A self-contained static HTML page: no scripts, no external assets, and
# byte-deterministic for a fixed ledger (CI publishes it as a build
# artifact, so identical inputs must yield identical bytes).  Color
# follows the dataviz rules: one categorical hue for the single data
# series, status colors only for regression state (always paired with a
# text label, never color alone), text in ink tokens, and a light/dark
# pair selected per surface rather than auto-inverted.

_DASH_CSS = """
:root {
  color-scheme: light dark;
  --surface: #fcfcfb; --page: #f9f9f7;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --border: rgba(11,11,11,0.10);
  --series: #2a78d6; --critical: #d03b3b; --good: #0ca30c;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --page: #0d0d0d;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835; --border: rgba(255,255,255,0.10);
    --series: #3987e5; --critical: #e66767; --good: #0ca30c;
  }
}
* { box-sizing: border-box; }
body { margin: 0; padding: 24px; background: var(--page); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 10px; color: var(--ink); }
.sub { color: var(--ink-2); margin: 0 0 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile { background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 130px; }
.tile .label { color: var(--ink-2); font-size: 12px; }
.tile .value { font-size: 26px; font-weight: 600; }
.tile .value.bad { color: var(--critical); }
.tile .value.ok { color: var(--good); }
.callout { background: var(--surface); border: 1px solid var(--border);
  border-left: 3px solid var(--critical); border-radius: 6px;
  padding: 8px 12px; margin: 6px 0; }
.callout .tag { color: var(--critical); font-weight: 600; }
.cards { display: grid; gap: 14px;
  grid-template-columns: repeat(auto-fill, minmax(340px, 1fr)); }
.card { background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 14px; }
.card .name { font-weight: 600; font-size: 13px; }
.card .where { color: var(--ink-2); font-size: 12px; margin-bottom: 6px; }
.card .delta { font-size: 12px; color: var(--ink-2); }
.card .delta .bad { color: var(--critical); font-weight: 600; }
svg { display: block; width: 100%; height: auto; }
svg text { font: 10px system-ui, -apple-system, "Segoe UI", sans-serif;
  fill: var(--muted); font-variant-numeric: tabular-nums; }
table { border-collapse: collapse; background: var(--surface);
  font-variant-numeric: tabular-nums; }
th, td { border: 1px solid var(--grid); padding: 4px 10px;
  text-align: left; font-size: 13px; }
th { color: var(--ink-2); font-weight: 600; }
details { margin-top: 6px; }
summary { color: var(--ink-2); font-size: 12px; cursor: pointer; }
"""


def _fmt(v: float) -> str:
    """Compact deterministic number format for labels and tables."""
    if v != v:  # NaN
        return "nan"
    if v == int(v) and abs(v) < 1e6:
        return str(int(v))
    return f"{v:.4g}"


def _trend_svg(values: Sequence[float], *, regressed: bool) -> str:
    """One single-series trend chart as inline SVG.

    2px line, end marker with a surface ring, ~10% area wash, hairline
    gridlines, three y ticks.  Native ``<title>`` tooltips on oversized
    hover targets carry per-run values.  The latest marker turns the
    critical status color when the trend regressed — always alongside
    the textual REGRESSION tag in the card, never color alone.
    """
    w, h = 320, 110
    left, right, top, bottom = 42, 10, 8, 18
    pw, ph = w - left - right, h - top - bottom
    lo, hi = min(values), max(values)
    span = (hi - lo) or (abs(hi) or 1.0)
    lo_pad, span_pad = lo - 0.08 * span, 1.16 * span

    def x(i: int) -> float:
        n = len(values)
        return left + (pw * i / (n - 1) if n > 1 else pw / 2)

    def y(v: float) -> float:
        return top + ph * (1.0 - (v - lo_pad) / span_pad)

    parts = [
        f'<svg viewBox="0 0 {w} {h}" role="img" '
        f'aria-label="trend over {len(values)} runs">'
    ]
    # Hairline gridlines + y ticks at min / mid / max of the data range.
    for tv in (lo, (lo + hi) / 2.0, hi):
        ty = round(y(tv), 2)
        parts.append(
            f'<line x1="{left}" y1="{ty}" x2="{w - right}" y2="{ty}" '
            f'stroke="var(--grid)" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{left - 4}" y="{ty + 3}" text-anchor="end">'
            f"{_fmt(tv)}</text>"
        )
    pts = [(round(x(i), 2), round(y(v), 2)) for i, v in enumerate(values)]
    if len(pts) > 1:
        base_y = round(top + ph, 2)
        area = (
            f"M{pts[0][0]},{base_y} "
            + " ".join(f"L{px},{py}" for px, py in pts)
            + f" L{pts[-1][0]},{base_y} Z"
        )
        parts.append(
            f'<path d="{area}" fill="var(--series)" opacity="0.1"/>'
        )
        line = "M" + " L".join(f"{px},{py}" for px, py in pts)
        parts.append(
            f'<path d="{line}" fill="none" stroke="var(--series)" '
            f'stroke-width="2" stroke-linejoin="round" '
            f'stroke-linecap="round"/>'
        )
    # Oversized hover targets with native tooltips (run index + value).
    for i, ((px, py), v) in enumerate(zip(pts, values)):
        parts.append(
            f'<circle cx="{px}" cy="{py}" r="10" fill="transparent">'
            f"<title>run {i + 1}: {_fmt(v)}</title></circle>"
        )
    end_color = "var(--critical)" if regressed else "var(--series)"
    px, py = pts[-1]
    parts.append(
        f'<circle cx="{px}" cy="{py}" r="6" fill="var(--surface)"/>'
        f'<circle cx="{px}" cy="{py}" r="4" fill="{end_color}"/>'
    )
    parts.append(
        f'<text x="{left}" y="{h - 4}">run 1</text>'
        f'<text x="{w - right}" y="{h - 4}" text-anchor="end">'
        f"run {len(values)}</text>"
    )
    parts.append("</svg>")
    return "".join(parts)


def trend_dashboard_html(report, entries: Sequence[Mapping]) -> str:
    """Render the fleet dashboard: a self-contained static HTML page.

    ``report`` is a :class:`repro.obs.trend.TrendReport`; ``entries``
    the time-ordered ledger entries it was computed from.  Sections:
    headline stat tiles, regression callouts, the engine-tier breakdown,
    and one trend card per gated-family metric (timings, cycles/sec)
    with an inline SVG chart and a collapsible value table.  Pure
    function of its inputs — no timestamps, no randomness — so the
    page is byte-identical across renders of the same ledger.
    """
    esc = _html.escape
    n_reg = len(report.regressions)
    engines: dict = {}
    for entry in entries:
        for eng in entry.get("engines") or ():
            doc = engines.setdefault(eng, {"runs": 0, "latest": 0.0, "best": 0.0})
            doc["runs"] += 1
            cps = (entry.get("metrics") or {}).get(
                f"gauge/netsim.cycles_per_sec/{eng}"
            )
            if cps:
                doc["latest"] = float(cps)
                doc["best"] = max(doc["best"], float(cps))

    out: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8"/>',
        "<title>repro · run ledger dashboard</title>",
        f"<style>{_DASH_CSS}</style></head><body>",
        "<h1>Run ledger — trend observatory</h1>",
        '<p class="sub">Cross-run metric trends from the persistent run '
        "ledger; regressions gate per-host against the window median and "
        "sustained changepoints.</p>",
    ]

    reg_cls = "bad" if n_reg else "ok"
    out.append('<div class="tiles">')
    for label, value, cls in (
        ("Ledger entries", str(report.n_entries), ""),
        ("Series", str(report.n_series), ""),
        ("Trend regressions", str(n_reg), reg_cls),
        ("Engine tiers", str(len(engines)), ""),
    ):
        out.append(
            f'<div class="tile"><div class="label">{esc(label)}</div>'
            f'<div class="value {cls}">{esc(value)}</div></div>'
        )
    out.append("</div>")

    if report.regressions or report.notes:
        out.append("<h2>Callouts</h2>")
        for t in report.regressions:
            delta = 100.0 * (t.ratio - 1.0) if t.baseline > 0 else float("inf")
            note = f" ({esc(t.note)})" if t.note else ""
            out.append(
                f'<div class="callout"><span class="tag">⚠ REGRESSION</span> '
                f"{esc(t.label)} · {esc(t.metric)}: latest {_fmt(t.latest)} "
                f"vs baseline {_fmt(t.baseline)} ({delta:+.1f}%){note}</div>"
            )
        for note in report.notes:
            out.append(
                f'<div class="callout" style="border-left-color:'
                f'var(--axis)">{esc(note)}</div>'
            )

    if engines:
        out.append("<h2>Engine tiers</h2>")
        out.append(
            "<table><tr><th>engine</th><th>runs recorded</th>"
            "<th>latest cycles/s</th><th>best cycles/s</th></tr>"
        )
        for eng in sorted(engines):
            doc = engines[eng]
            out.append(
                f"<tr><td>{esc(eng)}</td><td>{doc['runs']}</td>"
                f"<td>{_fmt(doc['latest'])}</td>"
                f"<td>{_fmt(doc['best'])}</td></tr>"
            )
        out.append("</table>")

    cards = [
        t
        for t in report.trends
        if t.regression
        or t.metric.startswith("timing/")
        or t.metric.startswith("gauge/netsim.cycles_per_sec/")
        or t.metric.startswith("gauge/netsim.latency_")
        or t.metric.startswith("gauge/netsim.mean_latency")
        or t.metric.startswith("gauge/netsim.fairness_")
        or t.metric.startswith("gauge/netsim.worst_pair_")
    ]
    out.append("<h2>Metric trends</h2>")
    if not cards:
        out.append('<p class="sub">No trendable metrics in the ledger.</p>')
    out.append('<div class="cards">')
    for t in cards:
        delta = 100.0 * (t.ratio - 1.0) if t.baseline > 0 else float("inf")
        tag = (
            '<span class="bad">REGRESSION</span> · ' if t.regression else ""
        )
        note = f" · {esc(t.note)}" if t.note else ""
        rows = "".join(
            f"<tr><td>{i + 1}</td><td>{_fmt(v)}</td></tr>"
            for i, v in enumerate(t.values)
        )
        out.append(
            '<div class="card">'
            f'<div class="name">{esc(t.metric)}</div>'
            f'<div class="where">{esc(t.label)} · {len(t.values)} runs</div>'
            f"{_trend_svg(t.values, regressed=t.regression)}"
            f'<div class="delta">{tag}baseline {_fmt(t.baseline)} · '
            f"latest {_fmt(t.latest)} ({delta:+.1f}%){note}</div>"
            f"<details><summary>values</summary><table>"
            f"<tr><th>run</th><th>value</th></tr>{rows}</table></details>"
            "</div>"
        )
    out.append("</div>")
    out.append("</body></html>")
    return "\n".join(out) + "\n"


# -------------------------------------------------- forensics deep dive
def _heat_svg(
    rows: Sequence[Sequence[float]],
    labels: Sequence[str],
    *,
    hue: str = "var(--series)",
    unit: str = "flits",
    max_cols: int = 128,
) -> str:
    """A links-by-windows heatmap as inline SVG (one shared scale).

    Cell opacity encodes the value (quantized, deterministic); empty
    cells are zero.  NaN values (gaps in a latency strip) render as
    hollow outline cells.  Long runs max-pool into ``max_cols`` bins.
    Native ``<title>`` tooltips carry the exact numbers.
    """
    grid = [[float(v) for v in r] for r in rows]
    n_cols = len(grid[0]) if grid else 0
    binned = False
    if n_cols > max_cols:
        import numpy as _np

        idx_bins = _np.array_split(_np.arange(n_cols), max_cols)
        grid = [
            [
                float(_np.nanmax(_np.asarray(r)[b]))
                if not _np.all(_np.isnan(_np.asarray(r)[b]))
                else float("nan")
                for b in idx_bins
            ]
            for r in grid
        ]
        n_cols = max_cols
        binned = True
    finite = [v for r in grid for v in r if v == v]
    hi = max(finite) if finite else 0.0
    label_w, rh, gap = 96, 14, 2
    cw = round(520.0 / max(1, n_cols), 3)
    w = label_w + 524
    h = (rh + gap) * len(grid) + 16
    parts = [
        f'<svg viewBox="0 0 {w} {h}" role="img" '
        f'aria-label="heatmap over {n_cols} windows">'
    ]
    for i, (label, row) in enumerate(zip(labels, grid)):
        y = i * (rh + gap)
        parts.append(
            f'<text x="{label_w - 6}" y="{y + rh - 3}" text-anchor="end">'
            f"{_html.escape(str(label))}</text>"
        )
        for j, v in enumerate(row):
            x = round(label_w + j * cw, 3)
            tip = (
                f"{label} · window {j}: "
                + ("no data" if v != v else f"{_fmt(v)} {unit}")
            )
            if v != v:  # NaN gap
                parts.append(
                    f'<rect x="{x}" y="{y}" width="{round(cw, 3)}" '
                    f'height="{rh}" fill="none" stroke="var(--grid)" '
                    f'stroke-width="0.5"><title>{_html.escape(tip)}</title>'
                    "</rect>"
                )
                continue
            op = 0.0 if v == 0 or hi == 0 else round(0.12 + 0.88 * v / hi, 3)
            parts.append(
                f'<rect x="{x}" y="{y}" width="{round(cw, 3)}" '
                f'height="{rh}" fill="{hue}" fill-opacity="{op}">'
                f"<title>{_html.escape(tip)}</title></rect>"
            )
    foot = f"window 0..{n_cols - 1}"
    if binned:
        foot += " (max-pooled)"
    parts.append(
        f'<text x="{label_w}" y="{h - 3}">{foot} · scale 0..{_fmt(hi)} '
        f"{_html.escape(unit)}</text>"
    )
    parts.append("</svg>")
    return "".join(parts)


def _tree_html(node: Mapping) -> str:
    """Nested list rendering of a backpressure tree node."""
    esc = _html.escape
    label = (
        f"<strong>{esc(str(node['label']))}</strong> — "
        f"{int(node['credit_stalls'])} stalls "
        f"({100.0 * float(node['share']):.1f}%), "
        f"peak occupancy {int(node['peak_occupancy'])}"
    )
    children = node.get("children") or ()
    if not children:
        return f"<li>{label}</li>"
    inner = "".join(_tree_html(c) for c in children)
    return f"<li>{label}<ul>{inner}</ul></li>"


def forensics_html(docs: Sequence[Mapping]) -> str:
    """Render the per-run congestion deep dive as self-contained HTML.

    ``docs`` is a sequence of documents from
    :func:`repro.obs.forensics.deep_dive_docs` (one per link-state
    artifact).  Sections per run: headline tiles, the link-by-window
    forwarded heatmap, the credit-stall heatmap, the backpressure tree
    callout, the per-window latency strip (when a matching time series
    was recorded), the stall ranking table, and traced path
    attribution.  Pure function of its inputs — no timestamps, no
    randomness — so the page is byte-identical across renders.
    """
    esc = _html.escape
    out: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8"/>',
        "<title>repro · congestion deep dive</title>",
        f"<style>{_DASH_CSS}</style></head><body>",
        "<h1>Congestion forensics — per-run deep dive</h1>",
        '<p class="sub">Dense link-state telemetry: where the flits '
        "went, where the credit stalls piled up, and which upstream "
        "links the backpressure wave reached.</p>",
    ]
    for doc in docs:
        out.append(f"<h2>{esc(str(doc['name']))}</h2>")
        out.append('<div class="tiles">')
        for label, value in (
            ("Runs", str(len(doc["runs"]))),
            ("Windows", str(int(doc["n_windows"]))),
            ("Window cycles", str(int(doc["window"]))),
            ("Links", str(int(doc["n_links"]))),
        ):
            out.append(
                f'<div class="tile"><div class="label">{esc(label)}</div>'
                f'<div class="value">{esc(value)}</div></div>'
            )
        out.append("</div>")
        for run in doc["runs"]:
            out.append(
                f"<h2>run {int(run['run'])} · {esc(str(run['label']))}</h2>"
            )
            onset = run.get("onset")
            stall_cls = "bad" if run["stall_total"] else "ok"
            out.append('<div class="tiles">')
            for label, value, cls in (
                ("Windows", str(int(run["n_windows"])), ""),
                ("Flits forwarded", _fmt(float(run["forwarded_total"])), ""),
                ("Credit stalls", _fmt(float(run["stall_total"])), stall_cls),
                ("Peak occupancy", str(int(run["peak_max"])), ""),
            ):
                out.append(
                    f'<div class="tile"><div class="label">{esc(label)}'
                    f'</div><div class="value {cls}">{esc(value)}</div></div>'
                )
            out.append("</div>")
            if onset is not None:
                out.append(
                    f'<div class="callout"><span class="tag">congestion '
                    f"onset</span> window {int(onset['onset_window'])} "
                    f"(cycle {int(onset['onset_cycle'])}) — sustained "
                    f"stall plateau {onset['plateau']:.1f}/window</div>"
                )
            tree = run.get("tree")
            if tree is not None:
                out.append(
                    '<div class="callout"><span class="tag">backpressure '
                    "tree</span> saturated link and the upstream stall "
                    f"wave:<ul>{_tree_html(tree)}</ul></div>"
                )
            if run["heat_rows"]:
                out.append(
                    '<div class="card"><div class="name">flits forwarded '
                    "per window</div>"
                    + _heat_svg(
                        run["heat_rows"], run["heat_labels"], unit="flits"
                    )
                    + "</div>"
                )
                out.append(
                    '<div class="card"><div class="name">credit stalls '
                    "per window</div>"
                    + _heat_svg(
                        run["stall_rows"],
                        run["heat_labels"],
                        hue="var(--critical)",
                        unit="stalls",
                    )
                    + "</div>"
                )
            latency = run.get("latency")
            if latency:
                out.append(
                    '<div class="card"><div class="name">mean packet '
                    "latency per window (cycles)</div>"
                    + _heat_svg([latency], ["latency"], unit="cycles")
                    + "</div>"
                )
            ranked = run.get("ranked") or ()
            if ranked:
                out.append(
                    "<details><summary>credit-stall ranking</summary>"
                    "<table><tr><th>link</th><th>endpoints</th>"
                    "<th>stalls</th><th>share</th><th>forwarded</th>"
                    "<th>peak occ</th></tr>"
                    + "".join(
                        f"<tr><td>#{int(e['link'])}</td>"
                        f"<td>{esc(str(e['label']))}</td>"
                        f"<td>{int(e['credit_stalls'])}</td>"
                        f"<td>{100.0 * float(e['share']):.1f}%</td>"
                        f"<td>{int(e['forwarded'])}</td>"
                        f"<td>{int(e['peak_occupancy'])}</td></tr>"
                        for e in ranked
                    )
                    + "</table></details>"
                )
            hot_paths = run.get("hot_paths") or ()
            for hp in hot_paths:
                parts = ", ".join(
                    f"{esc(str(p['series']))} path#{int(p['path_index'])}: "
                    f"{int(p['count'])}"
                    for p in hp["paths"]
                )
                out.append(
                    f'<p class="sub">{esc(str(hp["label"]))}: '
                    f"{int(hp['packets'])} traced crossings — {parts}</p>"
                )
    out.append("</body></html>")
    return "\n".join(out) + "\n"


def flowstats_html(docs: Sequence[Mapping]) -> str:
    """Render the flow-level SLO observatory as self-contained HTML.

    ``docs`` is a sequence of documents from
    :func:`repro.obs.fairness.flow_docs` (one per flowstats artifact).
    Sections per run: fairness tiles (Jain index, median/worst p99,
    spread), victim-pair callouts joined with the link-state stall
    attribution, the source-by-destination p99 heatmap, and the
    worst-pair digest table.  Pure function of its inputs — no
    timestamps, no randomness — so the page is byte-identical across
    renders.
    """
    esc = _html.escape
    out: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8"/>',
        "<title>repro · flow-level SLOs</title>",
        f"<style>{_DASH_CSS}</style></head><body>",
        "<h1>Flow-level SLO observatory</h1>",
        '<p class="sub">Per-(src,dst)-pair latency digests: who paid '
        "for the good average — fairness indices, tail spread, and the "
        "victim flows a mean-only comparison hides.</p>",
    ]
    for doc in docs:
        out.append(f"<h2>{esc(str(doc['name']))}</h2>")
        out.append('<div class="tiles">')
        for label, value in (
            ("Runs", str(int(doc["n_runs"]))),
            ("Hosts", str(int(doc["n_hosts"]))),
            ("Pairs", str(int(doc["n_pairs"]))),
            ("Histogram bins", str(int(doc["n_bins"]))),
        ):
            out.append(
                f'<div class="tile"><div class="label">{esc(label)}</div>'
                f'<div class="value">{esc(value)}</div></div>'
            )
        out.append("</div>")
        for run in doc["runs"]:
            out.append(
                f"<h2>run {int(run['run'])} · {esc(str(run['label']))}</h2>"
            )
            victim_cls = "bad" if run["victims"] else "ok"
            out.append('<div class="tiles">')
            for label, value, cls in (
                ("Active pairs", str(int(run["pairs_active"])), ""),
                ("Delivered", _fmt(float(run["delivered"])), ""),
                ("Jain index", _fmt(float(run["jain"])), ""),
                ("p99 median", _fmt(float(run["median_p99"])), ""),
                ("p99 spread", _fmt(float(run["spread"])), ""),
                ("Victim pairs", str(int(run["victim_total"])), victim_cls),
            ):
                out.append(
                    f'<div class="tile"><div class="label">{esc(label)}'
                    f'</div><div class="value {cls}">{esc(value)}</div></div>'
                )
            out.append("</div>")
            attribution = {
                int(a["pair"]): a for a in run.get("attribution") or ()
            }
            for v in run["victims"]:
                line = (
                    f'<div class="callout"><span class="tag">victim '
                    f"flow</span> {esc(str(v['label']))} — p99 "
                    f"{_fmt(float(v['p99']))} cycles "
                    f"({v['ratio']:.2f}&times; the run median, threshold "
                    f"{run['k']:g}&times;), {int(v['delivered'])} delivered"
                )
                a = attribution.get(int(v["pair"]))
                if a is not None:
                    line += (
                        f" · {int(a['injection_stalls'])} injection stalls"
                    )
                    if a.get("suspect") is not None:
                        s = a["suspect"]
                        line += (
                            f" · top stalled link {esc(str(s['label']))} "
                            f"({100.0 * float(s['share']):.1f}% of stalls)"
                        )
                out.append(line + "</div>")
            if run["heat_rows"]:
                out.append(
                    '<div class="card"><div class="name">pair p99 latency '
                    "by destination host (hottest source hosts)</div>"
                    + _heat_svg(
                        run["heat_rows"],
                        run["heat_labels"],
                        hue="var(--critical)",
                        unit="cycles",
                    )
                    + "</div>"
                )
            worst = run.get("worst_rows") or ()
            if worst:
                out.append(
                    "<details><summary>worst flows by p99</summary>"
                    "<table><tr><th>pair</th><th>delivered</th>"
                    "<th>mean</th><th>p50</th><th>p99</th><th>max</th></tr>"
                    + "".join(
                        f"<tr><td>{esc(str(e['label']))}</td>"
                        f"<td>{int(e['delivered'])}</td>"
                        f"<td>{_fmt(float(e['mean']))}</td>"
                        f"<td>{_fmt(float(e['p50']))}</td>"
                        f"<td>{_fmt(float(e['p99']))}</td>"
                        f"<td>{int(e['max'])}</td></tr>"
                        for e in worst
                    )
                    + "</table></details>"
                )
    out.append("</body></html>")
    return "\n".join(out) + "\n"


def save_result(result: ExperimentResult, path: str | Path) -> Path:
    """Write a result to ``path``; format chosen by suffix (.json/.csv/.txt)."""
    path = Path(path)
    if path.suffix == ".json":
        path.write_text(result_to_json(result))
    elif path.suffix == ".csv":
        path.write_text(result_to_csv(result))
    elif path.suffix == ".txt":
        path.write_text(result.to_text() + "\n")
    else:
        raise ConfigurationError(
            f"unsupported export suffix {path.suffix!r}; use .json, .csv or .txt"
        )
    return path
