"""Machine-readable export of experiment results (JSON / CSV)."""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError
from repro.experiments.base import ExperimentResult

__all__ = ["result_to_json", "result_to_csv", "save_result"]


def _jsonable(value: Any):
    """Recursively coerce result payloads (numpy scalars, tuples) to JSON."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "tolist"):  # numpy array or scalar
        return value.tolist()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def result_to_json(result: ExperimentResult, indent: int = 2) -> str:
    """Serialise a full ExperimentResult (table + raw data) to JSON."""
    payload = {
        "experiment": result.experiment,
        "title": result.title,
        "scale": result.scale,
        "notes": result.notes,
        "headers": list(result.headers),
        "rows": _jsonable(result.rows),
        "data": _jsonable(result.data),
    }
    return json.dumps(payload, indent=indent)


def result_to_csv(result: ExperimentResult) -> str:
    """Serialise the result's table (headers + rows) to CSV."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(result.headers)
    for row in result.rows:
        writer.writerow(row)
    return buf.getvalue()


def save_result(result: ExperimentResult, path: str | Path) -> Path:
    """Write a result to ``path``; format chosen by suffix (.json/.csv/.txt)."""
    path = Path(path)
    if path.suffix == ".json":
        path.write_text(result_to_json(result))
    elif path.suffix == ".csv":
        path.write_text(result_to_csv(result))
    elif path.suffix == ".txt":
        path.write_text(result.to_text() + "\n")
    else:
        raise ConfigurationError(
            f"unsupported export suffix {path.suffix!r}; use .json, .csv or .txt"
        )
    return path
