"""Result reporting: dependency-free ASCII charts and JSON/CSV export.

The experiment drivers print paper-shaped tables; this package adds the
figure-shaped views (latency-load curves, throughput bars) as terminal
charts, trace summaries (latency decomposition, path-share tables), plus
machine-readable exports for downstream analysis.
"""

from repro.report.ascii import (
    bar_chart,
    colorize,
    congestion_tree_text,
    fairness_table,
    flow_pair_table,
    latency_decomposition_table,
    ledger_table,
    line_chart,
    link_load_report,
    linkstate_heatmap,
    path_share_table,
    profile_hotspots_table,
    render_dashboard,
    sparkline,
    stage_timing_table,
    stall_attribution_table,
    supports_ansi,
    term_width,
    trend_table,
)
from repro.report.export import (
    flowstats_html,
    forensics_html,
    result_to_csv,
    result_to_json,
    save_result,
    trend_dashboard_html,
)

__all__ = [
    "bar_chart",
    "colorize",
    "congestion_tree_text",
    "fairness_table",
    "flow_pair_table",
    "ledger_table",
    "line_chart",
    "link_load_report",
    "linkstate_heatmap",
    "latency_decomposition_table",
    "path_share_table",
    "profile_hotspots_table",
    "render_dashboard",
    "sparkline",
    "stage_timing_table",
    "stall_attribution_table",
    "supports_ansi",
    "term_width",
    "trend_table",
    "flowstats_html",
    "forensics_html",
    "result_to_csv",
    "result_to_json",
    "save_result",
    "trend_dashboard_html",
]
