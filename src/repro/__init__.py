"""repro — reproduction of "Multi-Path Routing in the Jellyfish Network".

(ALzaid, Bhowmik, Yuan — IPPS 2021.)

The library provides, all implemented from scratch:

- :mod:`repro.topology` — Jellyfish ``RRG(N, x, y)`` construction + metrics;
- :mod:`repro.core` — path selection: KSP, rKSP, EDKSP, rEDKSP, LLSKR, and
  the path-quality metrics of Tables II-IV;
- :mod:`repro.traffic` — synthetic patterns (permutation, shift, Random(X),
  all-to-all, uniform) and stencil application workloads with rank mappings;
- :mod:`repro.model` — the MPTCP-style throughput model (Eq. 1);
- :mod:`repro.netsim` — a flit-level, cycle-driven network simulator with
  the six routing mechanisms (SP / random / round-robin / vanilla-UGAL /
  KSP-UGAL / KSP-adaptive);
- :mod:`repro.appsim` — a flow-level application simulator for the stencil
  communication-time studies;
- :mod:`repro.experiments` — one driver per paper table and figure.

Quickstart::

    from repro import Jellyfish, PathCache
    topo = Jellyfish(36, 24, 16, seed=1)
    paths = PathCache(topo, scheme="redksp", k=8, seed=1)
    print(paths.get(0, 5))
"""

from repro.errors import (
    ReproError,
    TopologyError,
    ConstructionError,
    PathError,
    NoPathError,
    InsufficientPathsError,
    TrafficError,
    MappingError,
    ModelError,
    SimulationError,
    ConfigurationError,
)
from repro.topology import Jellyfish, random_regular_graph
from repro.core import (
    Path,
    PathSet,
    PathArena,
    PathCache,
    ArenaStore,
    PathStore,
    compute_paths,
    make_selector,
    k_shortest_paths,
    edge_disjoint_paths,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "TopologyError",
    "ConstructionError",
    "PathError",
    "NoPathError",
    "InsufficientPathsError",
    "TrafficError",
    "MappingError",
    "ModelError",
    "SimulationError",
    "ConfigurationError",
    # topology
    "Jellyfish",
    "random_regular_graph",
    # core
    "Path",
    "PathSet",
    "PathArena",
    "PathCache",
    "ArenaStore",
    "PathStore",
    "compute_paths",
    "make_selector",
    "k_shortest_paths",
    "edge_disjoint_paths",
]
