"""Figures 7-10: flit-level saturation throughput.

Figures 7/8 use random permutations, 9/10 random shifts; in each, every
(path-selection scheme x routing mechanism) cell reports the average
saturation throughput over several pattern instances.
"""

from __future__ import annotations

import dataclasses
from contextlib import ExitStack
from typing import Dict, List

import numpy as np

from repro.core import PathCache
from repro.errors import ConfigurationError
from repro.experiments.base import ExperimentResult
from repro.experiments.presets import netsim_preset
from repro.netsim import PatternTraffic, saturation_throughput
from repro.netsim.batchcore import (
    BATCHABLE_MECHANISMS,
    BatchLane,
    BatchSimulator,
)
from repro.obs import log, metrics, topology_hash
from repro.obs import timeseries as obs_timeseries
from repro.obs import trace as obs_trace
from repro.topology import Jellyfish
from repro.traffic import random_permutation, random_shift
from repro.utils.rng import SeedLike, spawn_rngs


def _cell_throughputs(
    topo: Jellyfish,
    cache: PathCache,
    mechanism: str,
    patterns,
    rates,
    config,
    cell_seeds,
) -> List[float]:
    """Per-pattern saturation throughput of one (scheme, mechanism) cell.

    With ``config.batch_lanes > 1`` the cell's patterns climb the rate
    ladder in lock-step through the batched engine: at each rate the
    patterns still below saturation run as lanes of one
    :class:`~repro.netsim.batchcore.BatchSimulator`, drawing exactly one
    ladder seed per executed rung as the serial sweep does, and each
    pattern's telemetry is captured per lane and replayed in serial
    (pattern-major, rate-minor) order afterwards — so throughputs and
    run artifacts are byte-identical to the per-pattern serial sweeps.
    Mechanisms the batched engine cannot take (vanilla UGAL), and every
    cell while the flight recorder is on, fall back to the serial path.
    """
    batched = (
        config.batch_lanes > 1
        and mechanism in BATCHABLE_MECHANISMS
        and not obs_trace.enabled()
    )
    if not batched:
        return [
            saturation_throughput(
                topo, cache, mechanism, PatternTraffic(pat),
                rates=rates, config=config, seed=cell_seed,
            )[0]
            for pat, cell_seed in zip(patterns, cell_seeds)
        ]

    obs_on = metrics.enabled()
    ts_cfg = obs_timeseries.config()
    # One ladder rng per pattern, seeded exactly as the serial sweep's
    # ``ensure_rng(cell_seed)``; one run seed drawn per executed rung.
    ladders = [np.random.default_rng(s) for s in cell_seeds]
    traffics = [PatternTraffic(pat) for pat in patterns]
    n = len(traffics)
    m_snaps: List[list] = [[] for _ in range(n)]
    ts_snaps: List[list] = [[] for _ in range(n)]
    throughput = [0.0] * n
    done = [False] * n

    for rate in rates:
        todo = [i for i in range(n) if not done[i]]
        if not todo:
            break
        for s in range(0, len(todo), config.batch_lanes):
            pack = todo[s : s + config.batch_lanes]
            lanes = [
                BatchLane(
                    mechanism, traffics[i], float(rate),
                    seed=np.random.default_rng(
                        int(ladders[i].integers(2**63))
                    ),
                )
                for i in pack
            ]
            batch = BatchSimulator(topo, cache, lanes, config)
            results = batch.run(publish=False, observe=obs_on)
            for j, i in enumerate(pack):
                if obs_on or ts_cfg:
                    with ExitStack() as stack:
                        reg = (
                            stack.enter_context(metrics.capture())
                            if obs_on else None
                        )
                        tsr = (
                            stack.enter_context(
                                obs_timeseries.capture(**ts_cfg)
                            )
                            if ts_cfg else None
                        )
                        batch.publish_lane(j)
                        if reg is not None:
                            m_snaps[i].append(reg.snapshot())
                        if tsr is not None:
                            ts_snaps[i].append(tsr.snapshot())
                if results[j].saturated:
                    done[i] = True
                else:
                    throughput[i] = float(rate)

    # Replay artifacts in the serial sweep's order: pattern-major, each
    # pattern's rungs in ascending-rate order.
    for i in range(n):
        for snap in m_snaps[i]:
            metrics.merge_snapshot(snap)
        for snap in ts_snaps[i]:
            obs_timeseries.merge_snapshot(snap)
    return throughput


def run_fig(
    figure: int,
    scale: str = "small",
    seed: SeedLike = 0,
    steady_state: bool = False,
    batch_lanes: int = 1,
) -> ExperimentResult:
    """One saturation-throughput figure (7-10).

    ``steady_state=True`` switches every cell's simulator to
    convergence-driven run control (auto-extended warmup, early
    measurement stop) instead of the preset's fixed cycle budget.
    ``batch_lanes=N`` runs each cell's patterns as lock-step lanes of
    the batched engine (results byte-identical either way).
    """
    if batch_lanes > 1 and steady_state:
        raise ConfigurationError(
            "steady_state figures cannot batch lanes: the batched engine "
            "is fixed-budget only. Use batch_lanes=1 with --steady-state."
        )
    preset = netsim_preset(scale, figure)
    if steady_state or batch_lanes > 1:
        preset = dict(preset)
        preset["config"] = dataclasses.replace(
            preset["config"],
            steady_state=steady_state,
            batch_lanes=batch_lanes,
        )
    spec = preset["topo"]
    shift_traffic = figure in (9, 10)
    topo_rng, *pat_rngs = spawn_rngs(seed, preset["n_patterns"] + 1)
    with metrics.span("stage.topology"):
        topo = Jellyfish(spec.n, spec.x, spec.y, seed=topo_rng)
    n = topo.n_hosts
    if metrics.enabled():
        metrics.annotate("topology", spec.label)
        metrics.annotate("topology_hash", topology_hash(topo))
        metrics.annotate("k", preset["k"])
        metrics.annotate("schemes", list(preset["schemes"]))
        metrics.annotate("mechanisms", list(preset["mechanisms"]))

    patterns = [
        random_shift(n, seed=rng) if shift_traffic else random_permutation(n, seed=rng)
        for rng in pat_rngs
    ]

    data: Dict[str, Dict[str, float]] = {}
    rows = []
    for si, scheme in enumerate(preset["schemes"]):
        cache = PathCache(topo, scheme, k=preset["k"], seed=int(topo_rng.integers(2**31)))
        per_mech = {}
        with metrics.span(f"stage.sweep.{scheme}"):
            for mi, mech in enumerate(preset["mechanisms"]):
                # Deterministic per-cell streams: str hashes are salted
                # per process, so derive from indices instead.
                cell_seeds = [
                    np.random.SeedSequence(
                        entropy=figure, spawn_key=(si, mi, i)
                    )
                    for i in range(len(patterns))
                ]
                values = _cell_throughputs(
                    topo, cache, mech, patterns,
                    preset["rates"], preset["config"], cell_seeds,
                )
                per_mech[mech] = float(np.mean(values))
                log.info(
                    "sweep_cell_done", figure=figure, scheme=scheme,
                    mechanism=mech, throughput=per_mech[mech],
                )
        data[scheme] = per_mech
        rows.append([scheme] + [round(per_mech[m], 3) for m in preset["mechanisms"]])

    kind = "random shift" if shift_traffic else "random permutations"
    return ExperimentResult(
        experiment=f"fig{figure}",
        title=f"Average saturation throughput of {kind} on {spec.label}",
        headers=["scheme"] + list(preset["mechanisms"]),
        rows=rows,
        scale=scale,
        notes=f"k={preset['k']}; {preset['n_patterns']} pattern(s); "
        f"rate grid step {preset['rates'][0]}",
        data=data,
    )


def run_fig7(
    scale: str = "small",
    seed: SeedLike = 0,
    steady_state: bool = False,
    batch_lanes: int = 1,
) -> ExperimentResult:
    """Figure 7: permutations on the small topology."""
    return run_fig(
        7, scale, seed, steady_state=steady_state, batch_lanes=batch_lanes
    )


def run_fig8(
    scale: str = "small",
    seed: SeedLike = 0,
    steady_state: bool = False,
    batch_lanes: int = 1,
) -> ExperimentResult:
    """Figure 8: permutations on the medium topology."""
    return run_fig(
        8, scale, seed, steady_state=steady_state, batch_lanes=batch_lanes
    )


def run_fig9(
    scale: str = "small",
    seed: SeedLike = 0,
    steady_state: bool = False,
    batch_lanes: int = 1,
) -> ExperimentResult:
    """Figure 9: shifts on the small topology."""
    return run_fig(
        9, scale, seed, steady_state=steady_state, batch_lanes=batch_lanes
    )


def run_fig10(
    scale: str = "small",
    seed: SeedLike = 0,
    steady_state: bool = False,
    batch_lanes: int = 1,
) -> ExperimentResult:
    """Figure 10: shifts on the medium topology."""
    return run_fig(
        10, scale, seed, steady_state=steady_state, batch_lanes=batch_lanes
    )
