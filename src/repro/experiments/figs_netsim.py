"""Figures 7-10: flit-level saturation throughput.

Figures 7/8 use random permutations, 9/10 random shifts; in each, every
(path-selection scheme x routing mechanism) cell reports the average
saturation throughput over several pattern instances.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from repro.core import PathCache
from repro.experiments.base import ExperimentResult
from repro.experiments.presets import netsim_preset
from repro.netsim import PatternTraffic, saturation_throughput
from repro.obs import log, metrics, topology_hash
from repro.topology import Jellyfish
from repro.traffic import random_permutation, random_shift
from repro.utils.rng import SeedLike, spawn_rngs


def run_fig(
    figure: int,
    scale: str = "small",
    seed: SeedLike = 0,
    steady_state: bool = False,
) -> ExperimentResult:
    """One saturation-throughput figure (7-10).

    ``steady_state=True`` switches every cell's simulator to
    convergence-driven run control (auto-extended warmup, early
    measurement stop) instead of the preset's fixed cycle budget.
    """
    preset = netsim_preset(scale, figure)
    if steady_state:
        preset = dict(preset)
        preset["config"] = dataclasses.replace(
            preset["config"], steady_state=True
        )
    spec = preset["topo"]
    shift_traffic = figure in (9, 10)
    topo_rng, *pat_rngs = spawn_rngs(seed, preset["n_patterns"] + 1)
    with metrics.span("stage.topology"):
        topo = Jellyfish(spec.n, spec.x, spec.y, seed=topo_rng)
    n = topo.n_hosts
    if metrics.enabled():
        metrics.annotate("topology", spec.label)
        metrics.annotate("topology_hash", topology_hash(topo))
        metrics.annotate("k", preset["k"])
        metrics.annotate("schemes", list(preset["schemes"]))
        metrics.annotate("mechanisms", list(preset["mechanisms"]))

    patterns = [
        random_shift(n, seed=rng) if shift_traffic else random_permutation(n, seed=rng)
        for rng in pat_rngs
    ]

    data: Dict[str, Dict[str, float]] = {}
    rows = []
    for si, scheme in enumerate(preset["schemes"]):
        cache = PathCache(topo, scheme, k=preset["k"], seed=int(topo_rng.integers(2**31)))
        per_mech = {}
        with metrics.span(f"stage.sweep.{scheme}"):
            for mi, mech in enumerate(preset["mechanisms"]):
                values = []
                for i, pat in enumerate(patterns):
                    # Deterministic per-cell stream: str hashes are salted
                    # per process, so derive from indices instead.
                    cell_seed = np.random.SeedSequence(
                        entropy=figure, spawn_key=(si, mi, i)
                    )
                    th, _ = saturation_throughput(
                        topo, cache, mech, PatternTraffic(pat),
                        rates=preset["rates"], config=preset["config"],
                        seed=cell_seed,
                    )
                    values.append(th)
                per_mech[mech] = float(np.mean(values))
                log.info(
                    "sweep_cell_done", figure=figure, scheme=scheme,
                    mechanism=mech, throughput=per_mech[mech],
                )
        data[scheme] = per_mech
        rows.append([scheme] + [round(per_mech[m], 3) for m in preset["mechanisms"]])

    kind = "random shift" if shift_traffic else "random permutations"
    return ExperimentResult(
        experiment=f"fig{figure}",
        title=f"Average saturation throughput of {kind} on {spec.label}",
        headers=["scheme"] + list(preset["mechanisms"]),
        rows=rows,
        scale=scale,
        notes=f"k={preset['k']}; {preset['n_patterns']} pattern(s); "
        f"rate grid step {preset['rates'][0]}",
        data=data,
    )


def run_fig7(
    scale: str = "small", seed: SeedLike = 0, steady_state: bool = False
) -> ExperimentResult:
    """Figure 7: permutations on the small topology."""
    return run_fig(7, scale, seed, steady_state=steady_state)


def run_fig8(
    scale: str = "small", seed: SeedLike = 0, steady_state: bool = False
) -> ExperimentResult:
    """Figure 8: permutations on the medium topology."""
    return run_fig(8, scale, seed, steady_state=steady_state)


def run_fig9(
    scale: str = "small", seed: SeedLike = 0, steady_state: bool = False
) -> ExperimentResult:
    """Figure 9: shifts on the small topology."""
    return run_fig(9, scale, seed, steady_state=steady_state)


def run_fig10(
    scale: str = "small", seed: SeedLike = 0, steady_state: bool = False
) -> ExperimentResult:
    """Figure 10: shifts on the medium topology."""
    return run_fig(10, scale, seed, steady_state=steady_state)
