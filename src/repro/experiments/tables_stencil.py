"""Tables V and VI: stencil communication times per path-selection scheme.

For each application (2DNN, 2DNNdiag, 3DNN, 3DNNdiag) the drivers report
the exchange communication time under rEDKSP(8), KSP(8), and rKSP(8) with
KSP-adaptive routing, plus the improvement of rEDKSP over each — the
paper's Table V (linear mapping) and Table VI (random mapping).
"""

from __future__ import annotations

from typing import Dict

from repro.appsim import stencil_time
from repro.core import PathCache
from repro.experiments.base import ExperimentResult
from repro.experiments.presets import stencil_preset
from repro.topology import Jellyfish
from repro.utils.rng import SeedLike, spawn_rngs

APPS = ("2dnn", "2dnndiag", "3dnn", "3dnndiag")

#: Paper communication times in ms: {mapping: {app: (rEDKSP, KSP, rKSP)}}.
PAPER = {
    "linear": {
        "2dnn": (0.83, 0.91, 0.88),
        "2dnndiag": (1.07, 1.20, 1.15),
        "3dnn": (0.90, 0.95, 0.93),
        "3dnndiag": (1.01, 1.04, 1.02),
    },
    "random": {
        "2dnn": (0.92, 0.99, 0.94),
        "2dnndiag": (0.86, 0.92, 0.84),
        "3dnn": (0.88, 0.95, 0.88),
        "3dnndiag": (0.76, 0.86, 0.78),
    },
}


def run_table(mapping: str, scale: str = "small", seed: SeedLike = 0) -> ExperimentResult:
    """One stencil table (``mapping`` = ``"linear"`` or ``"random"``)."""
    preset = stencil_preset(scale)
    spec = preset["topo"]
    topo_rng, map_rng, *scheme_rngs = spawn_rngs(seed, 2 + len(preset["schemes"]))
    topo = Jellyfish(spec.n, spec.x, spec.y, seed=topo_rng)

    # One seed per app, fixed across schemes so every scheme sees the same
    # mapping and the comparison is paired (as in the paper).
    app_seeds = {app: int(map_rng.integers(2**31)) for app in APPS}
    times: Dict[str, Dict[str, float]] = {}
    for scheme, rng in zip(preset["schemes"], scheme_rngs):
        cache = PathCache(topo, scheme, k=preset["k"], seed=int(rng.integers(2**31)))
        times[scheme] = {}
        for app in APPS:
            r = stencil_time(
                topo, app, scheme,
                mapping=mapping,
                mechanism="ksp_adaptive",
                k=preset["k"],
                total_bytes=preset["total_bytes"],
                link_bandwidth=preset["link_bandwidth"],
                chunks=preset["chunks"],
                seed=app_seeds[app],
                paths=cache,
            )
            times[scheme][app] = r.makespan_ms()

    rows = []
    for app in APPS:
        red = times["redksp"][app]
        ksp = times["ksp"][app]
        rksp = times["rksp"][app]
        rows.append(
            [
                app,
                round(red, 3),
                round(ksp, 3),
                f"{100 * (ksp - red) / ksp:+.1f}%",
                round(rksp, 3),
                f"{100 * (rksp - red) / rksp:+.1f}%",
            ]
        )
    imp_ksp = sum((times["ksp"][a] - times["redksp"][a]) / times["ksp"][a] for a in APPS) / len(APPS)
    imp_rksp = sum((times["rksp"][a] - times["redksp"][a]) / times["rksp"][a] for a in APPS) / len(APPS)
    rows.append(["Average", "", "", f"{100 * imp_ksp:+.1f}%", "", f"{100 * imp_rksp:+.1f}%"])

    table_id = "table5" if mapping == "linear" else "table6"
    return ExperimentResult(
        experiment=table_id,
        title=(
            f"Communication time (ms), {mapping} mapping on {spec.label}, "
            "KSP-adaptive routing"
        ),
        headers=["app", "rEDKSP(8) ms", "KSP(8) ms", "imp.", "rKSP(8) ms", "imp."],
        rows=rows,
        scale=scale,
        notes=f"paper (linear): rEDKSP beats KSP by 7.6% and rKSP by 4.5% on average",
        data=times,
    )


def run_table5(scale: str = "small", seed: SeedLike = 0) -> ExperimentResult:
    """Table V: linear process-to-node mapping."""
    return run_table("linear", scale, seed)


def run_table6(scale: str = "small", seed: SeedLike = 0) -> ExperimentResult:
    """Table VI: random process-to-node mapping."""
    return run_table("random", scale, seed)
