"""Scale presets for the experiment drivers.

Three scales:

- ``"paper"`` — the original parameters (RRG(36,24,16), RRG(720,24,19),
  RRG(2880,48,38); 10 topology samples x 50 pattern instances for the
  model; full Booksim cycle counts).  Hours of CPU for the cycle-level
  sweeps; provided for completeness.
- ``"medium"`` — the paper's *small* topology exactly, the larger two
  replaced by reduced instances with the same hosts-per-switch : uplinks
  ratio (which is what determines the load regime), and fewer repetitions.
- ``"small"`` — toy instances for CI and pytest-benchmark; every
  experiment finishes in seconds while preserving the relations under
  test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.netsim.config import SimConfig

__all__ = [
    "TopoSpec",
    "SCALES",
    "topo_trio",
    "pathprops_preset",
    "model_preset",
    "netsim_preset",
    "latency_preset",
    "stencil_preset",
]

SCALES = ("small", "medium", "paper")


@dataclass(frozen=True)
class TopoSpec:
    """Parameters of one Jellyfish instance used by an experiment."""

    n: int
    x: int
    y: int

    @property
    def label(self) -> str:
        return f"RRG({self.n},{self.x},{self.y})"

    @property
    def n_hosts(self) -> int:
        return self.n * (self.x - self.y)


def _check_scale(scale: str) -> str:
    if scale not in SCALES:
        raise ConfigurationError(f"scale must be one of {SCALES}, got {scale!r}")
    return scale


#: The three evaluation topologies per scale (Table I's trio).
_TRIOS: Dict[str, Tuple[TopoSpec, TopoSpec, TopoSpec]] = {
    "paper": (TopoSpec(36, 24, 16), TopoSpec(720, 24, 19), TopoSpec(2880, 48, 38)),
    # Same oversubscription ratios (8/16, 5/19, 10/38) at reduced switch
    # counts.
    "medium": (TopoSpec(36, 24, 16), TopoSpec(72, 24, 19), TopoSpec(144, 48, 38)),
    # Under-subscribed like the paper's (hosts-per-switch : uplinks ~ 1:2).
    "small": (TopoSpec(12, 10, 7), TopoSpec(16, 12, 9), TopoSpec(20, 14, 10)),
}

#: Mildly stressed instances for the saturation/latency experiments at
#: small scale: per-node demand x average path length ~ uplink capacity,
#: the regime where the paper's small topology operates and where the
#: schemes actually separate.
_SMALL_STRESSED = (TopoSpec(12, 10, 6), TopoSpec(16, 12, 8))


def topo_trio(scale: str) -> Tuple[TopoSpec, TopoSpec, TopoSpec]:
    """The (small, medium, large) topology specs at this scale."""
    return _TRIOS[_check_scale(scale)]


def pathprops_preset(scale: str) -> dict:
    """Tables II-IV: topologies, k, and the per-topology pair sample.

    ``pair_sample = None`` means all ordered switch pairs (the paper's
    exhaustive computation); larger topologies sample pairs uniformly.
    """
    _check_scale(scale)
    trio = topo_trio(scale)
    if scale == "small":
        return {"topologies": trio, "k": 8, "pair_sample": (None, None, None)}
    if scale == "medium":
        return {"topologies": trio, "k": 8, "pair_sample": (None, 600, 600)}
    return {"topologies": trio, "k": 8, "pair_sample": (None, 1500, 1500)}


def model_preset(scale: str, figure: int) -> dict:
    """Figures 4-6: topology, repetition counts, Random(X) fan-out, k."""
    _check_scale(scale)
    trio = topo_trio(scale)
    topo = trio[figure - 4]
    if scale == "small":
        reps = {"topo_samples": 2, "pattern_instances": 3, "k": 4}
        x = min(10, topo.n_hosts - 1)
        a2a = True
    elif scale == "medium":
        reps = {"topo_samples": 3, "pattern_instances": 10}
        x = min(50, topo.n_hosts - 1)
        a2a = figure == 4  # all-pairs Yen beyond the small topology is slow
    else:
        reps = {"topo_samples": 10, "pattern_instances": 50}
        x = 50
        a2a = True
    return {"topo": topo, "k": 8, "random_x": x, "all_to_all": a2a, **reps}


def netsim_preset(scale: str, figure: int) -> dict:
    """Figures 7-10: topology, pattern count, rate grid, sim config, k."""
    _check_scale(scale)
    trio = topo_trio(scale)
    topo = trio[0] if figure in (7, 9) else trio[1]
    if scale == "small":
        return {
            "topo": _SMALL_STRESSED[0] if figure in (7, 9) else _SMALL_STRESSED[1],
            "k": 4,
            "n_patterns": 1,
            "rates": tuple(round(0.1 * i, 2) for i in range(1, 11)),
            "config": SimConfig(warmup_cycles=200, sample_cycles=200, n_samples=5),
            "schemes": ("ksp", "redksp"),
            "mechanisms": ("random", "round_robin", "ugal", "ksp_ugal", "ksp_adaptive"),
        }
    if scale == "medium":
        return {
            "topo": topo,
            "k": 8,
            "n_patterns": 3,
            "rates": tuple(round(0.05 * i, 2) for i in range(1, 21)),
            "config": SimConfig(),
            "schemes": ("ksp", "rksp", "edksp", "redksp"),
            "mechanisms": ("random", "round_robin", "ugal", "ksp_ugal", "ksp_adaptive"),
        }
    return {
        "topo": topo,
        "k": 8,
        "n_patterns": 10,
        "rates": tuple(round(0.05 * i, 2) for i in range(1, 21)),
        "config": SimConfig(),
        "schemes": ("ksp", "rksp", "edksp", "redksp"),
        "mechanisms": ("random", "round_robin", "ugal", "ksp_ugal", "ksp_adaptive"),
    }


def latency_preset(scale: str, figure: int) -> dict:
    """Figures 11-13: latency-vs-load curves on the medium topology."""
    _check_scale(scale)
    trio = topo_trio(scale)
    traffic = {11: "uniform", 12: "permutation", 13: "shift"}[figure]
    if scale == "small":
        return {
            "topo": _SMALL_STRESSED[0],
            "k": 4,
            "traffic": traffic,
            "rates": tuple(round(0.1 * i, 2) for i in range(1, 11)),
            "config": SimConfig(warmup_cycles=200, sample_cycles=200, n_samples=5),
            "schemes": ("ksp", "redksp"),
            "mechanism": "ksp_adaptive",
        }
    topo = trio[1]
    return {
        "topo": topo,
        "k": 8,
        "traffic": traffic,
        "rates": tuple(round(0.05 * i, 2) for i in range(1, 21)),
        "config": SimConfig(),
        "schemes": ("ksp", "rksp", "edksp", "redksp"),
        "mechanism": "ksp_adaptive",
    }


def stencil_preset(scale: str) -> dict:
    """Tables V-VI: topology, message volume, bandwidth, k, chunks."""
    _check_scale(scale)
    if scale == "small":
        return {
            "topo": TopoSpec(9, 10, 6),  # 36 hosts -> 6x6 / 4x3x3 grids
            "k": 4,
            "total_bytes": 15e6,
            "link_bandwidth": 20e9,
            "chunks": 4,
            "schemes": ("redksp", "ksp", "rksp"),
        }
    if scale == "medium":
        return {
            "topo": TopoSpec(72, 24, 19),  # 360 hosts
            "k": 8,
            "total_bytes": 15e6,
            "link_bandwidth": 20e9,
            "chunks": 4,
            "schemes": ("redksp", "ksp", "rksp"),
        }
    return {
        "topo": TopoSpec(720, 24, 19),  # the paper's 3600 hosts
        "k": 8,
        "total_bytes": 15e6,
        "link_bandwidth": 20e9,
        "chunks": 4,
        "schemes": ("redksp", "ksp", "rksp"),
    }
