"""Figures 11-13: average packet latency versus offered load.

One traffic condition per figure (uniform-random, a random permutation, a
random shift), KSP-adaptive routing, with one latency-versus-load series
per path-selection scheme.  A series ends at its saturation point, as in
the paper's plots.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.core import PathCache
from repro.experiments.base import ExperimentResult
from repro.experiments.presets import latency_preset
from repro.netsim import PatternTraffic, UniformTraffic, latency_curve
from repro.topology import Jellyfish
from repro.traffic import random_permutation, random_shift
from repro.utils.rng import SeedLike, spawn_rngs


def run_fig(
    figure: int,
    scale: str = "small",
    seed: SeedLike = 0,
    steady_state: bool = False,
) -> ExperimentResult:
    """One latency-load figure (11, 12 or 13).

    ``steady_state=True`` switches every point's simulator to
    convergence-driven run control (auto-extended warmup, early
    measurement stop) instead of the preset's fixed cycle budget.
    """
    preset = latency_preset(scale, figure)
    if steady_state:
        preset = dict(preset)
        preset["config"] = dataclasses.replace(
            preset["config"], steady_state=True
        )
    spec = preset["topo"]
    topo_rng, pat_rng, sim_rng = spawn_rngs(seed, 3)
    topo = Jellyfish(spec.n, spec.x, spec.y, seed=topo_rng)
    n = topo.n_hosts

    if preset["traffic"] == "uniform":
        traffic = UniformTraffic(n)
    elif preset["traffic"] == "permutation":
        traffic = PatternTraffic(random_permutation(n, seed=pat_rng))
    else:
        traffic = PatternTraffic(random_shift(n, seed=pat_rng))

    series: Dict[str, List[Tuple[float, float]]] = {}
    for scheme in preset["schemes"]:
        cache = PathCache(topo, scheme, k=preset["k"], seed=int(topo_rng.integers(2**31)))
        points = latency_curve(
            topo, cache, preset["mechanism"], traffic,
            rates=preset["rates"], config=preset["config"], seed=sim_rng,
        )
        series[scheme] = [
            (p.rate, p.result.mean_latency)
            for p in points
            if not p.result.saturated
        ]

    # Render as a table: one row per offered load, one column per scheme
    # (blank once the scheme has saturated).
    rates = sorted({r for pts in series.values() for r, _ in pts})
    lookup = {s: dict(pts) for s, pts in series.items()}
    rows = []
    for rate in rates:
        row = [rate]
        for scheme in preset["schemes"]:
            v = lookup[scheme].get(rate)
            row.append(round(v, 1) if v is not None else "-")
        rows.append(row)

    return ExperimentResult(
        experiment=f"fig{figure}",
        title=(
            f"Average packet latency vs offered load, {preset['traffic']} traffic "
            f"on {spec.label} ({preset['mechanism']})"
        ),
        headers=["offered load"] + [f"{s} latency" for s in preset["schemes"]],
        rows=rows,
        scale=scale,
        notes="series end at their saturation point",
        data=series,
    )


def run_fig11(
    scale: str = "small", seed: SeedLike = 0, steady_state: bool = False
) -> ExperimentResult:
    """Figure 11: uniform-random traffic."""
    return run_fig(11, scale, seed, steady_state=steady_state)


def run_fig12(
    scale: str = "small", seed: SeedLike = 0, steady_state: bool = False
) -> ExperimentResult:
    """Figure 12: a random permutation."""
    return run_fig(12, scale, seed, steady_state=steady_state)


def run_fig13(
    scale: str = "small", seed: SeedLike = 0, steady_state: bool = False
) -> ExperimentResult:
    """Figure 13: a random shift."""
    return run_fig(13, scale, seed, steady_state=steady_state)
