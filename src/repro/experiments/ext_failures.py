"""Extension experiment: path-table resilience to random link failures.

Not a table in the paper — but the paper adopts the Remove-Find method
from reliable-routing work [9], and the natural question a Jellyfish
operator asks is "how much reliability do edge-disjoint paths buy?".
For each path-selection scheme this driver fails 1..F random cables and
reports pair survival (fraction of switch pairs keeping >= 1 usable path)
and path survival (fraction of all paths still usable).
"""

from __future__ import annotations

from repro.core import PathCache
from repro.core.failures import failure_resilience
from repro.experiments.base import ExperimentResult
from repro.experiments.presets import topo_trio
from repro.topology import Jellyfish
from repro.utils.rng import SeedLike, spawn_rngs

SCHEMES = ("ksp", "rksp", "edksp", "redksp")


def run(scale: str = "small", seed: SeedLike = 0) -> ExperimentResult:
    """Failure-resilience table on the scale's small topology."""
    spec = topo_trio(scale)[0]
    topo_rng, pair_rng, mc_rng = spawn_rngs(seed, 3)
    topo = Jellyfish(spec.n, spec.x, spec.y, seed=topo_rng)

    n = topo.n_switches
    if n <= 16:
        pairs = [(s, d) for s in range(n) for d in range(n) if s != d]
    else:
        pairs = []
        while len(pairs) < 200:
            s, d = pair_rng.integers(n, size=2)
            if s != d and (int(s), int(d)) not in pairs:
                pairs.append((int(s), int(d)))

    n_edges = len(topo.undirected_edges())
    failure_counts = [1, max(2, n_edges // 20), max(3, n_edges // 10)]
    k = 8

    rows = []
    data = {}
    for scheme in SCHEMES:
        cache = PathCache(topo, scheme, k=k, seed=int(mc_rng.integers(2**31)))
        cache.precompute(pairs)
        per_count = {}
        for f in failure_counts:
            per_count[f] = failure_resilience(
                cache, pairs, n_failures=f, trials=20,
                seed=int(mc_rng.integers(2**31)),
            )
        data[scheme] = per_count
        row = [scheme]
        for f in failure_counts:
            row.append(f"{100 * per_count[f]['pair_survival']:.1f}%")
            row.append(f"{100 * per_count[f]['path_survival']:.1f}%")
        rows.append(row)

    headers = ["scheme"]
    for f in failure_counts:
        headers += [f"pairs ok (f={f})", f"paths ok (f={f})"]
    return ExperimentResult(
        experiment="ext_failures",
        title=f"Path-table resilience to random link failures on {spec.label} (k={k})",
        headers=headers,
        rows=rows,
        scale=scale,
        notes="extension study (not a paper table); 20 Monte-Carlo trials per cell",
        data=data,
    )
