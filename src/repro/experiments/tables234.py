"""Tables II, III, IV: path-quality metrics of the four selection schemes.

One pass computes all three tables per topology x scheme: average path
length (II), percentage of switch pairs whose k paths share no link (III),
and the worst-case number of one pair's paths on a single link (IV).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core import PathCache, path_quality_report
from repro.experiments.base import ExperimentResult
from repro.experiments.presets import pathprops_preset
from repro.topology import Jellyfish
from repro.utils.rng import SeedLike, spawn_rngs

SCHEMES = ("ksp", "rksp", "edksp", "redksp")

#: Paper values for the paper-scale topologies, per (table, topology label).
PAPER = {
    "table2": {
        "RRG(36,24,16)": (2.06, 2.06, 2.06, 2.06),
        "RRG(720,24,19)": (3.02, 3.02, 3.16, 3.16),
        "RRG(2880,48,38)": (2.94, 2.94, 2.94, 2.94),
    },
    "table3": {
        "RRG(36,24,16)": (0.56, 0.59, 1.00, 1.00),
        "RRG(720,24,19)": (0.02, 0.03, 1.00, 1.00),
        "RRG(2880,48,38)": (0.09, 0.22, 1.00, 1.00),
    },
    "table4": {
        "RRG(36,24,16)": (6, 3, 1, 1),
        "RRG(720,24,19)": (7, 7, 1, 1),
        "RRG(2880,48,38)": (7, 6, 1, 1),
    },
}


def _sample_pairs(n: int, sample: int | None, rng) -> List[Tuple[int, int]]:
    if sample is None:
        return [(s, d) for s in range(n) for d in range(n) if s != d]
    pairs = set()
    while len(pairs) < sample:
        s, d = rng.integers(n, size=2)
        if s != d:
            pairs.add((int(s), int(d)))
    return sorted(pairs)


def compute_reports(
    scale: str,
    seed: SeedLike,
    *,
    processes: int = 1,
    path_store=None,
    pairs_on_demand: int | None = None,
) -> Dict[str, Dict[str, dict]]:
    """{topology label: {scheme: quality report}} for the preset topologies.

    ``processes`` shards the path precompute across workers and
    ``path_store`` (a :class:`~repro.core.store.PathStore` or
    :class:`~repro.core.store.ArenaStore`) persists the warmed tables
    between runs — both leave the reported numbers byte-identical to a
    serial, storeless run (the PathCache determinism contract).
    ``pairs_on_demand`` caps the number of pairs computed per topology:
    only that many (seeded-random) pairs are precomputed and reported,
    which is what makes very large topologies feasible — Yen's runtime
    scales with the pair budget, not with n^2.  Unlike the two knobs
    above it changes the sampled statistics, so it is recorded in the
    result document.
    """
    preset = pathprops_preset(scale)
    out: Dict[str, Dict[str, dict]] = {}
    rngs = spawn_rngs(seed, len(preset["topologies"]))
    for spec, sample, rng in zip(
        preset["topologies"], preset["pair_sample"], rngs
    ):
        if pairs_on_demand is not None:
            budget = max(1, int(pairs_on_demand))
            if budget < spec.n * (spec.n - 1):
                sample = budget if sample is None else min(sample, budget)
        topo = Jellyfish(spec.n, spec.x, spec.y, seed=rng)
        pairs = _sample_pairs(spec.n, sample, rng)
        per_scheme = {}
        for scheme in SCHEMES:
            cache = PathCache(topo, scheme, k=preset["k"], seed=int(rng.integers(2**31)))
            cache.warm(pairs, processes=processes, store=path_store)
            per_scheme[scheme] = path_quality_report(
                cache.get(s, d) for s, d in pairs
            )
        out[spec.label] = per_scheme
    return out


_REPORT_CACHE: dict = {}


def _reports(
    scale: str, seed, processes: int = 1, path_store=None,
    pairs_on_demand=None,
) -> Dict[str, Dict[str, dict]]:
    # processes/path_store cannot change the numbers, so they are not part
    # of the memo key — only the inputs the reports are a function of.
    # pairs_on_demand changes which pairs are sampled, so it is.
    key = (
        scale,
        int(np.random.SeedSequence(seed).entropy or 0) if seed is None else seed,
        pairs_on_demand,
    )
    if key not in _REPORT_CACHE:
        _REPORT_CACHE[key] = compute_reports(
            scale, seed, processes=processes, path_store=path_store,
            pairs_on_demand=pairs_on_demand,
        )
    return _REPORT_CACHE[key]


def _result(
    table: str, metric: str, title: str, scale: str, seed, fmt,
    processes: int = 1, path_store=None, pairs_on_demand=None,
) -> ExperimentResult:
    reports = _reports(scale, seed, processes, path_store, pairs_on_demand)
    rows = []
    for label, per_scheme in reports.items():
        row = [label] + [fmt(per_scheme[s][metric]) for s in SCHEMES]
        paper = PAPER[table].get(label)
        row.append("/".join(map(str, paper)) if paper else "-")
        rows.append(row)
    return ExperimentResult(
        experiment=table,
        title=title,
        headers=["Topology", "KSP(8)", "rKSP(8)", "EDKSP(8)", "rEDKSP(8)", "paper"],
        rows=rows,
        scale=scale,
        notes=(
            "pair-sampled on larger topologies (see presets)"
            if pairs_on_demand is None
            else f"on-demand pair budget: {int(pairs_on_demand)} pairs/topology"
        ),
        data=reports,
    )


def run_table2(
    scale: str = "small", seed: SeedLike = 0,
    processes: int = 1, path_store=None, pairs_on_demand=None,
) -> ExperimentResult:
    """Table II: average path length (k = 8)."""
    return _result(
        "table2", "average_path_length", "Average path length (k=8)",
        scale, seed, lambda v: round(v, 3), processes, path_store,
        pairs_on_demand,
    )


def run_table3(
    scale: str = "small", seed: SeedLike = 0,
    processes: int = 1, path_store=None, pairs_on_demand=None,
) -> ExperimentResult:
    """Table III: % of switch pairs whose k paths share no link."""
    return _result(
        "table3", "fraction_disjoint_pairs",
        "Percentage of switch pairs whose k paths do not share any link (k=8)",
        scale, seed, lambda v: f"{100 * v:.0f}%", processes, path_store,
        pairs_on_demand,
    )


def run_table4(
    scale: str = "small", seed: SeedLike = 0,
    processes: int = 1, path_store=None, pairs_on_demand=None,
) -> ExperimentResult:
    """Table IV: max times one link is shared by a single pair's k paths."""
    return _result(
        "table4", "max_link_sharing",
        "Maximum number of times one link is shared by the k paths of one pair (k=8)",
        scale, seed, lambda v: int(v), processes, path_store,
        pairs_on_demand,
    )
