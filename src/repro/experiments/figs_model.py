"""Figures 4, 5, 6: throughput-model comparison of the path selectors.

For each traffic pattern (random permutation, random shift, Random(X),
all-to-all), averages the modelled per-node throughput over several
topology samples and pattern instances — the paper's 10 x 50 protocol,
scaled per preset.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core import PathCache
from repro.experiments.base import ExperimentResult
from repro.experiments.presets import model_preset
from repro.model import model_throughput
from repro.topology import Jellyfish
from repro.traffic import all_to_all, random_destinations, random_permutation, random_shift
from repro.utils.rng import SeedLike, spawn_rngs

SCHEMES = ("sp", "ksp", "rksp", "edksp", "redksp")


def run_fig(figure: int, scale: str = "small", seed: SeedLike = 0) -> ExperimentResult:
    """One model figure: per-pattern mean per-node throughput per scheme."""
    preset = model_preset(scale, figure)
    spec = preset["topo"]
    k = preset["k"]
    topo_rngs = spawn_rngs(seed, preset["topo_samples"])

    sums: Dict[str, Dict[str, list]] = {s: {} for s in SCHEMES}
    for topo_rng in topo_rngs:
        topo = Jellyfish(spec.n, spec.x, spec.y, seed=topo_rng)
        n = topo.n_hosts
        patterns = []
        pat_rngs = spawn_rngs(topo_rng, 3 * preset["pattern_instances"])
        it = iter(pat_rngs)
        for _ in range(preset["pattern_instances"]):
            patterns.append(("permutation", random_permutation(n, seed=next(it))))
            patterns.append(("shift", random_shift(n, seed=next(it))))
            patterns.append(
                (
                    f"random({preset['random_x']})",
                    random_destinations(n, preset["random_x"], seed=next(it)),
                )
            )
        if preset["all_to_all"]:
            patterns.append(("all-to-all", all_to_all(n)))

        for scheme in SCHEMES:
            cache = PathCache(topo, scheme, k=k, seed=int(topo_rng.integers(2**31)))
            for name, pattern in patterns:
                r = model_throughput(topo, pattern, cache)
                sums[scheme].setdefault(name, []).append(r.mean_per_node())

    pattern_names = list(next(iter(sums.values())).keys())
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for scheme in SCHEMES:
        means = {name: float(np.mean(vals)) for name, vals in sums[scheme].items()}
        data[scheme] = means
        rows.append([scheme] + [round(means[name], 3) for name in pattern_names])

    return ExperimentResult(
        experiment=f"fig{figure}",
        title=f"Average model throughput on {spec.label}",
        headers=["scheme"] + pattern_names,
        rows=rows,
        scale=scale,
        notes=(
            f"k={k}; {preset['topo_samples']} topology samples x "
            f"{preset['pattern_instances']} pattern instances"
        ),
        data=data,
    )


def run_fig4(scale: str = "small", seed: SeedLike = 0) -> ExperimentResult:
    """Figure 4: model throughput on the small topology."""
    return run_fig(4, scale, seed)


def run_fig5(scale: str = "small", seed: SeedLike = 0) -> ExperimentResult:
    """Figure 5: model throughput on the medium topology."""
    return run_fig(5, scale, seed)


def run_fig6(scale: str = "small", seed: SeedLike = 0) -> ExperimentResult:
    """Figure 6: model throughput on the large topology."""
    return run_fig(6, scale, seed)
