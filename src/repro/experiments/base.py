"""Common result container for experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence

from repro.utils.tables import format_table

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """A paper-shaped table produced by one experiment driver.

    ``rows`` are printable cells in the same layout as the paper's table or
    figure series; ``data`` keeps the raw values for programmatic use
    (tests, benchmarks, EXPERIMENTS.md generation).
    """

    experiment: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]]
    scale: str
    notes: str = ""
    data: dict = field(default_factory=dict)

    def to_text(self, ndigits: int = 3) -> str:
        out = format_table(
            self.headers,
            self.rows,
            title=f"[{self.experiment} @ {self.scale}] {self.title}",
            ndigits=ndigits,
        )
        if self.notes:
            out += f"\n# {self.notes}"
        return out
