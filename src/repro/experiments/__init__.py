"""Experiment drivers: one per table and figure of the paper.

Every driver exposes ``run(scale=..., seed=...) -> ExperimentResult``; the
registry in :mod:`repro.experiments.runner` maps experiment ids
(``table1`` ... ``table6``, ``fig4`` ... ``fig13``) to drivers, and
``python -m repro.experiments <id> [--scale small|medium|paper]`` runs one
from the command line.

Scales trade fidelity for runtime: ``small`` finishes in seconds per
experiment (CI/benchmarks), ``medium`` reproduces the paper's small
topology exactly and scales the rest down, ``paper`` uses the original
parameters everywhere (hours for the cycle-level sweeps).
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import EXPERIMENTS, run_experiment

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_experiment"]
