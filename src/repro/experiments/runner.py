"""Experiment registry and command-line entry point.

With ``--telemetry-dir DIR`` every experiment run additionally produces:

- ``<experiment>-<scale>.manifest.json`` — the run manifest (config,
  package version, topology hash, stage timings, metric snapshot);
- ``<experiment>-<scale>.events.jsonl`` — the structured event log
  (records at or above ``--log-level``);
- a ledger entry appended to the persistent run index (``--run-ledger``
  or ``$REPRO_RUN_LEDGER``, else ``run-ledger.jsonl`` next to the
  manifests) — the input of ``python -m repro.experiments runs``;
- an ASCII summary on stdout: the stage-timing table and, for simulator
  experiments, the per-scheme link-load-imbalance report.
"""

from __future__ import annotations

import argparse
import inspect
import time
from pathlib import Path
from typing import Callable, Dict

from repro.errors import ConfigurationError
from repro.obs import flowstats as obs_flowstats
from repro.obs import linkstate as obs_linkstate
from repro.obs import log as obs_log
from repro.obs import metrics
from repro.obs import monitor as obs_monitor
from repro.obs import timeseries as obs_timeseries
from repro.obs import trace as obs_trace
from repro.obs.manifest import build_manifest, write_manifest
from repro.experiments.base import ExperimentResult
from repro.experiments.ext_failures import run as run_ext_failures
from repro.experiments.figs_latency import run_fig11, run_fig12, run_fig13
from repro.experiments.figs_model import run_fig4, run_fig5, run_fig6
from repro.experiments.figs_netsim import run_fig7, run_fig8, run_fig9, run_fig10
from repro.experiments.presets import SCALES
from repro.experiments.table1 import run as run_table1
from repro.experiments.tables234 import run_table2, run_table3, run_table4
from repro.experiments.tables_stencil import run_table5, run_table6

__all__ = ["EXPERIMENTS", "run_experiment", "main"]

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "table6": run_table6,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    # Extension studies beyond the paper's tables/figures.
    "ext_failures": run_ext_failures,
}

#: The experiments that correspond to the paper's own tables and figures
#: (the registry may also hold ``ext_*`` extension studies).
PAPER_EXPERIMENTS = tuple(
    name for name in EXPERIMENTS if not name.startswith("ext_")
)


def run_experiment(
    name: str,
    scale: str = "small",
    seed: int = 0,
    processes: int = 1,
    path_store=None,
    steady_state: bool = False,
    batch_lanes: int = 1,
    pairs_on_demand=None,
) -> ExperimentResult:
    """Run one experiment by id (``"table1"`` ... ``"fig13"``).

    ``processes`` and ``path_store`` feed the fast path-table pipeline
    (parallel precompute + persistent tables); ``steady_state`` switches
    cycle-level drivers to convergence-driven run control;
    ``batch_lanes`` packs independent simulator runs into the batched
    multi-lane engine; ``pairs_on_demand`` caps per-topology path
    precompute at a fixed pair budget for the drivers that sample pairs.
    Each keyword is forwarded only to drivers that accept it; for all but
    ``steady_state`` and ``pairs_on_demand``, results are identical
    either way.
    """
    try:
        driver = EXPERIMENTS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    if batch_lanes < 1:
        raise ConfigurationError(
            f"batch_lanes must be >= 1, got {batch_lanes}"
        )
    kwargs = {"scale": scale, "seed": seed}
    accepted = inspect.signature(driver).parameters
    if "processes" in accepted:
        kwargs["processes"] = processes
    if "path_store" in accepted:
        kwargs["path_store"] = path_store
    if "steady_state" in accepted:
        kwargs["steady_state"] = steady_state
    if "batch_lanes" in accepted:
        kwargs["batch_lanes"] = batch_lanes
    if "pairs_on_demand" in accepted and pairs_on_demand is not None:
        kwargs["pairs_on_demand"] = pairs_on_demand
    return driver(**kwargs)


def main(argv=None) -> int:
    import sys as _sys

    argv = _sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "compare-runs":
        # Sub-command: diff two run manifests and gate on regression.
        from repro.obs.compare import main as compare_main

        return compare_main(argv[1:])
    if argv and argv[0] == "runs":
        # Sub-command family: inspect / trend-gate the run ledger.
        from repro.obs.trend import main as runs_main

        return runs_main(argv[1:])
    if argv and argv[0] == "inspect":
        # Sub-command: congestion forensics over a telemetry directory.
        from repro.obs.forensics import main as inspect_main

        return inspect_main(argv[1:])
    if argv and argv[0] == "flows":
        # Sub-command: flow-level SLO observatory over per-pair telemetry.
        from repro.obs.fairness import main as flows_main

        return flows_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a table or figure of the paper.",
    )
    parser.add_argument(
        "experiment",
        nargs="+",
        help=f"experiment id(s): {', '.join(sorted(EXPERIMENTS))}, or 'all'",
    )
    parser.add_argument("--scale", choices=SCALES, default="small")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--processes",
        type=int,
        default=1,
        help="worker processes for path-table precompute (default: 1)",
    )
    parser.add_argument(
        "--path-store",
        nargs="?",
        const="default",
        default=None,
        metavar="DIR",
        help="persist path tables; with no DIR, uses the default store "
        "(REPRO_PATH_STORE or ~/.cache/repro/path-tables)",
    )
    parser.add_argument(
        "--store-format",
        choices=("arena", "json"),
        default="arena",
        help="on-disk path-table format for --path-store: 'arena' is the "
        "flat CSR .npz loaded via mmap (migrates legacy json stores in "
        "place); 'json' keeps the legacy gzip-JSON PathStore (default: "
        "arena)",
    )
    parser.add_argument(
        "--pairs-on-demand",
        type=int,
        default=None,
        metavar="N",
        help="cap path precompute at N (seeded-random) switch pairs per "
        "topology instead of the preset sample — makes multi-thousand-"
        "switch topologies feasible; only table2/3/4 consume it",
    )
    parser.add_argument(
        "--export-dir",
        default=None,
        help="also write <experiment>.json and <experiment>.csv here",
    )
    parser.add_argument(
        "--telemetry-dir",
        default=None,
        metavar="DIR",
        help="enable the metrics registry and write a run manifest (JSON) "
        "plus a structured event log (JSONL) per experiment here",
    )
    parser.add_argument(
        "--run-ledger",
        default=None,
        metavar="PATH",
        help="append a ledger entry per manifest to PATH (default: "
        "$REPRO_RUN_LEDGER, else <telemetry-dir>/run-ledger.jsonl; "
        "requires --telemetry-dir)",
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=None,
        metavar="N",
        help="enable the packet flight recorder, tracing every Nth injected "
        "packet (1 = all); writes <experiment>-<scale>.trace.npz and prints "
        "the latency-decomposition and path-share tables "
        "(requires --telemetry-dir)",
    )
    parser.add_argument(
        "--timeseries-window",
        type=int,
        default=None,
        metavar="N",
        help="enable the windowed time-series recorder with N-cycle "
        "windows; writes <experiment>-<scale>.timeseries.npz, embeds a "
        "per-run steady-state (warmup-sufficiency) report in the manifest "
        "and prints its summary (requires --telemetry-dir)",
    )
    parser.add_argument(
        "--linkstate",
        nargs="?",
        const=100,
        default=None,
        type=int,
        metavar="WINDOW",
        help="enable dense per-link state capture (flits forwarded, credit "
        "stalls, peak VC occupancy per directed link) in WINDOW-cycle "
        "windows (default window: 100); writes "
        "<experiment>-<scale>.linkstate.npz — the input of 'inspect' "
        "(requires --telemetry-dir)",
    )
    parser.add_argument(
        "--flowstats",
        action="store_true",
        help="enable per-(src,dst) flow telemetry (delivered count, "
        "latency sum/max and an exact per-pair latency histogram); "
        "writes <experiment>-<scale>.flowstats.npz — the input of "
        "'flows' (requires --telemetry-dir)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run each experiment under cProfile; writes "
        "<experiment>-<scale>.profile.pstats next to the manifest, records "
        "the path in the manifest, and prints the top-10 cumulative "
        "hotspots (requires --telemetry-dir)",
    )
    parser.add_argument(
        "--batch-lanes",
        type=int,
        default=1,
        metavar="N",
        help="pack up to N independent simulator runs per saturation cell "
        "into the batched multi-lane engine (results byte-identical to "
        "N=1; incompatible with --steady-state; default: 1)",
    )
    parser.add_argument(
        "--steady-state",
        action="store_true",
        help="convergence-driven run control for cycle-level experiments: "
        "warmup auto-extends until the windowed ejection rate and latency "
        "converge, and measurement ends early once samples agree",
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help="live run monitor on stderr: in-place dashboard (progress, "
        "throughput/latency sparklines, per-worker heartbeats with a "
        "stale-worker watchdog) for parallel grids and precomputes",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="warning",
        help="structured-log threshold; 'info' shows per-task progress "
        "and stage events (default: warning)",
    )
    args = parser.parse_args(argv)

    obs_log.set_level(args.log_level)
    telemetry_dir = Path(args.telemetry_dir) if args.telemetry_dir else None
    if args.trace_sample is not None:
        if args.trace_sample < 1:
            parser.error("--trace-sample must be >= 1")
        if telemetry_dir is None:
            parser.error("--trace-sample requires --telemetry-dir")
    if args.timeseries_window is not None:
        if args.timeseries_window < 1:
            parser.error("--timeseries-window must be >= 1")
        if telemetry_dir is None:
            parser.error("--timeseries-window requires --telemetry-dir")
    if args.linkstate is not None:
        if args.linkstate < 1:
            parser.error("--linkstate window must be >= 1")
        if telemetry_dir is None:
            parser.error("--linkstate requires --telemetry-dir")
    if args.flowstats and telemetry_dir is None:
        parser.error("--flowstats requires --telemetry-dir")
    if args.profile and telemetry_dir is None:
        parser.error("--profile requires --telemetry-dir")
    if args.run_ledger is not None and telemetry_dir is None:
        parser.error("--run-ledger requires --telemetry-dir")
    if args.batch_lanes < 1:
        parser.error("--batch-lanes must be >= 1")
    if args.batch_lanes > 1 and args.steady_state:
        parser.error(
            "--batch-lanes > 1 is incompatible with --steady-state: the "
            "batched engine is fixed-budget only"
        )

    if args.pairs_on_demand is not None and args.pairs_on_demand < 1:
        parser.error("--pairs-on-demand must be >= 1")

    store = None
    if args.path_store is not None:
        from repro.core.store import ArenaStore, PathStore

        store_cls = ArenaStore if args.store_format == "arena" else PathStore
        store = (
            store_cls.default()
            if args.path_store == "default"
            else store_cls(args.path_store)
        )

    names = list(EXPERIMENTS) if "all" in args.experiment else args.experiment
    if args.live:
        obs_monitor.enable()
    try:
        for name in names:
            if telemetry_dir is not None:
                # A fresh registry (and recorder) per experiment keeps each
                # manifest's snapshot scoped to its own run.
                metrics.enable()
                if args.trace_sample is not None:
                    obs_trace.enable(sample=args.trace_sample)
                if args.timeseries_window is not None:
                    obs_timeseries.enable(window=args.timeseries_window)
                if args.linkstate is not None:
                    obs_linkstate.enable(window=args.linkstate)
                if args.flowstats:
                    obs_flowstats.enable()
                obs_log.open_jsonl(
                    telemetry_dir / f"{name}-{args.scale}.events.jsonl"
                )
            obs_log.info(
                "experiment_start",
                experiment=name, scale=args.scale, seed=args.seed,
                processes=args.processes,
            )
            t0 = time.perf_counter()
            profiler = None
            if args.profile:
                import cProfile

                profiler = cProfile.Profile()
                profiler.enable()
            try:
                with metrics.span(f"experiment.{name}"):
                    result = run_experiment(
                        name, scale=args.scale, seed=args.seed,
                        processes=args.processes, path_store=store,
                        steady_state=args.steady_state,
                        batch_lanes=args.batch_lanes,
                        pairs_on_demand=args.pairs_on_demand,
                    )
            finally:
                if profiler is not None:
                    profiler.disable()
            wall = time.perf_counter() - t0
            obs_log.info(
                "experiment_done", experiment=name, wall_time_s=round(wall, 3)
            )
            print(result.to_text())
            print()
            if args.export_dir is not None:
                from repro.report import save_result

                out = Path(args.export_dir)
                out.mkdir(parents=True, exist_ok=True)
                save_result(result, out / f"{name}.json")
                save_result(result, out / f"{name}.csv")
            if telemetry_dir is not None:
                _emit_telemetry(name, args, wall, telemetry_dir, profiler)
    finally:
        metrics.disable()
        obs_trace.disable()
        obs_timeseries.disable()
        obs_linkstate.disable()
        obs_flowstats.disable()
        obs_monitor.disable()
        obs_log.close_jsonl()
    return 0


def _emit_telemetry(
    name: str, args, wall: float, telemetry_dir: Path, profiler=None
) -> None:
    """Write the run manifest (and trace/time series), print the summary."""
    from repro.report import link_load_report, stage_timing_table

    steady_report = None
    ts_path = None
    if args.timeseries_window is not None:
        steady_report, ts_path = _emit_timeseries(name, args, telemetry_dir)
    ls_path = None
    if args.linkstate is not None:
        ls_path = _emit_linkstate(name, args, telemetry_dir)
    # Flowstats must land before the metrics snapshot: the derived SLO
    # gauges (fairness, worst-pair p99) are stamped into the still-active
    # registry so they reach the manifest and the ledger.
    fs_path = None
    if args.flowstats:
        fs_path = _emit_flowstats(name, args, telemetry_dir)
    profile_path = None
    if profiler is not None:
        profile_path = _emit_profile(name, args, telemetry_dir, profiler)
    snap = metrics.snapshot() or {}
    doc = build_manifest(
        experiment=name,
        scale=args.scale,
        seed=args.seed,
        config={
            "processes": args.processes,
            "path_store": args.path_store,
            "store_format": args.store_format,
            "pairs_on_demand": args.pairs_on_demand,
            "export_dir": args.export_dir,
            "trace_sample": args.trace_sample,
            "timeseries_window": args.timeseries_window,
            "linkstate": args.linkstate,
            "flowstats": args.flowstats,
            "steady_state": args.steady_state,
            "batch_lanes": args.batch_lanes,
            "profile": args.profile,
        },
        wall_time_s=wall,
        metrics_snapshot=snap,
        steady_state=steady_report,
        profile=str(profile_path) if profile_path is not None else None,
    )
    path = write_manifest(doc, telemetry_dir, f"{name}-{args.scale}.manifest.json")
    ledger_path = _feed_ledger(doc, args, telemetry_dir)
    print(stage_timing_table(snap.get("timers", {})))
    link_arrays = {
        key.split("/", 1)[1]: values
        for key, values in snap.get("arrays", {}).items()
        if key.startswith("netsim.link_flits/")
    }
    if link_arrays:
        print()
        print(link_load_report(link_arrays))
    if steady_report is not None:
        print()
        print(
            f"steady state: {steady_report['n_warmup_sufficient']}"
            f"/{steady_report['n_runs']} runs had sufficient warmup "
            f"({steady_report['n_converged']} converged; "
            f"check_windows={steady_report['check_windows']}, "
            f"rel_tol={steady_report['rel_tol']})"
        )
    if args.trace_sample is not None:
        _emit_trace(name, args, telemetry_dir)
    if ts_path is not None:
        print(f"# timeseries: {ts_path}")
    if ls_path is not None:
        print(f"# linkstate: {ls_path}")
        print(
            f"# inspect it: python -m repro.experiments inspect "
            f"{telemetry_dir}"
        )
    if fs_path is not None:
        print(f"# flowstats: {fs_path}")
        print(
            f"# flow SLOs:  python -m repro.experiments flows "
            f"{telemetry_dir}"
        )
    if profile_path is not None:
        print(f"# profile:  {profile_path}")
    print(f"# manifest: {path}")
    if ledger_path is not None:
        print(f"# ledger:   {ledger_path}")
    print()
    obs_log.info("manifest_written", experiment=name, path=str(path))
    obs_log.close_jsonl()


def _feed_ledger(doc, args, telemetry_dir: Path):
    """Append the manifest's ledger entry; return the ledger path.

    Every telemetry-enabled run feeds the persistent cross-run index
    automatically — ``--run-ledger PATH`` overrides the destination
    (``$REPRO_RUN_LEDGER``, else a ``run-ledger.jsonl`` next to the
    manifests).  Appends are atomic and content-deduplicated, so
    re-running an identical manifest is a no-op.
    """
    from repro.obs.ledger import (
        append_entries,
        default_ledger_path,
        manifest_entry,
    )

    ledger_path = (
        Path(args.run_ledger)
        if args.run_ledger is not None
        else default_ledger_path(telemetry_dir)
    )
    appended = append_entries(ledger_path, [manifest_entry(doc)])
    obs_log.info(
        "ledger_appended",
        experiment=doc.get("experiment"),
        path=str(ledger_path),
        appended=appended,
    )
    return ledger_path


def _emit_profile(name: str, args, telemetry_dir: Path, profiler) -> Path:
    """Dump the cProfile stats, print the hotspot table, return the path."""
    import pstats

    from repro.report import profile_hotspots_table

    telemetry_dir.mkdir(parents=True, exist_ok=True)
    profile_path = telemetry_dir / f"{name}-{args.scale}.profile.pstats"
    profiler.dump_stats(profile_path)
    stats = pstats.Stats(profiler)
    print()
    print(profile_hotspots_table(stats, top=10))
    obs_log.info(
        "profile_written", experiment=name, path=str(profile_path)
    )
    return profile_path


def _emit_timeseries(name: str, args, telemetry_dir: Path):
    """Persist the window buffers; return (steady report, path or None)."""
    from repro.obs.timeseries import save_timeseries, steady_state_report

    snap = obs_timeseries.snapshot()
    obs_timeseries.disable()
    if snap is None or not snap["n_windows"]:
        return None, None
    ts_path = telemetry_dir / f"{name}-{args.scale}.timeseries.npz"
    save_timeseries(ts_path, snap)
    report = steady_state_report(snap)
    obs_log.info(
        "timeseries_written",
        experiment=name,
        path=str(ts_path),
        runs=int(snap["n_runs"]),
        windows=int(snap["n_windows"]),
        warmup_sufficient=int(report["n_warmup_sufficient"]),
    )
    return report, ts_path


def _emit_linkstate(name: str, args, telemetry_dir: Path):
    """Persist the dense link-state matrices; return the path or None."""
    from repro.obs.linkstate import save_linkstate

    snap = obs_linkstate.snapshot()
    obs_linkstate.disable()
    if snap is None or not snap["n_windows"]:
        return None
    ls_path = telemetry_dir / f"{name}-{args.scale}.linkstate.npz"
    save_linkstate(ls_path, snap)
    obs_log.info(
        "linkstate_written",
        experiment=name,
        path=str(ls_path),
        runs=int(snap["n_runs"]),
        windows=int(snap["n_windows"]),
    )
    return ls_path


def _emit_flowstats(name: str, args, telemetry_dir: Path):
    """Persist the per-pair flow record and stamp its derived SLO gauges.

    Returns the artifact path, or None when nothing was recorded.  The
    worst-run Jain index and worst pair p99 go into the *still-active*
    registry so the manifest snapshot taken right after includes them.
    """
    from repro.obs.fairness import snapshot_gauges
    from repro.obs.flowstats import save_flowstats

    snap = obs_flowstats.snapshot()
    obs_flowstats.disable()
    if snap is None or not snap["n_runs"]:
        return None
    fs_path = telemetry_dir / f"{name}-{args.scale}.flowstats.npz"
    save_flowstats(fs_path, snap)
    reg = metrics.active()
    if reg is not None:
        for gname, value in sorted(snapshot_gauges(snap).items()):
            g = reg.gauge(gname)
            g.set(max(g.value, value))
    obs_log.info(
        "flowstats_written",
        experiment=name,
        path=str(fs_path),
        runs=int(snap["n_runs"]),
        pairs=int(snap["n_pairs"]),
    )
    return fs_path


def _emit_trace(name: str, args, telemetry_dir: Path) -> None:
    """Persist the flight-recorder buffers and print trace summaries."""
    from repro.obs.trace import TraceAnalysis
    from repro.report import latency_decomposition_table, path_share_table

    tsnap = obs_trace.snapshot()
    if tsnap is None or not tsnap["n_packets"]:
        obs_trace.disable()
        return
    trace_path = telemetry_dir / f"{name}-{args.scale}.trace.npz"
    obs_trace.save_trace(trace_path, tsnap)
    analysis = TraceAnalysis(tsnap)
    decomp = analysis.latency_decomposition()
    if decomp:
        print()
        print(latency_decomposition_table(decomp))
    shares = analysis.path_shares()
    if shares:
        print()
        print(path_share_table(shares))
    print(f"# trace:    {trace_path}")
    obs_log.info(
        "trace_written",
        experiment=name,
        path=str(trace_path),
        packets=int(tsnap["n_packets"]),
        events=int(tsnap["n_events"]),
    )
    obs_trace.disable()
