"""Table I: the evaluation topologies and their average shortest path length."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.presets import topo_trio
from repro.topology import Jellyfish, average_shortest_path_length
from repro.utils.rng import SeedLike, spawn_rngs

#: The paper's Table I "Average shortest path len." column.
PAPER_APL = {"RRG(36,24,16)": 1.54, "RRG(720,24,19)": 2.57, "RRG(2880,48,38)": 2.59}


def run(scale: str = "small", seed: SeedLike = 0) -> ExperimentResult:
    """Build each topology and measure its average shortest path length."""
    specs = topo_trio(scale)
    rngs = spawn_rngs(seed, len(specs))
    rows = []
    data = {}
    for spec, rng in zip(specs, rngs):
        topo = Jellyfish(spec.n, spec.x, spec.y, seed=rng)
        sample = None if spec.n <= 200 else 200
        apl = average_shortest_path_length(topo.adjacency, sample=sample, seed=rng)
        paper = PAPER_APL.get(spec.label, "-")
        rows.append([spec.label, spec.x, spec.n, spec.n_hosts, round(apl, 3), paper])
        data[spec.label] = {"apl": apl, "hosts": spec.n_hosts}
    return ExperimentResult(
        experiment="table1",
        title="Jellyfish topologies used in the experiments",
        headers=[
            "Topology", "Switch size", "No. switches", "No. compute nodes",
            "Avg shortest path len.", "paper",
        ],
        rows=rows,
        scale=scale,
        notes="paper column applies to the paper-scale topologies only",
        data=data,
    )
