"""``python -m repro.experiments`` — run experiment drivers from the CLI."""

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    sys.exit(main())
