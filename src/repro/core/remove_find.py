"""Remove-Find edge-disjoint path computation (Guo et al. [9]).

The RF method behind EDKSP/rEDKSP: find a shortest path, remove its edges
from the graph, repeat ``k`` times or until the endpoints disconnect.  The
shortest-path subroutine's tie policy again selects the deterministic
(EDKSP) versus randomized (rEDKSP) flavour.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.core.dijkstra import shortest_path
from repro.core.kernels import kernels_for
from repro.core.path import Path
from repro.errors import InsufficientPathsError, NoPathError
from repro.obs import metrics
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_in, check_positive_int

__all__ = ["edge_disjoint_paths"]


def edge_disjoint_paths(
    adj: Sequence[Sequence[int]],
    source: int,
    destination: int,
    k: int,
    *,
    tie: str = "min",
    rng: SeedLike = None,
    on_shortfall: str = "truncate",
) -> List[Path]:
    """Up to ``k`` pairwise edge-disjoint shortest paths via Remove-Find.

    Paths come out in the order found (nondecreasing hops: removing edges
    can only lengthen later paths).  Disjointness is on *undirected* links —
    two paths may not use the same cable in either direction, matching the
    link-sharing notion of Tables III/IV.

    ``on_shortfall="truncate"`` (paper behaviour) returns fewer paths when
    the endpoints disconnect early; ``"error"`` raises instead.
    """
    check_positive_int(k, "k")
    check_in(tie, ("min", "random"), "tie")
    check_in(on_shortfall, ("truncate", "error"), "on_shortfall")
    generator = ensure_rng(rng) if tie == "random" else None
    kernels = kernels_for(adj)

    paths: List[Path] = []
    banned: Set[Tuple[int, int]] = set()
    queries = 0
    for _ in range(k):
        # The first round is ban-free and reads the shared per-source
        # level field; later rounds run banned bitset BFS sweeps.
        queries += 1
        nodes = shortest_path(
            kernels, source, destination, tie=tie, rng=generator,
            banned_edges=banned,
        )
        if nodes is None:
            break
        path = Path._from_trusted(tuple(nodes))
        paths.append(path)
        if source == destination:
            break  # only one trivial path exists
        for u, v in path.edges():
            banned.add((u, v))
            banned.add((v, u))
    reg = metrics._active
    if reg is not None:
        reg.counter("core.remove_find.invocations").inc()
        reg.counter("core.remove_find.sp_queries").inc(queries)
        if paths and len(paths) < k and source != destination:
            reg.counter("core.remove_find.shortfalls").inc()
    if not paths:
        raise NoPathError(source, destination)
    if len(paths) < k and source != destination and on_shortfall == "error":
        raise InsufficientPathsError(source, destination, k, paths)
    return paths
