"""Lazy, reproducible per-pair path cache.

Experiments touch wildly different pair sets (a permutation touches ~N
pairs, all-to-all touches all N*(N-1)), so paths are computed on first use
and memoised.  Randomized selectors get a *per-pair* generator derived from
``(master seed, source, destination)``; this makes the cached paths a pure
function of (topology, scheme, k, seed) — independent of which pairs are
requested, or in what order, or whether the cache was warmed before.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from repro.core.path import PathSet
from repro.core.selectors import PathSelector, make_selector
from repro.topology.jellyfish import Jellyfish
from repro.utils.validation import check_positive_int

__all__ = ["PathCache"]


class PathCache:
    """Memoised ``(source switch, destination switch) -> PathSet`` map.

    Parameters
    ----------
    topology:
        The :class:`~repro.topology.Jellyfish` instance whose switch graph
        paths are computed on.
    scheme:
        Registry name (``"ksp"``, ``"rksp"``, ``"edksp"``, ``"redksp"``,
        ``"llskr"``, ``"sp"``) or an already-built
        :class:`~repro.core.selectors.PathSelector`.
    k:
        Paths requested per pair (selectors may return fewer, e.g. LLSKR or
        Remove-Find shortfall, or the trivial intra-switch pair).
    seed:
        Master seed for randomized selectors.
    """

    def __init__(
        self,
        topology: Jellyfish,
        scheme: str | PathSelector = "ksp",
        k: int = 8,
        seed: int | None = 0,
    ):
        check_positive_int(k, "k")
        self.topology = topology
        self.selector = (
            scheme if isinstance(scheme, PathSelector) else make_selector(scheme)
        )
        self.k = k
        self.seed = 0 if seed is None else int(seed)
        self._store: Dict[Tuple[int, int], PathSet] = {}

    def _pair_rng(self, source: int, destination: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence(
                entropy=self.seed, spawn_key=(source, destination)
            )
        )

    def get(self, source: int, destination: int) -> PathSet:
        """The PathSet for one switch pair, computing it on first use."""
        key = (source, destination)
        found = self._store.get(key)
        if found is None:
            rng = self._pair_rng(source, destination) if self.selector.randomized else None
            found = self.selector.select(
                self.topology.adjacency, source, destination, self.k, rng
            )
            self._store[key] = found
        return found

    def precompute(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Warm the cache for the given switch pairs."""
        for s, d in pairs:
            self.get(s, d)

    def all_pairs(self) -> Iterable[PathSet]:
        """Compute and yield PathSets for every ordered switch pair.

        Intended for path-quality studies (Tables II-IV); cost grows as
        N*(N-1) Yen invocations, so use reduced topologies where possible.
        """
        n = self.topology.n_switches
        for s in range(n):
            for d in range(n):
                if s != d:
                    yield self.get(s, d)

    def export_state(self) -> Dict[Tuple[int, int], PathSet]:
        """A snapshot of the memoised PathSets (for shipping to workers)."""
        return dict(self._store)

    def import_state(self, state: Dict[Tuple[int, int], PathSet]) -> None:
        """Merge a snapshot from :meth:`export_state` into this cache.

        Imported entries win over recomputation, so a warmed parent cache
        can be distributed to worker processes without re-running Yen's
        algorithm there.
        """
        self._store.update(state)

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, pair: Tuple[int, int]) -> bool:
        return pair in self._store
