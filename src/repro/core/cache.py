"""Lazy, reproducible per-pair path cache.

Experiments touch wildly different pair sets (a permutation touches ~N
pairs, all-to-all touches all N*(N-1)), so paths are computed on first use
and memoised.  Randomized selectors get a *per-pair* generator derived from
``(master seed, source, destination)``; this makes the cached paths a pure
function of (topology, scheme, k, seed) — independent of which pairs are
requested, or in what order, or whether the cache was warmed before.

That purity is what the fast-path pipeline exploits:

- :meth:`PathCache.precompute_parallel` shards a pair list across a
  process pool — each worker rebuilds the topology once (via an
  initializer, not per task) and computes its shard with the same per-pair
  seeding, so the merged result is byte-identical to a serial warm;
- :meth:`PathCache.warm` composes the whole pipeline: load persisted
  tables from a :class:`~repro.core.store.PathStore`, compute whatever is
  missing (optionally in parallel), and persist the union back.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.path import PathSet
from repro.core.selectors import PathSelector, make_selector
from repro.errors import ConfigurationError
from repro.obs import metrics
from repro.obs import monitor as obs_monitor
from repro.obs.progress import Progress
from repro.topology.jellyfish import Jellyfish
from repro.topology.serialization import topology_from_dict, topology_to_dict
from repro.utils.validation import check_positive_int

__all__ = ["PathCache"]


class PathCache:
    """Memoised ``(source switch, destination switch) -> PathSet`` map.

    Parameters
    ----------
    topology:
        The :class:`~repro.topology.Jellyfish` instance whose switch graph
        paths are computed on.
    scheme:
        Registry name (``"ksp"``, ``"rksp"``, ``"edksp"``, ``"redksp"``,
        ``"llskr"``, ``"sp"``) or an already-built
        :class:`~repro.core.selectors.PathSelector`.
    k:
        Paths requested per pair (selectors may return fewer, e.g. LLSKR or
        Remove-Find shortfall, or the trivial intra-switch pair).
    seed:
        Master seed for randomized selectors.
    """

    def __init__(
        self,
        topology: Jellyfish,
        scheme: str | PathSelector = "ksp",
        k: int = 8,
        seed: int | None = 0,
    ):
        check_positive_int(k, "k")
        self.topology = topology
        self.selector = (
            scheme if isinstance(scheme, PathSelector) else make_selector(scheme)
        )
        self.k = k
        self.seed = 0 if seed is None else int(seed)
        #: Lifetime hit/miss tallies (plain ints — always on; the metrics
        #: registry additionally sees ``core.cache.hit``/``miss`` counters
        #: when telemetry is enabled).
        self.hits = 0
        self.misses = 0
        self._store: Dict[Tuple[int, int], PathSet] = {}
        # (source, destination) -> {path nodes: index in the PathSet},
        # built once per pair at cache-warm time (see path_index_map) and
        # shared by every simulator run on this cache.
        self._index_maps: Dict[Tuple[int, int], Dict[Tuple[int, ...], int]] = {}
        # All selections run on the topology's shared BFS kernels, so the
        # per-source level fields are computed once across every pair.
        self._graph = topology.kernels

    def _pair_rng(self, source: int, destination: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence(
                entropy=self.seed, spawn_key=(source, destination)
            )
        )

    def get(self, source: int, destination: int) -> PathSet:
        """The PathSet for one switch pair, computing it on first use."""
        key = (source, destination)
        found = self._store.get(key)
        if found is None:
            self.misses += 1
            reg = metrics._active
            if reg is not None:
                reg.counter("core.cache.miss").inc()
            rng = self._pair_rng(source, destination) if self.selector.randomized else None
            found = self.selector.select(
                self._graph, source, destination, self.k, rng
            )
            self._store[key] = found
        else:
            self.hits += 1
            reg = metrics._active
            if reg is not None:
                reg.counter("core.cache.hit").inc()
        return found

    def path_index_map(
        self, source: int, destination: int
    ) -> Dict[Tuple[int, ...], int]:
        """``{path nodes: index}`` for one pair's PathSet, memoised.

        Consumers that need to map a chosen route back to its position in
        the pair's PathSet (the flight recorder, the fast core's route
        tables) share one dict per pair instead of rebuilding it per
        packet or per run.
        """
        key = (source, destination)
        found = self._index_maps.get(key)
        if found is None:
            found = {
                p.nodes: i for i, p in enumerate(self.get(source, destination))
            }
            self._index_maps[key] = found
        return found

    def precompute(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Warm the cache for the given switch pairs."""
        for s, d in pairs:
            self.get(s, d)

    def precompute_parallel(
        self,
        pairs: Iterable[Tuple[int, int]],
        processes: int = 1,
        chunksize: Optional[int] = None,
    ) -> int:
        """Warm the cache for ``pairs`` across ``processes`` workers.

        Each worker receives the topology document, selector, ``k`` and
        master seed exactly once through a pool initializer, then computes
        pair shards; because every pair's RNG derives from
        ``(seed, source, destination)``, the merged result is byte-identical
        to :meth:`precompute` whatever the worker count, shard boundaries,
        or completion order.  Returns the number of newly computed pairs.

        ``processes=1`` runs inline (no pool, no pickling).

        Worker metric snapshots (path computation counters from
        :mod:`repro.obs.metrics`) are merged into the parent's registry,
        so a parallel warm reports the same telemetry totals as a serial
        one; per-task progress is logged at ``info`` level.
        """
        if processes < 1:
            raise ConfigurationError(f"processes must be >= 1, got {processes}")
        missing = sorted(
            {
                (int(s), int(d))
                for s, d in pairs
                if (int(s), int(d)) not in self._store
            }
        )
        if not missing:
            return 0
        progress = Progress(len(missing), "path-precompute")
        mon = obs_monitor.active()
        if mon is not None:
            mon.begin("path-precompute", len(missing))
        try:
            if processes == 1 or len(missing) < 2 * processes:
                hb = (
                    obs_monitor.Heartbeater(mon.post) if mon is not None else None
                )
                if hb is not None:
                    hb.task(f"{len(missing)} pairs inline")
                for s, d in missing:
                    self.get(s, d)
                    progress.step()
                    if mon is not None:
                        mon.step()
                if hb is not None:
                    hb.done()
                return len(missing)

            if chunksize is None:
                chunksize = max(1, len(missing) // (4 * processes))
            shards = [
                missing[i : i + chunksize]
                for i in range(0, len(missing), chunksize)
            ]
            initargs = (
                topology_to_dict(self.topology), self.selector, self.k,
                self.seed, metrics.enabled(),
                mon.queue() if mon is not None else None,
            )
            with ProcessPoolExecutor(
                max_workers=processes,
                initializer=_precompute_worker_init,
                initargs=initargs,
            ) as pool:
                for shard_result, snap in pool.map(_precompute_worker_run, shards):
                    self._store.update(shard_result)
                    metrics.merge_snapshot(snap)
                    progress.step(len(shard_result))
                    if mon is not None:
                        mon.step(len(shard_result))
            # The shards were all cache misses; keep the parent's plain-int
            # tallies consistent with what a serial warm would have recorded.
            self.misses += len(missing)
            return len(missing)
        finally:
            if mon is not None:
                mon.finish()

    def warm(
        self,
        pairs: Optional[Iterable[Tuple[int, int]]] = None,
        *,
        processes: int = 1,
        store=None,
    ) -> int:
        """The full path-table pipeline: load, compute missing, persist.

        With ``store`` (a :class:`~repro.core.store.PathStore`), previously
        persisted tables for this exact ``(topology, scheme, k, seed)`` are
        imported first — a warm run that finds everything on disk never
        touches Yen at all — and any newly computed pairs are saved back.
        ``pairs=None`` means every ordered switch pair (all-pairs studies).
        Returns the number of pairs computed fresh.
        """
        if pairs is None:
            n = self.topology.n_switches
            pairs = [(s, d) for s in range(n) for d in range(n) if s != d]
        else:
            pairs = list(pairs)
        if store is not None:
            with metrics.span("paths.store_load"):
                store.load(self)
        with metrics.span("paths.compute"):
            computed = self.precompute_parallel(pairs, processes=processes)
        if store is not None and computed:
            with metrics.span("paths.store_save"):
                store.save(self)
        return computed

    def all_pairs(self) -> Iterable[PathSet]:
        """Compute and yield PathSets for every ordered switch pair.

        Intended for path-quality studies (Tables II-IV); warm the cache
        with :meth:`warm` first to reuse persisted tables and worker pools.
        """
        n = self.topology.n_switches
        for s in range(n):
            for d in range(n):
                if s != d:
                    yield self.get(s, d)

    def export_state(self) -> Dict[Tuple[int, int], PathSet]:
        """A snapshot of the memoised PathSets (for shipping to workers)."""
        return dict(self._store)

    def import_state(self, state: Dict[Tuple[int, int], PathSet]) -> None:
        """Merge a snapshot from :meth:`export_state` into this cache.

        Imported entries win over recomputation, so a warmed parent cache
        can be distributed to worker processes without re-running Yen's
        algorithm there.
        """
        self._store.update(state)

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, pair: Tuple[int, int]) -> bool:
        return pair in self._store


# -------------------------------------------------------- pool plumbing
#: Per-worker state built once by the pool initializer (the topology and
#: its kernels are ~megabytes; shipping them per task tuple was the seed
#: implementation's dominant serialization cost).  The second slot records
#: whether the parent had telemetry enabled: workers then capture a fresh
#: registry per shard and return its snapshot for merging.
_WORKER_CACHE: List[Optional[PathCache]] = [None]
_WORKER_OBS: List[bool] = [False]
_WORKER_HB: List[Optional["obs_monitor.Heartbeater"]] = [None]


def _precompute_worker_init(topo_doc, selector, k, seed, obs_enabled=False,
                            mon_sink=None) -> None:
    import os

    _WORKER_CACHE[0] = PathCache(
        topology_from_dict(topo_doc), selector, k=k, seed=seed
    )
    _WORKER_OBS[0] = bool(obs_enabled)
    _WORKER_HB[0] = (
        obs_monitor.Heartbeater(mon_sink, worker=os.getpid())
        if mon_sink is not None else None
    )


def _precompute_worker_run(
    pairs: Sequence[Tuple[int, int]],
) -> Tuple[Dict[Tuple[int, int], PathSet], Optional[dict]]:
    cache = _WORKER_CACHE[0]
    hb = _WORKER_HB[0]
    if hb is not None:
        hb.task(f"shard of {len(pairs)} pairs")
    if not _WORKER_OBS[0]:
        result = {(s, d): cache.get(s, d) for s, d in pairs}
        if hb is not None:
            hb.done()
        return result, None
    with metrics.capture() as reg:
        result = {(s, d): cache.get(s, d) for s, d in pairs}
    if hb is not None:
        hb.done()
    return result, reg.snapshot()
