"""Lazy, reproducible per-pair path cache.

Experiments touch wildly different pair sets (a permutation touches ~N
pairs, all-to-all touches all N*(N-1)), so paths are computed on first use
and memoised.  Randomized selectors get a *per-pair* generator derived from
``(master seed, source, destination)``; this makes the cached paths a pure
function of (topology, scheme, k, seed) — independent of which pairs are
requested, or in what order, or whether the cache was warmed before.

That purity is what the fast-path pipeline exploits:

- :meth:`PathCache.precompute_parallel` shards a pair list across a
  process pool — each worker rebuilds the topology once (via an
  initializer, not per task) and computes its shard with the same per-pair
  seeding, so the merged result is byte-identical to a serial warm;
- :meth:`PathCache.warm` composes the whole pipeline: load persisted
  tables from a :class:`~repro.core.store.PathStore`, compute whatever is
  missing (optionally in parallel), and persist the union back.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.arena import PathArena
from repro.core.path import PathSet
from repro.core.selectors import PathSelector, make_selector
from repro.errors import ConfigurationError
from repro.obs import metrics
from repro.obs import monitor as obs_monitor
from repro.obs.progress import Progress
from repro.topology.jellyfish import Jellyfish
from repro.topology.serialization import topology_from_dict, topology_to_dict
from repro.utils.validation import check_positive_int

__all__ = ["PathCache"]


class PathCache:
    """Memoised ``(source switch, destination switch) -> PathSet`` map.

    Parameters
    ----------
    topology:
        The :class:`~repro.topology.Jellyfish` instance whose switch graph
        paths are computed on.
    scheme:
        Registry name (``"ksp"``, ``"rksp"``, ``"edksp"``, ``"redksp"``,
        ``"llskr"``, ``"sp"``) or an already-built
        :class:`~repro.core.selectors.PathSelector`.
    k:
        Paths requested per pair (selectors may return fewer, e.g. LLSKR or
        Remove-Find shortfall, or the trivial intra-switch pair).
    seed:
        Master seed for randomized selectors.
    """

    def __init__(
        self,
        topology: Jellyfish,
        scheme: str | PathSelector = "ksp",
        k: int = 8,
        seed: int | None = 0,
    ):
        check_positive_int(k, "k")
        self.topology = topology
        self.selector = (
            scheme if isinstance(scheme, PathSelector) else make_selector(scheme)
        )
        self.k = k
        self.seed = 0 if seed is None else int(seed)
        #: Lifetime hit/miss tallies (plain ints — always on; the metrics
        #: registry additionally sees ``core.cache.hit``/``miss`` counters
        #: when telemetry is enabled).
        self.hits = 0
        self.misses = 0
        self._store: Dict[Tuple[int, int], PathSet] = {}
        # Flat CSR arena backing (attach_arena): pairs resident there are
        # cache hits exactly like dict-resident ones; PathSet views are
        # materialised into the dict lazily on first get().
        self._arena = None
        # (source, destination) -> {path nodes: index in the PathSet},
        # built once per pair at cache-warm time (see path_index_map) and
        # shared by every simulator run on this cache.
        self._index_maps: Dict[Tuple[int, int], Dict[Tuple[int, ...], int]] = {}
        # All selections run on the topology's shared BFS kernels, so the
        # per-source level fields are computed once across every pair.
        self._graph = topology.kernels

    def _pair_rng(self, source: int, destination: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence(
                entropy=self.seed, spawn_key=(source, destination)
            )
        )

    def get(self, source: int, destination: int) -> PathSet:
        """The PathSet for one switch pair, computing it on first use."""
        key = (source, destination)
        found = self._store.get(key)
        if found is None and self._arena is not None:
            # Arena-resident pair: a warm hit.  The lazy PathSet view is
            # memoised so repeated gets (and path_index_map) share one
            # object, like a dict-resident pair.
            found = self._arena.pathset(source, destination)
            if found is not None:
                self._store[key] = found
        if found is None:
            self.misses += 1
            reg = metrics._active
            if reg is not None:
                reg.counter("core.cache.miss").inc()
            rng = self._pair_rng(source, destination) if self.selector.randomized else None
            found = self.selector.select(
                self._graph, source, destination, self.k, rng
            )
            self._store[key] = found
        else:
            self.hits += 1
            reg = metrics._active
            if reg is not None:
                reg.counter("core.cache.hit").inc()
        return found

    def peek(self, source: int, destination: int) -> Optional[PathSet]:
        """The PathSet for one resident pair, or None — no counters.

        Unlike :meth:`get` this never computes, never tallies hit/miss,
        and never materialises arena views into the dict; engine internals
        use it where the legacy code read ``_store`` directly.
        """
        found = self._store.get((source, destination))
        if found is None and self._arena is not None:
            found = self._arena.pathset(source, destination)
        return found

    def attach_arena(self, arena) -> None:
        """Back this cache with a :class:`~repro.core.arena.PathArena`.

        Arena-resident pairs behave exactly like dict-resident ones
        (warm hits); attaching on top of an existing arena merges, with
        the new arena winning duplicate pairs.
        """
        if arena is None:
            return
        if self._arena is not None and len(self._arena):
            arena = PathArena.merge([self._arena, arena], key=arena.key)
        self._arena = arena

    @property
    def arena(self):
        """The attached :class:`~repro.core.arena.PathArena`, if any."""
        return self._arena

    def max_hops(self) -> int:
        """Longest resident path in hops (floor 1), dict and arena both.

        The VC-count derivations (``Simulator.__init__``, the batched
        engine's lane grouping, the KSP mechanisms' route-hop bound) all
        need the longest path *anywhere in the cache state* — an
        arena-resident pair counts exactly as a dict-resident one did
        when the legacy store loaded everything into the dict.
        """
        longest = 1
        for ps in self._store.values():
            for p in ps:
                if p.hops > longest:
                    longest = p.hops
        if self._arena is not None:
            a = self._arena.max_hops()
            if a > longest:
                longest = a
        return longest

    def iter_entries(self) -> Iterable[Tuple[Tuple[int, int], PathSet]]:
        """Every resident ``((src, dst), PathSet)``, dict winning the arena."""
        for key, ps in self._store.items():
            yield key, ps
        if self._arena is not None:
            for s, d in self._arena.pairs():
                if (s, d) not in self._store:
                    yield (s, d), self._arena.pathset(s, d)

    def path_index_map(
        self, source: int, destination: int
    ) -> Dict[Tuple[int, ...], int]:
        """``{path nodes: index}`` for one pair's PathSet, memoised.

        Consumers that need to map a chosen route back to its position in
        the pair's PathSet (the flight recorder, the fast core's route
        tables) share one dict per pair instead of rebuilding it per
        packet or per run.
        """
        key = (source, destination)
        found = self._index_maps.get(key)
        if found is None:
            found = {
                p.nodes: i for i, p in enumerate(self.get(source, destination))
            }
            self._index_maps[key] = found
        return found

    def precompute(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Warm the cache for the given switch pairs."""
        for s, d in pairs:
            self.get(s, d)

    def precompute_parallel(
        self,
        pairs: Iterable[Tuple[int, int]],
        processes: int = 1,
        chunksize: Optional[int] = None,
    ) -> int:
        """Warm the cache for ``pairs`` across ``processes`` workers.

        Each worker receives the topology document, selector, ``k`` and
        master seed exactly once through a pool initializer, then computes
        pair shards; because every pair's RNG derives from
        ``(seed, source, destination)``, the merged result is byte-identical
        to :meth:`precompute` whatever the worker count, shard boundaries,
        or completion order.  Returns the number of newly computed pairs.

        ``processes=1`` runs inline (no pool, no pickling).

        Worker metric snapshots (path computation counters from
        :mod:`repro.obs.metrics`) are merged into the parent's registry,
        so a parallel warm reports the same telemetry totals as a serial
        one; per-task progress is logged at ``info`` level.
        """
        if processes < 1:
            raise ConfigurationError(f"processes must be >= 1, got {processes}")
        missing = sorted(
            {
                (int(s), int(d))
                for s, d in pairs
                if (int(s), int(d)) not in self
            }
        )
        if not missing:
            return 0
        progress = Progress(len(missing), "path-precompute")
        mon = obs_monitor.active()
        if mon is not None:
            mon.begin("path-precompute", len(missing))
        try:
            if processes == 1 or len(missing) < 2 * processes:
                hb = (
                    obs_monitor.Heartbeater(mon.post) if mon is not None else None
                )
                if hb is not None:
                    hb.task(f"{len(missing)} pairs inline")
                for s, d in missing:
                    self.get(s, d)
                    progress.step()
                    if mon is not None:
                        mon.step()
                if hb is not None:
                    hb.done()
                return len(missing)

            if chunksize is None:
                chunksize = max(1, len(missing) // (4 * processes))
            shards = [
                missing[i : i + chunksize]
                for i in range(0, len(missing), chunksize)
            ]
            initargs = (
                topology_to_dict(self.topology), self.selector, self.k,
                self.seed, metrics.enabled(),
                mon.queue() if mon is not None else None,
            )
            with ProcessPoolExecutor(
                max_workers=processes,
                initializer=_precompute_worker_init,
                initargs=initargs,
            ) as pool:
                # Workers return compact CSR arena shards (a few flat
                # arrays) instead of dicts of PathSet objects — the IPC
                # cost per pair is bytes, not pickled object graphs — and
                # the shards merge straight into the cache's arena.
                pending: List[PathArena] = []
                for shard_arena, snap in pool.map(_precompute_worker_run, shards):
                    pending.append(shard_arena)
                    metrics.merge_snapshot(snap)
                    progress.step(len(shard_arena))
                    if mon is not None:
                        mon.step(len(shard_arena))
                if pending:
                    self.attach_arena(PathArena.merge(pending))
            # The shards were all cache misses; keep the parent's plain-int
            # tallies consistent with what a serial warm would have recorded.
            self.misses += len(missing)
            return len(missing)
        finally:
            if mon is not None:
                mon.finish()

    def warm(
        self,
        pairs: Optional[Iterable[Tuple[int, int]]] = None,
        *,
        processes: int = 1,
        store=None,
    ) -> int:
        """The full path-table pipeline: load, compute missing, persist.

        With ``store`` (a :class:`~repro.core.store.PathStore`), previously
        persisted tables for this exact ``(topology, scheme, k, seed)`` are
        imported first — a warm run that finds everything on disk never
        touches Yen at all — and any newly computed pairs are saved back.
        ``pairs=None`` means every ordered switch pair (all-pairs studies).
        Returns the number of pairs computed fresh.
        """
        if pairs is None:
            n = self.topology.n_switches
            pairs = [(s, d) for s in range(n) for d in range(n) if s != d]
        else:
            pairs = list(pairs)
        if store is not None:
            with metrics.span("paths.store_load"):
                store.load(self)
        with metrics.span("paths.compute"):
            computed = self.precompute_parallel(pairs, processes=processes)
        if store is not None and computed:
            with metrics.span("paths.store_save"):
                store.save(self)
        return computed

    def all_pairs(self) -> Iterable[PathSet]:
        """Compute and yield PathSets for every ordered switch pair.

        Intended for path-quality studies (Tables II-IV); warm the cache
        with :meth:`warm` first to reuse persisted tables and worker pools.
        """
        n = self.topology.n_switches
        for s in range(n):
            for d in range(n):
                if s != d:
                    yield self.get(s, d)

    def export_state(self) -> Dict[Tuple[int, int], PathSet]:
        """A snapshot of every resident PathSet (arena pairs included).

        Legacy API: parallel grids now ship the flat arena (zero-copy
        via shared memory) instead of this dict — see
        :func:`repro.netsim.parallel.run_saturation_grid`.
        """
        return dict(self.iter_entries())

    def import_state(self, state: Dict[Tuple[int, int], PathSet]) -> None:
        """Merge a snapshot from :meth:`export_state` into this cache.

        Imported entries win over recomputation, so a warmed parent cache
        can be distributed to worker processes without re-running Yen's
        algorithm there.
        """
        self._store.update(state)

    def __len__(self) -> int:
        if self._arena is None or not len(self._arena):
            return len(self._store)
        if not self._store:
            return len(self._arena)
        n = self.topology.n_switches
        keys = np.fromiter(
            (s * n + d for s, d in self._store),
            dtype=np.int64, count=len(self._store),
        )
        overlap = int(self._arena.contains_keys(keys).sum())
        return len(self._store) + len(self._arena) - overlap

    def __contains__(self, pair: Tuple[int, int]) -> bool:
        if pair in self._store:
            return True
        return self._arena is not None and pair in self._arena


# -------------------------------------------------------- pool plumbing
#: Per-worker state built once by the pool initializer (the topology and
#: its kernels are ~megabytes; shipping them per task tuple was the seed
#: implementation's dominant serialization cost).  The second slot records
#: whether the parent had telemetry enabled: workers then capture a fresh
#: registry per shard and return its snapshot for merging.
_WORKER_CACHE: List[Optional[PathCache]] = [None]
_WORKER_OBS: List[bool] = [False]
_WORKER_HB: List[Optional["obs_monitor.Heartbeater"]] = [None]


def _precompute_worker_init(topo_doc, selector, k, seed, obs_enabled=False,
                            mon_sink=None) -> None:
    import os

    _WORKER_CACHE[0] = PathCache(
        topology_from_dict(topo_doc), selector, k=k, seed=seed
    )
    _WORKER_OBS[0] = bool(obs_enabled)
    _WORKER_HB[0] = (
        obs_monitor.Heartbeater(mon_sink, worker=os.getpid())
        if mon_sink is not None else None
    )


def _precompute_worker_run(
    pairs: Sequence[Tuple[int, int]],
):
    """Compute one shard; returns ``(PathArena shard, metrics snapshot)``.

    The shard travels back to the parent as a few flat CSR arrays — the
    per-pair IPC cost is the path bytes themselves, not pickled
    PathSet/Path object graphs.
    """
    cache = _WORKER_CACHE[0]
    hb = _WORKER_HB[0]
    n_switches = cache.topology.n_switches
    if hb is not None:
        hb.task(f"shard of {len(pairs)} pairs")
    if not _WORKER_OBS[0]:
        result = {(s, d): cache.get(s, d) for s, d in pairs}
        if hb is not None:
            hb.done()
        return PathArena.from_entries(result, n_switches), None
    with metrics.capture() as reg:
        result = {(s, d): cache.get(s, d) for s, d in pairs}
    if hb is not None:
        hb.done()
    return PathArena.from_entries(result, n_switches), reg.snapshot()
