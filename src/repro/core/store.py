"""Persistent on-disk path-table store.

Path tables are a pure function of ``(topology, scheme, k, seed)`` — the
:class:`~repro.core.cache.PathCache` contract — so repeated experiment runs
can skip Yen's algorithm entirely by persisting the computed
:class:`~repro.core.path.PathSet`\\ s between processes.  The store keys
each table by a SHA-256 content hash of the exact topology document, the
selector signature, ``k``, and the master seed; any change to any of them
lands in a different file, so stale tables can never be served.

Robustness rules:

- **versioned format** — files carry a format tag and their own key; a
  mismatch (old version, renamed file, foreign content) reads as a miss;
- **corruption-safe load** — any unreadable, truncated, or structurally
  invalid file is ignored (logged as a ``path_store.corrupt_file``
  warning event and counted in ``core.store.corrupt``) and the paths are
  recomputed; loading never raises;
- **atomic save** — writes go to a temp file first and ``os.replace`` into
  place, so a crashed writer cannot leave a half-written table behind;
  saves merge with previously persisted entries, so partial warms
  (pair-sampled experiments) accumulate instead of clobbering each other.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
from pathlib import Path as FsPath
from typing import Dict, Optional, Tuple

from repro.core.path import Path, PathSet
from repro.obs import log, metrics
from repro.topology.serialization import topology_to_dict

__all__ = ["PathStore", "DEFAULT_STORE_DIR"]

_FORMAT = "repro-pathstore-v1"

#: Default store location; override with the ``REPRO_PATH_STORE`` env var.
DEFAULT_STORE_DIR = FsPath(
    os.environ.get(
        "REPRO_PATH_STORE",
        str(FsPath.home() / ".cache" / "repro" / "path-tables"),
    )
)


class PathStore:
    """A directory of persisted path tables, one gzipped JSON file per key.

    Use through :meth:`repro.core.cache.PathCache.warm` for the full
    load -> compute-missing -> persist pipeline, or drive ``load``/``save``
    directly.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = FsPath(root)

    @classmethod
    def default(cls) -> "PathStore":
        """The store at :data:`DEFAULT_STORE_DIR` (``REPRO_PATH_STORE``)."""
        return cls(DEFAULT_STORE_DIR)

    # ------------------------------------------------------------- keys
    def cache_key(self, cache) -> str:
        """Content hash identifying ``cache``'s path table.

        Covers the exact adjacency (not just RRG parameters), the selector
        signature (scheme name plus any constructor knobs), ``k`` and the
        master seed — everything the cached PathSets are a function of.
        """
        doc = {
            "format": _FORMAT,
            "topology": topology_to_dict(cache.topology),
            "scheme": list(cache.selector.signature()),
            "k": cache.k,
            "seed": cache.seed,
        }
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("ascii")).hexdigest()

    def file_for(self, cache) -> FsPath:
        """The store file that holds (or would hold) ``cache``'s table."""
        return self.root / f"paths-{self.cache_key(cache)}.json.gz"

    # ----------------------------------------------------------- load/save
    def load(self, cache) -> int:
        """Merge persisted PathSets for ``cache``'s key into the cache.

        Returns the number of imported pairs; 0 on miss or on any form of
        corruption (never raises — the caller just recomputes).
        """
        target = self.file_for(cache)
        entries = self._read_entries(target, self.cache_key(cache))
        if entries:
            cache.import_state(entries)
            metrics.counter("core.store.load_hit").inc()
            metrics.counter("core.store.loaded_pairs").inc(len(entries))
            log.debug(
                "path_store.loaded", path=str(target), pairs=len(entries)
            )
        else:
            metrics.counter("core.store.load_miss").inc()
        return len(entries)

    def save(self, cache) -> FsPath:
        """Persist ``cache``'s PathSets, merged with prior entries, atomically."""
        key = self.cache_key(cache)
        target = self.file_for(cache)
        entries = self._read_entries(target, key)
        entries.update(cache.export_state())
        doc = {
            "format": _FORMAT,
            "key": key,
            "entries": [
                [s, d, [list(p.nodes) for p in ps]]
                for (s, d), ps in sorted(entries.items())
            ],
        }
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(f"{target.name}.tmp.{os.getpid()}")
        try:
            with open(tmp, "wb") as raw:
                # mtime=0 keeps the bytes a pure function of the content.
                with gzip.GzipFile(fileobj=raw, mode="wb", mtime=0) as fh:
                    fh.write(
                        json.dumps(doc, separators=(",", ":")).encode("ascii")
                    )
            os.replace(tmp, target)
        finally:
            if tmp.exists():  # pragma: no cover - crash-path hygiene
                tmp.unlink()
        metrics.counter("core.store.saved_pairs").inc(len(entries))
        log.debug("path_store.saved", path=str(target), pairs=len(entries))
        return target

    def _read_entries(
        self, path: FsPath, expected_key: str
    ) -> Dict[Tuple[int, int], PathSet]:
        try:
            with gzip.open(path, "rt", encoding="ascii") as fh:
                doc = json.load(fh)
            if doc.get("format") != _FORMAT or doc.get("key") != expected_key:
                return {}
            out: Dict[Tuple[int, int], PathSet] = {}
            for s, d, paths in doc["entries"]:
                # Path/PathSet constructors re-validate loop-freeness,
                # endpoints and duplicates, so corrupted entries raise and
                # the whole file is discarded below.
                out[(int(s), int(d))] = PathSet(
                    int(s), int(d), [Path(nodes) for nodes in paths]
                )
            return out
        except FileNotFoundError:
            return {}
        except Exception as exc:  # corruption-safe: recompute, never crash
            metrics.counter("core.store.corrupt").inc()
            log.warning(
                "path_store.corrupt_file", path=str(path), error=repr(exc)
            )
            return {}
