"""Persistent on-disk path-table store.

Path tables are a pure function of ``(topology, scheme, k, seed)`` — the
:class:`~repro.core.cache.PathCache` contract — so repeated experiment runs
can skip Yen's algorithm entirely by persisting the computed
:class:`~repro.core.path.PathSet`\\ s between processes.  The store keys
each table by a SHA-256 content hash of the exact topology document, the
selector signature, ``k``, and the master seed; any change to any of them
lands in a different file, so stale tables can never be served.

Robustness rules:

- **versioned format** — files carry a format tag and their own key; a
  mismatch (old version, renamed file, foreign content) reads as a miss;
- **corruption-safe load** — any unreadable, truncated, or structurally
  invalid file is ignored (logged as a ``path_store.corrupt_file``
  warning event and counted in ``core.store.corrupt``) and the paths are
  recomputed; loading never raises;
- **atomic save** — writes go to a temp file first and ``os.replace`` into
  place, so a crashed writer cannot leave a half-written table behind;
  saves merge with previously persisted entries, so partial warms
  (pair-sampled experiments) accumulate instead of clobbering each other.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
from pathlib import Path as FsPath
from typing import Dict, Optional, Tuple

from repro.core.arena import ArenaFormatError, PathArena
from repro.core.path import Path, PathSet
from repro.obs import log, metrics
from repro.topology.serialization import topology_to_dict

__all__ = ["ArenaStore", "PathStore", "DEFAULT_STORE_DIR"]

_FORMAT = "repro-pathstore-v1"


def content_key(cache) -> str:
    """SHA-256 identifying a cache's path table (shared by both stores).

    Covers the exact adjacency (not just RRG parameters), the selector
    signature (scheme name plus any constructor knobs), ``k`` and the
    master seed — everything the cached PathSets are a function of.  The
    legacy gzip-JSON store and the CSR arena store key the same content
    identically, which is what lets the arena store migrate legacy files
    in place.
    """
    doc = {
        "format": _FORMAT,
        "topology": topology_to_dict(cache.topology),
        "scheme": list(cache.selector.signature()),
        "k": cache.k,
        "seed": cache.seed,
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("ascii")).hexdigest()

#: Default store location; override with the ``REPRO_PATH_STORE`` env var.
DEFAULT_STORE_DIR = FsPath(
    os.environ.get(
        "REPRO_PATH_STORE",
        str(FsPath.home() / ".cache" / "repro" / "path-tables"),
    )
)


class PathStore:
    """A directory of persisted path tables, one gzipped JSON file per key.

    Use through :meth:`repro.core.cache.PathCache.warm` for the full
    load -> compute-missing -> persist pipeline, or drive ``load``/``save``
    directly.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = FsPath(root)

    @classmethod
    def default(cls) -> "PathStore":
        """The store at :data:`DEFAULT_STORE_DIR` (``REPRO_PATH_STORE``)."""
        return cls(DEFAULT_STORE_DIR)

    # ------------------------------------------------------------- keys
    def cache_key(self, cache) -> str:
        """Content hash identifying ``cache``'s path table (:func:`content_key`)."""
        return content_key(cache)

    def file_for(self, cache) -> FsPath:
        """The store file that holds (or would hold) ``cache``'s table."""
        return self.root / f"paths-{self.cache_key(cache)}.json.gz"

    # ----------------------------------------------------------- load/save
    def load(self, cache) -> int:
        """Merge persisted PathSets for ``cache``'s key into the cache.

        Returns the number of imported pairs; 0 on miss or on any form of
        corruption (never raises — the caller just recomputes).
        """
        target = self.file_for(cache)
        entries = self._read_entries(target, self.cache_key(cache))
        if entries:
            cache.import_state(entries)
            metrics.counter("core.store.load_hit").inc()
            metrics.counter("core.store.loaded_pairs").inc(len(entries))
            log.debug(
                "path_store.loaded", path=str(target), pairs=len(entries)
            )
        else:
            metrics.counter("core.store.load_miss").inc()
        return len(entries)

    def save(self, cache) -> FsPath:
        """Persist ``cache``'s PathSets, merged with prior entries, atomically."""
        key = self.cache_key(cache)
        target = self.file_for(cache)
        entries = self._read_entries(target, key)
        entries.update(cache.export_state())
        doc = {
            "format": _FORMAT,
            "key": key,
            "entries": [
                [s, d, [list(p.nodes) for p in ps]]
                for (s, d), ps in sorted(entries.items())
            ],
        }
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(f"{target.name}.tmp.{os.getpid()}")
        try:
            with open(tmp, "wb") as raw:
                # mtime=0 keeps the bytes a pure function of the content.
                with gzip.GzipFile(fileobj=raw, mode="wb", mtime=0) as fh:
                    fh.write(
                        json.dumps(doc, separators=(",", ":")).encode("ascii")
                    )
            os.replace(tmp, target)
        finally:
            if tmp.exists():  # pragma: no cover - crash-path hygiene
                tmp.unlink()
        metrics.counter("core.store.saved_pairs").inc(len(entries))
        log.debug("path_store.saved", path=str(target), pairs=len(entries))
        return target

    def _read_entries(
        self, path: FsPath, expected_key: str
    ) -> Dict[Tuple[int, int], PathSet]:
        try:
            with gzip.open(path, "rt", encoding="ascii") as fh:
                doc = json.load(fh)
            if doc.get("format") != _FORMAT or doc.get("key") != expected_key:
                return {}
            out: Dict[Tuple[int, int], PathSet] = {}
            for s, d, paths in doc["entries"]:
                # Path/PathSet constructors re-validate loop-freeness,
                # endpoints and duplicates, so corrupted entries raise and
                # the whole file is discarded below.
                out[(int(s), int(d))] = PathSet(
                    int(s), int(d), [Path(nodes) for nodes in paths]
                )
            return out
        except FileNotFoundError:
            return {}
        except Exception as exc:  # corruption-safe: recompute, never crash
            metrics.counter("core.store.corrupt").inc()
            log.warning(
                "path_store.corrupt_file", path=str(path), error=repr(exc)
            )
            return {}


class ArenaStore:
    """A directory of persisted path arenas, one ``.npz`` file per key.

    The canonical store: tables persist as flat CSR arrays
    (:class:`~repro.core.arena.PathArena`) and load as memory-mapped
    views, so a warm start costs directory metadata, not a gzip-JSON
    parse of every path.  Keys, robustness rules and the atomic-save
    discipline match :class:`PathStore` exactly:

    - same content-hash key (:func:`content_key`), different file name
      (``arena-<key>.npz`` vs ``paths-<key>.json.gz``);
    - foreign format tags and version mismatches read as a miss, any
      other unreadable file counts ``core.store.corrupt`` and reads as a
      miss — loading never raises;
    - saves merge with previously persisted entries and go through a
      temp file + ``os.replace``.

    A miss on the ``.npz`` falls back to the legacy gzip-JSON file for
    the same key in the same directory: the entries are imported, the
    arena is written back, and the load still counts as a warm hit — an
    in-place migration.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = FsPath(root)

    @classmethod
    def default(cls) -> "ArenaStore":
        """The store at :data:`DEFAULT_STORE_DIR` (``REPRO_PATH_STORE``)."""
        return cls(DEFAULT_STORE_DIR)

    def cache_key(self, cache) -> str:
        """Content hash identifying ``cache``'s path table (:func:`content_key`)."""
        return content_key(cache)

    def file_for(self, cache) -> FsPath:
        """The arena file that holds (or would hold) ``cache``'s table."""
        return self.root / f"arena-{self.cache_key(cache)}.npz"

    def _gauge(self, cache, arena=None) -> None:
        arena = cache.arena if arena is None else arena
        if arena is not None:
            metrics.gauge("core.arena_bytes").set(arena.nbytes)
        metrics.gauge("core.pairs_resident").set(len(cache))

    # ----------------------------------------------------------- load/save
    def load(self, cache) -> int:
        """Attach the persisted arena for ``cache``'s key, memory-mapped.

        Returns the number of resident pairs imported; 0 on miss or any
        form of corruption (never raises — the caller just recomputes).
        A hit attaches the arena zero-copy; PathSet views materialise
        lazily on first use.
        """
        key = self.cache_key(cache)
        target = self.file_for(cache)
        arena = self._read_arena(target, key)
        if arena is None:
            # Legacy-store migration: a gzip-JSON table for the same key
            # in the same root imports as a warm hit and is rewritten as
            # an arena so the next load memory-maps.
            legacy = PathStore(self.root)
            entries = legacy._read_entries(legacy.file_for(cache), key)
            if entries:
                arena = PathArena.from_entries(
                    entries, cache.topology.n_switches, key=key
                )
                try:
                    self._write(target, arena)
                except OSError:  # pragma: no cover - read-only store roots
                    pass
        if arena is None:
            metrics.counter("core.store.load_miss").inc()
            return 0
        cache.attach_arena(arena)
        metrics.counter("core.store.load_hit").inc()
        metrics.counter("core.store.loaded_pairs").inc(len(arena))
        self._gauge(cache)
        log.debug(
            "path_store.loaded", path=str(target), pairs=len(arena)
        )
        return len(arena)

    def save(self, cache) -> FsPath:
        """Persist every resident pair, merged with prior entries, atomically."""
        key = self.cache_key(cache)
        target = self.file_for(cache)
        fresh = PathArena.from_cache(cache, key=key)
        prior = self._read_arena(target, key)
        arena = fresh if prior is None else PathArena.merge(
            [prior, fresh], key=key
        )
        self._write(target, arena)
        metrics.counter("core.store.saved_pairs").inc(len(arena))
        self._gauge(cache, arena)
        log.debug("path_store.saved", path=str(target), pairs=len(arena))
        return target

    def _write(self, target: FsPath, arena: PathArena) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(f"{target.name}.tmp.{os.getpid()}")
        try:
            arena.save_npz(tmp)
            os.replace(tmp, target)
        finally:
            if tmp.exists():  # pragma: no cover - crash-path hygiene
                tmp.unlink()

    def _read_arena(self, path: FsPath, expected_key: str):
        try:
            arena = PathArena.load_npz(path)
        except FileNotFoundError:
            return None
        except ArenaFormatError:
            # Foreign tag or version: a miss, exactly like the legacy
            # store's format/key check.
            return None
        except Exception as exc:  # corruption-safe: recompute, never crash
            metrics.counter("core.store.corrupt").inc()
            log.warning(
                "path_store.corrupt_file", path=str(path), error=repr(exc)
            )
            return None
        if arena.key != expected_key:
            return None
        return arena
