"""Link-failure analysis of precomputed path sets.

The Remove-Find method the paper adopts comes from reliable-routing work
(Guo et al. [9]): pairwise link-disjoint paths survive single-link
failures by construction.  This module quantifies that advantage for any
selector — given a set of failed physical links, which of a pair's paths
survive, and how often a pair keeps at least one usable path.

Failures are *undirected*: a failed cable kills both directions.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.cache import PathCache
from repro.core.path import Path, PathSet
from repro.errors import TrafficError
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "normalise_failures",
    "surviving_paths",
    "pair_survives",
    "sample_link_failures",
    "failure_resilience",
]

Edge = Tuple[int, int]


def normalise_failures(failed: Iterable[Edge]) -> frozenset:
    """Normalise failed links to ``(min, max)`` endpoint order."""
    return frozenset((min(u, v), max(u, v)) for u, v in failed)


def surviving_paths(ps: PathSet, failed: AbstractSet[Edge]) -> List[Path]:
    """The pair's paths that avoid every failed link."""
    failed = normalise_failures(failed)
    return [
        p for p in ps if not any(e in failed for e in p.undirected_edges())
    ]


def pair_survives(ps: PathSet, failed: AbstractSet[Edge]) -> bool:
    """True if at least one of the pair's paths avoids all failed links."""
    return bool(surviving_paths(ps, failed))


def sample_link_failures(
    edges: Sequence[Edge], n_failures: int, rng: SeedLike = None
) -> frozenset:
    """A uniform random set of ``n_failures`` distinct failed cables."""
    check_positive_int(n_failures, "n_failures")
    if n_failures > len(edges):
        raise TrafficError(
            f"cannot fail {n_failures} of {len(edges)} links"
        )
    generator = ensure_rng(rng)
    picks = generator.choice(len(edges), size=n_failures, replace=False)
    return normalise_failures(edges[i] for i in picks)


def failure_resilience(
    paths: PathCache,
    pairs: Sequence[Tuple[int, int]],
    n_failures: int,
    trials: int = 20,
    seed: SeedLike = None,
) -> dict:
    """Monte-Carlo resilience of a path table under random link failures.

    For each trial, fails ``n_failures`` random cables and measures, over
    ``pairs``:

    - ``pair_survival`` — fraction of pairs retaining >= 1 usable path;
    - ``path_survival`` — fraction of all paths that remain usable.

    Returns the trial means.  Edge-disjoint path sets dominate here: a
    single failed cable can kill at most one of their paths, while it can
    wipe out a vanilla-KSP pair whose paths share that cable.
    """
    check_positive_int(trials, "trials")
    edges = paths.topology.undirected_edges()
    rng = ensure_rng(seed)
    pair_frac = []
    path_frac = []
    for _ in range(trials):
        failed = sample_link_failures(edges, n_failures, rng)
        survived_pairs = 0
        survived_paths = 0
        total_paths = 0
        for s, d in pairs:
            ps = paths.get(s, d)
            alive = surviving_paths(ps, failed)
            survived_pairs += bool(alive)
            survived_paths += len(alive)
            total_paths += ps.k
        pair_frac.append(survived_pairs / len(pairs))
        path_frac.append(survived_paths / total_paths)
    return {
        "pair_survival": float(np.mean(pair_frac)),
        "path_survival": float(np.mean(path_frac)),
        "n_failures": n_failures,
        "trials": trials,
    }
