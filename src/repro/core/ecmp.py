"""ECMP-style path enumeration: equal-cost shortest paths only.

The Jellyfish literature's motivating observation (recounted in the
paper's introduction) is that equal-cost multi-path routing performs
poorly on Jellyfish: between most switch pairs there are few *shortest*
paths, so ECMP finds little diversity where KSP-style schemes can also
use slightly longer paths.  This module implements ECMP path enumeration
so that claim is reproducible: all loop-free shortest paths between a
pair (capped at ``k``), enumerated over the BFS distance DAG.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.dijkstra import bfs_levels
from repro.core.path import Path
from repro.errors import NoPathError
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["ecmp_paths"]


def ecmp_paths(
    adj: Sequence[Sequence[int]],
    source: int,
    destination: int,
    k: int,
    *,
    rng: SeedLike = None,
) -> List[Path]:
    """Up to ``k`` equal-cost shortest paths from ``source`` to ``destination``.

    Paths are enumerated over the shortest-path DAG.  When more than ``k``
    equal-cost paths exist, a deterministic run (``rng=None``) keeps the
    lexicographically smallest ``k`` (the hardware-hashing analogue of a
    biased tie-break); passing ``rng`` samples the kept subset by shuffling
    neighbour exploration order.
    """
    check_positive_int(k, "k")
    if source == destination:
        return [Path([source])]
    dist = bfs_levels(adj, source)
    if dist[destination] < 0:
        raise NoPathError(source, destination)

    generator = ensure_rng(rng) if rng is not None else None
    found: List[Path] = []

    def walk(node: int, acc: List[int]) -> bool:
        """DFS backwards over the distance DAG; returns False once full."""
        if node == source:
            found.append(Path([source] + acc[::-1]))
            return len(found) < k
        acc.append(node)
        preds = [u for u in adj[node] if dist[u] == dist[node] - 1]
        if generator is not None:
            generator.shuffle(preds)
        for u in preds:
            if not walk(u, acc):
                acc.pop()
                return False
        acc.pop()
        return True

    walk(destination, [])
    return found
