"""Yen's k-shortest loopless paths (Figure 2 of the paper).

The implementation keeps Yen's two containers: ``A`` (accepted paths) and a
candidate heap ``B``.  The shortest-path subroutine is the pluggable
tie-breaking BFS from :mod:`repro.core.dijkstra`; passing ``tie="random"``
yields the paper's rKSP (both the spur search *and* the selection among
equal-length candidates in ``B`` are randomized, so no systematic node-id
bias survives).

Two fast-path measures keep the spur loop cheap without changing a single
emitted path or RNG draw:

- the ban-free first path reads the shared per-source level field of
  :mod:`repro.core.kernels` (one BFS per source for *all* destinations);
- repeated ``(spur, bans)`` queries inside one invocation are memoised.
  Deterministic runs reuse the finished spur path outright; randomized
  runs reuse only the BFS *distance field* and re-run the backwalk, so the
  RNG consumes exactly the draws the seed implementation would.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.dijkstra import shortest_path
from repro.core.kernels import LevelField, ban_masks, kernels_for
from repro.core.path import Path
from repro.errors import InsufficientPathsError, NoPathError
from repro.obs import metrics
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_in, check_positive_int

__all__ = ["k_shortest_paths"]

#: Memo sentinel distinguishing "never queried" from "unreachable".
_UNSEEN = object()


def k_shortest_paths(
    adj: Sequence[Sequence[int]],
    source: int,
    destination: int,
    k: int,
    *,
    tie: str = "min",
    rng: SeedLike = None,
    on_shortfall: str = "truncate",
) -> List[Path]:
    """The ``k`` shortest loopless paths from ``source`` to ``destination``.

    Paths are returned in nondecreasing hop order.  When fewer than ``k``
    loopless paths exist, behaviour follows ``on_shortfall``:
    ``"truncate"`` returns what was found, ``"error"`` raises
    :class:`InsufficientPathsError`.

    Parameters mirror :func:`repro.core.dijkstra.shortest_path`; ``tie`` and
    ``rng`` select vanilla KSP (``"min"``) versus rKSP (``"random"``).
    """
    check_positive_int(k, "k")
    check_in(tie, ("min", "random"), "tie")
    check_in(on_shortfall, ("truncate", "error"), "on_shortfall")
    generator = ensure_rng(rng) if tie == "random" else None
    kernels = kernels_for(adj)

    first = shortest_path(kernels, source, destination, tie=tie, rng=generator)
    if first is None:
        raise NoPathError(source, destination)

    accepted: List[Path] = [Path(first)]
    if source == destination:
        # The only loopless path is the trivial one.
        if k > 1 and on_shortfall == "error":
            raise InsufficientPathsError(source, destination, k, accepted)
        return accepted

    # Candidate heap entries: (hops, tiebreak, nodes). Deterministic runs
    # break ties lexicographically on the node tuple (small-id bias, like
    # the vanilla algorithm); randomized runs use a uniform draw.
    heap: List[Tuple[int, object, Tuple[int, ...]]] = []
    seen_candidates = {tuple(first)}
    # (spur, bans) -> spur path (deterministic) or BFS field (randomized).
    spur_memo: Dict[tuple, object] = {}
    # [queries, memo hits] — plain local tallies, published once at the
    # end so the spur loop carries no telemetry overhead.
    spur_stats = [0, 0]

    def push_candidate(nodes: Tuple[int, ...]) -> None:
        if nodes in seen_candidates:
            return
        seen_candidates.add(nodes)
        if tie == "min":
            entry = (len(nodes) - 1, nodes, nodes)
        else:
            entry = (len(nodes) - 1, float(generator.random()), nodes)
        heapq.heappush(heap, entry)

    def spur_query(
        spur: int,
        banned_nodes: frozenset,
        banned_edges: frozenset,
    ) -> Optional[List[int]]:
        """Shortest spur -> destination path under the bans (or ``None``)."""
        key = (spur, banned_nodes, banned_edges)
        hit = spur_memo.get(key, _UNSEEN)
        spur_stats[0] += 1
        if hit is not _UNSEEN:
            spur_stats[1] += 1
        if tie == "min":
            if hit is not _UNSEEN:
                return hit
            nodes = shortest_path(
                kernels, spur, destination, tie="min",
                banned_nodes=banned_nodes, banned_edges=banned_edges,
            )
            spur_memo[key] = nodes
            return nodes
        # Randomized: the BFS field is deterministic and reusable, the
        # backwalk is not — rerun it so the RNG stream matches a full
        # recomputation exactly.
        if hit is None:
            return None
        banned_out, banned_in = ban_masks(banned_edges)
        if hit is _UNSEEN:
            field = kernels.field_banned(
                spur, banned_nodes, banned_out, until=destination
            )
            if field.dist[destination] < 0:
                spur_memo[key] = None
                return None
            spur_memo[key] = field
        else:
            field = hit
        assert isinstance(field, LevelField)
        return kernels.backwalk_random(
            field, spur, destination, banned_in, generator
        )

    while len(accepted) < k:
        prev = accepted[-1].nodes
        # Spur from every node of the last accepted path except the
        # destination (Figure 2, lines 6-22).
        for j in range(len(prev) - 1):
            spur = prev[j]
            root = prev[: j + 1]
            banned_edges = set()
            for p in accepted:
                if p.nodes[: j + 1] == root and len(p.nodes) > j + 1:
                    banned_edges.add((p.nodes[j], p.nodes[j + 1]))
            spur_path = spur_query(
                spur, frozenset(root[:-1]), frozenset(banned_edges)
            )
            if spur_path is not None:
                push_candidate(root[:-1] + tuple(spur_path))
        if not heap:
            break
        _, _, nodes = heapq.heappop(heap)
        accepted.append(Path._from_trusted(nodes))

    reg = metrics._active
    if reg is not None:
        reg.counter("core.yen.invocations").inc()
        reg.counter("core.yen.spur_queries").inc(spur_stats[0])
        reg.counter("core.yen.memo_hits").inc(spur_stats[1])
    if len(accepted) < k and on_shortfall == "error":
        raise InsufficientPathsError(source, destination, k, accepted)
    return accepted


def path_spectrum(
    adj: Sequence[Sequence[int]],
    source: int,
    destination: int,
    max_paths: int,
    max_hops: int,
    *,
    tie: str = "min",
    rng: SeedLike = None,
) -> List[Path]:
    """Shortest paths until either ``max_paths`` found or length exceeds
    ``max_hops`` — the enumeration primitive LLSKR builds on.

    Returns every discovered path with ``hops <= max_hops`` (at most
    ``max_paths``), in nondecreasing hop order.
    """
    found = k_shortest_paths(
        adj, source, destination, max_paths, tie=tie, rng=rng,
        on_shortfall="truncate",
    )
    return [p for p in found if p.hops <= max_hops]
