"""Flat CSR path-table arena — the canonical storage format.

A :class:`PathArena` holds the path tables of many ``(source switch,
destination switch)`` pairs in four contiguous numpy arrays:

- ``pair_key`` — sorted ``src * n_switches + dst`` per resident pair;
- ``pair_off`` — CSR offsets from pair index into the path list;
- ``path_off`` — CSR offsets from path index into the node runs;
- ``nodes`` — the concatenated switch-id runs of every path.

The dict-of-:class:`~repro.core.path.PathSet` cache the rest of the code
grew up with costs hundreds of bytes of Python object per *path*; the
arena costs ~10 bytes per node.  At the 20k-switch scale the ROADMAP aims
for (~10^8 pair-paths) only the flat form fits in memory, and it is also
exactly the shape the array-native simulator engines consume, so
:class:`PathSet` views are materialised lazily only where the legacy API
is still used (:meth:`pathset`).

Three transports, all zero- or constant-copy:

- **versioned .npz** — :meth:`save_npz` writes a deterministic,
  byte-reproducible archive (fixed zip timestamps, stored members, sorted
  names); :meth:`load_npz` memory-maps the member payloads in place, so a
  warm start touches no path bytes until the simulator does.
- **shared memory** — :meth:`to_shm` packs every array into one
  :class:`multiprocessing.shared_memory.SharedMemory` block and returns a
  tiny picklable descriptor; :meth:`from_shm` attaches views in a worker
  process without copying or pickling any path data.
- **merge** — :meth:`merge` unions arenas (later wins on duplicate
  pairs), which is how worker-computed shards from a parallel precompute
  land in the parent.
"""

from __future__ import annotations

import io
import zipfile
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.path import Path, PathSet

__all__ = ["PathArena", "ArenaFormatError", "ARENA_FORMAT"]

#: Format tag embedded in every persisted arena; bump on layout changes.
ARENA_FORMAT = "repro-patharena-v1"

_FIELDS = ("pair_key", "pair_off", "path_off", "nodes")
_DTYPES = {
    "pair_key": np.int64,
    "pair_off": np.int64,
    "path_off": np.int64,
    "nodes": np.int32,
}


class ArenaFormatError(Exception):
    """A file is not an arena of this version (foreign tag or layout)."""


class PathArena:
    """Flat CSR store of per-pair path tables (see module docstring)."""

    __slots__ = (
        "n_switches", "key", "pair_key", "pair_off", "path_off", "nodes",
        "_shm", "_mmap",
    )

    def __init__(
        self,
        n_switches: int,
        pair_key: np.ndarray,
        pair_off: np.ndarray,
        path_off: np.ndarray,
        nodes: np.ndarray,
        key: str = "",
    ):
        self.n_switches = int(n_switches)
        self.key = key
        self.pair_key = pair_key
        self.pair_off = pair_off
        self.path_off = path_off
        self.nodes = nodes
        # Backing objects kept alive for the lifetime of the views.
        self._shm = None
        self._mmap = None
        self._validate()

    # ------------------------------------------------------- construction
    @classmethod
    def empty(cls, n_switches: int, key: str = "") -> "PathArena":
        return cls(
            n_switches,
            np.empty(0, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            np.empty(0, dtype=np.int32),
            key=key,
        )

    @classmethod
    def from_entries(
        cls,
        entries: Dict[Tuple[int, int], PathSet],
        n_switches: int,
        key: str = "",
    ) -> "PathArena":
        """Build an arena from a ``{(src, dst): PathSet}`` mapping."""
        n = int(n_switches)
        items = sorted(
            (s * n + d, ps) for (s, d), ps in entries.items()
        )
        pair_key = np.fromiter(
            (k for k, _ in items), dtype=np.int64, count=len(items)
        )
        pair_off = np.zeros(len(items) + 1, dtype=np.int64)
        path_lens: List[int] = []
        chunks: List[Sequence[int]] = []
        for i, (_, ps) in enumerate(items):
            pair_off[i + 1] = pair_off[i] + len(ps)
            for p in ps:
                path_lens.append(len(p.nodes))
                chunks.append(p.nodes)
        path_off = np.zeros(len(path_lens) + 1, dtype=np.int64)
        np.cumsum(path_lens, out=path_off[1:])
        total = int(path_off[-1])
        nodes = np.empty(total, dtype=np.int32)
        pos = 0
        for run in chunks:
            nodes[pos : pos + len(run)] = run
            pos += len(run)
        return cls(n, pair_key, pair_off, path_off, nodes, key=key)

    @classmethod
    def from_cache(cls, cache, key: str = "") -> "PathArena":
        """Snapshot every pair resident in ``cache`` (dict and arena)."""
        arena = getattr(cache, "_arena", None)
        if arena is not None and not cache._store:
            if key and not arena.key:
                return cls(
                    arena.n_switches, arena.pair_key, arena.pair_off,
                    arena.path_off, arena.nodes, key=key,
                )
            return arena
        fresh = cls.from_entries(
            cache._store, cache.topology.n_switches, key=key
        )
        if arena is None or not len(arena):
            return fresh
        return cls.merge([arena, fresh], key=key or arena.key)

    @classmethod
    def merge(
        cls, arenas: Sequence["PathArena"], key: str = ""
    ) -> "PathArena":
        """Union of ``arenas``; on duplicate pairs the *latest* wins."""
        arenas = [a for a in arenas if a is not None]
        if not arenas:
            raise ValueError("merge needs at least one arena")
        n = arenas[0].n_switches
        for a in arenas:
            if a.n_switches != n:
                raise ValueError(
                    f"cannot merge arenas over {a.n_switches} and {n} switches"
                )
        if len(arenas) == 1:
            return arenas[0]
        # later arenas win: keep the last occurrence of each pair key.
        winner: Dict[int, Tuple[int, int]] = {}
        for ai, a in enumerate(arenas):
            keys = a.pair_key
            for pi in range(len(keys)):
                winner[int(keys[pi])] = (ai, pi)
        ordered = sorted(winner.items())
        pair_key = np.fromiter(
            (k for k, _ in ordered), dtype=np.int64, count=len(ordered)
        )
        pair_off = np.zeros(len(ordered) + 1, dtype=np.int64)
        node_parts: List[np.ndarray] = []
        len_parts: List[np.ndarray] = []
        for i, (_, (ai, pi)) in enumerate(ordered):
            a = arenas[ai]
            p0, p1 = int(a.pair_off[pi]), int(a.pair_off[pi + 1])
            pair_off[i + 1] = pair_off[i] + (p1 - p0)
            n0, n1 = int(a.path_off[p0]), int(a.path_off[p1])
            node_parts.append(a.nodes[n0:n1])
            len_parts.append(np.diff(a.path_off[p0 : p1 + 1]))
        lens = (
            np.concatenate(len_parts)
            if len_parts else np.empty(0, dtype=np.int64)
        )
        path_off = np.zeros(len(lens) + 1, dtype=np.int64)
        np.cumsum(lens, out=path_off[1:])
        nodes = (
            np.concatenate(node_parts).astype(np.int32, copy=False)
            if node_parts else np.empty(0, dtype=np.int32)
        )
        return cls(n, pair_key, pair_off, path_off, nodes, key=key)

    # ------------------------------------------------------------ queries
    def _validate(self) -> None:
        pk, po, fo, nd = (
            self.pair_key, self.pair_off, self.path_off, self.nodes
        )
        if po.ndim != 1 or pk.ndim != 1 or fo.ndim != 1 or nd.ndim != 1:
            raise ArenaFormatError("arena arrays must be one-dimensional")
        if len(po) != len(pk) + 1 or po[0] != 0 or fo[0] != 0:
            raise ArenaFormatError("arena CSR offsets are inconsistent")
        if int(po[-1]) != len(fo) - 1 or int(fo[-1]) != len(nd):
            raise ArenaFormatError("arena CSR offsets are inconsistent")
        if len(pk) and (
            (np.diff(pk) <= 0).any()
            or (np.diff(po) < 0).any()
            or (np.diff(fo) <= 0).any()
        ):
            raise ArenaFormatError("arena CSR offsets are inconsistent")

    def lookup(self, source: int, destination: int) -> int:
        """Pair index of ``(source, destination)``; -1 when not resident."""
        key = source * self.n_switches + destination
        i = int(np.searchsorted(self.pair_key, key))
        if i < len(self.pair_key) and int(self.pair_key[i]) == key:
            return i
        return -1

    def pathset(self, source: int, destination: int) -> Optional[PathSet]:
        """A lazy :class:`PathSet` view of one resident pair, else None.

        Node tuples are rebuilt on demand; bytes in the arena stay the
        authority.  Construction goes through ``_from_trusted`` — the
        arena only ever holds validated paths.
        """
        i = self.lookup(source, destination)
        if i < 0:
            return None
        p0, p1 = int(self.pair_off[i]), int(self.pair_off[i + 1])
        fo, nd = self.path_off, self.nodes
        paths = [
            Path._from_trusted(
                tuple(int(v) for v in nd[int(fo[p]) : int(fo[p + 1])])
            )
            for p in range(p0, p1)
        ]
        ps = object.__new__(PathSet)
        object.__setattr__(ps, "source", int(source))
        object.__setattr__(ps, "destination", int(destination))
        object.__setattr__(ps, "paths", tuple(paths))
        return ps

    def pairs(self) -> Iterator[Tuple[int, int]]:
        n = self.n_switches
        for k in self.pair_key:
            k = int(k)
            yield k // n, k % n

    def contains_keys(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized membership over flat ``src * n_switches + dst`` keys."""
        pk = self.pair_key
        if not len(pk):
            return np.zeros(len(keys), dtype=bool)
        idx = np.minimum(np.searchsorted(pk, keys), len(pk) - 1)
        return pk[idx] == keys

    def max_hops(self) -> int:
        """Longest path in the arena, in hops (floor 1, like the caches)."""
        if len(self.path_off) <= 1:
            return 1
        return max(1, int(np.diff(self.path_off).max()) - 1)

    @property
    def n_paths(self) -> int:
        return len(self.path_off) - 1

    @property
    def nbytes(self) -> int:
        return (
            self.pair_key.nbytes + self.pair_off.nbytes
            + self.path_off.nbytes + self.nodes.nbytes
        )

    def __len__(self) -> int:
        return len(self.pair_key)

    def __contains__(self, pair: Tuple[int, int]) -> bool:
        return self.lookup(pair[0], pair[1]) >= 0

    # -------------------------------------------------------- persistence
    def save_npz(self, path) -> None:
        """Write a deterministic versioned ``.npz`` to ``path``.

        ``np.savez`` stamps zip members with the current time; this writer
        pins the timestamps and orders members, so the bytes are a pure
        function of the content — same discipline as the legacy store's
        ``mtime=0`` gzip.  Members are stored uncompressed so loads can
        memory-map them in place.
        """
        arrays = {
            "format": np.array(ARENA_FORMAT),
            "key": np.array(self.key),
            "n_switches": np.array(self.n_switches, dtype=np.int64),
            "pair_key": self.pair_key,
            "pair_off": self.pair_off,
            "path_off": self.path_off,
            "nodes": self.nodes,
        }
        with open(path, "wb") as raw:
            with zipfile.ZipFile(raw, "w", zipfile.ZIP_STORED) as zf:
                for name in sorted(arrays):
                    buf = io.BytesIO()
                    np.lib.format.write_array(
                        buf,
                        np.ascontiguousarray(arrays[name]),
                        allow_pickle=False,
                    )
                    info = zipfile.ZipInfo(
                        name + ".npy", date_time=(1980, 1, 1, 0, 0, 0)
                    )
                    info.compress_type = zipfile.ZIP_STORED
                    info.external_attr = 0o644 << 16
                    zf.writestr(info, buf.getvalue())

    @classmethod
    def load_npz(cls, path, mmap: bool = True) -> "PathArena":
        """Load an arena, memory-mapping the array payloads when ``mmap``.

        ``np.load`` ignores ``mmap_mode`` for zip archives, so the members
        (written uncompressed by :meth:`save_npz`) are mapped manually: one
        mmap of the file, ``np.frombuffer`` views at each member's data
        offset.  Raises :class:`ArenaFormatError` on a foreign format tag
        or version (the store treats that as a miss) and any other
        exception on corruption (the store treats that as corrupt).
        """
        spans: Dict[str, Tuple[int, int]] = {}
        with open(path, "rb") as fh:
            with zipfile.ZipFile(fh) as zf:
                names = set(zf.namelist())
                expected = {f + ".npy" for f in _FIELDS} | {
                    "format.npy", "key.npy", "n_switches.npy"
                }
                if names != expected:
                    raise ArenaFormatError(
                        f"not a path arena: members {sorted(names)}"
                    )
                for zi in zf.infolist():
                    if zi.compress_type != zipfile.ZIP_STORED:
                        raise ArenaFormatError(
                            "arena members must be stored uncompressed"
                        )
                    fh.seek(zi.header_offset)
                    hdr = fh.read(30)
                    if len(hdr) != 30 or hdr[:4] != b"PK\x03\x04":
                        raise ValueError("bad local file header")
                    name_len = int.from_bytes(hdr[26:28], "little")
                    extra_len = int.from_bytes(hdr[28:30], "little")
                    spans[zi.filename] = (
                        zi.header_offset + 30 + name_len + extra_len,
                        zi.file_size,
                    )

            def read_member(name: str, want_mmap: bool):
                off, size = spans[name]
                fh.seek(off)
                version = np.lib.format.read_magic(fh)
                if version != (1, 0):
                    shape, fortran, dtype = (
                        np.lib.format.read_array_header_2_0(fh)
                    )
                else:
                    shape, fortran, dtype = (
                        np.lib.format.read_array_header_1_0(fh)
                    )
                if fortran or dtype.hasobject:
                    raise ArenaFormatError("unsupported member layout")
                data_off = fh.tell()
                count = int(np.prod(shape, dtype=np.int64)) if shape else 1
                if data_off + count * dtype.itemsize > off + size:
                    raise ValueError("truncated arena member")
                if want_mmap and count:
                    mm = _mmap_of(path)
                    arr = np.frombuffer(
                        mm, dtype=dtype, count=count, offset=data_off
                    )
                else:
                    arr = np.fromfile(fh, dtype=dtype, count=count)
                    if len(arr) != count:
                        raise ValueError("truncated arena member")
                return arr.reshape(shape) if shape else arr[0]

            _mm_cache: List[Optional[np.memmap]] = [None]

            def _mmap_of(p):
                if _mm_cache[0] is None:
                    _mm_cache[0] = np.memmap(p, mode="r", dtype=np.uint8)
                return _mm_cache[0]

            fmt = str(np.ravel(read_member("format.npy", False))[0])
            if fmt != ARENA_FORMAT:
                raise ArenaFormatError(f"foreign arena format {fmt!r}")
            key = str(np.ravel(read_member("key.npy", False))[0])
            n_switches = int(np.ravel(read_member("n_switches.npy", False))[0])
            out: Dict[str, np.ndarray] = {}
            for field in _FIELDS:
                arr = read_member(field + ".npy", mmap)
                if arr.dtype != np.dtype(_DTYPES[field]):
                    raise ArenaFormatError(
                        f"arena member {field} has dtype {arr.dtype}"
                    )
                out[field] = arr
            arena = cls(
                n_switches, out["pair_key"], out["pair_off"],
                out["path_off"], out["nodes"], key=key,
            )
            arena._mmap = _mm_cache[0]
            return arena

    # ------------------------------------------------------ shared memory
    def to_shm(self):
        """Copy the arena into one shared-memory block.

        Returns ``(shm, descriptor)``: the parent must keep ``shm`` alive
        while workers run and ``close()``/``unlink()`` it afterwards; the
        descriptor is a tiny picklable dict for :meth:`from_shm`.
        """
        from multiprocessing import shared_memory

        fields = []
        offset = 0
        for name in _FIELDS:
            arr = getattr(self, name)
            offset = -(-offset // 64) * 64  # 64-byte align each array
            fields.append((name, arr.dtype.str, len(arr), offset))
            offset += arr.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for name, dstr, count, off in fields:
            arr = getattr(self, name)
            if count:
                view = np.frombuffer(
                    shm.buf, dtype=np.dtype(dstr), count=count, offset=off
                )
                view[:] = arr
        descriptor = {
            "shm": shm.name,
            "n_switches": self.n_switches,
            "key": self.key,
            "fields": fields,
        }
        return shm, descriptor

    @classmethod
    def from_shm(cls, descriptor: dict) -> "PathArena":
        """Attach zero-copy views over a :meth:`to_shm` block.

        On POSIX the block is mapped straight off ``/dev/shm`` — the
        mapping then lives exactly as long as the views referencing it,
        with no close-ordering hazards; elsewhere it falls back to a
        :class:`~multiprocessing.shared_memory.SharedMemory` attach kept
        alive on the arena.
        """
        import os

        name = descriptor["shm"]
        shm_file = "/dev/shm/" + name.lstrip("/")
        holder = None
        if os.path.exists(shm_file):
            buf = np.memmap(shm_file, mode="r", dtype=np.uint8)
        else:  # pragma: no cover - non-POSIX fallback
            from multiprocessing import shared_memory

            holder = shared_memory.SharedMemory(name=name)
            buf = holder.buf
        arrays = {}
        for field, dstr, count, off in descriptor["fields"]:
            arrays[field] = np.frombuffer(
                buf, dtype=np.dtype(dstr), count=count, offset=off
            )
        arena = cls(
            descriptor["n_switches"],
            arrays["pair_key"], arrays["pair_off"],
            arrays["path_off"], arrays["nodes"],
            key=descriptor.get("key", ""),
        )
        arena._shm = holder  # keep a non-memmap attach alive with the views
        return arena
