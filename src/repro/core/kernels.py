"""Shared BFS kernels: the fast path under every shortest-path query.

The seed implementation ran one Python ``deque`` BFS per shortest-path
query — with numpy scalar indexing in the inner loop — which made path-table
precomputation (one Yen run per switch pair, ~15 BFS sweeps each) the
dominant fixed cost of every experiment.  This module replaces that walk
with two interchangeable kernels that produce *bit-identical* distance
fields:

- a **bitset kernel** for small graphs and for every banned-node/edge spur
  search: neighbour sets are Python integers used as bitmasks, so one BFS
  level is a handful of word-wide OR operations instead of hundreds of
  interpreted iterations (6-12x on the paper's topologies);
- a **CSR kernel** for large ban-free sweeps: the adjacency is exported
  once as ``indptr``/``indices`` numpy arrays and the frontier expands as a
  vectorized gather + mask per level (the classic frontier-expansion BFS).

On top of the kernels sits a :class:`LevelField` cache: the ban-free
distance field from a source is a pure function of the graph, so it is
computed once and shared across *all* destinations — the first path of
every Yen/Remove-Find invocation, plain SP, ECMP enumeration, and the
all-pairs topology metrics all hit the same cached field.

Exactness: BFS hop distances are unique whatever the exploration order, so
both kernels reproduce the seed's distance fields exactly; the mask-based
backwalk enumerates predecessor candidates in ascending node-id order —
identical to walking a sorted adjacency list — and draws exactly one RNG
sample per hop in randomized mode, so randomized paths (and the RNG stream
position afterwards) are byte-identical to the seed implementation.

``GraphKernels`` also implements the sequence protocol (``len``,
``adj[u]``), so it can be passed anywhere a plain adjacency list is
accepted.  Neighbour lists are assumed sorted ascending (the
:class:`~repro.topology.Jellyfish` invariant); unsorted input is normalised
on construction.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["LevelField", "GraphKernels", "kernels_for"]

#: Largest node count routed to the bitset kernel for ban-free sweeps.
#: Measured crossover on random regular graphs: the bitset kernel wins up
#: to a few hundred nodes, the vectorized CSR kernel beyond.
_BITSET_MAX = 512

#: Ban-free per-source level fields cached per graph (FIFO eviction).  One
#: field is ~n pointers, so even the paper's RRG(2880,48,38) fits in tens
#: of megabytes when fully warmed.
_MAX_CACHED_FIELDS = 4096

#: Bounded id-keyed memo for adjacency lists that arrive as plain Python
#: sequences (tests, examples).  Entries hold a strong reference to the
#: adjacency, so an id can never be recycled while its entry is alive.
_KERNEL_CACHE: Dict[int, Tuple[object, "GraphKernels"]] = {}
_KERNEL_CACHE_MAX = 8


class LevelField:
    """A BFS result: per-node hop distances plus per-level node bitmasks.

    ``dist[v]`` is the hop distance from the field's source (-1 when
    unreachable, banned, or beyond an early-exit level); ``masks[L]`` is
    the bitmask of nodes at distance exactly ``L``.  Fields are immutable
    by convention — cached instances are shared between callers.
    """

    __slots__ = ("dist", "masks")

    def __init__(self, dist: List[int], masks: List[int]):
        self.dist = dist
        self.masks = masks


class GraphKernels:
    """Precomputed BFS acceleration structures for one adjacency.

    Build one per graph (or let :func:`kernels_for` memoise it) and reuse
    it for every query: the per-source level-field cache is what turns
    all-pairs path precomputation from N*(N-1) independent BFS sweeps into
    N shared ones.
    """

    __slots__ = (
        "adj", "n", "nbr_masks", "_fields", "_indptr", "_indices", "_ind2d",
    )

    def __init__(self, adj: Sequence[Sequence[int]]):
        rows = [list(map(int, nbrs)) for nbrs in adj]
        for row in rows:
            if any(row[i] >= row[i + 1] for i in range(len(row) - 1)):
                row.sort()
        self.adj: List[List[int]] = rows
        self.n = len(rows)
        masks = []
        for nbrs in rows:
            m = 0
            for v in nbrs:
                m |= 1 << v
            masks.append(m)
        self.nbr_masks: List[int] = masks
        self._fields: Dict[int, LevelField] = {}
        self._indptr: Optional[np.ndarray] = None
        self._indices: Optional[np.ndarray] = None
        self._ind2d: Optional[np.ndarray] = None

    # ------------------------------------------------- sequence protocol
    def __len__(self) -> int:
        return self.n

    def __getitem__(self, u: int) -> List[int]:
        return self.adj[u]

    def __iter__(self) -> Iterator[List[int]]:
        return iter(self.adj)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GraphKernels(n={self.n}, cached_fields={len(self._fields)})"

    # ------------------------------------------------------- CSR export
    def csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """The adjacency as CSR ``(indptr, indices)`` int64 arrays."""
        if self._indptr is None:
            counts = np.fromiter(
                (len(r) for r in self.adj), dtype=np.int64, count=self.n
            )
            indptr = np.zeros(self.n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            indices = np.fromiter(
                (v for r in self.adj for v in r),
                dtype=np.int64,
                count=int(indptr[-1]),
            )
            self._indptr, self._indices = indptr, indices
            if self.n and counts.size and (counts == counts[0]).all() and counts[0]:
                self._ind2d = indices.reshape(self.n, int(counts[0]))
        return self._indptr, self._indices

    # ----------------------------------------------------------- fields
    def field(self, source: int) -> LevelField:
        """The ban-free level field from ``source`` (cached, complete)."""
        found = self._fields.get(source)
        if found is None:
            if self.n <= _BITSET_MAX:
                found = self._bfs_bitset(source, 0, None, None)
            else:
                found = self._bfs_csr(source)
            if len(self._fields) >= _MAX_CACHED_FIELDS:
                self._fields.pop(next(iter(self._fields)))
            self._fields[source] = found
        return found

    def field_banned(
        self,
        source: int,
        banned_nodes: AbstractSet[int],
        banned_out: Optional[Dict[int, int]],
        until: Optional[int] = None,
    ) -> LevelField:
        """An uncached level field honouring bans.

        ``banned_out`` maps a node to the bitmask of neighbours its out-
        edges may not reach (directed bans).  With ``until`` set, expansion
        stops after the level that assigns it — every node at a smaller or
        equal distance still gets its exact value, which is all a backwalk
        ever reads.
        """
        block = 0
        for b in banned_nodes:
            block |= 1 << b
        return self._bfs_bitset(source, block, banned_out, until)

    def _bfs_bitset(
        self,
        source: int,
        block: int,
        banned_out: Optional[Dict[int, int]],
        until: Optional[int],
    ) -> LevelField:
        dist = [-1] * self.n
        dist[source] = 0
        start = 1 << source
        masks = [start]
        visited = start | block
        frontier = start
        nbr_masks = self.nbr_masks
        until_bit = (1 << until) if until is not None else 0
        level = 0
        while frontier:
            nxt = 0
            f = frontier
            if banned_out:
                while f:
                    b = f & -f
                    f ^= b
                    u = b.bit_length() - 1
                    m = nbr_masks[u]
                    bo = banned_out.get(u)
                    nxt |= m if bo is None else m & ~bo
            else:
                while f:
                    b = f & -f
                    f ^= b
                    nxt |= nbr_masks[b.bit_length() - 1]
            nxt &= ~visited
            if not nxt:
                break
            level += 1
            visited |= nxt
            masks.append(nxt)
            g = nxt
            while g:
                b = g & -g
                g ^= b
                dist[b.bit_length() - 1] = level
            if nxt & until_bit:
                break
            frontier = nxt
        return LevelField(dist, masks)

    def _bfs_csr(self, source: int) -> LevelField:
        """Vectorized frontier-expansion BFS (ban-free, complete field)."""
        indptr, indices = self.csr()
        n = self.n
        dist = np.full(n, -1, dtype=np.int64)
        dist[source] = 0
        frontier = np.array([source], dtype=np.int64)
        masks = [1 << source]
        ind2d = self._ind2d
        level = 0
        while frontier.size:
            if ind2d is not None:
                nbrs = ind2d[frontier].ravel()
            else:
                starts = indptr[frontier]
                counts = indptr[frontier + 1] - starts
                total = int(counts.sum())
                if not total:
                    break
                # Flatten the per-node index ranges into one gather.
                pos = np.repeat(
                    starts - np.concatenate(([0], np.cumsum(counts)[:-1])),
                    counts,
                ) + np.arange(total, dtype=np.int64)
                nbrs = indices[pos]
            new = nbrs[dist[nbrs] < 0]
            if not new.size:
                break
            level += 1
            dist[new] = level
            frontier = np.unique(new)
            bits = np.zeros(n, dtype=bool)
            bits[frontier] = True
            masks.append(
                int.from_bytes(
                    np.packbits(bits, bitorder="little").tobytes(), "little"
                )
            )
        return LevelField(dist.tolist(), masks)

    # --------------------------------------------------------- backwalk
    def backwalk_min(
        self,
        field: LevelField,
        source: int,
        destination: int,
        banned_in: Optional[Dict[int, int]],
    ) -> List[int]:
        """Deterministic backwalk: smallest-id predecessor at every hop."""
        dist = field.dist
        masks = field.masks
        nbr_masks = self.nbr_masks
        path = [destination]
        v = destination
        dv = dist[destination]
        while v != source:
            cand = nbr_masks[v] & masks[dv - 1]
            if banned_in:
                bi = banned_in.get(v)
                if bi is not None:
                    cand &= ~bi
            u = (cand & -cand).bit_length() - 1
            path.append(u)
            v = u
            dv -= 1
        path.reverse()
        return path

    def backwalk_random(
        self,
        field: LevelField,
        source: int,
        destination: int,
        banned_in: Optional[Dict[int, int]],
        generator: np.random.Generator,
    ) -> List[int]:
        """Randomized backwalk: uniform predecessor choice at every hop.

        Candidates are enumerated in ascending node id (== sorted adjacency
        order) and exactly one ``integers`` draw happens per hop, matching
        the seed implementation's RNG consumption bit for bit.
        """
        dist = field.dist
        masks = field.masks
        nbr_masks = self.nbr_masks
        path = [destination]
        v = destination
        dv = dist[destination]
        while v != source:
            cand = nbr_masks[v] & masks[dv - 1]
            if banned_in:
                bi = banned_in.get(v)
                if bi is not None:
                    cand &= ~bi
            idx = int(generator.integers(cand.bit_count()))
            for _ in range(idx):
                cand &= cand - 1
            u = (cand & -cand).bit_length() - 1
            path.append(u)
            v = u
            dv -= 1
        path.reverse()
        return path


def ban_masks(
    banned_edges: AbstractSet[Tuple[int, int]],
) -> Tuple[Optional[Dict[int, int]], Optional[Dict[int, int]]]:
    """Split directed edge bans into per-node out/in bitmasks.

    Returns ``(banned_out, banned_in)`` where ``banned_out[u]`` masks the
    targets ``u`` may not reach and ``banned_in[v]`` masks the predecessors
    that may not enter ``v`` — the forms the BFS and the backwalk consume.
    """
    if not banned_edges:
        return None, None
    banned_out: Dict[int, int] = {}
    banned_in: Dict[int, int] = {}
    for u, v in banned_edges:
        banned_out[u] = banned_out.get(u, 0) | (1 << v)
        banned_in[v] = banned_in.get(v, 0) | (1 << u)
    return banned_out, banned_in


def kernels_for(adj: Sequence[Sequence[int]]) -> GraphKernels:
    """The :class:`GraphKernels` for ``adj``, memoised per adjacency object.

    Prefer holding an explicit ``GraphKernels`` (e.g.
    :attr:`repro.topology.Jellyfish.kernels`) in hot paths; this accessor
    exists so the public functional API (``shortest_path(adj, ...)``)
    amortises kernel construction across calls.  The adjacency is treated
    as immutable once queried.
    """
    if isinstance(adj, GraphKernels):
        return adj
    key = id(adj)
    entry = _KERNEL_CACHE.get(key)
    if entry is not None and entry[0] is adj:
        return entry[1]
    kernels = GraphKernels(adj)
    _KERNEL_CACHE[key] = (adj, kernels)
    while len(_KERNEL_CACHE) > _KERNEL_CACHE_MAX:
        _KERNEL_CACHE.pop(next(iter(_KERNEL_CACHE)))
    return kernels
