"""Path selection — the paper's primary contribution.

This package implements the four path-selection schemes the paper compares
(KSP, rKSP, EDKSP, rEDKSP), the LLSKR baseline from Yuan et al. SC'13, the
underlying shortest-path and Yen's k-shortest-path machinery, and the
path-quality metrics behind Tables II-IV.
"""

from repro.core.path import Path, PathSet
from repro.core.kernels import GraphKernels, kernels_for
from repro.core.dijkstra import shortest_path, bfs_levels
from repro.core.yen import k_shortest_paths
from repro.core.remove_find import edge_disjoint_paths
from repro.core.selectors import (
    SCHEMES,
    compute_paths,
    KSPSelector,
    RandomizedKSPSelector,
    EdgeDisjointKSPSelector,
    RandomizedEdgeDisjointKSPSelector,
    LLSKRSelector,
    make_selector,
)
from repro.core.arena import PathArena
from repro.core.cache import PathCache
from repro.core.store import ArenaStore, PathStore, DEFAULT_STORE_DIR
from repro.core.ecmp import ecmp_paths
from repro.core.failures import (
    failure_resilience,
    pair_survives,
    sample_link_failures,
    surviving_paths,
)
from repro.core.properties import (
    average_path_length,
    fraction_disjoint_pairs,
    max_link_sharing,
    pathset_is_edge_disjoint,
    pathset_max_link_sharing,
    path_quality_report,
)

__all__ = [
    "Path",
    "PathSet",
    "GraphKernels",
    "kernels_for",
    "shortest_path",
    "bfs_levels",
    "k_shortest_paths",
    "edge_disjoint_paths",
    "SCHEMES",
    "compute_paths",
    "make_selector",
    "KSPSelector",
    "RandomizedKSPSelector",
    "EdgeDisjointKSPSelector",
    "RandomizedEdgeDisjointKSPSelector",
    "LLSKRSelector",
    "PathCache",
    "PathArena",
    "ArenaStore",
    "PathStore",
    "DEFAULT_STORE_DIR",
    "ecmp_paths",
    "failure_resilience",
    "pair_survives",
    "sample_link_failures",
    "surviving_paths",
    "average_path_length",
    "fraction_disjoint_pairs",
    "max_link_sharing",
    "pathset_is_edge_disjoint",
    "pathset_max_link_sharing",
    "path_quality_report",
]
