"""Path-set quality metrics (the methodology behind Tables II, III, IV).

Three views of a collection of PathSets:

- :func:`average_path_length` — mean hops over all paths of all pairs
  (Table II);
- :func:`fraction_disjoint_pairs` — fraction of pairs whose ``k`` paths are
  pairwise link-disjoint (Table III);
- :func:`max_link_sharing` — the worst-case number of one pair's paths that
  traverse the same physical link (Table IV; 1 means fully disjoint).

Link sharing is counted on *undirected* links: the paper's argument is about
cable bandwidth, and every cited value (e.g. "7 of 8 paths share one link")
is consistent with that reading.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable

from repro.core.path import PathSet

__all__ = [
    "average_path_length",
    "fraction_disjoint_pairs",
    "max_link_sharing",
    "pathset_is_edge_disjoint",
    "pathset_max_link_sharing",
    "path_quality_report",
]


def pathset_max_link_sharing(ps: PathSet) -> int:
    """Max number of this pair's paths using any single undirected link.

    Returns 0 for the trivial intra-switch PathSet (no links at all).
    """
    counts: Counter = Counter()
    for path in ps:
        for edge in path.undirected_edges():
            counts[edge] += 1
    return max(counts.values()) if counts else 0


def pathset_is_edge_disjoint(ps: PathSet) -> bool:
    """True when no undirected link appears in two of the pair's paths."""
    return pathset_max_link_sharing(ps) <= 1


def average_path_length(pathsets: Iterable[PathSet]) -> float:
    """Mean hop count over every path of every PathSet (Table II metric)."""
    total = 0
    count = 0
    for ps in pathsets:
        for path in ps:
            total += path.hops
            count += 1
    if count == 0:
        return 0.0
    return total / count


def fraction_disjoint_pairs(pathsets: Iterable[PathSet]) -> float:
    """Fraction of pairs whose paths share no link (Table III metric)."""
    disjoint = 0
    count = 0
    for ps in pathsets:
        count += 1
        if pathset_is_edge_disjoint(ps):
            disjoint += 1
    if count == 0:
        return 0.0
    return disjoint / count


def max_link_sharing(pathsets: Iterable[PathSet]) -> int:
    """Worst-case single-link sharing over all pairs (Table IV metric)."""
    worst = 0
    for ps in pathsets:
        worst = max(worst, pathset_max_link_sharing(ps))
    return worst


def path_quality_report(pathsets: Iterable[PathSet]) -> Dict[str, float]:
    """All three table metrics (plus pair count) in one pass."""
    total_hops = 0
    n_paths = 0
    n_pairs = 0
    disjoint = 0
    worst = 0
    for ps in pathsets:
        n_pairs += 1
        sharing = pathset_max_link_sharing(ps)
        worst = max(worst, sharing)
        if sharing <= 1:
            disjoint += 1
        for path in ps:
            total_hops += path.hops
            n_paths += 1
    return {
        "pairs": n_pairs,
        "paths": n_paths,
        "average_path_length": total_hops / n_paths if n_paths else 0.0,
        "fraction_disjoint_pairs": disjoint / n_pairs if n_pairs else 0.0,
        "max_link_sharing": worst,
    }
