"""Path and PathSet containers.

A :class:`Path` is an immutable sequence of switch ids; a :class:`PathSet`
is the ordered collection of paths a selector computed for one
(source switch, destination switch) pair.  Both are hashable value types so
they can key caches and be compared structurally in tests.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.errors import PathError

__all__ = ["Path", "PathSet"]


class Path:
    """An immutable loop-free switch path.

    ``hops`` is the link count (``len(nodes) - 1``); a single-switch path
    (source switch == destination switch) has 0 hops and no edges.
    """

    __slots__ = ("nodes",)

    def __init__(self, nodes: Sequence[int]):
        nodes = tuple(int(v) for v in nodes)
        if not nodes:
            raise PathError("a path needs at least one switch")
        if len(set(nodes)) != len(nodes):
            raise PathError(f"path revisits a switch: {nodes}")
        object.__setattr__(self, "nodes", nodes)

    def __setattr__(self, name, value):  # immutability guard
        raise AttributeError("Path is immutable")

    @classmethod
    def _from_trusted(cls, nodes: Tuple[int, ...]) -> "Path":
        """Wrap an already-validated node tuple without re-checking it.

        Only for internal callers (the path kernels) whose construction
        guarantees a non-empty, loop-free tuple of Python ints; skipping
        validation keeps Path creation off the Yen hot path's profile.
        """
        path = object.__new__(cls)
        object.__setattr__(path, "nodes", nodes)
        return path

    def __reduce__(self):
        # The immutability guard breaks pickle's default slot restore;
        # rebuild through the constructor instead (needed to ship path
        # tables to worker processes in parallel sweeps).
        return (Path, (self.nodes,))

    @property
    def source(self) -> int:
        return self.nodes[0]

    @property
    def destination(self) -> int:
        return self.nodes[-1]

    @property
    def hops(self) -> int:
        return len(self.nodes) - 1

    def edges(self) -> List[Tuple[int, int]]:
        """Directed edges along the path, in order."""
        return [
            (self.nodes[i], self.nodes[i + 1]) for i in range(len(self.nodes) - 1)
        ]

    def undirected_edges(self) -> List[Tuple[int, int]]:
        """Edges normalised to ``(min, max)`` — used for link-sharing metrics."""
        return [(min(u, v), max(u, v)) for u, v in self.edges()]

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[int]:
        return iter(self.nodes)

    def __getitem__(self, idx):
        return self.nodes[idx]

    def __eq__(self, other) -> bool:
        return isinstance(other, Path) and self.nodes == other.nodes

    def __lt__(self, other: "Path") -> bool:
        """Order by hop count, then lexicographically (Yen tie-break)."""
        return (self.hops, self.nodes) < (other.hops, other.nodes)

    def __hash__(self) -> int:
        return hash(self.nodes)

    def __repr__(self) -> str:
        return "Path(" + "->".join(map(str, self.nodes)) + ")"


class PathSet:
    """The ordered paths a selector computed for one switch pair.

    The first path is always the scheme's "minimal" path (UGAL variants rely
    on this).  A PathSet never mixes endpoints: every member path must share
    the set's source and destination.
    """

    __slots__ = ("source", "destination", "paths")

    def __init__(self, source: int, destination: int, paths: Iterable[Path]):
        paths = tuple(paths)
        if not paths:
            raise PathError(
                f"empty path set for pair ({source}, {destination})"
            )
        for p in paths:
            if p.source != source or p.destination != destination:
                raise PathError(
                    f"path {p!r} does not connect ({source}, {destination})"
                )
        if len(set(paths)) != len(paths):
            raise PathError(
                f"duplicate paths in set for pair ({source}, {destination})"
            )
        object.__setattr__(self, "source", int(source))
        object.__setattr__(self, "destination", int(destination))
        object.__setattr__(self, "paths", paths)

    def __setattr__(self, name, value):
        raise AttributeError("PathSet is immutable")

    def __reduce__(self):
        return (PathSet, (self.source, self.destination, self.paths))

    @property
    def k(self) -> int:
        return len(self.paths)

    @property
    def minimal(self) -> Path:
        """The scheme's minimal path (shortest; ties per scheme policy)."""
        return self.paths[0]

    def hop_counts(self) -> List[int]:
        return [p.hops for p in self.paths]

    def mean_hops(self) -> float:
        return sum(p.hops for p in self.paths) / len(self.paths)

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self) -> Iterator[Path]:
        return iter(self.paths)

    def __getitem__(self, idx) -> Path:
        return self.paths[idx]

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, PathSet)
            and self.source == other.source
            and self.destination == other.destination
            and self.paths == other.paths
        )

    def __hash__(self) -> int:
        return hash((self.source, self.destination, self.paths))

    def __repr__(self) -> str:
        return (
            f"PathSet({self.source}->{self.destination}, k={self.k}, "
            f"hops={self.hop_counts()})"
        )
