"""LLSKR — Limited Length Spread k-shortest path routing (Yuan et al. [2]).

LLSKR addresses two KSP shortcomings the paper recounts: KSP ignores extra
short paths when many exist, and drags in long paths when few exist.  LLSKR
instead keeps *every* path whose length is within ``spread`` hops of the
pair's shortest path, clamped to ``[k_min, k_max]`` paths:

- enumerate shortest paths (Yen's order) until the next path would exceed
  ``shortest + spread`` hops;
- if that yields more than ``k_max`` paths, keep the first ``k_max``;
- if fewer than ``k_min``, keep extending with longer paths until ``k_min``
  paths are collected (or the graph runs out).

This module is the reproduction's implementation of the related-work
baseline; the paper's own experiments compare the four KSP variants, so
LLSKR appears in the ablation benchmarks rather than the headline figures.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.path import Path
from repro.core.yen import k_shortest_paths
from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike
from repro.utils.validation import check_in, check_positive_int

__all__ = ["llskr_paths"]


def llskr_paths(
    adj: Sequence[Sequence[int]],
    source: int,
    destination: int,
    *,
    k_min: int = 4,
    k_max: int = 16,
    spread: int = 1,
    tie: str = "min",
    rng: SeedLike = None,
) -> List[Path]:
    """Paths for one pair under LLSKR's limited-length-spread rule."""
    check_positive_int(k_min, "k_min")
    check_positive_int(k_max, "k_max")
    check_in(tie, ("min", "random"), "tie")
    if k_max < k_min:
        raise ConfigurationError(
            f"k_max ({k_max}) must be >= k_min ({k_min})"
        )
    if spread < 0:
        raise ConfigurationError(f"spread must be >= 0, got {spread}")

    # Enumerate up to k_max paths once; Yen returns them in hop order, so
    # the spread window is a prefix.
    candidates = k_shortest_paths(
        adj, source, destination, k_max, tie=tie, rng=rng,
        on_shortfall="truncate",
    )
    limit = candidates[0].hops + spread
    within = [p for p in candidates if p.hops <= limit]
    if len(within) >= k_min:
        return within
    # Too few short paths: extend with the next-longer ones up to k_min.
    return candidates[: min(k_min, len(candidates))]
