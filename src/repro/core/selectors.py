"""Path-selection schemes as composable selector objects.

Each selector encapsulates one of the paper's path-selection policies and
produces a :class:`~repro.core.path.PathSet` per switch pair:

========== ============================================= ==================
name        algorithm                                     paper notation
========== ============================================= ==================
``ksp``     Yen's KSP, deterministic tie-break            KSP(k)
``rksp``    Yen's KSP, randomized tie-break               rKSP(k)
``edksp``   Remove-Find edge-disjoint, deterministic      EDKSP(k)
``redksp``  Remove-Find edge-disjoint, randomized         rEDKSP(k)
``llskr``   limited length spread (Yuan et al. [2])       LLSKR
``sp``      the single shortest path                      SP
``ecmp``    equal-cost shortest paths only                ECMP
========== ============================================= ==================

Selectors are stateless; randomness comes from the ``rng`` handed to
:meth:`PathSelector.select`, so a fixed seed plus a fixed pair is perfectly
reproducible no matter the evaluation order.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Type

from repro.core.ecmp import ecmp_paths
from repro.core.llskr import llskr_paths
from repro.core.path import Path, PathSet
from repro.core.remove_find import edge_disjoint_paths
from repro.core.yen import k_shortest_paths
from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike

__all__ = [
    "PathSelector",
    "KSPSelector",
    "RandomizedKSPSelector",
    "EdgeDisjointKSPSelector",
    "RandomizedEdgeDisjointKSPSelector",
    "LLSKRSelector",
    "SingleShortestPathSelector",
    "ECMPSelector",
    "SCHEMES",
    "make_selector",
    "compute_paths",
]


class PathSelector:
    """Base class: maps a switch pair to its PathSet on a given graph."""

    #: registry key / display name, set by subclasses
    name: str = ""
    #: whether the selection draws random numbers
    randomized: bool = False

    def select(
        self,
        adj: Sequence[Sequence[int]],
        source: int,
        destination: int,
        k: int,
        rng: SeedLike = None,
    ) -> PathSet:
        raise NotImplementedError

    def signature(self) -> Tuple:
        """A stable, JSON-able identity tuple for persistence keys.

        Subclasses with constructor knobs that change the produced paths
        must extend this — the persistent path store hashes it.
        """
        return (self.name,)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class KSPSelector(PathSelector):
    """Vanilla KSP: Yen's algorithm with the deterministic small-id bias."""

    name = "ksp"
    randomized = False

    def select(self, adj, source, destination, k, rng=None) -> PathSet:
        paths = k_shortest_paths(adj, source, destination, k, tie="min")
        return PathSet(source, destination, paths)


class RandomizedKSPSelector(PathSelector):
    """rKSP: Yen's algorithm with uniform random tie-breaking."""

    name = "rksp"
    randomized = True

    def select(self, adj, source, destination, k, rng=None) -> PathSet:
        paths = k_shortest_paths(adj, source, destination, k, tie="random", rng=rng)
        return PathSet(source, destination, paths)


class EdgeDisjointKSPSelector(PathSelector):
    """EDKSP: Remove-Find edge-disjoint paths, deterministic tie-breaking."""

    name = "edksp"
    randomized = False

    def select(self, adj, source, destination, k, rng=None) -> PathSet:
        paths = edge_disjoint_paths(adj, source, destination, k, tie="min")
        return PathSet(source, destination, paths)


class RandomizedEdgeDisjointKSPSelector(PathSelector):
    """rEDKSP: Remove-Find with randomized tie-breaking (the paper's best)."""

    name = "redksp"
    randomized = True

    def select(self, adj, source, destination, k, rng=None) -> PathSet:
        paths = edge_disjoint_paths(
            adj, source, destination, k, tie="random", rng=rng
        )
        return PathSet(source, destination, paths)


class LLSKRSelector(PathSelector):
    """LLSKR baseline: variable path count within a length spread."""

    name = "llskr"
    randomized = False

    def __init__(self, spread: int = 1, k_min: int | None = None):
        self.spread = spread
        self.k_min = k_min

    def signature(self) -> Tuple:
        return (self.name, self.spread, self.k_min)

    def select(self, adj, source, destination, k, rng=None) -> PathSet:
        # ``k`` acts as LLSKR's k_max; k_min defaults to half of it.
        k_min = self.k_min if self.k_min is not None else max(1, k // 2)
        paths = llskr_paths(
            adj, source, destination,
            k_min=min(k_min, k), k_max=k, spread=self.spread, tie="min",
        )
        return PathSet(source, destination, paths)


class SingleShortestPathSelector(PathSelector):
    """SP: the single deterministic shortest path (the paper's baseline)."""

    name = "sp"
    randomized = False

    def select(self, adj, source, destination, k, rng=None) -> PathSet:
        paths: List[Path] = k_shortest_paths(adj, source, destination, 1, tie="min")
        return PathSet(source, destination, paths)


class ECMPSelector(PathSelector):
    """ECMP: equal-cost shortest paths only (the poor Jellyfish baseline).

    Deterministic by default (lexicographically-smallest paths, mimicking
    a biased hardware hash); with an rng the kept subset is sampled.
    """

    name = "ecmp"
    randomized = False

    def select(self, adj, source, destination, k, rng=None) -> PathSet:
        return PathSet(source, destination, ecmp_paths(adj, source, destination, k))


SCHEMES: Dict[str, Type[PathSelector]] = {
    cls.name: cls
    for cls in (
        KSPSelector,
        RandomizedKSPSelector,
        EdgeDisjointKSPSelector,
        RandomizedEdgeDisjointKSPSelector,
        LLSKRSelector,
        SingleShortestPathSelector,
        ECMPSelector,
    )
}


def make_selector(scheme: str, **kwargs) -> PathSelector:
    """Instantiate a selector from its registry name (e.g. ``"redksp"``)."""
    try:
        cls = SCHEMES[scheme]
    except KeyError:
        raise ConfigurationError(
            f"unknown path-selection scheme {scheme!r}; "
            f"choose from {sorted(SCHEMES)}"
        ) from None
    return cls(**kwargs)


def compute_paths(
    adj: Sequence[Sequence[int]],
    source: int,
    destination: int,
    k: int,
    scheme: str = "ksp",
    rng: SeedLike = None,
) -> PathSet:
    """One-call convenience: ``make_selector(scheme).select(...)``."""
    return make_selector(scheme).select(adj, source, destination, k, rng)
