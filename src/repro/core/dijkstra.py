"""Shortest-path routines with deterministic or randomized tie-breaking.

The switch graph is unweighted, so the "Dijkstra" of the paper reduces to
BFS; what matters is the *tie-breaking policy*, which is exactly the knob
the paper turns:

- ``tie="min"`` reproduces the textbook algorithm's bias: neighbours are
  explored in increasing node-id order, so among equal-length paths the one
  through the smallest ids wins (the paper's "vanilla" behaviour that causes
  the Figure 3(a) pathology).
- ``tie="random"`` is the randomized variant: the path is sampled by a
  random backwalk over the BFS distance field, choosing uniformly among
  valid predecessors at every step (the paper's randomized Dijkstra).

Both honour banned nodes and banned *directed* edges, which is what Yen's
algorithm and the Remove-Find edge-disjoint method need.

The BFS itself runs on the shared kernels of :mod:`repro.core.kernels`:
ban-free distance fields are computed once per source and shared across
destinations and callers, banned spur searches use the bitset kernel, and
results are bit-identical to a per-query Python BFS.  ``adj`` may be plain
adjacency lists or an existing :class:`~repro.core.kernels.GraphKernels`.
"""

from __future__ import annotations

from typing import AbstractSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.kernels import GraphKernels, ban_masks, kernels_for
from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["shortest_path", "bfs_levels"]

_EMPTY: frozenset = frozenset()


def bfs_levels(
    adj: Sequence[Sequence[int]],
    source: int,
    banned_nodes: AbstractSet[int] = _EMPTY,
    banned_edges: AbstractSet[Tuple[int, int]] = _EMPTY,
) -> np.ndarray:
    """BFS hop distances from ``source`` honouring bans (-1 = unreachable).

    ``banned_edges`` contains *directed* pairs; an undirected ban needs both
    orientations.
    """
    kernels = kernels_for(adj)
    if source in banned_nodes:
        return np.full(len(kernels), -1, dtype=np.int64)
    if banned_nodes or banned_edges:
        banned_out, _ = ban_masks(banned_edges)
        field = kernels.field_banned(source, banned_nodes, banned_out)
    else:
        field = kernels.field(source)
    return np.asarray(field.dist, dtype=np.int64)


def shortest_path(
    adj: Sequence[Sequence[int]],
    source: int,
    destination: int,
    *,
    tie: str = "min",
    rng: SeedLike = None,
    banned_nodes: AbstractSet[int] = _EMPTY,
    banned_edges: AbstractSet[Tuple[int, int]] = _EMPTY,
) -> Optional[List[int]]:
    """One shortest path from ``source`` to ``destination`` (or ``None``).

    Parameters
    ----------
    tie:
        ``"min"`` — deterministic, biased toward small node ids (vanilla);
        ``"random"`` — uniform choice among predecessors at each backwalk
        step (randomized variant).
    rng:
        Seed or generator; only consulted when ``tie == "random"``.
    banned_nodes / banned_edges:
        Nodes that may not appear and directed edges that may not be
        traversed.  ``source``/``destination`` must not be banned for a path
        to exist.
    """
    if tie not in ("min", "random"):
        raise ConfigurationError(f'tie must be "min" or "random", got {tie!r}')
    if source == destination:
        return None if source in banned_nodes else [source]
    if source in banned_nodes or destination in banned_nodes:
        return None

    kernels = kernels_for(adj)
    if banned_nodes or banned_edges:
        banned_out, banned_in = ban_masks(banned_edges)
        field = kernels.field_banned(
            source, banned_nodes, banned_out, until=destination
        )
    else:
        banned_in = None
        field = kernels.field(source)
    if field.dist[destination] < 0:
        return None
    if tie == "min":
        return kernels.backwalk_min(field, source, destination, banned_in)
    return kernels.backwalk_random(
        field, source, destination, banned_in, ensure_rng(rng)
    )
