"""Shortest-path routines with deterministic or randomized tie-breaking.

The switch graph is unweighted, so the "Dijkstra" of the paper reduces to
BFS; what matters is the *tie-breaking policy*, which is exactly the knob
the paper turns:

- ``tie="min"`` reproduces the textbook algorithm's bias: neighbours are
  explored in increasing node-id order, so among equal-length paths the one
  through the smallest ids wins (the paper's "vanilla" behaviour that causes
  the Figure 3(a) pathology).
- ``tie="random"`` is the randomized variant: the path is sampled by a
  random backwalk over the BFS distance field, choosing uniformly among
  valid predecessors at every step (the paper's randomized Dijkstra).

Both honour banned nodes and banned *directed* edges, which is what Yen's
algorithm and the Remove-Find edge-disjoint method need.
"""

from __future__ import annotations

from collections import deque
from typing import AbstractSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["shortest_path", "bfs_levels"]

_EMPTY: frozenset = frozenset()


def bfs_levels(
    adj: Sequence[Sequence[int]],
    source: int,
    banned_nodes: AbstractSet[int] = _EMPTY,
    banned_edges: AbstractSet[Tuple[int, int]] = _EMPTY,
) -> np.ndarray:
    """BFS hop distances from ``source`` honouring bans (-1 = unreachable).

    ``banned_edges`` contains *directed* pairs; an undirected ban needs both
    orientations.
    """
    n = len(adj)
    dist = np.full(n, -1, dtype=np.int64)
    if source in banned_nodes:
        return dist
    dist[source] = 0
    queue = deque([source])
    check_edges = bool(banned_edges)
    while queue:
        u = queue.popleft()
        du = dist[u] + 1
        for v in adj[u]:
            if dist[v] >= 0 or v in banned_nodes:
                continue
            if check_edges and (u, v) in banned_edges:
                continue
            dist[v] = du
            queue.append(v)
    return dist


def shortest_path(
    adj: Sequence[Sequence[int]],
    source: int,
    destination: int,
    *,
    tie: str = "min",
    rng: SeedLike = None,
    banned_nodes: AbstractSet[int] = _EMPTY,
    banned_edges: AbstractSet[Tuple[int, int]] = _EMPTY,
) -> Optional[List[int]]:
    """One shortest path from ``source`` to ``destination`` (or ``None``).

    Parameters
    ----------
    tie:
        ``"min"`` — deterministic, biased toward small node ids (vanilla);
        ``"random"`` — uniform choice among predecessors at each backwalk
        step (randomized variant).
    rng:
        Seed or generator; only consulted when ``tie == "random"``.
    banned_nodes / banned_edges:
        Nodes that may not appear and directed edges that may not be
        traversed.  ``source``/``destination`` must not be banned for a path
        to exist.
    """
    if tie not in ("min", "random"):
        raise ConfigurationError(f'tie must be "min" or "random", got {tie!r}')
    if source == destination:
        return None if source in banned_nodes else [source]
    if source in banned_nodes or destination in banned_nodes:
        return None

    dist = bfs_levels(adj, source, banned_nodes, banned_edges)
    if dist[destination] < 0:
        return None

    # Backwalk from the destination: at node v pick a predecessor u with
    # dist[u] == dist[v] - 1 and a usable edge u -> v.
    check_edges = bool(banned_edges)
    generator = ensure_rng(rng) if tie == "random" else None
    path = [destination]
    v = destination
    while v != source:
        target = dist[v] - 1
        candidates = []
        for u in adj[v]:
            if dist[u] != target or u in banned_nodes:
                continue
            if check_edges and (u, v) in banned_edges:
                continue
            if tie == "min":
                # adj is sorted, so the first candidate is the smallest id.
                candidates.append(u)
                break
            candidates.append(u)
        if not candidates:  # pragma: no cover - dist field guarantees one
            return None
        if tie == "min":
            u = candidates[0]
        else:
            u = int(candidates[int(generator.integers(len(candidates)))])
        path.append(u)
        v = u
    path.reverse()
    return path
