"""Array-native fast core of the flit-level simulator.

:class:`FastSimulator` is a drop-in engine for
:class:`~repro.netsim.simulator.Simulator` (selected by
``SimConfig.engine``, the default) that keeps the exact four-phase router
semantics — hop-indexed VC ladder, credit-based flow control, separable
round-robin output arbitration with input speedup — but holds all
per-packet and per-buffer state in preallocated flat lists instead of
Python objects:

- **structure-of-arrays packet store** — every :class:`Packet` field is a
  column indexed by a recycled packet id, so the hot loop never allocates
  or touches an object;
- **CSR route tables** — each distinct switch path is flattened once into
  parallel per-hop arrays (output port, downstream flat buffer index,
  directed link id), shared across every run on the same
  :class:`~repro.core.cache.PathCache`;
- **ring-buffer VC FIFOs** — one flat list of ``n_bufs * vc_buffer``
  slots with head/length columns replaces the per-buffer deques;
- **calendar queue** — arrivals always land exactly ``channel_latency``
  cycles ahead, so ``channel_latency + 1`` circular per-cycle buckets
  replace the global heap: O(arrivals) per cycle, no heap churn.

The core reproduces the reference engine *exactly*: it draws the RNG in
the same order (per-mechanism path choice included), emits trace /
time-series records in the same order, and mirrors the path-cache
hit/miss counters — the cross-engine equivalence suite pins
byte-identical :class:`~repro.netsim.simulator.SimResult` samples and
telemetry artifacts for all six mechanisms.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Tuple

import numpy as np

from repro.core.cache import PathCache
from repro.netsim.config import SimConfig
from repro.netsim.network import NetworkWiring
from repro.netsim.simulator import PatternTraffic, Simulator, UniformTraffic
from repro.obs import metrics
from repro.obs import trace as obs_trace
from repro.topology.jellyfish import Jellyfish
from repro.utils.rng import SeedLike

__all__ = ["FastSimulator", "draw_batch"]

Nodes = Tuple[int, ...]


def draw_batch(rng: np.random.Generator, bounds: List[int]) -> List[int]:
    """Exact replay of ``[int(rng.integers(r)) for r in bounds]``.

    numpy's ``Generator.integers`` with a bound below 2**32 samples by
    Lemire rejection on a 32-bit chunk stream: each 64-bit PCG word is
    split low half first, and an unused half persists across calls in
    the generator's ``has_uint32``/``uinteger`` buffer.  Replaying
    that algorithm over one ``random_raw`` batch produces the same
    values and leaves the generator in the same state (buffer
    included) at a third of the per-draw cost; the cross-engine
    equivalence suites (serial and batched) pin both.  Bounds of 1 draw
    nothing, exactly like the scalar call.
    """
    bg = rng.bit_generator
    st = bg.state
    has = 1 if st["has_uint32"] else 0
    b = np.array(bounds, dtype=np.uint64)
    draw_mask = b > np.uint64(1)
    need_total = int(draw_mask.sum())
    if need_total == 0:
        return [0] * len(bounds)
    need = need_total - has
    if need <= 0:
        # A single draw served from the buffered half-word: the
        # vectorized path has nothing to fetch, replay it scalar.
        return _draw_batch_slow(rng, bounds, [st["uinteger"]], False)
    words = bg.random_raw((need + 1) // 2)
    chunks = np.empty(has + 2 * len(words), dtype=np.uint64)
    if has:
        chunks[0] = st["uinteger"]
    chunks[has::2] = words & np.uint64(0xFFFFFFFF)
    chunks[has + 1 :: 2] = words >> np.uint64(32)
    rs = b[draw_mask] if need_total != len(bounds) else b
    m = chunks[:need_total] * rs
    t = (np.uint64(4294967296) - rs) % rs
    if ((m & np.uint64(0xFFFFFFFF)) < t).any():
        # A Lemire rejection (probability ~r/2**32 per draw): replay
        # the whole batch scalar over the already-fetched chunks.
        return _draw_batch_slow(rng, bounds, chunks.tolist(), True)
    st = bg.state  # re-read: random_raw advanced the counter
    st["has_uint32"] = 1 if need_total < len(chunks) else 0
    # numpy leaves the last buffered half in ``uinteger`` even after
    # consuming it; mirror that so states stay bit-equal.
    st["uinteger"] = int(chunks[-1])
    bg.state = st
    drawn = (m >> np.uint64(32)).tolist()
    if need_total == len(bounds):
        return drawn
    vals = [0] * len(bounds)
    vi = 0
    for i, r in enumerate(bounds):
        if r > 1:
            vals[i] = drawn[vi]
            vi += 1
    return vals


def _draw_batch_slow(
    rng: np.random.Generator, bounds: List[int], chunks: List[int],
    fetched: bool,
) -> List[int]:
    """Scalar Lemire replay over ``chunks`` (already fetched words).

    The exact algorithm ``Generator.integers`` runs, draw by draw;
    the vectorized :func:`draw_batch` delegates here when a rejection
    fires or the whole batch fits in the buffered half-word.
    """
    bg = rng.bit_generator
    vals = []
    append = vals.append
    n_chunks = len(chunks)
    ci = 0
    for r in bounds:
        if r <= 1:
            append(0)
            continue
        t = (4294967296 - r) % r
        while True:
            if ci == n_chunks:
                # A Lemire rejection overran the batch (probability
                # ~r/2**32 per draw) — extend one word at a time.
                fetched = True
                w = int(bg.random_raw())
                chunks.append(w & 0xFFFFFFFF)
                chunks.append(w >> 32)
                n_chunks += 2
            m = chunks[ci] * r
            ci += 1
            if (m & 0xFFFFFFFF) >= t:
                append(m >> 32)
                break
    st = bg.state
    st["has_uint32"] = 1 if ci < n_chunks else 0
    if fetched:
        # numpy leaves the last buffered half in ``uinteger`` even
        # after consuming it; mirror that so states stay bit-equal.
        st["uinteger"] = chunks[-1]
    bg.state = st
    return vals


class _RouteTables:
    """Per-cache CSR route core, independent of the VC count.

    A route is a switch path flattened to per-hop parallel arrays; the
    per-pair records additionally cache what the native mechanism
    implementations need (hop counts, link-id tuples for occupancy
    estimates, the canonical tie-break rank).  The port mapping of a hop
    does not depend on how many VCs the run uses, so one core per
    :class:`~repro.core.cache.PathCache` serves every engine and every
    mechanism: the only VC-dependent column (the downstream flat buffer
    index) lives in thin per-``n_vcs`` :class:`_FlatTables` views derived
    from ``rf_slot``/``rf_vc``.
    """

    __slots__ = (
        "wiring", "n_switches", "n_ports",
        "route_ids", "r_nodes", "r_off", "r_hops",
        "rf_out", "rf_slot", "rf_vc", "rf_link", "pair",
    )

    def __init__(self, wiring: NetworkWiring, n_switches: int):
        self.wiring = wiring
        self.n_switches = n_switches
        self.n_ports = wiring.n_ports
        self.route_ids: Dict[Nodes, int] = {}
        self.r_nodes: List[Nodes] = []
        self.r_off: List[int] = []    # offset into the rf_* arrays
        self.r_hops: List[int] = []   # switch-to-switch hop count
        self.rf_out: List[int] = []   # output port at hop i
        self.rf_slot: List[int] = []  # downstream (switch, input port) slot
        self.rf_vc: List[int] = []    # downstream VC (the VC ladder: i+1)
        self.rf_link: List[int] = []  # directed link id
        # src_sw * n_switches + dst_sw -> (k, rids, hops, links, rank);
        # the flat int key hashes cheaper than a tuple on the hot path.
        self.pair: Dict[int, tuple] = {}

    def add_route(self, nodes: Nodes) -> int:
        rid = self.route_ids.get(nodes)
        if rid is not None:
            return rid
        w = self.wiring
        port_of, peer, link_of = w.port_of, w.peer_port, w.link_of
        n_ports = self.n_ports
        out, slot, vc, lnk = self.rf_out, self.rf_slot, self.rf_vc, self.rf_link
        rid = len(self.r_off)
        self.r_off.append(len(out))
        self.r_hops.append(len(nodes) - 1)
        self.r_nodes.append(nodes)
        for i in range(len(nodes) - 1):
            u, v = nodes[i], nodes[i + 1]
            p = port_of[u][v]
            out.append(p)
            # A flit forwarded at hop i lands in the downstream switch's
            # (peer input port, VC i+1) buffer — the VC ladder.  The flat
            # buffer index is slot * n_vcs + vc; views bake in n_vcs.
            slot.append(v * n_ports + peer[u][p])
            vc.append(i + 1)
            lnk.append(link_of[u][p])
        self.route_ids[nodes] = rid
        return rid

    def pair_record(self, src_sw: int, dst_sw: int, ps) -> tuple:
        key = src_sw * self.n_switches + dst_sw
        rec = self.pair.get(key)
        if rec is None:
            rids = [self.add_route(p.nodes) for p in ps]
            hops = [p.hops for p in ps]
            links = [
                tuple(
                    self.rf_link[self.r_off[r]: self.r_off[r] + self.r_hops[r]]
                )
                for r in rids
            ]
            # Canonical (length, nodes) order of the candidates, for the
            # KSP-adaptive unbiased tie-break.
            order = sorted(
                range(len(rids)),
                key=lambda t: (len(ps[t].nodes), ps[t].nodes),
            )
            rank = [0] * len(rids)
            for m, t in enumerate(order):
                rank[t] = m
            rec = (ps.k, rids, hops, links, rank)
            self.pair[key] = rec
        return rec


class _FlatTables:
    """A per-``n_vcs`` view over a cache's shared :class:`_RouteTables`.

    Every column except ``rf_nxt`` (the downstream flat buffer index,
    which bakes in the VC stride) is a shared reference into the core —
    routes and pair records added through any view, any engine, any run
    are built exactly once per cache.  ``rf_nxt`` is derived as
    ``rf_slot * n_vcs + rf_vc`` and extended lazily when the core grows;
    hot loops hold the list object, which is append-only.
    """

    __slots__ = (
        "core", "wiring", "n_vcs", "stride_switch", "n_switches",
        "route_ids", "r_nodes", "r_off", "r_hops",
        "rf_out", "rf_nxt", "rf_link", "pair",
    )

    def __init__(self, core: _RouteTables, n_vcs: int, stride_switch: int):
        self.core = core
        self.wiring = core.wiring
        self.n_vcs = n_vcs
        self.stride_switch = stride_switch
        self.n_switches = core.n_switches
        self.route_ids = core.route_ids
        self.r_nodes = core.r_nodes
        self.r_off = core.r_off
        self.r_hops = core.r_hops
        self.rf_out = core.rf_out
        self.rf_link = core.rf_link
        self.pair = core.pair
        self.rf_nxt: List[int] = []   # downstream flat buffer index
        self._sync()

    def _sync(self) -> None:
        slot, vc = self.core.rf_slot, self.core.rf_vc
        nxt, n_vcs = self.rf_nxt, self.n_vcs
        for j in range(len(nxt), len(slot)):
            nxt.append(slot[j] * n_vcs + vc[j])

    def add_route(self, nodes: Nodes) -> int:
        rid = self.core.add_route(nodes)
        if len(self.rf_nxt) != len(self.core.rf_slot):
            self._sync()
        return rid

    def pair_record(self, src_sw: int, dst_sw: int, ps) -> tuple:
        rec = self.core.pair_record(src_sw, dst_sw, ps)
        if len(self.rf_nxt) != len(self.core.rf_slot):
            self._sync()
        return rec


def _route_core_for(paths: PathCache, wiring: NetworkWiring,
                    n_switches: int) -> _RouteTables:
    """The one shared CSR route core of ``paths``."""
    core = paths.__dict__.get("_route_core")
    if core is None:
        core = paths.__dict__["_route_core"] = _RouteTables(
            wiring, n_switches
        )
    return core


def _tables_for(paths: PathCache, wiring: NetworkWiring, n_vcs: int,
                stride_switch: int, n_switches: int) -> _FlatTables:
    """The route-table view of ``paths`` for one VC-stride layout."""
    tabs = paths.__dict__.get("_fastcore_tables")
    if tabs is None:
        tabs = paths.__dict__["_fastcore_tables"] = {}
    found = tabs.get(n_vcs)
    if found is None:
        core = _route_core_for(paths, wiring, n_switches)
        found = tabs[n_vcs] = _FlatTables(core, n_vcs, stride_switch)
    return found


class FastSimulator(Simulator):
    """The array-native engine (``SimConfig.engine == "fast"``).

    Inherits run control (warmup, sampling, steady state, windows, drain,
    metrics publication) from :class:`Simulator` and replaces the three
    per-cycle phases that dominate the wall clock.
    """

    engine_name = "fast"

    def __init__(
        self,
        topology: Jellyfish,
        paths: PathCache,
        mechanism: str,
        traffic: UniformTraffic | PatternTraffic,
        injection_rate: float,
        config: SimConfig = SimConfig(),
        seed: SeedLike = 0,
    ):
        super().__init__(
            topology, paths, mechanism, traffic, injection_rate, config, seed
        )
        n_bufs = topology.n_switches * self._stride_switch
        cap = config.vc_buffer
        self._cap = cap
        # Ring-buffer FIFOs: one flat slot array + head/length columns.
        self._fifo: List[int] = [0] * (n_bufs * cap)
        self._fhead: List[int] = [0] * n_bufs
        self._flen: List[int] = [0] * n_bufs
        # Head-of-line request memo per buffer: the head packet's output
        # port and downstream buffer (-1 for ejection), refreshed only
        # when the head changes — allocation then reads two columns
        # instead of re-deriving the request every cycle.
        self._req_out: List[int] = [0] * n_bufs
        self._req_nxt: List[int] = [0] * n_bufs
        self._req_link: List[int] = [0] * n_bufs
        # Input port of each flat buffer index (arbitration speedup test).
        self._inport: List[int] = [
            (f % self._stride_switch) // self.n_vcs for f in range(n_bufs)
        ]

        # Calendar queue: every arrival is scheduled exactly
        # channel_latency ahead, so latency+1 circular buckets suffice and
        # bucket append order reproduces the reference heap's pop order.
        self._calP = config.channel_latency + 1
        self._cal: List[List[int]] = [[] for _ in range(self._calP)]

        # Structure-of-arrays packet store (columns indexed by packet id,
        # ids recycled through a freelist).
        self._pk_rid: List[int] = []   # route id (CSR tables)
        self._pk_hop: List[int] = []   # current hop / VC index
        self._pk_t0: List[int] = []    # source-queue entry cycle
        self._pk_link: List[int] = []  # link last travelled (-1: from host)
        self._pk_dst: List[int] = []   # destination host
        self._pk_tr: List[int] = []    # flight-recorder id (-1: untraced)
        self._pk_dest: List[int] = []  # scheduled target buffer (-1: eject)
        # Source host; maintained only under flowstats capture (the only
        # reader), so the off path never grows the column.
        self._pk_src: List[int] = []
        self._pk_free: List[int] = []

        # Host lookup tables.
        n_hosts = topology.n_hosts
        wiring = self.wiring
        self._host_sw: List[int] = [int(x) for x in self._switch_of_host]
        self._host_inj: List[int] = [
            wiring.injection_port(h) for h in range(n_hosts)
        ]
        self._host_buf: List[int] = [
            self._host_sw[h] * self._stride_switch
            + self._host_inj[h] * self.n_vcs
            for h in range(n_hosts)
        ]
        self._eject_of: List[int] = [
            wiring.ejection_port(h) for h in range(n_hosts)
        ]

        self._t = _tables_for(
            paths, wiring, self.n_vcs, self._stride_switch,
            topology.n_switches,
        )
        self._n_sw = topology.n_switches

        # Conservation counters (drain polls in_flight every cycle).
        self._n_sourced = 0
        self._n_flying = 0
        self._n_buffered = 0

        # Measured link-flit tallies as a plain list on the hot path
        # (Simulator.run() converts when computing utilisation).
        self._link_flits = [0] * topology.n_switch_links

        # Allocation scratch, reused across switches and cycles: per-port
        # candidate lists plus the insertion order of requested ports.
        self._port_cands: List[List[int]] = [[] for _ in range(self.n_ports)]
        self._touched_ports: List[int] = []
        # Per-input-port grants this switch/cycle (input-speedup cap);
        # reset via the winner list instead of reallocating per switch.
        self._granted_in: List[int] = [0] * self.n_ports
        self._grant_ins: List[int] = []

        # Native mechanism dispatch.  Mechanisms without an array-native
        # implementation (vanilla UGAL's composite Valiant routes, or any
        # future registry entry) fall back to the mechanism object, which
        # must then see the live occupancy array.
        natives = {
            "sp": self._choose_sp,
            "random": self._choose_random,
            "round_robin": self._choose_round_robin,
            "ksp_ugal": self._choose_ksp_ugal,
            "ksp_adaptive": self._choose_ksp_adaptive,
        }
        native = natives.get(self.mechanism.name)
        if native is None:
            self._choose_rid = self._choose_generic
            self._occ = self.occupancy  # live numpy view for the mechanism
        else:
            self._choose_rid = native
            self._occ = [0] * topology.n_links
        self._est_first = config.adaptive_estimate == "first"
        self._cl = config.channel_latency
        self._rr_flow: Dict[Tuple[int, int], int] = {}
        # Active metrics registry, re-read once per launch cycle so the
        # per-choose cache-hit mirroring skips the module-global lookup.
        self._reg = None
        # Batched-draw launch plan.  Scalar ``Generator.integers`` calls
        # cost ~1.4us each in interpreter/dispatch overhead, so for the
        # mechanisms whose per-choose draw pattern is known up front the
        # launch phase collects every bound of the cycle, replays numpy's
        # bounded-integer algorithm (32-bit Lemire rejection over the
        # low-half-first chunk stream, persistent half-word buffer) on one
        # ``random_raw`` batch, and restores the generator's buffer state
        # — value-for-value and state-for-state identical to the scalar
        # calls (see _draw_batch).  ``_ndraw`` is the draws per multi-path
        # choose; ``_skip_k1`` mirrors which mechanisms skip the draw
        # entirely for single-path pairs.
        if self.mechanism.name == "ksp_adaptive":
            self._ndraw, self._skip_k1, self._bnd_off = 2, True, 0
            self._bchoose = self._bchoose_ksp_adaptive
        elif self.mechanism.name == "ksp_ugal":
            # One draw per multi-path choose, bound k - 1 (the non-minimal
            # challenger index).
            self._ndraw, self._skip_k1, self._bnd_off = 1, True, 1
            self._bchoose = self._bchoose_ksp_ugal
        elif self.mechanism.name == "random":
            self._ndraw, self._skip_k1, self._bnd_off = 1, False, 0
            self._bchoose = self._bchoose_random
        else:
            self._ndraw, self._skip_k1, self._bnd_off = 0, True, 0
            self._bchoose = None

    # ------------------------------------------------------------- phases
    def _process_arrivals(self, now: int) -> None:
        bucket = self._cal[now % self._calP]
        if not bucket:
            return
        cfg = self.config
        tr = self._trace
        track = self._track_lat
        pk_dest, pk_t0 = self._pk_dest, self._pk_t0
        pk_tr, pk_dst = self._pk_tr, self._pk_dst
        pk_rid, pk_hop = self._pk_rid, self._pk_hop
        fifo, fhead, flen, cap = self._fifo, self._fhead, self._flen, self._cap
        req_out, req_nxt, req_link = self._req_out, self._req_nxt, self._req_link
        tables = self._t
        r_off, r_hops = tables.r_off, tables.r_hops
        rf_out, rf_nxt, rf_link = tables.rf_out, tables.rf_nxt, tables.rf_link
        eject_of = self._eject_of
        stride = self._stride_switch
        n_vcs = self.n_vcs
        nonempty = self.nonempty
        ms = self._measure_start
        mc = cfg.measure_cycles
        sc = cfg.sample_cycles
        sums, counts = self._sample_sums, self._sample_counts
        lats = self._latencies
        fs_on = self._fs is not None
        if fs_on:
            pk_src, fs_pairs, nh = self._pk_src, self._fs_pairs, self._fs_nh
        host_sw = self._host_sw
        freelist = self._pk_free
        delivered = 0
        enqueued = 0
        lat_total = 0
        if tr is None:
            # Untraced fast loop: identical bookkeeping, no per-packet
            # trace checks.
            for pid in bucket:
                idx = pk_dest[pid]
                if idx < 0:
                    # Ejection: the packet reached its host.
                    delivered += 1
                    lat = now - pk_t0[pid]
                    if track:
                        lat_total += lat
                    t = now - ms
                    if 0 <= t < mc:
                        s = t // sc
                        sums[s] += lat
                        counts[s] += 1
                        lats.append(lat)
                        if fs_on:
                            fs_pairs.append(pk_src[pid] * nh + pk_dst[pid])
                    freelist.append(pid)
                else:
                    length = flen[idx]
                    pos = fhead[idx] + length
                    if pos >= cap:
                        pos -= cap
                    fifo[idx * cap + pos] = pid
                    flen[idx] = length + 1
                    enqueued += 1
                    if not length:
                        nonempty[idx // stride].add(idx)
                        rid = pk_rid[pid]
                        hop = pk_hop[pid]
                        if hop < r_hops[rid]:
                            base = r_off[rid] + hop
                            req_out[idx] = rf_out[base]
                            req_nxt[idx] = rf_nxt[base]
                            req_link[idx] = rf_link[base]
                        else:
                            req_out[idx] = eject_of[pk_dst[pid]]
                            req_nxt[idx] = -1
        else:
            for pid in bucket:
                idx = pk_dest[pid]
                if idx < 0:
                    # Ejection: the packet reached its host.
                    delivered += 1
                    lat = now - pk_t0[pid]
                    if track:
                        lat_total += lat
                    t = now - ms
                    if 0 <= t < mc:
                        s = t // sc
                        sums[s] += lat
                        counts[s] += 1
                        lats.append(lat)
                        if fs_on:
                            fs_pairs.append(pk_src[pid] * nh + pk_dst[pid])
                    if pk_tr[pid] >= 0:
                        tr.event(
                            pk_tr[pid], self._trace_run, obs_trace.EV_EJECT,
                            now, switch=host_sw[pk_dst[pid]],
                        )
                        tr.finish(pk_tr[pid], now)
                    freelist.append(pid)
                else:
                    length = flen[idx]
                    pos = fhead[idx] + length
                    if pos >= cap:
                        pos -= cap
                    fifo[idx * cap + pos] = pid
                    flen[idx] = length + 1
                    enqueued += 1
                    if not length:
                        nonempty[idx // stride].add(idx)
                        rid = pk_rid[pid]
                        hop = pk_hop[pid]
                        if hop < r_hops[rid]:
                            base = r_off[rid] + hop
                            req_out[idx] = rf_out[base]
                            req_nxt[idx] = rf_nxt[base]
                            req_link[idx] = rf_link[base]
                        else:
                            req_out[idx] = eject_of[pk_dst[pid]]
                            req_nxt[idx] = -1
                    if pk_tr[pid] >= 0:
                        rem = idx % stride
                        tr.event(
                            pk_tr[pid], self._trace_run,
                            obs_trace.EV_HOP_ENQUEUE, now, switch=idx // stride,
                            port=rem // n_vcs, vc=rem % n_vcs,
                        )
        n = len(bucket)
        bucket.clear()
        self.delivered += delivered
        self._n_flying -= n
        self._n_buffered += enqueued
        if track:
            self._lat_total += lat_total

    def _inject(self, now: int) -> None:
        before = self.injected
        super()._inject(now)
        self._n_sourced += self.injected - before

    def _draw_batch(self, bounds: List[int]) -> List[int]:
        """Batched RNG replay on this run's generator (see :func:`draw_batch`)."""
        return draw_batch(self.rng, bounds)

    def _launch_batched(self, now: int) -> bool:
        """Untraced launch with the cycle's RNG draws batched up front.

        Returns False (no state mutated) when some pair's record is not
        built yet — the scalar path then materialises it through the real
        ``paths.get``, keeping the hit/miss mirroring exact.
        """
        free = self.free
        host_buf, host_sw = self._host_buf, self._host_sw
        pair_get = self._t.pair.get
        n_sw = self._n_sw
        ndraw = self._ndraw
        skip_k1 = self._skip_k1
        bnd_off = self._bnd_off
        launchers = []
        lapp = launchers.append
        bounds: List[int] = []
        bapp = bounds.append
        ls_on = self._ls is not None
        ls_stalled: List[int] = []
        stalls = 0
        for h, q in self.source_q.items():
            if not q:
                continue
            if free[host_buf[h]] <= 0:
                stalls += 1
                if ls_on:
                    # Deferred: the scan may still bail out with no state
                    # mutated when a pair record is cold.
                    ls_stalled.append(h)
                continue
            rec = pair_get(host_sw[h] * n_sw + host_sw[q[0][1]])
            if rec is None:
                return False
            k = rec[0]
            if k > 1:
                if ndraw == 2:
                    bapp(k)
                    bapp(k - 1)
                else:
                    bapp(k - bnd_off)
            elif not skip_k1:
                bapp(1)
            lapp((h, q, rec))
        if not launchers:
            self.credit_stalls += stalls
            if ls_stalled:
                ls_stall = self._ls_stall
                inj_base = self._inj_link_base
                for h in ls_stalled:
                    ls_stall[inj_base + h] += 1
            return True
        vals = self._draw_batch(bounds) if bounds else ()
        launched = len(launchers)
        # Every pre-scanned record is warmed, so each launch mirrors one
        # reference-engine cache hit; tally them in one shot.
        self.paths.hits += launched
        reg = self._reg
        if reg is not None:
            reg.counter("core.cache.hit").inc(launched)
        bchoose = self._bchoose
        fs_on = self._fs is not None
        pk_src = self._pk_src
        pk_rid, pk_hop, pk_t0 = self._pk_rid, self._pk_hop, self._pk_t0
        pk_link, pk_dst = self._pk_link, self._pk_dst
        pk_tr, pk_dest = self._pk_tr, self._pk_dest
        freelist = self._pk_free
        bucket = self._cal[(now + self._cl) % self._calP]
        if ls_on:
            ls_fwd = self._ls_fwd
            inj_base = self._inj_link_base
        c = 0
        for h, q, rec in launchers:
            t_create, dst = q.popleft()
            if rec[0] == 1:
                rid = rec[1][0]
                if not skip_k1:
                    c += 1
            else:
                rid = bchoose(rec, vals, c)
                c += ndraw
            idx = host_buf[h]
            if freelist:
                pid = freelist.pop()
                pk_rid[pid] = rid
                pk_hop[pid] = 0
                pk_t0[pid] = t_create
                pk_link[pid] = -1
                pk_dst[pid] = dst
                pk_tr[pid] = -1
                pk_dest[pid] = idx
                if fs_on:
                    pk_src[pid] = h
            else:
                pid = len(pk_rid)
                pk_rid.append(rid)
                pk_hop.append(0)
                pk_t0.append(t_create)
                pk_link.append(-1)
                pk_dst.append(dst)
                pk_tr.append(-1)
                pk_dest.append(idx)
                if fs_on:
                    pk_src.append(h)
            free[idx] -= 1
            if ls_on:
                ls_fwd[inj_base + h] += 1
            bucket.append(pid)
        self.credit_stalls += stalls
        if ls_stalled:
            ls_stall = self._ls_stall
            inj_base = self._inj_link_base
            for h in ls_stalled:
                ls_stall[inj_base + h] += 1
        self._n_flying += launched
        self._n_sourced -= launched
        return True

    def _bchoose_random(self, rec: tuple, vals: List[int], c: int) -> int:
        return rec[1][vals[c]]

    def _bchoose_ksp_ugal(self, rec: tuple, vals: List[int], c: int) -> int:
        k, rids, hops, links, _rank = rec
        j = 1 + vals[c]
        occ = self._occ
        hi, hj = hops[0], hops[j]
        if self._est_first:
            ea = occ[links[0][0]] * hi
            eb = occ[links[j][0]] * hj
        else:
            cl = self._cl
            ea = hi * cl
            for link in links[0]:
                ea += occ[link]
            eb = hj * cl
            for link in links[j]:
                eb += occ[link]
        if ea != eb:
            return rids[0] if ea < eb else rids[j]
        return rids[0] if hi <= hj else rids[j]

    def _bchoose_ksp_adaptive(self, rec: tuple, vals: List[int], c: int) -> int:
        k, rids, hops, links, rank = rec
        i = vals[c]
        j = vals[c + 1]
        if j >= i:
            j += 1
        if rank[i] > rank[j]:
            i, j = j, i
        occ = self._occ
        hi, hj = hops[i], hops[j]
        if self._est_first:
            ea = occ[links[i][0]] * hi
            eb = occ[links[j][0]] * hj
        else:
            cl = self._cl
            ea = hi * cl
            for link in links[i]:
                ea += occ[link]
            eb = hj * cl
            for link in links[j]:
                eb += occ[link]
        if ea != eb:
            return rids[i] if ea < eb else rids[j]
        return rids[i] if hi <= hj else rids[j]

    def _launch_from_sources(self, now: int) -> None:
        if not self._n_sourced:
            return
        self._reg = metrics._active
        tr = self._trace
        if tr is None and self._ndraw and self._launch_batched(now):
            return
        tracing = tr is not None
        free = self.free
        host_buf, host_sw, host_inj = self._host_buf, self._host_sw, self._host_inj
        choose = self._choose_rid
        pk_rid, pk_hop, pk_t0 = self._pk_rid, self._pk_hop, self._pk_t0
        pk_link, pk_dst = self._pk_link, self._pk_dst
        pk_tr, pk_dest = self._pk_tr, self._pk_dest
        freelist = self._pk_free
        bucket = self._cal[(now + self._cl) % self._calP]
        fs_on = self._fs is not None
        pk_src = self._pk_src
        ls_on = self._ls is not None
        if ls_on:
            ls_fwd = self._ls_fwd
            ls_stall = self._ls_stall
            inj_base = self._inj_link_base
        stalls = 0
        launched = 0
        for h, q in self.source_q.items():
            if not q:
                continue
            idx = host_buf[h]
            if free[idx] <= 0:
                stalls += 1
                if ls_on:
                    ls_stall[inj_base + h] += 1
                if tracing and q[0][-1] >= 0:
                    tr.event(
                        q[0][-1], self._trace_run, obs_trace.EV_CREDIT_STALL,
                        now, switch=host_sw[h], port=host_inj[h], vc=0,
                    )
                continue
            if tracing:
                t_create, dst, uid = q.popleft()
            else:
                t_create, dst = q.popleft()
                uid = -1
            rid = choose(h, dst, host_sw[h], host_sw[dst])
            if freelist:
                pid = freelist.pop()
                pk_rid[pid] = rid
                pk_hop[pid] = 0
                pk_t0[pid] = t_create
                pk_link[pid] = -1
                pk_dst[pid] = dst
                pk_tr[pid] = uid
                pk_dest[pid] = idx
                if fs_on:
                    pk_src[pid] = h
            else:
                pid = len(pk_rid)
                pk_rid.append(rid)
                pk_hop.append(0)
                pk_t0.append(t_create)
                pk_link.append(-1)
                pk_dst.append(dst)
                pk_tr.append(uid)
                pk_dest.append(idx)
                if fs_on:
                    pk_src.append(h)
            if uid >= 0:
                nodes = self._t.r_nodes[rid]
                idx_map = self.paths.path_index_map(host_sw[h], host_sw[dst])
                tr.set_route(uid, idx_map.get(nodes, -1), nodes, now)
                tr.event(
                    uid, self._trace_run, obs_trace.EV_VC_ALLOC, now,
                    switch=host_sw[h], port=host_inj[h], vc=0,
                )
            free[idx] -= 1
            if ls_on:
                ls_fwd[inj_base + h] += 1
            bucket.append(pid)
            launched += 1
        self.credit_stalls += stalls
        self._n_flying += launched
        self._n_sourced -= launched

    def _allocate(self, now: int) -> None:
        if self._trace is None:
            self._allocate_fast(now)
        else:
            self._allocate_traced(now)

    def _allocate_fast(self, now: int) -> None:
        """Untraced separable allocation (no per-flit trace checks)."""
        cfg = self.config
        free = self.free
        rr_ptr = self.rr_ptr
        stride = self._stride_switch
        n_ports = self.n_ports
        speedup = cfg.input_speedup
        bucket = self._cal[(now + self._cl) % self._calP]
        fifo, fhead, flen, cap = self._fifo, self._fhead, self._flen, self._cap
        req_out, req_nxt, req_link = self._req_out, self._req_nxt, self._req_link
        inport = self._inport
        pk_rid, pk_hop, pk_link = self._pk_rid, self._pk_hop, self._pk_link
        pk_dest, pk_dst = self._pk_dest, self._pk_dst
        tables = self._t
        r_off, r_hops = tables.r_off, tables.r_hops
        rf_out, rf_nxt, rf_link = tables.rf_out, tables.rf_nxt, tables.rf_link
        eject_of = self._eject_of
        occ = self._occ
        link_flits = self._link_flits
        ts_links = self._ts_link_flits if self._ts is not None else None
        if self._ls is not None:
            ls_fwd = self._ls_fwd
            ls_stall = self._ls_stall
            ej_base = self._ej_link_base
        else:
            ls_fwd = ls_stall = None
        measuring = now >= self._measure_start
        stalls = 0
        forwarded = 0
        granted_total = 0
        pbuf = self._port_cands
        touched = self._touched_ports
        gin = self._granted_in
        gwin = self._grant_ins
        for switch, active in enumerate(self.nonempty):
            if not active:
                continue
            base = switch * stride
            rr_base = switch * n_ports
            # Gather head-of-line requests per output port, skipping flits
            # whose downstream buffer has no credit (sorted buffer order,
            # matching the reference engine's canonical iteration).  The
            # per-port candidate lists and the touched-port order are
            # reused scratch (cleared before leaving the switch).
            for fi in (sorted(active) if len(active) > 1 else active):
                nxt = req_nxt[fi]
                if nxt >= 0 and free[nxt] <= 0:
                    stalls += 1
                    if ls_stall is not None:
                        ls_stall[req_link[fi]] += 1
                    continue
                out_port = req_out[fi]
                cands = pbuf[out_port]
                if not cands:
                    touched.append(out_port)
                cands.append(fi)

            if not touched:
                continue
            for out_port in touched:
                gathered = cands = pbuf[out_port]
                # Rotating-priority (round-robin) arbitration per output.
                rr_key = rr_base + out_port
                ptr = rr_ptr[rr_key]
                if len(cands) > 1 and ptr:
                    # cands was gathered in ascending flat-index order
                    # within this switch, so rotating at the pointer is
                    # the same as sorting by (fi - ptr) % stride.
                    cut = bisect_left(cands, base + ptr)
                    if 0 < cut < len(cands):
                        cands = cands[cut:] + cands[:cut]
                winner = -1
                for fi in cands:
                    in_port = inport[fi]
                    if gin[in_port] >= speedup:
                        continue
                    winner = fi
                    break
                gathered.clear()
                if winner < 0:
                    continue
                gin[in_port] += 1
                gwin.append(in_port)
                rr_ptr[rr_key] = winner - base + 1

                # The granted flit's own request, before the memo is
                # refreshed for the buffer's next head.
                tgt = req_nxt[winner]
                wlink = req_link[winner]
                head = fhead[winner]
                pid = fifo[winner * cap + head]
                length = flen[winner] - 1
                flen[winner] = length
                head += 1
                if head == cap:
                    head = 0
                fhead[winner] = head
                if length:
                    # Refresh the head-of-line request memo for the new head.
                    npid = fifo[winner * cap + head]
                    nrid = pk_rid[npid]
                    nhop = pk_hop[npid]
                    if nhop < r_hops[nrid]:
                        nbase = r_off[nrid] + nhop
                        req_out[winner] = rf_out[nbase]
                        req_nxt[winner] = rf_nxt[nbase]
                        req_link[winner] = rf_link[nbase]
                    else:
                        req_out[winner] = eject_of[pk_dst[npid]]
                        req_nxt[winner] = -1
                else:
                    active.discard(winner)
                free[winner] += 1
                granted_total += 1
                # No need to clear pk_link here: the forward branch
                # overwrites it and launch resets it on packet reuse.
                in_link = pk_link[pid]
                if in_link >= 0:
                    occ[in_link] -= 1

                if tgt < 0:
                    # Ejection to the destination host.
                    if ls_fwd is not None:
                        ls_fwd[ej_base + pk_dst[pid]] += 1
                    pk_dest[pid] = -1
                    bucket.append(pid)
                else:
                    free[tgt] -= 1
                    occ[wlink] += 1
                    forwarded += 1
                    if measuring:
                        link_flits[wlink] += 1
                    if ts_links is not None:
                        ts_links[wlink] += 1
                    if ls_fwd is not None:
                        ls_fwd[wlink] += 1
                    pk_link[pid] = wlink
                    pk_hop[pid] += 1
                    pk_dest[pid] = tgt
                    bucket.append(pid)
            touched.clear()
            if gwin:
                for ip in gwin:
                    gin[ip] = 0
                gwin.clear()
        self.credit_stalls += stalls
        self.flits_forwarded += forwarded
        self._n_flying += granted_total
        self._n_buffered -= granted_total

    def _allocate_traced(self, now: int) -> None:
        """The same allocation with flight-recorder event emission."""
        cfg = self.config
        free = self.free
        rr_ptr = self.rr_ptr
        stride = self._stride_switch
        n_ports = self.n_ports
        speedup = cfg.input_speedup
        bucket = self._cal[(now + self._cl) % self._calP]
        fifo, fhead, flen, cap = self._fifo, self._fhead, self._flen, self._cap
        req_out, req_nxt, req_link = self._req_out, self._req_nxt, self._req_link
        inport = self._inport
        pk_rid, pk_hop, pk_link = self._pk_rid, self._pk_hop, self._pk_link
        pk_dest, pk_tr, pk_dst = self._pk_dest, self._pk_tr, self._pk_dst
        tables = self._t
        r_off, r_hops = tables.r_off, tables.r_hops
        rf_out, rf_nxt, rf_link = tables.rf_out, tables.rf_nxt, tables.rf_link
        eject_of = self._eject_of
        occ = self._occ
        link_flits = self._link_flits
        ts_links = self._ts_link_flits if self._ts is not None else None
        if self._ls is not None:
            ls_fwd = self._ls_fwd
            ls_stall = self._ls_stall
            ej_base = self._ej_link_base
        else:
            ls_fwd = ls_stall = None
        tr = self._trace
        measuring = now >= self._measure_start
        stalls = 0
        forwarded = 0
        granted_total = 0
        pbuf = self._port_cands
        touched = self._touched_ports
        gin = self._granted_in
        gwin = self._grant_ins
        for switch, active in enumerate(self.nonempty):
            if not active:
                continue
            base = switch * stride
            rr_base = switch * n_ports
            for fi in (sorted(active) if len(active) > 1 else active):
                nxt = req_nxt[fi]
                if nxt >= 0 and free[nxt] <= 0:
                    stalls += 1
                    if ls_stall is not None:
                        ls_stall[req_link[fi]] += 1
                    pid = fifo[fi * cap + fhead[fi]]
                    if pk_tr[pid] >= 0:
                        tr.event(
                            pk_tr[pid], self._trace_run,
                            obs_trace.EV_CREDIT_STALL, now, switch=switch,
                            port=req_out[fi], vc=pk_hop[pid],
                        )
                    continue
                out_port = req_out[fi]
                cands = pbuf[out_port]
                if not cands:
                    touched.append(out_port)
                cands.append(fi)

            if not touched:
                continue
            for out_port in touched:
                gathered = cands = pbuf[out_port]
                rr_key = rr_base + out_port
                ptr = rr_ptr[rr_key]
                if len(cands) > 1 and ptr:
                    cut = bisect_left(cands, base + ptr)
                    if 0 < cut < len(cands):
                        cands = cands[cut:] + cands[:cut]
                winner = -1
                for fi in cands:
                    in_port = inport[fi]
                    if gin[in_port] >= speedup:
                        continue
                    winner = fi
                    break
                gathered.clear()
                if winner < 0:
                    continue
                gin[in_port] += 1
                gwin.append(in_port)
                rr_ptr[rr_key] = winner - base + 1

                tgt = req_nxt[winner]
                wlink = req_link[winner]
                head = fhead[winner]
                pid = fifo[winner * cap + head]
                length = flen[winner] - 1
                flen[winner] = length
                head += 1
                if head == cap:
                    head = 0
                fhead[winner] = head
                if length:
                    npid = fifo[winner * cap + head]
                    nrid = pk_rid[npid]
                    nhop = pk_hop[npid]
                    if nhop < r_hops[nrid]:
                        nbase = r_off[nrid] + nhop
                        req_out[winner] = rf_out[nbase]
                        req_nxt[winner] = rf_nxt[nbase]
                        req_link[winner] = rf_link[nbase]
                    else:
                        req_out[winner] = eject_of[pk_dst[npid]]
                        req_nxt[winner] = -1
                else:
                    active.discard(winner)
                free[winner] += 1
                granted_total += 1
                in_link = pk_link[pid]
                if in_link >= 0:
                    occ[in_link] -= 1

                if tgt < 0:
                    # Ejection to the destination host.
                    if ls_fwd is not None:
                        ls_fwd[ej_base + pk_dst[pid]] += 1
                    if pk_tr[pid] >= 0:
                        tr.event(
                            pk_tr[pid], self._trace_run,
                            obs_trace.EV_HOP_DEPART, now, switch=switch,
                            port=out_port, vc=pk_hop[pid],
                        )
                    pk_dest[pid] = -1
                    bucket.append(pid)
                else:
                    free[tgt] -= 1
                    occ[wlink] += 1
                    forwarded += 1
                    if measuring:
                        link_flits[wlink] += 1
                    if ts_links is not None:
                        ts_links[wlink] += 1
                    if ls_fwd is not None:
                        ls_fwd[wlink] += 1
                    if pk_tr[pid] >= 0:
                        tr.event(
                            pk_tr[pid], self._trace_run,
                            obs_trace.EV_HOP_DEPART, now, switch=switch,
                            port=out_port, vc=pk_hop[pid], link=wlink,
                        )
                    pk_link[pid] = wlink
                    pk_hop[pid] += 1
                    pk_dest[pid] = tgt
                    bucket.append(pid)
            touched.clear()
            if gwin:
                for ip in gwin:
                    gin[ip] = 0
                gwin.clear()
        self.credit_stalls += stalls
        self.flits_forwarded += forwarded
        self._n_flying += granted_total
        self._n_buffered -= granted_total

    # -------------------------------------------- native mechanism choice
    # Each implementation mirrors its RoutingMechanism counterpart draw
    # for draw (and calls paths.get for the pair, keeping the path-cache
    # hit/miss tallies identical to the reference engine's).

    def _pair_rec(self, src_sw: int, dst_sw: int) -> tuple:
        rec = self._t.pair.get(src_sw * self._n_sw + dst_sw)
        if rec is None:
            # First use of the pair on these tables: the real get() call
            # (hit or miss, exactly as the reference engine's first choose
            # for the pair would count it).
            return self._t.pair_record(
                src_sw, dst_sw, self.paths.get(src_sw, dst_sw)
            )
        # Record exists, so the pair is warmed: the reference's per-choose
        # paths.get() would be a hit — mirror its tallies without the
        # lookup.
        self.paths.hits += 1
        reg = self._reg
        if reg is not None:
            reg.counter("core.cache.hit").inc()
        return rec

    def _choose_sp(self, h: int, dst: int, sw: int, dsw: int) -> int:
        return self._pair_rec(sw, dsw)[1][0]

    def _choose_random(self, h: int, dst: int, sw: int, dsw: int) -> int:
        rec = self._pair_rec(sw, dsw)
        return rec[1][int(self.rng.integers(rec[0]))]

    def _choose_round_robin(self, h: int, dst: int, sw: int, dsw: int) -> int:
        rec = self._pair_rec(sw, dsw)
        key = (h, dst)
        i = self._rr_flow.get(key, 0)
        self._rr_flow[key] = i + 1
        return rec[1][i % rec[0]]

    def _choose_ksp_ugal(self, h: int, dst: int, sw: int, dsw: int) -> int:
        # _pair_rec and _better_idx inlined: this runs once per launched
        # packet, and the call overhead is measurable at saturation.
        rec = self._t.pair.get(sw * self._n_sw + dsw)
        if rec is None:
            rec = self._t.pair_record(sw, dsw, self.paths.get(sw, dsw))
        else:
            self.paths.hits += 1
            reg = self._reg
            if reg is not None:
                reg.counter("core.cache.hit").inc()
        k, rids, hops, links, _rank = rec
        if k == 1:
            return rids[0]
        j = 1 + int(self.rng.integers(k - 1))
        occ = self._occ
        hi, hj = hops[0], hops[j]
        if self._est_first:
            ea = occ[links[0][0]] * hi
            eb = occ[links[j][0]] * hj
        else:
            cl = self._cl
            ea = hi * cl
            for link in links[0]:
                ea += occ[link]
            eb = hj * cl
            for link in links[j]:
                eb += occ[link]
        if ea != eb:
            return rids[0] if ea < eb else rids[j]
        return rids[0] if hi <= hj else rids[j]

    def _choose_ksp_adaptive(self, h: int, dst: int, sw: int, dsw: int) -> int:
        # _pair_rec and _better_idx inlined (see _choose_ksp_ugal).
        rec = self._t.pair.get(sw * self._n_sw + dsw)
        if rec is None:
            rec = self._t.pair_record(sw, dsw, self.paths.get(sw, dsw))
        else:
            self.paths.hits += 1
            reg = self._reg
            if reg is not None:
                reg.counter("core.cache.hit").inc()
        k, rids, hops, links, rank = rec
        if k == 1:
            return rids[0]
        rng = self.rng
        i = int(rng.integers(k))
        j = int(rng.integers(k - 1))
        if j >= i:
            j += 1
        # Unbiased tie-break: canonical (length, nodes) order first.
        if rank[i] > rank[j]:
            i, j = j, i
        occ = self._occ
        hi, hj = hops[i], hops[j]
        if self._est_first:
            ea = occ[links[i][0]] * hi
            eb = occ[links[j][0]] * hj
        else:
            cl = self._cl
            ea = hi * cl
            for link in links[i]:
                ea += occ[link]
            eb = hj * cl
            for link in links[j]:
                eb += occ[link]
        if ea != eb:
            return rids[i] if ea < eb else rids[j]
        return rids[i] if hi <= hj else rids[j]

    def _choose_generic(self, h: int, dst: int, sw: int, dsw: int) -> int:
        nodes = tuple(self.mechanism.choose(h, dst, sw, dsw))
        tables = self._t
        rid = tables.route_ids.get(nodes)
        if rid is None:
            rid = tables.add_route(nodes)
        return rid

    def _better_idx(self, rec: tuple, i: int, j: int) -> int:
        """Index of the better candidate; ``i`` on ties (cf. ``_better``)."""
        hops, links = rec[2], rec[3]
        occ = self._occ
        hi, hj = hops[i], hops[j]
        if self._est_first:
            ea = occ[links[i][0]] * hi
            eb = occ[links[j][0]] * hj
        else:
            cl = self._cl
            ea = hi * cl
            for link in links[i]:
                ea += occ[link]
            eb = hj * cl
            for link in links[j]:
                eb += occ[link]
        if ea != eb:
            return i if ea < eb else j
        return i if hi <= hj else j

    # ---------------------------------------------------------------- run
    def _occupancy_view(self):
        """Linkstate peak reset reads the live hot-path occupancy list."""
        return self._occ

    def _sync_occupancy(self) -> None:
        """Mirror the hot-path occupancy list into the public array."""
        if self._occ is not self.occupancy:
            self.occupancy[:] = self._occ

    def run(self):
        try:
            return super().run()
        finally:
            self._sync_occupancy()

    def drain(self) -> int:
        try:
            return super().drain()
        finally:
            self._sync_occupancy()

    # ------------------------------------------------------- diagnostics
    def in_flight(self) -> int:
        """Packets inside the network or its queues (conservation checks)."""
        return self._n_buffered + self._n_flying + self._n_sourced
