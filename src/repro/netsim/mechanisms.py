"""Routing mechanisms: which path does each packet take?

Implements the six mechanisms of Section III-B / IV-A.  A mechanism is
consulted once per packet at injection time (source routing) and returns
the switch path the packet will follow:

- ``sp`` — always the minimal path;
- ``random`` — uniform over the pair's ``k`` paths;
- ``round_robin`` — cycles through the pair's paths;
- ``ugal`` (vanilla UGAL) — minimal vs. a random-intermediate non-minimal
  path, whichever has the smaller estimated latency;
- ``ksp_ugal`` — minimal vs. a random *KSP* path, same comparison;
- ``ksp_adaptive`` (the paper's proposal) — two random KSP paths, pick the
  smaller estimate.

The latency estimate is the classic UGAL product ``queue x hops``: the
occupancy of the candidate path's first switch-to-switch channel (queued
downstream plus in flight) times its hop count, with hop count as the
tie-break — equivalent to Booksim's UGAL with zero bias, which is how the
paper configures it.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from repro.core.cache import PathCache
from repro.core.dijkstra import shortest_path
from repro.errors import ConfigurationError
from repro.netsim.network import NetworkWiring

__all__ = [
    "RoutingMechanism",
    "SinglePathMechanism",
    "RandomMechanism",
    "RoundRobinMechanism",
    "VanillaUgalMechanism",
    "KspUgalMechanism",
    "KspAdaptiveMechanism",
    "MECHANISMS",
    "make_mechanism",
]

Nodes = Tuple[int, ...]


class RoutingMechanism:
    """Base class.  Subclasses implement :meth:`choose`.

    Parameters
    ----------
    wiring:
        Port-level topology view (provides occupancy link ids).
    paths:
        The PathCache of the path-selection scheme under test.
    occupancy:
        A live int array indexed by directed link id, maintained by the
        simulator: flits queued at the link's downstream buffer plus flits
        on the wire.  Adaptive mechanisms read it; oblivious ones ignore it.
    rng:
        Generator for the mechanism's own random draws.
    """

    name: str = ""
    #: true when the mechanism consults queue occupancies
    adaptive: bool = False

    def __init__(
        self,
        wiring: NetworkWiring,
        paths: PathCache,
        occupancy: np.ndarray,
        rng: np.random.Generator,
        estimate: str = "path",
        channel_latency: int = 10,
    ):
        if estimate not in ("path", "first"):
            raise ConfigurationError(
                f'estimate must be "path" or "first", got {estimate!r}'
            )
        self.wiring = wiring
        self.paths = paths
        self.occupancy = occupancy
        self.rng = rng
        self.estimate_mode = estimate
        self.channel_latency = channel_latency
        # Memoised link-id tuples per path: the estimate runs per packet,
        # so port/dict lookups must not sit on the hot path.
        self._path_links: Dict[Nodes, Tuple[int, ...]] = {}

    # -- helpers ---------------------------------------------------------
    def _estimate(self, nodes: Nodes) -> float:
        """Estimated packet latency of a candidate path.

        ``"path"`` (default): total queued/in-flight flits along the whole
        path plus the pipeline delay — the "estimated packet latency using
        queue length" the paper describes, available because routes are
        source-routed.  ``"first"``: the classic UGAL-L product
        (first-channel occupancy x hop count), kept for the ablation
        benchmarks.
        """
        hops = len(nodes) - 1
        if hops == 0:
            return 0.0
        links = self._path_links.get(nodes)
        if links is None:
            wiring = self.wiring
            links = tuple(
                wiring.link_of[nodes[i]][wiring.port_of[nodes[i]][nodes[i + 1]]]
                for i in range(hops)
            )
            self._path_links[nodes] = links
        occ = self.occupancy
        if self.estimate_mode == "first":
            return float(occ[links[0]]) * hops
        total = 0
        for link in links:
            total += occ[link]
        return float(total) + hops * self.channel_latency

    def _better(self, a: Nodes, b: Nodes) -> Nodes:
        """The candidate with the smaller (estimate, hops); ``a`` on ties."""
        ea, eb = self._estimate(a), self._estimate(b)
        if (ea, len(a)) <= (eb, len(b)):
            return a
        return b

    def choose(self, src_host: int, dst_host: int, src_sw: int, dst_sw: int) -> Nodes:
        raise NotImplementedError

    def max_route_hops(self) -> int:
        """Upper bound on hops of any path this mechanism can emit.

        The simulator sizes its hop-indexed VC range from this.  The bound
        for KSP-restricted mechanisms is the longest cached path; the
        default conservatively doubles the switch count for composite
        (UGAL) routes.
        """
        return self.wiring.n_switches

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SinglePathMechanism(RoutingMechanism):
    """SP: every packet follows the pair's minimal path."""

    name = "sp"
    adaptive = False

    def choose(self, src_host, dst_host, src_sw, dst_sw) -> Nodes:
        return self.paths.get(src_sw, dst_sw).minimal.nodes


class RandomMechanism(RoutingMechanism):
    """random: uniform over the pair's k paths, per packet."""

    name = "random"
    adaptive = False

    def choose(self, src_host, dst_host, src_sw, dst_sw) -> Nodes:
        ps = self.paths.get(src_sw, dst_sw)
        return ps[int(self.rng.integers(ps.k))].nodes


class RoundRobinMechanism(RoutingMechanism):
    """round-robin: per source-destination pair, paths in rotation."""

    name = "round_robin"
    adaptive = False

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._counters: Dict[Tuple[int, int], int] = {}

    def choose(self, src_host, dst_host, src_sw, dst_sw) -> Nodes:
        ps = self.paths.get(src_sw, dst_sw)
        key = (src_host, dst_host)
        i = self._counters.get(key, 0)
        self._counters[key] = i + 1
        return ps[i % ps.k].nodes


class VanillaUgalMechanism(RoutingMechanism):
    """vanilla-UGAL: minimal vs. random-intermediate non-minimal path.

    The non-minimal candidate concatenates two shortest paths through a
    uniformly random intermediate switch (Valiant-style).  Candidates that
    would revisit a switch are resampled a few times, then the minimal
    path is used — loops would break the hop-indexed VC deadlock scheme.

    Does not rely on the KSP path table: minimal paths come from a private
    shortest-path cache, as in the paper ("does not need to use KSP").
    """

    name = "ugal"
    adaptive = True
    _RESAMPLE = 4

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._sp: Dict[Tuple[int, int], Nodes] = {}

    def _shortest(self, a: int, b: int) -> Nodes:
        key = (a, b)
        found = self._sp.get(key)
        if found is None:
            # The topology's shared kernels reuse per-source BFS fields
            # across destinations (and across the PathCache warm).
            found = tuple(
                shortest_path(self.wiring.topology.kernels, a, b, tie="min")
            )
            self._sp[key] = found
        return found

    def _nonminimal(self, src_sw: int, dst_sw: int) -> Nodes | None:
        n = self.wiring.n_switches
        for _ in range(self._RESAMPLE):
            w = int(self.rng.integers(n))
            if w == src_sw or w == dst_sw:
                continue
            first = self._shortest(src_sw, w)
            second = self._shortest(w, dst_sw)
            combined = first + second[1:]
            if len(set(combined)) == len(combined):
                return combined
        return None

    def choose(self, src_host, dst_host, src_sw, dst_sw) -> Nodes:
        minimal = self._shortest(src_sw, dst_sw)
        if src_sw == dst_sw:
            return minimal
        nonmin = self._nonminimal(src_sw, dst_sw)
        if nonmin is None:
            return minimal
        return self._better(minimal, nonmin)

    def max_route_hops(self) -> int:
        # Two shortest paths back to back; each is at most the diameter.
        from repro.topology.metrics import diameter

        return 2 * max(1, diameter(self.wiring.topology.adjacency))


class KspUgalMechanism(RoutingMechanism):
    """KSP-UGAL: minimal path vs. one random non-minimal KSP path."""

    name = "ksp_ugal"
    adaptive = True

    def choose(self, src_host, dst_host, src_sw, dst_sw) -> Nodes:
        ps = self.paths.get(src_sw, dst_sw)
        if ps.k == 1:
            return ps.minimal.nodes
        nonmin = ps[1 + int(self.rng.integers(ps.k - 1))]
        return self._better(ps.minimal.nodes, nonmin.nodes)

    def max_route_hops(self) -> int:
        return _cached_max_hops(self.paths)


class KspAdaptiveMechanism(RoutingMechanism):
    """KSP-adaptive (the paper's proposal): best of two random KSP paths."""

    name = "ksp_adaptive"
    adaptive = True

    def choose(self, src_host, dst_host, src_sw, dst_sw) -> Nodes:
        ps = self.paths.get(src_sw, dst_sw)
        if ps.k == 1:
            return ps.minimal.nodes
        i = int(self.rng.integers(ps.k))
        j = int(self.rng.integers(ps.k - 1))
        if j >= i:
            j += 1
        a, b = ps[i].nodes, ps[j].nodes
        # Unbiased tie-break between the two random candidates: order them
        # canonically before comparison so neither draw position wins ties.
        if (len(a), a) > (len(b), b):
            a, b = b, a
        return self._better(a, b)

    def max_route_hops(self) -> int:
        return _cached_max_hops(self.paths)


def _cached_max_hops(paths: PathCache) -> int:
    """Longest path currently cached (simulator precomputes the table)."""
    return paths.max_hops()


MECHANISMS: Dict[str, Callable[..., RoutingMechanism]] = {
    cls.name: cls
    for cls in (
        SinglePathMechanism,
        RandomMechanism,
        RoundRobinMechanism,
        VanillaUgalMechanism,
        KspUgalMechanism,
        KspAdaptiveMechanism,
    )
}


def make_mechanism(
    name: str,
    wiring: NetworkWiring,
    paths: PathCache,
    occupancy: np.ndarray,
    rng: np.random.Generator,
    estimate: str = "path",
    channel_latency: int = 10,
) -> RoutingMechanism:
    """Instantiate a routing mechanism by registry name."""
    try:
        cls = MECHANISMS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown routing mechanism {name!r}; choose from {sorted(MECHANISMS)}"
        ) from None
    return cls(
        wiring, paths, occupancy, rng,
        estimate=estimate, channel_latency=channel_latency,
    )
