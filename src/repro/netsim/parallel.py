"""Process-parallel simulation sweeps.

The cycle-level experiments are embarrassingly parallel across
(scheme, mechanism, pattern, rate) cells, and each cell is seconds to
minutes of pure-Python work, so a process pool gives near-linear speedup
on a multicore machine.  This module runs a *grid* of saturation sweeps in
parallel:

- the topology document and the warmed per-scheme path tables are shipped
  **once per worker** through the pool initializer — not once per task —
  so task tuples stay a few hundred bytes and the pool's IPC cost is
  independent of the grid size (Yen's algorithm still runs once, in the
  parent);
- each grid cell gets an independent, deterministic random stream derived
  from (master seed, cell index), so results are identical whatever the
  worker count, chunking, or completion order — including ``processes=1``,
  which runs inline and is what the test suite exercises deterministically.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from contextlib import ExitStack
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.arena import PathArena
from repro.core.cache import PathCache
from repro.errors import ConfigurationError
from repro.netsim.batchcore import (
    BATCHABLE_MECHANISMS,
    BatchLane,
    BatchSimulator,
    lane_vc_count,
)
from repro.netsim.config import SimConfig
from repro.netsim.sweep import saturation_throughput
from repro.netsim.simulator import PatternTraffic
from repro.obs import flowstats as obs_flowstats
from repro.obs import linkstate as obs_linkstate
from repro.obs import metrics
from repro.obs import monitor as obs_monitor
from repro.obs import timeseries as obs_timeseries
from repro.obs import trace as obs_trace
from repro.obs.progress import Progress
from repro.topology.jellyfish import Jellyfish
from repro.topology.serialization import topology_from_dict, topology_to_dict
from repro.traffic.patterns import Pattern

__all__ = ["GridCell", "run_saturation_grid"]


@dataclass(frozen=True)
class GridCell:
    """One completed grid cell: configuration plus measured throughput."""

    scheme: str
    mechanism: str
    pattern_index: int
    throughput: float


# Per-worker state built once by the pool initializer: the rebuilt topology
# and one warmed PathCache per scheme.  The flag records whether the parent
# had telemetry enabled (and the parent's trace / time-series
# configurations, if those recorders are on); cells then run under
# captured registry/recorder instances and ship their snapshots home for
# merging.  ``_GRID_HB`` holds the live monitor's worker-side heartbeater
# (fed by the parent's Manager queue, or its ``post`` callable inline).
_GRID_STATE: List[Optional[Tuple[Jellyfish, Dict[str, PathCache]]]] = [None]
_GRID_OBS: List[bool] = [False]
_GRID_TRACE: List[Optional[dict]] = [None]
_GRID_TS: List[Optional[dict]] = [None]
_GRID_LS: List[Optional[dict]] = [None]
# Flowstats config is an *empty* dict when enabled (the recorder takes no
# parameters), so every check below is ``is None`` — never truthiness.
_GRID_FS: List[Optional[dict]] = [None]
_GRID_HB: List[Optional[obs_monitor.Heartbeater]] = [None]


def _grid_init(topo_doc, k, cache_seed, states, obs_enabled=False,
               trace_cfg=None, ts_cfg=None, ls_cfg=None, fs_cfg=None,
               mon_sink=None) -> None:
    """Pool initializer: rebuild the topology and warmed caches once.

    ``states`` maps scheme -> one of a :class:`PathArena` (inline runs),
    a shared-memory descriptor dict from ``PathArena.to_shm`` (pool
    workers attach the parent's block zero-copy), or a legacy
    ``{(s, d): PathSet}`` snapshot.
    """
    import os

    topology = topology_from_dict(topo_doc)
    caches: Dict[str, PathCache] = {}
    for scheme, state in states.items():
        cache = PathCache(topology, scheme, k=k, seed=cache_seed)
        if isinstance(state, PathArena):
            cache.attach_arena(state)
        elif isinstance(state, dict) and "shm" in state:
            cache.attach_arena(PathArena.from_shm(state))
        else:
            cache.import_state(state)
        caches[scheme] = cache
    _GRID_STATE[0] = (topology, caches)
    _GRID_OBS[0] = bool(obs_enabled)
    _GRID_TRACE[0] = dict(trace_cfg) if trace_cfg else None
    _GRID_TS[0] = dict(ts_cfg) if ts_cfg else None
    _GRID_LS[0] = dict(ls_cfg) if ls_cfg else None
    _GRID_FS[0] = dict(fs_cfg) if fs_cfg is not None else None
    _GRID_HB[0] = (
        obs_monitor.Heartbeater(mon_sink, worker=os.getpid())
        if mon_sink is not None else None
    )


def _ship_states(caches: Dict[str, PathCache], processes: int):
    """Package warmed caches for worker shipment.

    Inline runs (``processes == 1``) hand the per-scheme
    :class:`PathArena` straight to ``_grid_init``.  Pool runs move each
    arena into a shared-memory block and ship only its ~200-byte
    descriptor through the initializer, so workers map the parent's
    tables zero-copy instead of unpickling per-pair ``PathSet`` objects.
    Returns ``(states, shms)``; the caller must close and unlink every
    block in ``shms`` after the pool has joined.
    """
    states: Dict[str, object] = {}
    shms: list = []
    for scheme, cache in caches.items():
        arena = PathArena.from_cache(cache)
        if processes == 1:
            states[scheme] = arena
        else:
            shm, descriptor = arena.to_shm()
            shms.append(shm)
            states[scheme] = descriptor
    return states, shms


def _run_cell(
    args,
) -> Tuple[
    GridCell, Optional[dict], Optional[dict], Optional[dict],
    Optional[dict], Optional[dict],
]:
    """Worker: run one saturation sweep against the initializer's state.

    Returns the cell plus a metrics snapshot of everything the sweep
    recorded (simulator flit/stall counters, per-link flit arrays, cache
    hit/miss counts), a flight-recorder snapshot, a time-series snapshot,
    a link-state snapshot, and a flow-stats snapshot, each ``None`` when
    the corresponding subsystem is off.  Metric snapshots merge
    commutatively; trace, time-series, link-state and flow-stats
    snapshots are merged by the parent in task order (``pool.map``
    preserves it), so the parent's aggregates are identical for any
    worker count.
    """
    (
        scheme, mechanism, pattern_index, pattern_flows, n_hosts,
        rates, config, cell_seed,
    ) = args
    topology, caches = _GRID_STATE[0]
    pattern = Pattern("grid", n_hosts, pattern_flows)

    def sweep():
        th, _ = saturation_throughput(
            topology, caches[scheme], mechanism, PatternTraffic(pattern),
            rates=rates, config=config, seed=np.random.SeedSequence(cell_seed),
        )
        return th

    trace_cfg = _GRID_TRACE[0]
    ts_cfg = _GRID_TS[0]
    ls_cfg = _GRID_LS[0]
    fs_cfg = _GRID_FS[0]
    hb = _GRID_HB[0]
    if hb is not None:
        hb.task(f"{scheme}/{mechanism} p{pattern_index}")
    if (
        not _GRID_OBS[0]
        and trace_cfg is None
        and ts_cfg is None
        and ls_cfg is None
        and fs_cfg is None
    ):
        cell = GridCell(scheme, mechanism, pattern_index, sweep())
        if hb is not None:
            hb.done()
        return cell, None, None, None, None, None
    with ExitStack() as stack:
        reg = (
            stack.enter_context(metrics.capture()) if _GRID_OBS[0] else None
        )
        rec = (
            stack.enter_context(obs_trace.capture(**trace_cfg))
            if trace_cfg else None
        )
        tsr = (
            stack.enter_context(obs_timeseries.capture(**ts_cfg))
            if ts_cfg else None
        )
        lsr = (
            stack.enter_context(obs_linkstate.capture(**ls_cfg))
            if ls_cfg else None
        )
        fsr = (
            stack.enter_context(obs_flowstats.capture(**fs_cfg))
            if fs_cfg is not None else None
        )
        if tsr is not None and hb is not None:
            tsr.on_window = hb.window
        th = sweep()
        ts_snap = tsr.snapshot() if tsr is not None else None
        ls_snap = lsr.snapshot() if lsr is not None else None
        fs_snap = fsr.snapshot() if fsr is not None else None
    if hb is not None:
        hb.done()
    return (
        GridCell(scheme, mechanism, pattern_index, th),
        reg.snapshot() if reg is not None else None,
        rec.snapshot() if rec is not None else None,
        ts_snap,
        ls_snap,
        fs_snap,
    )


def _run_cell_batch(chunk):
    """Worker: rung-step a chunk of grid cells through the batched engine.

    Cells advance one injection rate at a time.  At each rate, the cells
    of the chunk still below saturation are grouped by (scheme, VC
    count) — lanes of one batch must share a buffer layout — and packed
    into batches of at most ``config.batch_lanes`` lanes; each batch is
    one lock-step :class:`~repro.netsim.batchcore.BatchSimulator` run.
    Per-cell ladder RNGs draw exactly one run seed per executed rung, as
    the serial sweep does, and each lane's telemetry is replayed under a
    per-cell capture afterwards, so every cell's throughput and
    artifacts are byte-identical to its per-cell fast-engine run
    whatever the lane packing.  Cells the batched engine cannot take
    (vanilla UGAL; every cell while the flight recorder is on) fall back
    to :func:`_run_cell` unchanged.

    Returns one ``_run_cell``-shaped result tuple per cell, in chunk
    order.
    """
    topology, caches = _GRID_STATE[0]
    obs_on = _GRID_OBS[0]
    ts_cfg = _GRID_TS[0]
    ls_cfg = _GRID_LS[0]
    fs_cfg = _GRID_FS[0]
    hb = _GRID_HB[0]
    config: SimConfig = chunk[0][6]
    rates = chunk[0][5]

    out: List[Optional[tuple]] = [None] * len(chunk)
    batchable: List[int] = []
    for i, task in enumerate(chunk):
        if _GRID_TRACE[0] is None and task[1] in BATCHABLE_MECHANISMS:
            batchable.append(i)
        else:
            out[i] = _run_cell(task)
    if not batchable:
        return out

    # Per-cell ladder state, mirroring saturation_throughput(): a ladder
    # rng seeded from (master seed, cell index), ascending rates, stop
    # after the first saturated rung, throughput = last rate before it.
    ladders = {}
    traffics = {}
    group_of = {}
    for i in batchable:
        _scheme, mech, _pi, flows, n_hosts, _rates, cfg, cell_seed = chunk[i]
        ladders[i] = np.random.default_rng(np.random.SeedSequence(cell_seed))
        traffics[i] = PatternTraffic(Pattern("grid", n_hosts, flows))
        group_of[i] = (_scheme, lane_vc_count(topology, caches[_scheme], mech, cfg))
    m_snaps = {i: [] for i in batchable}
    ts_snaps = {i: [] for i in batchable}
    ls_snaps = {i: [] for i in batchable}
    fs_snaps = {i: [] for i in batchable}
    throughput = {i: 0.0 for i in batchable}
    done = {i: False for i in batchable}

    for rate in rates:
        groups: Dict[tuple, List[int]] = {}
        for i in batchable:
            if not done[i]:
                groups.setdefault(group_of[i], []).append(i)
        if not groups:
            break
        for key in sorted(groups):
            scheme = key[0]
            members = groups[key]
            for s in range(0, len(members), config.batch_lanes):
                pack = members[s : s + config.batch_lanes]
                # The serial sweep draws one seed per executed rung from
                # the cell's ladder rng; replicate the draw exactly.
                lanes = [
                    BatchLane(
                        chunk[i][1],
                        traffics[i],
                        float(rate),
                        seed=np.random.default_rng(
                            int(ladders[i].integers(2**63))
                        ),
                    )
                    for i in pack
                ]
                if hb is not None:
                    hb.task(f"{scheme} rate={rate} x{len(lanes)} lanes")
                batch = BatchSimulator(topology, caches[scheme], lanes, config)
                results = batch.run(publish=False, observe=obs_on)
                for j, i in enumerate(pack):
                    if obs_on or ts_cfg or ls_cfg or fs_cfg is not None:
                        with ExitStack() as stack:
                            reg = (
                                stack.enter_context(metrics.capture())
                                if obs_on else None
                            )
                            tsr = (
                                stack.enter_context(
                                    obs_timeseries.capture(**ts_cfg)
                                )
                                if ts_cfg else None
                            )
                            lsr = (
                                stack.enter_context(
                                    obs_linkstate.capture(**ls_cfg)
                                )
                                if ls_cfg else None
                            )
                            fsr = (
                                stack.enter_context(
                                    obs_flowstats.capture(**fs_cfg)
                                )
                                if fs_cfg is not None else None
                            )
                            batch.publish_lane(j)
                            if reg is not None:
                                m_snaps[i].append(reg.snapshot())
                            if tsr is not None:
                                ts_snaps[i].append(tsr.snapshot())
                            if lsr is not None:
                                ls_snaps[i].append(lsr.snapshot())
                            if fsr is not None:
                                fs_snaps[i].append(fsr.snapshot())
                    if results[j].saturated:
                        done[i] = True
                    else:
                        throughput[i] = float(rate)
                if hb is not None:
                    hb.done()

    for i in batchable:
        scheme, mech, pattern_index = chunk[i][0], chunk[i][1], chunk[i][2]
        snap = None
        if m_snaps[i]:
            reg = metrics.MetricsRegistry()
            for s in m_snaps[i]:
                reg.merge(s)
            snap = reg.snapshot()
        ts_snap = None
        if ts_snaps[i]:
            tsr = obs_timeseries.TimeseriesRecorder(**ts_cfg)
            for s in ts_snaps[i]:  # rate order = the serial run order
                tsr.merge(s)
            ts_snap = tsr.snapshot()
        ls_snap = None
        if ls_snaps[i]:
            lsr = obs_linkstate.LinkstateRecorder(**ls_cfg)
            for s in ls_snaps[i]:  # rate order = the serial run order
                lsr.merge(s)
            ls_snap = lsr.snapshot()
        fs_snap = None
        if fs_snaps[i]:
            fsr = obs_flowstats.FlowstatsRecorder(**fs_cfg)
            for s in fs_snaps[i]:  # rate order = the serial run order
                fsr.merge(s)
            fs_snap = fsr.snapshot()
        out[i] = (
            GridCell(scheme, mech, pattern_index, throughput[i]),
            snap,
            None,
            ts_snap,
            ls_snap,
            fs_snap,
        )
    return out


def run_saturation_grid(
    topology: Jellyfish,
    schemes: Sequence[str],
    mechanisms: Sequence[str],
    patterns: Sequence[Pattern],
    *,
    k: int = 8,
    rates: Sequence[float],
    config: SimConfig = SimConfig(),
    seed: int = 0,
    processes: int = 1,
) -> Dict[Tuple[str, str], float]:
    """Saturation throughput for every (scheme, mechanism) pair, averaged
    over ``patterns``, running cells across ``processes`` workers.

    Returns ``{(scheme, mechanism): mean saturation throughput}``.
    """
    if processes < 1:
        raise ConfigurationError(f"processes must be >= 1, got {processes}")
    if not schemes or not mechanisms or not patterns:
        raise ConfigurationError("schemes, mechanisms and patterns must be non-empty")
    if config.batch_lanes > 1 and config.steady_state:
        raise ConfigurationError(
            "steady_state grids cannot batch lanes: the batched engine is "
            "fixed-budget only. Use batch_lanes=1 for steady-state sweeps."
        )

    topo_doc = topology_to_dict(topology)
    # Warm one cache per scheme in the parent — only the pairs the
    # patterns actually touch (on-demand) — then ship the flat arena to
    # the workers.
    caches: Dict[str, PathCache] = {}
    pair_lists = [
        sorted(
            {
                (topology.switch_of_host(s), topology.switch_of_host(d))
                for s, d in p.flows
            }
        )
        for p in patterns
    ]
    for scheme in schemes:
        cache = PathCache(topology, scheme, k=k, seed=seed)
        for pairs in pair_lists:
            cache.precompute(pairs)
        caches[scheme] = cache
    states, shms = _ship_states(caches, processes)

    tasks = []
    cell = 0
    for scheme in schemes:
        for mechanism in mechanisms:
            for i, pattern in enumerate(patterns):
                tasks.append(
                    (
                        scheme, mechanism, i, pattern.flows, pattern.n_hosts,
                        tuple(rates), config, (seed, cell),
                    )
                )
                cell += 1

    progress = Progress(len(tasks), "saturation-grid")
    mon = obs_monitor.active()
    if mon is not None:
        mon.begin("saturation-grid", len(tasks))
    # Inline runs feed the monitor through its ``post`` callable; pool
    # workers get a Manager-queue proxy (picklable through initargs).
    sink = None
    if mon is not None:
        sink = mon.post if processes == 1 else mon.queue()
    initargs = (
        topo_doc, k, seed, states, metrics.enabled(), obs_trace.config(),
        obs_timeseries.config(), obs_linkstate.config(),
        obs_flowstats.config(), sink,
    )
    cells: List[GridCell] = []

    def _collect(cell_result):
        cell, snap, tsnap, ts_snap, ls_snap, fs_snap = cell_result
        cells.append(cell)
        metrics.merge_snapshot(snap)
        obs_trace.merge_snapshot(tsnap)
        obs_timeseries.merge_snapshot(ts_snap)
        obs_linkstate.merge_snapshot(ls_snap)
        obs_flowstats.merge_snapshot(fs_snap)
        progress.step()
        if mon is not None:
            mon.step()

    batched = config.batch_lanes > 1
    try:
        if processes == 1:
            # Inline cells use the same per-cell capture-and-merge path as
            # the pool, so serial and parallel runs aggregate identical
            # telemetry.
            _grid_init(*initargs)
            try:
                if batched:
                    for result in _run_cell_batch(tasks):
                        _collect(result)
                else:
                    for t in tasks:
                        _collect(_run_cell(t))
            finally:
                _GRID_STATE[0] = None
                _GRID_OBS[0] = False
                _GRID_TRACE[0] = None
                _GRID_TS[0] = None
                _GRID_LS[0] = None
                _GRID_FS[0] = None
                _GRID_HB[0] = None
        else:
            with ProcessPoolExecutor(
                max_workers=processes, initializer=_grid_init, initargs=initargs,
            ) as pool:
                if batched:
                    # One contiguous chunk of cells per worker; a worker
                    # rung-steps its own chunk, so pool workers and lane
                    # packing compose.  Cell seeds depend only on (master
                    # seed, cell index) and snapshots are per cell, so
                    # any chunking yields identical results.
                    n_chunks = min(processes, len(tasks))
                    chunks = [
                        [tasks[int(i)] for i in idx]
                        for idx in np.array_split(
                            np.arange(len(tasks)), n_chunks
                        )
                        if len(idx)
                    ]
                    for results in pool.map(_run_cell_batch, chunks):
                        for result in results:
                            _collect(result)
                else:
                    chunksize = max(1, len(tasks) // (4 * processes))
                    for cell_result in pool.map(
                        _run_cell, tasks, chunksize=chunksize
                    ):
                        _collect(cell_result)
    finally:
        # The pool context manager has joined its workers by the time we
        # get here, so the parent can safely tear down the shared blocks.
        for shm in shms:
            shm.close()
            shm.unlink()
        if mon is not None:
            mon.finish()

    out: Dict[Tuple[str, str], List[float]] = {}
    for c in cells:
        out.setdefault((c.scheme, c.mechanism), []).append(c.throughput)
    return {key: float(np.mean(vals)) for key, vals in out.items()}
