"""Flit-level, cycle-driven interconnection-network simulator.

A from-scratch replacement for the Booksim 2.0 setup of Section IV:
input-queued routers with per-virtual-channel buffers and credit-based flow
control, hop-indexed VCs for deadlock freedom, pipelined channels with a
configurable latency, input speedup 2, single-flit packets, and the paper's
warmup/sampling/saturation methodology.

Entry points:

- :class:`~repro.netsim.simulator.Simulator` — one run at one injection rate;
- :func:`~repro.netsim.sweep.saturation_throughput` — the Figures 7-10 metric;
- :func:`~repro.netsim.sweep.latency_curve` — the Figures 11-13 curves;
- :data:`~repro.netsim.mechanisms.MECHANISMS` — SP / random / round-robin /
  vanilla-UGAL / KSP-UGAL / KSP-adaptive.
"""

from repro.netsim.batchcore import (
    BATCHABLE_MECHANISMS,
    BatchLane,
    BatchSimulator,
    lane_vc_count,
)
from repro.netsim.config import SimConfig
from repro.netsim.fastcore import FastSimulator
from repro.netsim.mechanisms import (
    MECHANISMS,
    make_mechanism,
    RandomMechanism,
    RoundRobinMechanism,
    SinglePathMechanism,
    VanillaUgalMechanism,
    KspUgalMechanism,
    KspAdaptiveMechanism,
)
from repro.netsim.simulator import (
    Simulator,
    SimResult,
    UniformTraffic,
    PatternTraffic,
)
from repro.netsim.sweep import latency_curve, saturation_throughput
from repro.netsim.parallel import GridCell, run_saturation_grid

__all__ = [
    "BATCHABLE_MECHANISMS",
    "BatchLane",
    "BatchSimulator",
    "lane_vc_count",
    "FastSimulator",
    "GridCell",
    "run_saturation_grid",
    "SimConfig",
    "MECHANISMS",
    "make_mechanism",
    "SinglePathMechanism",
    "RandomMechanism",
    "RoundRobinMechanism",
    "VanillaUgalMechanism",
    "KspUgalMechanism",
    "KspAdaptiveMechanism",
    "Simulator",
    "SimResult",
    "UniformTraffic",
    "PatternTraffic",
    "latency_curve",
    "saturation_throughput",
]
