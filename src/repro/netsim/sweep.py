"""Injection-rate sweeps: saturation throughput and latency-load curves.

Implements the paper's measurement protocol: simulate a ladder of offered
loads, flag each run as saturated per the sample-latency criterion, and
report the last rate before saturation as the network's throughput
(Figures 7-10).  :func:`latency_curve` keeps the whole ladder for the
latency-versus-load plots (Figures 11-13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.cache import PathCache
from repro.errors import ConfigurationError
from repro.netsim.config import SimConfig
from repro.netsim.simulator import PatternTraffic, SimResult, Simulator, UniformTraffic
from repro.topology.jellyfish import Jellyfish
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["SweepPoint", "latency_curve", "saturation_throughput"]

DEFAULT_RATES: Tuple[float, ...] = tuple(np.round(np.arange(0.05, 1.0001, 0.05), 4))


@dataclass(frozen=True)
class SweepPoint:
    """One ladder step: offered rate and the run's result."""

    rate: float
    result: SimResult


def _run_one(
    topology: Jellyfish,
    paths: PathCache,
    mechanism: str,
    traffic,
    rate: float,
    config: SimConfig,
    rng: np.random.Generator,
) -> SimResult:
    sim = Simulator(
        topology,
        paths,
        mechanism,
        traffic,
        rate,
        config=config,
        seed=np.random.default_rng(int(rng.integers(2**63))),
    )
    return sim.run()


def latency_curve(
    topology: Jellyfish,
    paths: PathCache,
    mechanism: str,
    traffic: UniformTraffic | PatternTraffic,
    rates: Sequence[float] = DEFAULT_RATES,
    config: SimConfig = SimConfig(),
    seed: SeedLike = 0,
    stop_after_saturation: bool = True,
) -> List[SweepPoint]:
    """Average packet latency at each offered load (Figures 11-13).

    Stops the ladder after the first saturated point by default — beyond
    saturation the latency is unbounded and the paper's plots end there.
    """
    if not rates:
        raise ConfigurationError("rates must be non-empty")
    rng = ensure_rng(seed)
    points: List[SweepPoint] = []
    for rate in rates:
        result = _run_one(topology, paths, mechanism, traffic, rate, config, rng)
        points.append(SweepPoint(rate=float(rate), result=result))
        if stop_after_saturation and result.saturated:
            break
    return points


def saturation_throughput(
    topology: Jellyfish,
    paths: PathCache,
    mechanism: str,
    traffic: UniformTraffic | PatternTraffic,
    rates: Sequence[float] = DEFAULT_RATES,
    config: SimConfig = SimConfig(),
    seed: SeedLike = 0,
) -> Tuple[float, List[SweepPoint]]:
    """The last offered load before saturation, plus the ladder behind it.

    Mirrors the paper: "we record the last injection rate before the
    network reaches the saturation point as the network throughput".  A
    network saturated even at the lowest rate reports 0.0.
    """
    points = latency_curve(
        topology, paths, mechanism, traffic, rates, config, seed,
        stop_after_saturation=True,
    )
    throughput = 0.0
    for p in points:
        if p.result.saturated:
            break
        throughput = p.rate
    return throughput, points
