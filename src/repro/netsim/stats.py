"""Shared latency statistics helpers used by every engine tier.

The reference :class:`~repro.netsim.simulator.Simulator` and the batched
:class:`~repro.netsim.batchcore.BatchSimulator` used to compute result
percentiles with two separately-written ``np.percentile`` snippets; this
module is the single definition both call, so the tiers cannot drift.
It also owns the manifest-gauge stamping of the latency SLO scalars
(``netsim.latency_p50`` / ``netsim.latency_p99`` / ``netsim.mean_latency``)
so the tail of every run is visible to ``compare-runs``, the ledger and
the trend gate even with flowstats disabled.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["latency_percentiles", "stamp_latency_gauges"]


def latency_percentiles(latencies: Sequence[float]) -> Tuple[float, float]:
    """``(p50, p99)`` of a latency sample, ``(nan, nan)`` when empty.

    One tuple-form ``np.percentile`` call — the single percentile code
    path shared by the reference, fast and batched engines.
    """
    arr = np.asarray(latencies, dtype=np.float64)
    if arr.size == 0:
        return (float("nan"), float("nan"))
    p50, p99 = np.percentile(arr, (50, 99))
    return float(p50), float(p99)


def stamp_latency_gauges(
    reg, p50: float, p99: float, mean: float
) -> None:
    """Record a run's latency SLO scalars as registry gauges.

    Gauges merge by max across processes, so each stamp keeps the worst
    value seen (`max` read-modify-write); NaN (an empty latency sample)
    is skipped rather than poisoning the gauge.  No-op when ``reg`` is
    ``None`` (metrics disabled).
    """
    if reg is None:
        return
    for name, value in (
        ("netsim.latency_p50", p50),
        ("netsim.latency_p99", p99),
        ("netsim.mean_latency", mean),
    ):
        v = float(value)
        if v != v:  # NaN: no measured packets
            continue
        g = reg.gauge(name)
        g.set(max(g.value, v))
