"""The cycle-driven flit-level simulator.

One :class:`Simulator` instance runs one traffic condition at one injection
rate and reports the paper's Booksim statistics: per-sample average packet
latency, accepted throughput, and the saturation flag.

Router model (single-flit packets):

- every switch input port has one FIFO per virtual channel; a packet at
  switch-hop ``h`` occupies VC ``h``, so channel dependencies only ever
  climb the VC ladder and the network is deadlock-free for any loop-free
  source route (the paper's "increase the VC every hop" scheme);
- credit-based flow control: a flit leaves a router only when the
  downstream ``(input port, VC)`` buffer is guaranteed to have a slot by
  the time it lands;
- each output port launches at most one flit per cycle onto its channel
  (links run at line rate) while each input port may forward up to
  ``input_speedup`` flits per cycle — the speedup-2 crossbar of the paper's
  configuration;
- output arbitration is separable round-robin, rotating per output port;
- channels are ideal pipelines of ``channel_latency`` cycles, including
  host injection/ejection links;
- hosts have unbounded source queues (latency counts from source-queue
  entry, so saturated runs show the expected latency blow-up).
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cache import PathCache
from repro.errors import ConfigurationError, SimulationError, TrafficError
from repro.netsim.config import SimConfig
from repro.netsim.stats import latency_percentiles, stamp_latency_gauges
from repro.obs import flowstats as obs_flowstats
from repro.obs import linkstate as obs_linkstate
from repro.obs import metrics
from repro.obs import timeseries as obs_timeseries
from repro.obs import trace as obs_trace
from repro.netsim.mechanisms import RoutingMechanism, make_mechanism
from repro.netsim.network import NetworkWiring
from repro.netsim.packet import Packet
from repro.topology.jellyfish import Jellyfish
from repro.traffic.patterns import Pattern
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["UniformTraffic", "PatternTraffic", "SimResult", "Simulator"]


class UniformTraffic:
    """Uniform-random traffic: each packet draws a fresh destination."""

    def __init__(self, n_hosts: int):
        if n_hosts < 2:
            raise TrafficError("uniform traffic needs at least 2 hosts")
        self.n_hosts = n_hosts

    def sources(self) -> np.ndarray:
        return np.arange(self.n_hosts, dtype=np.int64)

    def dest(self, src: int, rng: np.random.Generator) -> int:
        d = int(rng.integers(self.n_hosts - 1))
        return d if d < src else d + 1

    def dests(self, srcs: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Batched :meth:`dest`: one vectorized draw for a whole cycle."""
        d = rng.integers(self.n_hosts - 1, size=len(srcs))
        return d + (d >= srcs)

    def switch_pairs(self, topology: Jellyfish) -> List[Tuple[int, int]]:
        n = topology.n_switches
        return [(s, d) for s in range(n) for d in range(n) if s != d]


class PatternTraffic:
    """Static-pattern traffic: each source's destinations are fixed.

    Sources with several flows (e.g. Random(X)) pick uniformly among their
    destinations per packet; hosts without flows do not inject.
    """

    def __init__(self, pattern: Pattern):
        self.pattern = pattern
        self._dests: Dict[int, List[int]] = {}
        for s, d in pattern.flows:
            self._dests.setdefault(s, []).append(d)
        if not self._dests:
            raise TrafficError("pattern has no flows")
        # Flattened destination lists indexed by source host, so a whole
        # cycle's destinations come out of one vectorized draw.
        n = pattern.n_hosts
        self._counts = np.zeros(n, dtype=np.int64)
        self._offsets = np.zeros(n, dtype=np.int64)
        flat: List[int] = []
        for h in sorted(self._dests):
            self._offsets[h] = len(flat)
            self._counts[h] = len(self._dests[h])
            flat.extend(self._dests[h])
        self._flat = np.asarray(flat, dtype=np.int64)

    def sources(self) -> np.ndarray:
        return np.asarray(sorted(self._dests), dtype=np.int64)

    def dest(self, src: int, rng: np.random.Generator) -> int:
        dests = self._dests[src]
        if len(dests) == 1:
            return dests[0]
        return dests[int(rng.integers(len(dests)))]

    def dests(self, srcs: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Batched :meth:`dest` for sources drawn from :meth:`sources`."""
        counts = self._counts[srcs]
        idx = rng.integers(counts)  # per-element upper bounds
        return self._flat[self._offsets[srcs] + idx]

    def switch_pairs(self, topology: Jellyfish) -> List[Tuple[int, int]]:
        pairs = {
            (topology.switch_of_host(s), topology.switch_of_host(d))
            for s, d in self.pattern.flows
        }
        return sorted(pairs)


@dataclass(frozen=True)
class SimResult:
    """Statistics of one simulation run.

    ``sample_latencies`` holds the per-sample mean packet latencies the
    saturation test inspects; a ``nan`` entry means the sample delivered
    nothing (a fully jammed network, also treated as saturated).
    """

    injection_rate: float
    injected: int
    delivered: int
    measured_delivered: int
    mean_latency: float
    sample_latencies: Tuple[float, ...]
    saturated: bool
    accepted_throughput: float
    n_active_hosts: int
    latency_p50: float
    latency_p99: float
    max_link_utilisation: float
    mean_link_utilisation: float
    config: SimConfig = field(repr=False)
    # Steady-state run control (``config.steady_state``): the warmup the
    # run actually used, how many samples it measured before stopping,
    # and whether warmup converged (``None`` for fixed-budget runs).
    warmup_cycles_used: int = -1
    measured_samples: int = -1
    steady_converged: Optional[bool] = None

    def offered_load(self) -> float:
        """The injection rate (flits/node/cycle) this run offered."""
        return self.injection_rate


class Simulator:
    """One flit-level run.

    Parameters
    ----------
    topology:
        The Jellyfish under test.
    paths:
        PathCache of the path-selection scheme (shared across runs to
        amortise Yen's algorithm).
    mechanism:
        Routing-mechanism registry name (see
        :data:`repro.netsim.mechanisms.MECHANISMS`).
    traffic:
        :class:`UniformTraffic` or :class:`PatternTraffic`.
    injection_rate:
        Bernoulli flit-injection probability per host per cycle.
    config / seed:
        Simulator parameters and the run's random stream.

    ``config.engine`` selects the core: constructing :class:`Simulator`
    with the default ``engine="fast"`` transparently builds the
    array-native :class:`~repro.netsim.fastcore.FastSimulator`;
    ``engine="reference"`` runs this implementation.  Both cores draw the
    RNG in the same order and produce byte-identical results.
    """

    #: Which core this class implements (manifests record it per run).
    engine_name = "reference"

    def __new__(
        cls,
        topology=None,
        paths=None,
        mechanism=None,
        traffic=None,
        injection_rate=None,
        config: SimConfig = SimConfig(),
        seed: SeedLike = 0,
    ):
        if cls is Simulator and getattr(config, "engine", "fast") == "fast":
            from repro.netsim.fastcore import FastSimulator

            return object.__new__(FastSimulator)
        return object.__new__(cls)

    def __init__(
        self,
        topology: Jellyfish,
        paths: PathCache,
        mechanism: str,
        traffic: UniformTraffic | PatternTraffic,
        injection_rate: float,
        config: SimConfig = SimConfig(),
        seed: SeedLike = 0,
    ):
        if not (0.0 < injection_rate <= 1.0):
            raise ConfigurationError(
                f"injection_rate must be in (0, 1], got {injection_rate}"
            )
        self.topology = topology
        self.config = config
        self.rate = float(injection_rate)
        self.traffic = traffic
        self.rng = ensure_rng(seed)
        self.wiring = NetworkWiring(topology)

        # Warm the path cache for every switch pair the traffic can use, so
        # the per-cycle hot path never runs Yen's algorithm.
        paths.precompute(traffic.switch_pairs(topology))
        self.paths = paths

        self.occupancy = np.zeros(topology.n_links, dtype=np.int64)
        self.mechanism: RoutingMechanism = make_mechanism(
            mechanism,
            self.wiring,
            paths,
            self.occupancy,
            self.rng,
            estimate=config.adaptive_estimate,
            channel_latency=config.channel_latency,
        )

        # Longest resident path anywhere in the cache state (dict and
        # arena) — arena-resident pairs size the VC ladder exactly as
        # dict-resident ones do.
        self.n_vcs = max(
            paths.max_hops(), self.mechanism.max_route_hops()
        ) + 1

        n_sw = topology.n_switches
        self.n_ports = self.wiring.n_ports
        self._stride_port = self.n_vcs
        self._stride_switch = self.n_ports * self.n_vcs
        n_bufs = n_sw * self._stride_switch
        self.in_q: List[deque] = [deque() for _ in range(n_bufs)]
        self.free: List[int] = [config.vc_buffer] * n_bufs
        self.nonempty: List[set] = [set() for _ in range(n_sw)]
        self.rr_ptr: List[int] = [0] * (n_sw * self.n_ports)

        self.source_q: Dict[int, deque] = {}
        self.active_hosts = traffic.sources()
        self._switch_of_host = np.asarray(
            [topology.switch_of_host(int(h)) for h in range(topology.n_hosts)],
            dtype=np.int64,
        )

        self._arrivals: list = []  # heap of (time, seq, flat_idx|-1, packet)
        self._seq = 0
        # Route-port tuples are pure functions of (path nodes, dst host);
        # memoise them so source launch never re-walks port maps.
        self._route_cache: Dict[Tuple[Tuple[int, ...], int], Tuple[int, ...]] = {}

        # statistics
        self.injected = 0
        self.delivered = 0
        self._measure_start = config.warmup_cycles
        self._sample_sums = [0.0] * config.n_samples
        self._sample_counts = [0] * config.n_samples
        self._latencies: List[int] = []
        # Flits launched onto each switch link during the measurement
        # window (link-utilisation statistics).
        self._link_flits = np.zeros(topology.n_switch_links, dtype=np.int64)
        # Telemetry tallies (plain ints on the hot path; published to the
        # metrics registry once per run, so disabled-mode overhead is a
        # couple of integer adds per cycle).
        self.flits_forwarded = 0
        self.credit_stalls = 0
        self._occupancy_samples: List[int] = []
        self._warmup_converged = False
        self._warmup_used = config.warmup_cycles
        self._measured_samples = config.n_samples

        # Flight recorder (off by default; the active recorder is fixed at
        # construction, so hot paths only test one local reference).
        tr = obs_trace.active()
        self._trace = tr
        self._trace_run = -1
        if tr is not None:
            self._trace_run = tr.begin_run(
                scheme=getattr(paths.selector, "name", "unknown"),
                mechanism=mechanism,
                rate=self.rate,
                channel_latency=config.channel_latency,
                n_hosts=topology.n_hosts,
            )
            # Warm the per-pair {path nodes -> PathSet index} maps now, so
            # traced packets never rebuild dicts on the launch path (the
            # maps are memoised on the cache and shared across runs).
            for s, d in traffic.switch_pairs(topology):
                paths.path_index_map(s, d)

        # Windowed time-series recorder (same fixed-at-construction
        # discipline as the flight recorder).  Cumulative ejection latency
        # is tracked whenever the recorder or steady-state control needs
        # per-window means; both are off by default.
        ts = obs_timeseries.active()
        self._ts = ts
        self._ts_run = -1
        self._track_lat = ts is not None or config.steady_state
        self._lat_total = 0
        self._win_start = 0
        self._win_next = 0
        self._end_cycle = config.total_cycles
        if ts is not None:
            self._ts_run = ts.begin_run(
                scheme=getattr(paths.selector, "name", "unknown"),
                mechanism=mechanism,
                rate=self.rate,
                n_hosts=topology.n_hosts,
                warmup_cycles=config.warmup_cycles,
                channel_latency=config.channel_latency,
            )
            self._ts_link_flits = np.zeros(
                topology.n_switch_links, dtype=np.int64
            )
            self._win_next = ts.window
            # Counter values at the last window flush (delta markers).
            self._wp_injected = 0
            self._wp_delivered = 0
            self._wp_lat = 0
            self._wp_stalls = 0
            self._wp_fwd = 0

        # Dense per-window link-state recorder (same fixed-at-construction
        # discipline).  Tallies are plain lists on the hot path — one
        # indexed add per forward/stall — copied out at window edges.
        ls = obs_linkstate.active()
        if ls is None and config.linkstate:
            raise ConfigurationError(
                "SimConfig(linkstate=True) requires an active link-state "
                "recorder: enable repro.obs.linkstate (or use its capture() "
                "context) before building the simulator"
            )
        self._ls = ls
        self._ls_run = -1
        self._ls_start = 0
        self._ls_next = 0
        self._inj_link_base = topology.injection_link_base
        self._ej_link_base = topology.ejection_link_base
        if ls is not None:
            self._ls_run = ls.begin_run(
                scheme=getattr(paths.selector, "name", "unknown"),
                mechanism=mechanism,
                rate=self.rate,
                n_hosts=topology.n_hosts,
                n_links=topology.n_links,
                warmup_cycles=config.warmup_cycles,
                channel_latency=config.channel_latency,
            )
            ep = obs_linkstate.link_endpoints(topology)
            ls.set_link_endpoints(ep["link_src"], ep["link_dst"])
            nl = topology.n_links
            self._ls_fwd = [0] * nl
            self._ls_stall = [0] * nl
            # Peak is an end-of-cycle maximum (updated once per cycle in
            # _advance), not a grant-time one: per-grant occupancy reads
            # depend on within-cycle switch order, which the batched
            # engine's vectorized grant pass cannot replay.
            self._ls_peak = np.zeros(nl, dtype=np.int64)
            self._ls_next = ls.window

        # Per-(src,dst) flow recorder (same fixed-at-construction
        # discipline).  The hot path only appends the ejected packet's
        # pair id next to its latency; the per-pair tally happens once at
        # the end of run() from the two aligned lists.
        fs = obs_flowstats.active()
        if fs is None and config.flowstats:
            raise ConfigurationError(
                "SimConfig(flowstats=True) requires an active flow-stats "
                "recorder: enable repro.obs.flowstats (or use its capture() "
                "context) before building the simulator"
            )
        self._fs = fs
        self._fs_run = -1
        self._fs_nh = topology.n_hosts
        self._fs_pairs: List[int] = []
        if fs is not None:
            self._fs_run = fs.begin_run(
                scheme=getattr(paths.selector, "name", "unknown"),
                mechanism=mechanism,
                rate=self.rate,
                n_hosts=topology.n_hosts,
                n_pairs=topology.n_hosts * topology.n_hosts,
                n_bins=obs_flowstats.latency_bins(config),
                warmup_cycles=config.warmup_cycles,
                channel_latency=config.channel_latency,
            )
            ep = obs_flowstats.pair_endpoints(topology.n_hosts)
            fs.set_pair_endpoints(ep["pair_src"], ep["pair_dst"])

    # ----------------------------------------------------------- plumbing
    def _buf_idx(self, switch: int, port: int, vc: int) -> int:
        return switch * self._stride_switch + port * self._stride_port + vc

    def _push_arrival(self, time: int, flat_idx: int, packet: Packet) -> None:
        self._seq += 1
        heapq.heappush(self._arrivals, (time, self._seq, flat_idx, packet))

    # ------------------------------------------------------------- phases
    def _process_arrivals(self, now: int) -> None:
        heap = self._arrivals
        cfg = self.config
        tr = self._trace
        track_lat = self._track_lat
        while heap and heap[0][0] <= now:
            _, _, flat_idx, packet = heapq.heappop(heap)
            if flat_idx < 0:
                # Ejection: the packet reached its host.
                packet.t_deliver = now
                self.delivered += 1
                if track_lat:
                    self._lat_total += packet.latency
                t = now - self._measure_start
                if 0 <= t < cfg.measure_cycles:
                    s = t // cfg.sample_cycles
                    self._sample_sums[s] += packet.latency
                    self._sample_counts[s] += 1
                    self._latencies.append(packet.latency)
                    if self._fs is not None:
                        self._fs_pairs.append(
                            packet.src * self._fs_nh + packet.dst
                        )
                if tr is not None and packet.trace_id >= 0:
                    tr.event(
                        packet.trace_id, self._trace_run, obs_trace.EV_EJECT,
                        now, switch=packet.switches[-1],
                    )
                    tr.finish(packet.trace_id, now)
            else:
                self.in_q[flat_idx].append(packet)
                switch = flat_idx // self._stride_switch
                self.nonempty[switch].add(flat_idx)
                if tr is not None and packet.trace_id >= 0:
                    rem = flat_idx % self._stride_switch
                    tr.event(
                        packet.trace_id, self._trace_run,
                        obs_trace.EV_HOP_ENQUEUE, now, switch=switch,
                        port=rem // self.n_vcs, vc=rem % self.n_vcs,
                    )

    def _inject(self, now: int) -> None:
        hosts = self.active_hosts
        draws = self.rng.random(len(hosts)) < self.rate
        if not draws.any():
            return
        srcs = hosts[draws]
        # One vectorized draw covers every injecting host this cycle.
        dsts = self.traffic.dests(srcs, self.rng)
        tr = self._trace
        if tr is None:
            for h, dst in zip(srcs.tolist(), dsts.tolist()):
                q = self.source_q.get(h)
                if q is None:
                    q = deque()
                    self.source_q[h] = q
                q.append((now, dst))
        else:
            sw_of = self._switch_of_host
            for h, dst in zip(srcs.tolist(), dsts.tolist()):
                q = self.source_q.get(h)
                if q is None:
                    q = deque()
                    self.source_q[h] = q
                uid = tr.sample_packet(
                    self._trace_run, h, dst,
                    int(sw_of[h]), int(sw_of[dst]), now,
                )
                q.append((now, dst, uid))
        self.injected += len(srcs)

    def _launch_from_sources(self, now: int) -> None:
        cfg = self.config
        wiring = self.wiring
        tr = self._trace
        tracing = tr is not None
        ls_on = self._ls is not None
        inj_base = self._inj_link_base
        stalls = 0
        for h, q in self.source_q.items():
            if not q:
                continue
            sw = int(self._switch_of_host[h])
            inj_port = wiring.injection_port(h)
            idx = self._buf_idx(sw, inj_port, 0)
            if self.free[idx] <= 0:
                stalls += 1
                if ls_on:
                    self._ls_stall[inj_base + h] += 1
                if tracing and q[0][-1] >= 0:
                    tr.event(
                        q[0][-1], self._trace_run, obs_trace.EV_CREDIT_STALL,
                        now, switch=sw, port=inj_port, vc=0,
                    )
                continue
            if tracing:
                t_create, dst, uid = q.popleft()
            else:
                t_create, dst = q.popleft()
                uid = -1
            dst_sw = int(self._switch_of_host[dst])
            nodes = tuple(self.mechanism.choose(h, dst, sw, dst_sw))
            route = self._route_cache.get((nodes, dst))
            if route is None:
                route = wiring.route_ports(nodes, dst)
                self._route_cache[(nodes, dst)] = route
            packet = Packet(h, dst, nodes, route, t_create)
            if uid >= 0:
                packet.trace_id = uid
                idx_map = self.paths.path_index_map(sw, dst_sw)
                tr.set_route(uid, idx_map.get(nodes, -1), nodes, now)
                tr.event(
                    uid, self._trace_run, obs_trace.EV_VC_ALLOC, now,
                    switch=sw, port=inj_port, vc=0,
                )
            self.free[idx] -= 1
            if ls_on:
                self._ls_fwd[inj_base + h] += 1
            self._push_arrival(now + cfg.channel_latency, idx, packet)
        self.credit_stalls += stalls

    def _allocate(self, now: int) -> None:
        cfg = self.config
        wiring = self.wiring
        n_vcs = self.n_vcs
        eject_base = wiring.n_switch_ports
        tr = self._trace
        tracing = tr is not None
        ts_links = self._ts_link_flits if self._ts is not None else None
        ls_on = self._ls is not None
        if ls_on:
            ls_fwd = self._ls_fwd
            ls_stall = self._ls_stall
        stalls = 0
        forwarded = 0
        for switch in range(self.topology.n_switches):
            active = self.nonempty[switch]
            if not active:
                continue
            # Gather head-of-line requests per output port, skipping flits
            # whose downstream buffer has no credit.  Iteration is sorted:
            # request-gathering order must not depend on set internals, or
            # grant outcomes (and trace event order) would vary with the
            # interpreter's hash seed instead of the run seed.
            requests: Dict[int, List[int]] = {}
            for flat_idx in sorted(active):
                packet: Packet = self.in_q[flat_idx][0]
                out_port = packet.route[packet.hop]
                if out_port < eject_base:
                    nxt = self.topology.adjacency[switch][out_port]
                    nxt_idx = self._buf_idx(
                        nxt, wiring.peer_port[switch][out_port], packet.hop + 1
                    )
                    if self.free[nxt_idx] <= 0:
                        stalls += 1
                        if ls_on:
                            ls_stall[wiring.link_of[switch][out_port]] += 1
                        if tracing and packet.trace_id >= 0:
                            tr.event(
                                packet.trace_id, self._trace_run,
                                obs_trace.EV_CREDIT_STALL, now, switch=switch,
                                port=out_port, vc=packet.hop,
                            )
                        continue
                requests.setdefault(out_port, []).append(flat_idx)

            if not requests:
                continue
            granted_per_input: Dict[int, int] = {}
            speedup = cfg.input_speedup
            for out_port, cands in requests.items():
                # Rotating-priority (round-robin) arbitration per output.
                rr_key = switch * self.n_ports + out_port
                ptr = self.rr_ptr[rr_key]
                modulus = self._stride_switch
                cands.sort(key=lambda fi: (fi - ptr) % modulus)
                winner = None
                for fi in cands:
                    in_port = (fi % self._stride_switch) // n_vcs
                    if granted_per_input.get(in_port, 0) >= speedup:
                        continue
                    winner = fi
                    break
                if winner is None:
                    continue
                in_port = (winner % self._stride_switch) // n_vcs
                granted_per_input[in_port] = granted_per_input.get(in_port, 0) + 1
                self.rr_ptr[rr_key] = (winner % self._stride_switch) + 1

                q = self.in_q[winner]
                packet = q.popleft()
                if not q:
                    active.discard(winner)
                self.free[winner] += 1
                if packet.in_link >= 0:
                    self.occupancy[packet.in_link] -= 1
                    packet.in_link = -1

                if out_port >= eject_base:
                    if ls_on:
                        ls_fwd[self._ej_link_base + packet.dst] += 1
                    if tracing and packet.trace_id >= 0:
                        tr.event(
                            packet.trace_id, self._trace_run,
                            obs_trace.EV_HOP_DEPART, now, switch=switch,
                            port=out_port, vc=packet.hop,
                        )
                    self._push_arrival(now + cfg.channel_latency, -1, packet)
                else:
                    nxt = self.topology.adjacency[switch][out_port]
                    nxt_idx = self._buf_idx(
                        nxt, wiring.peer_port[switch][out_port], packet.hop + 1
                    )
                    link = wiring.link_of[switch][out_port]
                    self.free[nxt_idx] -= 1
                    self.occupancy[link] += 1
                    forwarded += 1
                    if now >= self._measure_start:
                        self._link_flits[link] += 1
                    if ts_links is not None:
                        ts_links[link] += 1
                    if ls_on:
                        ls_fwd[link] += 1
                    if tracing and packet.trace_id >= 0:
                        tr.event(
                            packet.trace_id, self._trace_run,
                            obs_trace.EV_HOP_DEPART, now, switch=switch,
                            port=out_port, vc=packet.hop, link=link,
                        )
                    packet.in_link = link
                    packet.hop += 1
                    self._push_arrival(now + cfg.channel_latency, nxt_idx, packet)
        self.credit_stalls += stalls
        self.flits_forwarded += forwarded

    # ---------------------------------------------------------------- run
    def _advance(self, start: int, stop: int) -> None:
        """Run the four-phase cycle loop for ``[start, stop)``.

        With the time-series recorder off this is the bare loop.  With it
        on, the loop is chunked at absolute window boundaries and a row is
        flushed at each — the cycle-by-cycle work (and every RNG draw) is
        identical either way, so enabling time series cannot change a
        run's results.
        """
        if self._ts is None and self._ls is None:
            for now in range(start, stop):
                self._process_arrivals(now)
                self._inject(now)
                self._launch_from_sources(now)
                self._allocate(now)
            return
        cur = start
        ls_on = self._ls is not None
        if ls_on:
            ls_peak = self._ls_peak
        while cur < stop:
            nxt = stop
            if self._ts is not None:
                nxt = min(nxt, self._win_next)
            if ls_on:
                nxt = min(nxt, self._ls_next)
            for now in range(cur, nxt):
                self._process_arrivals(now)
                self._inject(now)
                self._launch_from_sources(now)
                self._allocate(now)
                if ls_on:
                    # End-of-cycle peak (see __init__): one vector max
                    # per cycle over the live occupancy.
                    np.maximum(ls_peak, self._occupancy_view(), out=ls_peak)
            cur = nxt
            if self._ts is not None and cur == self._win_next:
                self._flush_window(cur)
                self._win_next += self._ts.window
            if self._ls is not None and cur == self._ls_next:
                self._flush_ls_window(cur)
                self._ls_next += self._ls.window

    def _flush_window(self, now: int) -> None:
        """Record one time-series row covering ``[_win_start, now)``."""
        cycles = now - self._win_start
        if cycles <= 0:
            return
        ts = self._ts
        ts.record_window(
            self._ts_run,
            start=self._win_start,
            cycles=cycles,
            injected=self.injected - self._wp_injected,
            ejected=self.delivered - self._wp_delivered,
            lat_sum=self._lat_total - self._wp_lat,
            credit_stalls=self.credit_stalls - self._wp_stalls,
            forwarded=self.flits_forwarded - self._wp_fwd,
            occupancy=self.buffered_flits(),
            link_flits=self._ts_link_flits,
        )
        self._ts_link_flits[:] = 0
        self._wp_injected = self.injected
        self._wp_delivered = self.delivered
        self._wp_lat = self._lat_total
        self._wp_stalls = self.credit_stalls
        self._wp_fwd = self.flits_forwarded
        self._win_start = now

    def _occupancy_view(self):
        """Live per-link occupancy array (the fast core overrides this)."""
        return self.occupancy

    def _flush_ls_window(self, now: int) -> None:
        """Record one dense link-state row covering ``[_ls_start, now)``."""
        cycles = now - self._ls_start
        if cycles <= 0:
            return
        self._ls.record_window(
            self._ls_run,
            start=self._ls_start,
            cycles=cycles,
            forwarded=self._ls_fwd,
            credit_stalls=self._ls_stall,
            peak_occupancy=self._ls_peak,
        )
        nl = len(self._ls_fwd)
        self._ls_fwd = [0] * nl
        self._ls_stall = [0] * nl
        # Peak carries over: the next window opens at the occupancy the
        # last one closed at.  In place — _advance holds a reference.
        self._ls_peak[:] = self._occupancy_view()
        self._ls_start = now

    def _run_warmup(self) -> int:
        """Run warmup; returns the cycle measurement starts at.

        Fixed-budget runs (the default) simulate exactly
        ``config.warmup_cycles``.  With ``config.steady_state`` on, warmup
        proceeds in ``steady_window_cycles`` windows and ends at the first
        boundary past the nominal warmup where the windowed ejection rate
        and mean latency both test converged — extending up to
        ``max_warmup_cycles`` when they do not.
        """
        cfg = self.config
        if not cfg.steady_state:
            self._advance(0, cfg.warmup_cycles)
            return cfg.warmup_cycles
        w = cfg.steady_window_cycles
        hosts = max(1, len(self.active_hosts))
        rates: List[float] = []
        lats: List[float] = []
        prev_del = 0
        prev_lat = 0
        t = 0
        converged = False
        while True:
            self._advance(t, t + w)
            t += w
            d = self.delivered - prev_del
            rates.append(d / (w * hosts))
            lats.append(
                (self._lat_total - prev_lat) / d if d else float("nan")
            )
            prev_del = self.delivered
            prev_lat = self._lat_total
            converged = obs_timeseries.spans_converged(
                rates, cfg.steady_check_windows, cfg.steady_rel_tol
            ) and obs_timeseries.spans_converged(
                lats, cfg.steady_check_windows, cfg.steady_rel_tol
            )
            if t >= cfg.warmup_cycles and (
                converged or t + w > cfg.max_warmup_cycles
            ):
                break
        self._warmup_converged = converged
        return t

    def _samples_converged(self, n_done: int) -> bool:
        """True when the last ``steady_check_windows`` sample latencies
        all exist and agree within ``steady_rel_tol`` (relative spread)."""
        cfg = self.config
        m = cfg.steady_check_windows
        if n_done < max(2, m):
            return False
        means = []
        for i in range(n_done - m, n_done):
            if not self._sample_counts[i]:
                return False
            means.append(self._sample_sums[i] / self._sample_counts[i])
        lo, hi = min(means), max(means)
        mid = sum(means) / len(means)
        if mid == 0.0:
            return hi == lo
        return hi - lo <= cfg.steady_rel_tol * abs(mid)

    def run(self) -> SimResult:
        """Simulate warmup + measurement and return the run statistics.

        The cycle loop is chunked at sample boundaries (identical cycle
        sequence either way) so VC-occupancy sampling costs nothing per
        cycle: when telemetry is enabled the buffer occupancy is read once
        per sample window, never inside the hot loop.
        """
        cfg = self.config
        observe = metrics.enabled()
        t_wall = time.perf_counter()
        # Hide the measurement window until warmup actually ends — with
        # steady-state control its end is not known in advance.
        self._measure_start = 1 << 62
        warmup_used = self._run_warmup()
        self._measure_start = warmup_used
        self._warmup_used = warmup_used
        start = warmup_used
        n_done = 0
        for _ in range(cfg.n_samples):
            self._advance(start, start + cfg.sample_cycles)
            start += cfg.sample_cycles
            n_done += 1
            if observe:
                self._occupancy_samples.append(self.buffered_flits())
            if (
                cfg.steady_state
                and n_done < cfg.n_samples
                and self._samples_converged(n_done)
            ):
                break
        self._end_cycle = start
        self._measured_samples = n_done
        steady = self._warmup_converged if cfg.steady_state else None
        ts = self._ts
        if ts is not None:
            self._flush_window(start)  # the final, possibly partial window
            ts.annotate_run(
                self._ts_run,
                warmup_cycles_used=warmup_used,
                measured_samples=n_done,
                steady_converged=steady,
            )
        if self._ls is not None:
            self._flush_ls_window(start)  # the final, possibly partial window

        samples = tuple(
            (self._sample_sums[i] / self._sample_counts[i])
            if self._sample_counts[i]
            else float("nan")
            for i in range(n_done)
        )
        measured = sum(self._sample_counts)
        measured_cycles = n_done * cfg.sample_cycles
        saturated = any(
            (s != s) or s > cfg.saturation_latency for s in samples
        )
        mean_latency = (
            sum(self._sample_sums) / measured if measured else float("nan")
        )
        p50, p99 = latency_percentiles(self._latencies)
        util = np.asarray(self._link_flits) / measured_cycles
        active = max(1, len(self.active_hosts))
        # Wall-clock cycle throughput of this run (never part of the
        # deterministic result; recorded per engine for cross-engine
        # manifest comparisons).
        wall = time.perf_counter() - t_wall
        self.cycles_per_sec = self._end_cycle / wall if wall > 0 else 0.0
        if self._fs is not None:
            self._fs.record_run(
                self._fs_run, self._fs_pairs, self._latencies
            )
        reg = metrics.active()
        if reg is not None:
            self._publish_metrics(reg)
        stamp_latency_gauges(reg, p50, p99, mean_latency)
        return SimResult(
            injection_rate=self.rate,
            injected=self.injected,
            delivered=self.delivered,
            measured_delivered=measured,
            mean_latency=mean_latency,
            sample_latencies=samples,
            saturated=saturated,
            accepted_throughput=measured / (active * measured_cycles),
            n_active_hosts=len(self.active_hosts),
            latency_p50=p50,
            latency_p99=p99,
            max_link_utilisation=float(util.max()) if util.size else 0.0,
            mean_link_utilisation=float(util.mean()) if util.size else 0.0,
            config=cfg,
            warmup_cycles_used=warmup_used,
            measured_samples=n_done,
            steady_converged=steady,
        )

    def drain(self) -> int:
        """Stop injecting and run until every packet is delivered.

        Returns the number of extra cycles spent.  Raises
        :class:`SimulationError` if the network fails to empty within
        ``config.drain_max_cycles`` — with loop-free source routes and
        hop-indexed VCs that would indicate a deadlock, so this doubles as
        a deadlock-freedom check in tests.
        """
        cfg = self.config
        start = self._end_cycle
        for now in range(start, start + cfg.drain_max_cycles):
            if self.in_flight() == 0:
                return now - start
            self._process_arrivals(now)
            self._launch_from_sources(now)
            self._allocate(now)
        if self.in_flight() != 0:
            raise SimulationError(
                f"network failed to drain within {cfg.drain_max_cycles} cycles: "
                f"{self.in_flight()} packets stuck"
            )
        return cfg.drain_max_cycles

    # --------------------------------------------------------- telemetry
    def buffered_flits(self) -> int:
        """Flits currently occupying (input port, VC) buffer slots."""
        return len(self.free) * self.config.vc_buffer - sum(self.free)

    def _publish_metrics(self, reg) -> None:
        """Publish this run's tallies to the active metrics registry.

        The per-directed-link flit array is keyed by the path-selection
        scheme name, so one experiment that sweeps several schemes ends up
        with one aggregate utilization array per scheme — the raw material
        of the KSP-versus-rKSP link-load-imbalance report.
        """
        scheme = getattr(self.paths.selector, "name", "unknown")
        reg.counter("netsim.runs").inc()
        # Engine provenance + wall-clock throughput, keyed by engine name
        # so cross-engine manifests are distinguishable (compare-runs
        # refuses to gate timings across different engines).  The gauge
        # merges by max: it reports the run's peak cycles/sec per engine.
        reg.counter(f"netsim.engine_runs/{self.engine_name}").inc()
        cps = getattr(self, "cycles_per_sec", None)
        if cps:
            reg.gauge(f"netsim.cycles_per_sec/{self.engine_name}").set(cps)
        reg.counter("netsim.injected").inc(self.injected)
        reg.counter("netsim.delivered").inc(self.delivered)
        reg.counter("netsim.flits_forwarded").inc(self.flits_forwarded)
        reg.counter("netsim.credit_stalls").inc(self.credit_stalls)
        occupancy = reg.histogram("netsim.vc_occupancy")
        for sample in self._occupancy_samples:
            occupancy.observe(sample)
        reg.array(
            f"netsim.link_flits/{scheme}", self.topology.n_switch_links
        ).add(self._link_flits)
        if self.config.steady_state:
            reg.gauge("netsim.warmup_cycles_used").set(self._warmup_used)
            if self._warmup_used > self.config.warmup_cycles:
                reg.counter("netsim.steady_warmup_extended").inc()
            if self._measured_samples < self.config.n_samples:
                reg.counter("netsim.steady_early_stop").inc()

    # ------------------------------------------------------- diagnostics
    def in_flight(self) -> int:
        """Packets inside the network or its queues (conservation checks)."""
        queued = sum(len(q) for q in self.in_q)
        flying = len(self._arrivals)
        sourced = sum(len(q) for q in self.source_q.values())
        return queued + flying + sourced

    def check_conservation(self) -> None:
        """Raise if injected != delivered + in-flight (a lost/dup packet)."""
        if self.injected != self.delivered + self.in_flight():
            raise SimulationError(
                f"conservation violated: injected={self.injected}, "
                f"delivered={self.delivered}, in_flight={self.in_flight()}"
            )
