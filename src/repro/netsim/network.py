"""Static wiring of the simulated network.

Precomputes everything the per-cycle hot path needs as flat lists:

- per-switch port maps (output port ``p`` of switch ``s`` feeds neighbour
  ``adjacency[s][p]``; injection/ejection ports sit after the switch
  ports);
- the input port a flit lands on at the next switch (``peer_port``);
- directed link ids (shared with :class:`~repro.topology.Jellyfish`) for
  the adaptive mechanisms' occupancy estimates;
- conversion of a switch path + destination host into an output-port route.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.path import Path
from repro.errors import SimulationError
from repro.topology.jellyfish import Jellyfish

__all__ = ["NetworkWiring"]


class NetworkWiring:
    """Immutable port-level view of a Jellyfish for the simulator."""

    def __init__(self, topology: Jellyfish):
        self.topology = topology
        n = topology.n_switches
        y = topology.uplinks
        self.n_switches = n
        self.n_switch_ports = y
        self.hosts_per_switch = topology.hosts_per_switch
        # Ports 0..y-1: switch links in adjacency order.
        # Ports y..y+h-1: host links (injection inputs / ejection outputs).
        self.n_ports = y + topology.hosts_per_switch

        # port_of[s][t] = output port of s that reaches neighbour t.
        self.port_of: List[Dict[int, int]] = [
            {t: p for p, t in enumerate(topology.adjacency[s])} for s in range(n)
        ]
        # peer_port[s][p] = input-port index at the far end of (s, port p).
        self.peer_port: List[List[int]] = [
            [self.port_of[t][s] for t in topology.adjacency[s]] for s in range(n)
        ]
        # link_of[s][p] = directed link id of output port p of switch s.
        self.link_of: List[List[int]] = [
            [topology.link_id(s, t) for t in topology.adjacency[s]]
            for s in range(n)
        ]

    # ------------------------------------------------------------- routes
    def ejection_port(self, dst_host: int) -> int:
        """Output-port index of the destination host at its switch."""
        topo = self.topology
        return self.n_switch_ports + (dst_host % topo.hosts_per_switch)

    def injection_port(self, src_host: int) -> int:
        """Input-port index of the source host at its switch."""
        return self.n_switch_ports + (src_host % self.topology.hosts_per_switch)

    def route_ports(self, path: Path | Sequence[int], dst_host: int) -> Tuple[int, ...]:
        """Output-port route for a switch path ending at ``dst_host``.

        Entry ``i`` is the output port taken at the ``i``-th switch of the
        path; the last entry ejects to the host.
        """
        nodes = path.nodes if isinstance(path, Path) else tuple(path)
        if self.topology.switch_of_host(dst_host) != nodes[-1]:
            raise SimulationError(
                f"path ends at switch {nodes[-1]} but host {dst_host} is on "
                f"switch {self.topology.switch_of_host(dst_host)}"
            )
        ports = []
        for i in range(len(nodes) - 1):
            try:
                ports.append(self.port_of[nodes[i]][nodes[i + 1]])
            except KeyError:
                raise SimulationError(
                    f"path step {nodes[i]}->{nodes[i + 1]} is not a link"
                ) from None
        ports.append(self.ejection_port(dst_host))
        return tuple(ports)

    def first_link(self, path: Path | Sequence[int]) -> int:
        """Directed link id of a path's first switch hop (-1 if none)."""
        nodes = path.nodes if isinstance(path, Path) else tuple(path)
        if len(nodes) < 2:
            return -1
        return self.link_of[nodes[0]][self.port_of[nodes[0]][nodes[1]]]
