"""Simulator configuration (the paper's Booksim parameter block)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["SimConfig"]


@dataclass(frozen=True)
class SimConfig:
    """Knobs of the flit-level simulator, defaulted to the paper's values.

    Attributes
    ----------
    channel_latency:
        Cycles a flit spends on any channel (paper: 10).
    vc_buffer:
        Flit capacity of each (input port, VC) buffer (paper: 32).
    input_speedup:
        Flits one input port may forward per cycle (paper: router speedup
        2.0 — the crossbar, not the links, runs at twice line rate).
    warmup_cycles:
        Cycles simulated before statistics collection starts (paper: 500).
    sample_cycles:
        Length of one measurement sample (paper: 500).
    n_samples:
        Number of samples collected (paper: 10, i.e. 5000 cycles).
    saturation_latency:
        A run counts as saturated when any sample's average packet latency
        exceeds this (paper: 500 cycles).
    drain_max_cycles:
        Safety bound on extra cycles when draining in-flight packets for
        conservation checks (not part of the paper methodology).
    adaptive_estimate:
        Latency-estimate flavour for the adaptive mechanisms: ``"path"``
        (queued flits summed along the whole source route plus pipeline
        delay, the default) or ``"first"`` (classic UGAL-L first-channel
        queue x hops product; kept for the ablation study).
    steady_state:
        Opt-in convergence-driven run control (off by default — the
        paper's protocol is a fixed cycle budget).  When on, warmup runs
        in ``steady_window_cycles`` windows until the windowed ejection
        rate *and* mean latency both pass the moving-window convergence
        test of :func:`repro.obs.timeseries.spans_converged` —
        ``warmup_cycles`` becomes a floor and ``max_warmup_cycles`` the
        ceiling — and measurement ends early once the last
        ``steady_check_windows`` sample latencies agree within
        ``steady_rel_tol``.
    steady_window_cycles:
        Width of the convergence-test windows during warmup.
    steady_check_windows:
        Windows per comparison span: converged when the means of the two
        most recent spans of this many windows differ by at most
        ``steady_rel_tol`` (relative).
    steady_rel_tol:
        Relative tolerance of the convergence tests.
    max_warmup_cycles:
        Hard ceiling on auto-extended warmup; a run still not converged
        here starts measuring anyway (and is reported as such).
    engine:
        Simulator core: ``"fast"`` (the default array-native core of
        :mod:`repro.netsim.fastcore`) or ``"reference"`` (the original
        object-per-packet implementation, kept for audits).  Both produce
        byte-identical results; the equivalence suite pins this.
    batch_lanes:
        Maximum independent runs stepped in lock-step by the batched
        engine (:mod:`repro.netsim.batchcore`) when a grid packs cells
        into lanes.  ``1`` (the default) keeps every run on the plain
        per-run engine.  Lanes require the array-native core underneath,
        so ``batch_lanes > 1`` with ``engine="reference"`` is a
        configuration error rather than a silent per-cell fallback.
    linkstate:
        Declare that runs under this config must capture dense per-link
        state (:mod:`repro.obs.linkstate`).  Capture itself is keyed off
        the module recorder — any engine records windows whenever
        ``repro.obs.linkstate`` is enabled, exactly like the metrics and
        trace subsystems — but with ``linkstate=True`` a simulator built
        *without* an active recorder raises
        :class:`~repro.errors.ConfigurationError` instead of silently
        dropping the forensic record the caller asked for.
    flowstats:
        Declare that runs under this config must capture per-(src,dst)
        flow telemetry (:mod:`repro.obs.flowstats`).  Same contract as
        ``linkstate``: capture is keyed off the module recorder, and
        ``flowstats=True`` without an active recorder raises
        :class:`~repro.errors.ConfigurationError` instead of silently
        dropping the per-pair record the caller asked for.
    """

    channel_latency: int = 10
    vc_buffer: int = 32
    input_speedup: int = 2
    warmup_cycles: int = 500
    sample_cycles: int = 500
    n_samples: int = 10
    saturation_latency: float = 500.0
    drain_max_cycles: int = 20_000
    adaptive_estimate: str = "path"
    steady_state: bool = False
    steady_window_cycles: int = 100
    steady_check_windows: int = 4
    steady_rel_tol: float = 0.05
    max_warmup_cycles: int = 8_000
    engine: str = "fast"
    batch_lanes: int = 1
    linkstate: bool = False
    flowstats: bool = False

    def __post_init__(self):
        if self.engine not in ("fast", "reference"):
            raise ConfigurationError(
                f'engine must be "fast" or "reference", got {self.engine!r}'
            )
        if self.batch_lanes < 1:
            raise ConfigurationError(
                f"batch_lanes must be >= 1, got {self.batch_lanes}"
            )
        if self.batch_lanes > 1 and self.engine == "reference":
            raise ConfigurationError(
                'engine="reference" cannot step batched lanes: the batched '
                "engine is built on the array-native fast core. Use "
                'engine="fast" with batch_lanes, or batch_lanes=1 to run '
                "the reference core per cell."
            )
        for name in (
            "channel_latency",
            "vc_buffer",
            "input_speedup",
            "sample_cycles",
            "n_samples",
            "steady_window_cycles",
            "steady_check_windows",
        ):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")
        if self.warmup_cycles < 0:
            raise ConfigurationError("warmup_cycles must be >= 0")
        if self.saturation_latency <= 0:
            raise ConfigurationError("saturation_latency must be > 0")
        if self.steady_rel_tol <= 0:
            raise ConfigurationError("steady_rel_tol must be > 0")
        if self.max_warmup_cycles < self.warmup_cycles:
            raise ConfigurationError(
                "max_warmup_cycles must be >= warmup_cycles"
            )

    @property
    def measure_cycles(self) -> int:
        """Total measured cycles (samples x sample length)."""
        return self.sample_cycles * self.n_samples

    @property
    def total_cycles(self) -> int:
        """Warmup plus measurement."""
        return self.warmup_cycles + self.measure_cycles
