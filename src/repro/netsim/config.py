"""Simulator configuration (the paper's Booksim parameter block)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["SimConfig"]


@dataclass(frozen=True)
class SimConfig:
    """Knobs of the flit-level simulator, defaulted to the paper's values.

    Attributes
    ----------
    channel_latency:
        Cycles a flit spends on any channel (paper: 10).
    vc_buffer:
        Flit capacity of each (input port, VC) buffer (paper: 32).
    input_speedup:
        Flits one input port may forward per cycle (paper: router speedup
        2.0 — the crossbar, not the links, runs at twice line rate).
    warmup_cycles:
        Cycles simulated before statistics collection starts (paper: 500).
    sample_cycles:
        Length of one measurement sample (paper: 500).
    n_samples:
        Number of samples collected (paper: 10, i.e. 5000 cycles).
    saturation_latency:
        A run counts as saturated when any sample's average packet latency
        exceeds this (paper: 500 cycles).
    drain_max_cycles:
        Safety bound on extra cycles when draining in-flight packets for
        conservation checks (not part of the paper methodology).
    adaptive_estimate:
        Latency-estimate flavour for the adaptive mechanisms: ``"path"``
        (queued flits summed along the whole source route plus pipeline
        delay, the default) or ``"first"`` (classic UGAL-L first-channel
        queue x hops product; kept for the ablation study).
    """

    channel_latency: int = 10
    vc_buffer: int = 32
    input_speedup: int = 2
    warmup_cycles: int = 500
    sample_cycles: int = 500
    n_samples: int = 10
    saturation_latency: float = 500.0
    drain_max_cycles: int = 20_000
    adaptive_estimate: str = "path"

    def __post_init__(self):
        for name in (
            "channel_latency",
            "vc_buffer",
            "input_speedup",
            "sample_cycles",
            "n_samples",
        ):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")
        if self.warmup_cycles < 0:
            raise ConfigurationError("warmup_cycles must be >= 0")
        if self.saturation_latency <= 0:
            raise ConfigurationError("saturation_latency must be > 0")

    @property
    def measure_cycles(self) -> int:
        """Total measured cycles (samples x sample length)."""
        return self.sample_cycles * self.n_samples

    @property
    def total_cycles(self) -> int:
        """Warmup plus measurement."""
        return self.warmup_cycles + self.measure_cycles
