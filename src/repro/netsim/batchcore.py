"""Batched multi-lane engine: N independent runs in lock-step numpy lanes.

:class:`BatchSimulator` is the third engine tier.  It takes the fast
core's flat state — the structure-of-arrays packet store, ring-buffer VC
FIFOs, CSR route tables and calendar-queue arrivals of
:mod:`repro.netsim.fastcore` — and adds a leading batch dimension: N
independent runs (differing in injection rate, seed and/or routing
mechanism over one shared topology and path cache) advance through the
four-phase router together, one pass of vectorized numpy work per cycle
instead of one Python cycle loop per run.

The batch is laid out as a *union network*: lane ``l`` owns the flat
buffer range ``[l * n_bufs, (l + 1) * n_bufs)``, the link range
``[l * n_links, (l + 1) * n_links)`` and the switch-slot range
``[l * n_switches, (l + 1) * n_switches)``, so one ascending scan of the
union arrays visits every lane's buffers in exactly the per-lane order
the serial engines use.  Per-phase strategy:

- **arrivals** — at most one flit lands in any buffer per cycle (one
  launch per host, one grant per output port), so the whole calendar
  bucket is processed with vectorized scatters; per-lane statistics fall
  out of ``bincount`` over the packet store's lane column;
- **injection / launch** — every lane keeps its own
  ``numpy.random.Generator`` and makes exactly the serial per-cycle call
  sequence on it (``random(n_hosts)``, ``dests``, and the fast core's
  batched Lemire replay :func:`repro.netsim.fastcore.draw_batch`), so
  each lane's RNG stream is bit-identical to its serial run;
- **allocation** — a cycle is *clean* when every head-of-line request
  has downstream credit, no two requests share an output port, and no
  input port exceeds its speedup; clean cycles (the common case below
  saturation) grant every request in one vectorized pass.  Contended
  cycles fall back to an exact sequential sweep of the union network
  that reproduces the fast core's per-switch arbitration — including
  rotating round-robin pointers and within-cycle credit visibility —
  switch slot by switch slot in ascending (= per-lane serial) order.

Everything a run *emits* is per-lane byte-identical to a serial
fast-engine run: ``SimResult`` fields, path-cache hit/miss counts, final
RNG states, metrics snapshots and time-series rows.  Telemetry is
tallied per lane during the lock-step run and replayed per lane, in lane
order, at publish time — reproducing the exact call sequence N serial
runs would have made (``tests/test_batchcore_equivalence.py`` pins all
of it).

Deliberate scope limits (each raises :class:`ConfigurationError` rather
than silently diverging): fixed-budget run control only (no
``steady_state``), no flight-recorder tracing, and only mechanisms with
an array-native implementation (``sp``, ``random``, ``round_robin``,
``ksp_ugal``, ``ksp_adaptive``) — vanilla UGAL composes Valiant routes
mid-run through its mechanism object, which a shared-table batch cannot
replay.  The grid runner (:mod:`repro.netsim.parallel`) falls back to
per-cell execution for those cells.

Lanes that finish draining early are masked out of the drain loop, and
the allocator's scan compacts to the rows of still-active lanes once any
lane has drained, so a batch's drain cost tracks its live occupancy.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cache import PathCache
from repro.errors import ConfigurationError, SimulationError
from repro.netsim.config import SimConfig
from repro.netsim.fastcore import _tables_for, draw_batch
from repro.netsim.mechanisms import make_mechanism
from repro.netsim.network import NetworkWiring
from repro.netsim.stats import latency_percentiles, stamp_latency_gauges
from repro.netsim.simulator import (
    PatternTraffic,
    SimResult,
    UniformTraffic,
)
from repro.obs import flowstats as obs_flowstats
from repro.obs import linkstate as obs_linkstate
from repro.obs import metrics
from repro.obs import timeseries as obs_timeseries
from repro.obs import trace as obs_trace
from repro.topology.jellyfish import Jellyfish
from repro.utils.rng import SeedLike, ensure_rng

__all__ = [
    "BatchLane",
    "BatchSimulator",
    "BATCHABLE_MECHANISMS",
    "lane_vc_count",
]

#: Mechanisms with an array-native batched implementation.  Vanilla UGAL
#: ("ugal") builds composite Valiant routes through its mechanism object
#: at launch time and is excluded; the grid runner keeps such cells on
#: the per-run fast engine.
BATCHABLE_MECHANISMS = ("sp", "random", "round_robin", "ksp_ugal", "ksp_adaptive")

#: Per-mechanism launch draw plan: (draws per multi-path choose, skip the
#: draw for single-path pairs, bound offset) — mirrors the fast core.
_DRAW_PLAN: Dict[str, Tuple[int, bool, int]] = {
    "sp": (0, True, 0),
    "round_robin": (0, True, 0),
    "random": (1, False, 0),
    "ksp_ugal": (1, True, 1),
    "ksp_adaptive": (2, True, 0),
}


def lane_vc_count(
    topology: Jellyfish,
    paths: PathCache,
    mechanism: str,
    config: SimConfig = SimConfig(),
) -> int:
    """The VC count a lane with this mechanism and cache state would use.

    All lanes of one batch share a buffer layout, so the grid runner
    groups cells by ``(scheme, lane_vc_count(...))`` before packing them
    into batches.  Assumes the cache is already warmed for the traffic
    the lanes carry (the grid warms every pattern's pairs up front);
    construction of the probe mechanism touches neither the cache nor
    the metrics registry.
    """
    mech = make_mechanism(
        mechanism,
        NetworkWiring(topology),
        paths,
        np.zeros(topology.n_links, dtype=np.int64),
        ensure_rng(0),
        estimate=config.adaptive_estimate,
        channel_latency=config.channel_latency,
    )
    return max(paths.max_hops(), mech.max_route_hops()) + 1


@dataclass(frozen=True)
class BatchLane:
    """One lane of a batch: a run's mechanism, traffic, rate and seed."""

    mechanism: str
    traffic: UniformTraffic | PatternTraffic
    injection_rate: float
    seed: SeedLike = 0


class BatchSimulator:
    """N independent fast-engine runs stepped in lock-step (see module doc).

    Parameters
    ----------
    topology / paths:
        Shared by every lane; the path cache is warmed per lane in lane
        order, so its hit/miss evolution matches N sequential serial
        constructions.
    lanes:
        One :class:`BatchLane` per run.  All lanes must agree on the VC
        count their mechanism implies (the grid runner groups cells by
        it); a disagreement raises :class:`ConfigurationError`.
    config / collect_occupancy:
        Shared simulator parameters (fixed-budget only).  VC-occupancy
        samples are collected when the metrics registry is enabled at
        ``run()`` time, exactly like the serial engines.
    """

    engine_name = "batched"

    def __init__(
        self,
        topology: Jellyfish,
        paths: PathCache,
        lanes: Sequence[BatchLane],
        config: SimConfig = SimConfig(),
        ):
        if not lanes:
            raise ConfigurationError("a batch needs at least one lane")
        if config.engine == "reference":
            raise ConfigurationError(
                'engine="reference" cannot step batched lanes: the batched '
                "engine is built on the array-native fast core"
            )
        if config.steady_state:
            raise ConfigurationError(
                "the batched engine supports fixed-budget run control only; "
                "run steady_state cells per-run on the fast engine"
            )
        if obs_trace.active() is not None:
            raise ConfigurationError(
                "the flight recorder traces one run at a time; run traced "
                "cells per-run on the fast engine"
            )
        for lane in lanes:
            if not (0.0 < lane.injection_rate <= 1.0):
                raise ConfigurationError(
                    f"injection_rate must be in (0, 1], got {lane.injection_rate}"
                )
            if lane.mechanism not in _DRAW_PLAN:
                raise ConfigurationError(
                    f"mechanism {lane.mechanism!r} has no batched "
                    f"implementation (batchable: {BATCHABLE_MECHANISMS})"
                )

        self.topology = topology
        self.paths = paths
        self.config = config
        self.lanes = list(lanes)
        self.wiring = NetworkWiring(topology)
        N = len(self.lanes)
        self._n = N

        # Per-lane construction in lane order, mirroring N sequential
        # Simulator.__init__ calls: warm the cache for the lane's traffic
        # (counting hits/misses exactly as the serial engine's precompute
        # does — the registry side of those counts is captured per lane
        # and replayed at publish time), then derive the VC count from
        # the store the lane would have seen.
        self.rngs: List[np.random.Generator] = []
        self._rates: List[float] = []
        self._traffics = []
        self._pre_snaps: List[dict] = []
        self._mech_names: List[str] = []
        n_vcs_per_lane: List[int] = []
        occ_dummy = np.zeros(topology.n_links, dtype=np.int64)
        for lane in self.lanes:
            rng = ensure_rng(lane.seed)
            with metrics.capture() as mreg:
                paths.precompute(lane.traffic.switch_pairs(topology))
                mech = make_mechanism(
                    lane.mechanism,
                    self.wiring,
                    paths,
                    occ_dummy,
                    rng,
                    estimate=config.adaptive_estimate,
                    channel_latency=config.channel_latency,
                )
            self._pre_snaps.append(mreg.snapshot())
            n_vcs_per_lane.append(
                max(paths.max_hops(), mech.max_route_hops()) + 1
            )
            self.rngs.append(rng)
            self._rates.append(float(lane.injection_rate))
            self._traffics.append(lane.traffic)
            self._mech_names.append(lane.mechanism)
        if len(set(n_vcs_per_lane)) != 1:
            raise ConfigurationError(
                "lanes disagree on the VC count "
                f"({sorted(set(n_vcs_per_lane))}); group lanes by "
                "(scheme, n_vcs) — mechanisms with different route-hop "
                "bounds cannot share one buffer layout"
            )
        self.n_vcs = n_vcs_per_lane[0]

        n_sw = topology.n_switches
        self.n_ports = self.wiring.n_ports
        self._stride = self.n_ports * self.n_vcs
        self._n_sw = n_sw
        n_bufs = n_sw * self._stride
        self._n_bufs = n_bufs
        self._n_links = topology.n_links
        self._n_sl = topology.n_switch_links
        cap = config.vc_buffer
        self._cap = cap

        # Union-network state: lane-major flat arrays (see module doc).
        self._flen = np.zeros(N * n_bufs, dtype=np.int64)
        self._fhead = np.zeros(N * n_bufs, dtype=np.int64)
        self._fifo = np.zeros(N * n_bufs * cap, dtype=np.int64)
        self._free = np.full(N * n_bufs, cap, dtype=np.int64)
        self._req_out = np.zeros(N * n_bufs, dtype=np.int64)
        self._req_nxt = np.zeros(N * n_bufs, dtype=np.int64)
        self._req_link = np.zeros(N * n_bufs, dtype=np.int64)
        self._inport_g = (np.arange(N * n_bufs, dtype=np.int64) % self._stride) // self.n_vcs
        self._rr = np.zeros(N * n_sw * self.n_ports, dtype=np.int64)
        self._occ = np.zeros(N * self._n_links, dtype=np.int64)
        self._link_flits = np.zeros(N * self._n_sl, dtype=np.int64)
        self._lane_starts = np.arange(N, dtype=np.int64) * n_bufs

        # Calendar queue shared across lanes (packets carry their lane).
        self._calP = config.channel_latency + 1
        self._cal: List[List[int]] = [[] for _ in range(self._calP)]
        self._cl = config.channel_latency

        # SoA packet store with a lane column; capacity doubles on demand.
        self._pk_cap = 1024
        z = lambda: np.zeros(self._pk_cap, dtype=np.int64)  # noqa: E731
        self._pk_rid = z()
        self._pk_hop = z()
        self._pk_t0 = z()
        self._pk_link = z()
        self._pk_dst = z()
        self._pk_dest = z()
        self._pk_lane = z()
        self._pk_src = z()
        self._pk_n = 0
        self._pk_free: List[int] = []

        # Host lookup tables (within-lane; launch adds the lane offset).
        wiring = self.wiring
        n_hosts = topology.n_hosts
        self._host_sw = [topology.switch_of_host(h) for h in range(n_hosts)]
        self._host_buf = [
            self._host_sw[h] * self._stride
            + wiring.injection_port(h) * self.n_vcs
            for h in range(n_hosts)
        ]
        self._eject_of = [wiring.ejection_port(h) for h in range(n_hosts)]
        self._eject_np = np.asarray(self._eject_of, dtype=np.int64)
        self._host_buf_np = np.asarray(self._host_buf, dtype=np.int64)

        # Shared CSR route tables + prebuilt pair records for every pair
        # any lane's traffic can use.  Records are built straight from the
        # warmed store (no counters): the serial fast core also builds
        # them outside the per-launch hit mirroring, counting exactly one
        # hit per launch — which the batch tallies per lane below.
        self._t = _tables_for(paths, wiring, self.n_vcs, self._stride, n_sw)
        for lane in self.lanes:
            for s, d in lane.traffic.switch_pairs(topology):
                if s * n_sw + d not in self._t.pair:
                    ps = paths.peek(s, d)
                    if ps is None:  # precompute above warmed every pair
                        raise KeyError((s, d))
                    self._t.pair_record(s, d, ps)
        self._rf_len = -1
        self._n_routes = -1
        self._refresh_tables()

        # Per-lane run state.  The source queues stay dicts of deques
        # (serial iteration order is dict insertion order — the order
        # hosts first inject — and the RNG draw sequence depends on it),
        # but the launch gather scans a mirror: ``_qord`` records each
        # lane's hosts in that same insertion order and ``_qlen`` holds
        # per-(lane, host) queue depths, so finding the nonempty queues
        # is one vector compare instead of a dict walk.
        self._hosts = [t.sources() for t in self._traffics]
        self._srcq: List[Dict[int, deque]] = [{} for _ in range(N)]
        self._n_hostsG = len(self._host_buf)
        self._qlen = np.zeros(N * self._n_hostsG, dtype=np.int64)
        self._qord: List[List[int]] = [[] for _ in range(N)]
        self._qord_np: List[Optional[np.ndarray]] = [None] * N
        # Fixed-destination lanes (single-flow pattern traffic): every
        # packet from host h targets the same destination, so the
        # host -> pair-row mapping is a per-lane constant and the whole
        # launch gather (pair lookup, draw bounds) becomes array math.
        self._fixed_dst: List[Optional[np.ndarray]] = []
        for t in self._traffics:
            fd = None
            if isinstance(t, PatternTraffic):
                src = t.sources()
                if src.size and bool((t._counts[src] == 1).all()):
                    fd = np.full(self._n_hostsG, -1, dtype=np.int64)
                    fd[src] = t._flat[t._offsets[src]]
            self._fixed_dst.append(fd)
        self._hrow = np.full(N * self._n_hostsG, -1, dtype=np.int64)
        # Fixed-destination lanes outside round-robin store bare create
        # times in their source queues (the destination is derivable),
        # and only ever launch through :meth:`_launch_fixed`.
        self._q_ints = [
            fd is not None and m != "round_robin"
            for fd, m in zip(self._fixed_dst, self._mech_names)
        ]
        self._rr_flow: List[Dict[Tuple[int, int], int]] = [{} for _ in range(N)]
        self._plans = [_DRAW_PLAN[m] for m in self._mech_names]
        # Occupancy view for the scalar chooser fallback (tiny launch
        # sets); the vectorized launch reads ``_occ`` directly.
        self._occ_l = self._occ
        self._est_first = config.adaptive_estimate == "first"
        self._live: List[int] = list(range(N))

        # Padded per-pair route tables for the vectorized launch path:
        # one row per pair record, columns are candidate paths (route id,
        # hop count, first link, canonical rank).  Rows materialise on
        # first use; width grows if a record ever exceeds it.  The dict
        # maps pair key -> (row, k, rec) so the launch gather does one
        # lookup per launcher.
        self._pairx: Dict[int, tuple] = {}
        self._pend: Optional[list] = None
        self._row_n = 0
        self._row_cap = 0
        self._kmax = 8
        self._rk = np.zeros(0, dtype=np.int64)
        self._rrids = np.zeros((0, self._kmax), dtype=np.int64)
        self._rhops = np.zeros((0, self._kmax), dtype=np.int64)
        self._rflink = np.zeros((0, self._kmax), dtype=np.int64)
        self._rrank = np.zeros((0, self._kmax), dtype=np.int64)

        # Per-lane statistics (bincount-updatable int64 columns).
        self._injected = np.zeros(N, dtype=np.int64)
        self._delivered = np.zeros(N, dtype=np.int64)
        self._lat_total = np.zeros(N, dtype=np.int64)
        self._stalls = np.zeros(N, dtype=np.int64)
        self._fwd = np.zeros(N, dtype=np.int64)
        self._n_sourced = np.zeros(N, dtype=np.int64)
        self._n_flying = np.zeros(N, dtype=np.int64)
        self._n_buffered = np.zeros(N, dtype=np.int64)
        self._lane_hits = np.zeros(N, dtype=np.int64)
        self._lazy_snaps: List[List[dict]] = [[] for _ in range(N)]
        self._draining = False
        self._pub: Optional[dict] = None
        self._occ_samples: List[List[int]] = [[] for _ in range(N)]
        self._measure_start = config.warmup_cycles
        self._sample_sums = np.zeros((N, config.n_samples), dtype=np.float64)
        self._sample_counts = np.zeros((N, config.n_samples), dtype=np.int64)
        self._mlat_lane: List[int] = []
        self._mlat_val: List[int] = []
        self._end_cycle = config.total_cycles

        # Windowed time-series: rows are buffered per lane during the
        # lock-step run and replayed per lane at publish time, so the
        # recorder sees the exact call sequence of N serial runs.
        ts = obs_timeseries.active()
        self._ts = ts
        self._track_lat = ts is not None
        self._win_start = 0
        self._win_next = ts.window if ts is not None else 0
        self._ts_rows: List[List[dict]] = [[] for _ in range(N)]
        self._ts_ann: Optional[dict] = None
        scheme = getattr(paths.selector, "name", "unknown")
        self._scheme = scheme
        self._ts_meta = [
            dict(
                scheme=scheme,
                mechanism=self._mech_names[i],
                rate=self._rates[i],
                n_hosts=n_hosts,
                warmup_cycles=config.warmup_cycles,
                channel_latency=config.channel_latency,
            )
            for i in range(N)
        ]
        if ts is not None:
            self._ts_linkf = np.zeros(N * self._n_sl, dtype=np.int64)
            self._wp_injected = np.zeros(N, dtype=np.int64)
            self._wp_delivered = np.zeros(N, dtype=np.int64)
            self._wp_lat = np.zeros(N, dtype=np.int64)
            self._wp_stalls = np.zeros(N, dtype=np.int64)
            self._wp_fwd = np.zeros(N, dtype=np.int64)
        else:
            self._ts_linkf = None

        # Dense link-state capture: union tallies over the lane-major
        # link range, rows buffered per lane and replayed at publish
        # time like the time-series rows.  Peak is the end-of-cycle
        # maximum (see Simulator.__init__) — order-independent, so the
        # vectorized grant pass needs no serial replay.
        lsr = obs_linkstate.active()
        if lsr is None and config.linkstate:
            raise ConfigurationError(
                "SimConfig(linkstate=True) requires an active link-state "
                "recorder: enable repro.obs.linkstate (or use its capture() "
                "context) before building the batched engine"
            )
        self._ls = lsr
        self._ls_start = 0
        self._ls_next = lsr.window if lsr is not None else 0
        self._ls_rows: List[List[dict]] = [[] for _ in range(N)]
        self._inj_lbase = topology.injection_link_base
        self._ej_lbase = topology.ejection_link_base
        if lsr is not None:
            nlk = self._n_links
            self._ls_fwd = np.zeros(N * nlk, dtype=np.int64)
            self._ls_stall = np.zeros(N * nlk, dtype=np.int64)
            self._ls_peak = np.zeros(N * nlk, dtype=np.int64)
            self._ls_ep = obs_linkstate.link_endpoints(topology)
            self._ls_meta = [
                dict(
                    scheme=scheme,
                    mechanism=self._mech_names[i],
                    rate=self._rates[i],
                    n_hosts=n_hosts,
                    n_links=nlk,
                    warmup_cycles=config.warmup_cycles,
                    channel_latency=config.channel_latency,
                )
                for i in range(N)
            ]
        else:
            self._ls_fwd = self._ls_stall = self._ls_peak = None

        # Per-(src,dst) flow capture: ejections tally their pair id next
        # to the measured-latency samples, split per lane and replayed
        # into the recorder at publish time like the rows above.
        fsr = obs_flowstats.active()
        if fsr is None and config.flowstats:
            raise ConfigurationError(
                "SimConfig(flowstats=True) requires an active flow-stats "
                "recorder: enable repro.obs.flowstats (or use its capture() "
                "context) before building the batched engine"
            )
        self._fs_on = fsr is not None
        self._mlat_pair: List[int] = []
        if self._fs_on:
            self._fs_ep = obs_flowstats.pair_endpoints(n_hosts)
            self._fs_meta = [
                dict(
                    scheme=scheme,
                    mechanism=self._mech_names[i],
                    rate=self._rates[i],
                    n_hosts=n_hosts,
                    n_pairs=n_hosts * n_hosts,
                    n_bins=obs_flowstats.latency_bins(config),
                    warmup_cycles=config.warmup_cycles,
                    channel_latency=config.channel_latency,
                )
                for i in range(N)
            ]

        # Allocation scratch reused across slots and cycles.
        self._port_cands: List[List[Tuple[int, int]]] = [
            [] for _ in range(self.n_ports)
        ]
        self._touched: List[int] = []
        self._gin = [0] * self.n_ports
        self._gwin: List[int] = []
        # Clean-granted buffers of the current cycle (mixed clean/dirty
        # cycles only): the dirty sweep corrects its credit view with it.
        self._popped = np.zeros(N * n_bufs, dtype=bool)
        self._n_slots = N * self._n_sw
        self._n_okeys = self._n_slots * self.n_ports

    # ------------------------------------------------------------- tables
    def _refresh_tables(self) -> None:
        """(Re)build numpy mirrors of the shared CSR route tables.

        The per-hop arrays get one sentinel slot so ejection rows (whose
        base offset may point one past the end) can be clipped instead of
        branched.  Mirrors refresh whenever the shared tables grew (e.g.
        a serial run on the same cache added routes between batches).
        """
        t = self._t
        if self._rf_len == len(t.rf_out) and self._n_routes == len(t.r_off):
            return
        self._rf_len = len(t.rf_out)
        self._n_routes = len(t.r_off)
        self._rf_out_np = np.asarray(t.rf_out + [0], dtype=np.int64)
        self._rf_nxt_np = np.asarray(t.rf_nxt + [0], dtype=np.int64)
        self._rf_link_np = np.asarray(t.rf_link + [0], dtype=np.int64)
        self._r_off_np = np.asarray(t.r_off, dtype=np.int64)
        self._r_hops_np = np.asarray(t.r_hops, dtype=np.int64)
        # Highest VC any route step can occupy (hop-indexed VCs: a flit
        # at hop h sits in VC h, so the table's next-buffer VC components
        # bound the occupied ladder depth).  ``n_vcs`` itself is sized to
        # the mechanism's worst-case bound — often far deeper than any
        # cached route — and the active scan only needs to look at the
        # prefix that can ever hold a flit (injection uses VC 0).
        nx = self._rf_nxt_np[:-1]
        nx = nx[nx >= 0]
        self._vc_used = int((nx % self.n_vcs).max()) + 1 if nx.size else 1
        # Padded per-route link matrix for the vectorized whole-path
        # occupancy sum: row r holds route r's link ids, zero-masked
        # past its hop count.
        if self._n_routes:
            hmax = max(1, int(self._r_hops_np.max()))
            cols = np.arange(hmax, dtype=np.int64)[None, :]
            pos = self._r_off_np[:, None] + cols
            valid = cols < self._r_hops_np[:, None]
            self._plink = np.where(
                valid, self._rf_link_np[np.minimum(pos, self._rf_len)], 0
            )
            self._pmask = valid.astype(np.int64)
        else:
            self._plink = np.zeros((0, 1), dtype=np.int64)
            self._pmask = np.zeros((0, 1), dtype=np.int64)

    # ------------------------------------------------------- packet store
    def _ensure_pk(self, need: int) -> None:
        if need <= self._pk_cap:
            return
        cap = self._pk_cap
        while cap < need:
            cap *= 2
        for name in (
            "_pk_rid", "_pk_hop", "_pk_t0", "_pk_link",
            "_pk_dst", "_pk_dest", "_pk_lane", "_pk_src",
        ):
            grown = np.zeros(cap, dtype=np.int64)
            old = getattr(self, name)
            grown[: self._pk_n] = old[: self._pk_n]
            setattr(self, name, grown)
        self._pk_cap = cap

    # ------------------------------------------------------------- phases
    def _refresh_memo(self, bufs: np.ndarray, pids: np.ndarray) -> None:
        """Vectorized head-of-line request memo refresh for ``bufs``."""
        rid = self._pk_rid[pids]
        hop = self._pk_hop[pids]
        fwd = hop < self._r_hops_np[rid]
        base = np.minimum(self._r_off_np[rid] + hop, self._rf_len)
        lane = bufs // self._n_bufs
        self._req_out[bufs] = np.where(
            fwd, self._rf_out_np[base], self._eject_np[self._pk_dst[pids]]
        )
        self._req_nxt[bufs] = np.where(
            fwd, self._rf_nxt_np[base] + lane * self._n_bufs, -1
        )
        # Ejection heads leave the link memo untouched (stale, unread) —
        # exactly the serial engines' behaviour.
        self._req_link[bufs] = np.where(
            fwd, self._rf_link_np[base] + lane * self._n_links,
            self._req_link[bufs],
        )

    def _process_arrivals(self, now: int) -> None:
        bucket = self._cal[now % self._calP]
        if not bucket:
            return
        N = self._n
        # Buckets hold chunks: pid arrays from the vectorized grant and
        # launch paths plus bare ints from the sequential sweep.  Merge
        # order is immaterial — arrivals land in distinct buffers and
        # every statistic below is a sum, count or percentile.
        if len(bucket) == 1 and type(bucket[0]) is np.ndarray:
            pids = bucket[0]
        else:
            arrs: List[np.ndarray] = []
            ints: List[int] = []
            for chunk in bucket:
                if type(chunk) is np.ndarray:
                    arrs.append(chunk)
                else:
                    ints.append(chunk)
            if ints:
                arrs.append(np.asarray(ints, dtype=np.int64))
            pids = arrs[0] if len(arrs) == 1 else np.concatenate(arrs)
        bucket.clear()
        dest = self._pk_dest[pids]
        lanes = self._pk_lane[pids]
        self._n_flying -= np.bincount(lanes, minlength=N)
        ej = dest < 0
        if ej.any():
            epids = pids[ej]
            elanes = lanes[ej]
            lat = now - self._pk_t0[epids]
            ecnt = np.bincount(elanes, minlength=N)
            self._delivered += ecnt
            if self._track_lat:
                # bincount's float64 accumulator is exact here: per-cycle
                # latency sums stay far below 2**53.
                self._lat_total += np.bincount(
                    elanes, weights=lat, minlength=N
                ).astype(np.int64)
            t = now - self._measure_start
            if 0 <= t < self.config.measure_cycles:
                s = t // self.config.sample_cycles
                self._sample_sums[:, s] += np.bincount(
                    elanes, weights=lat, minlength=N
                ).astype(np.int64)
                self._sample_counts[:, s] += ecnt
                self._mlat_lane.extend(elanes.tolist())
                self._mlat_val.extend(lat.tolist())
                if self._fs_on:
                    self._mlat_pair.extend(
                        (
                            self._pk_src[epids] * self._n_hostsG
                            + self._pk_dst[epids]
                        ).tolist()
                    )
            self._pk_free.extend(epids.tolist())
        enq = ~ej
        if enq.any():
            qpids = pids[enq]
            idx = dest[enq]
            # At most one flit lands in any buffer per cycle (one launch
            # per host, one grant per output port), so plain fancy
            # scatters are exact.
            length = self._flen[idx]
            pos = self._fhead[idx] + length
            pos -= self._cap * (pos >= self._cap)
            self._fifo[idx * self._cap + pos] = qpids
            self._flen[idx] = length + 1
            self._n_buffered += np.bincount(lanes[enq], minlength=N)
            new = length == 0
            if new.any():
                self._refresh_memo(idx[new], qpids[new])

    def _inject_all(self, now: int) -> None:
        for lane in self._live:
            rng = self.rngs[lane]
            hosts = self._hosts[lane]
            draws = rng.random(len(hosts)) < self._rates[lane]
            if not draws.any():
                continue
            srcs = hosts[draws]
            # The dests draw always runs (RNG parity with serial), even
            # when every source has a single fixed destination.
            dsts = self._traffics[lane].dests(srcs, rng)
            srcq = self._srcq[lane]
            qord = self._qord[lane]
            if self._q_ints[lane]:
                for h in srcs.tolist():
                    q = srcq.get(h)
                    if q is None:
                        q = srcq[h] = deque()
                        qord.append(h)
                        self._qord_np[lane] = None
                    q.append(now)
            else:
                for h, dst in zip(srcs.tolist(), dsts.tolist()):
                    q = srcq.get(h)
                    if q is None:
                        q = srcq[h] = deque()
                        qord.append(h)
                        self._qord_np[lane] = None
                    q.append((now, dst))
            self._qlen[lane * self._n_hostsG + srcs] += 1
            self._injected[lane] += len(srcs)
            self._n_sourced[lane] += len(srcs)

    def _launch_all(self, now: int) -> None:
        todo = [lane for lane in self._live if self._n_sourced[lane]]
        if not todo:
            return
        # Lanes gather (and draw their RNG values) strictly in lane
        # order; large vectorizable launch tails are deferred and
        # flushed as one merged scatter per mechanism.  Deferral only
        # reorders freelist pops across lanes, which changes internal
        # pid values and nothing observable: every per-pid write lands
        # in per-packet or per-buffer cells, and no statistic reads the
        # pid value itself.
        pend = self._pend = []
        for lane in todo:
            self._launch_lane(lane, now)
        self._pend = None
        if pend:
            self._flush_launches(now, pend)

    def _flush_launches(self, now: int, pend: list) -> None:
        """Flush deferred launch tails, merged across lanes per mech."""
        total = sum(p[2].size for p in pend)
        self._ensure_pk(self._pk_n + total)
        bucket = self._cal[(now + self._cl) % self._calP]
        by_mech: Dict[str, list] = {}
        for item in pend:
            by_mech.setdefault(item[1], []).append(item)
        for mech, parts in by_mech.items():
            if len(parts) == 1:
                lane, _, hosts, rows, vals, t0v, dstv = parts[0]
                self._launch_vec(
                    mech, hosts, rows, vals, t0v, dstv, bucket,
                    lane * self._n_bufs, lane * self._n_links, lane,
                )
                continue
            hosts = np.concatenate([p[2] for p in parts])
            rows = np.concatenate([p[3] for p in parts])
            t0v = np.concatenate([p[5] for p in parts])
            dstv = np.concatenate([p[6] for p in parts])
            vlist = [
                np.asarray(p[4], dtype=np.int64) for p in parts if len(p[4])
            ]
            vals = np.concatenate(vlist) if vlist else ()
            lanev = np.repeat(
                np.asarray([p[0] for p in parts], dtype=np.int64),
                np.asarray([p[2].size for p in parts], dtype=np.int64),
            )
            self._launch_vec(
                mech, hosts, rows, vals, t0v, dstv, bucket,
                lanev * self._n_bufs, lanev * self._n_links, lanev,
            )

    def _launch_lane(self, lane: int, now: int) -> None:
        """One lane's source launch — the fast core's batched launch with
        this lane's RNG, source queues and buffer/link offsets."""
        free = self._free
        host_buf, host_sw = self._host_buf, self._host_sw
        pair_get = self._t.pair.get
        n_sw = self._n_sw
        loff = lane * self._n_bufs
        ndraw, skip_k1, bnd_off = self._plans[lane]
        mech = self._mech_names[lane]
        launchers = []
        lapp = launchers.append
        bounds: List[int] = []
        bapp = bounds.append
        lazy = 0
        # Nonempty-queue scan and credit pre-scan, both vectorized over
        # the insertion-order host mirror (``_qord``/``_qlen`` — see
        # __init__): the filtered host sequence equals the serial dict
        # walk exactly, so the RNG bound order is preserved.  Launches
        # only mutate this lane's injection credits and those are
        # written after every read below, so the credit gather equals
        # the serial in-order scalar reads.
        qarr = self._qord_np[lane]
        if qarr is None:
            qarr = self._qord_np[lane] = np.asarray(
                self._qord[lane], dtype=np.int64
            )
        if not qarr.size:
            return
        nz = qarr[self._qlen[lane * self._n_hostsG + qarr] > 0]
        if not nz.size:
            return
        okm = free[loff + self._host_buf_np[nz]] > 0
        stalls = int(nz.size) - int(okm.sum())
        if self._ls_stall is not None and stalls:
            # Each stalled host appears once, so the fancy add is exact.
            self._ls_stall[
                lane * self._n_links + self._inj_lbase + nz[~okm]
            ] += 1
        if self._q_ints[lane]:
            self._launch_fixed(lane, nz[okm], stalls)
            return
        srcq = self._srcq[lane]
        pairx_get = self._pairx.get
        for h in nz[okm].tolist():
            q = srcq[h]
            sw_s = host_sw[h]
            sw_d = host_sw[q[0][1]]
            key = sw_s * n_sw + sw_d
            x = pairx_get(key)
            if x is None:
                rec = pair_get(key)
                if rec is None:
                    # The lazy path counts this launcher's hit-or-miss
                    # itself (a cold pair is a miss, not a hit).
                    rec = self._lazy_pair_rec(lane, sw_s, sw_d)
                    lazy += 1
                x = self._add_row(key, rec)
            row, k, rec = x
            if k > 1:
                if ndraw == 2:
                    bapp(k)
                    bapp(k - 1)
                elif ndraw == 1:
                    bapp(k - bnd_off)
            elif not skip_k1:
                bapp(1)
            lapp((h, q, rec, row))
        if not launchers:
            self._stalls[lane] += stalls
            return
        vals = draw_batch(self.rngs[lane], bounds) if bounds else ()
        launched = len(launchers)
        # Every prebuilt record comes from the warmed cache, so each such
        # launch mirrors one reference-engine cache hit; tallied per lane
        # and published (with the lane's precompute counts) at publish
        # time.  Launchers that materialised their record lazily above
        # already counted their hit-or-miss.  Drain-time hits go straight
        # to the live registry — the serial engines do the same, having
        # already published their run totals at run end.
        self.paths.hits += launched - lazy
        if not self._draining:
            self._lane_hits[lane] += launched - lazy
        else:
            reg = metrics._active
            if reg is not None and launched - lazy:
                reg.counter("core.cache.hit").inc(launched - lazy)
        if launched >= 16 and mech != "round_robin":
            hosts = np.fromiter(
                (l[0] for l in launchers), dtype=np.int64, count=launched
            )
            rows_a = np.fromiter(
                (l[3] for l in launchers), dtype=np.int64, count=launched
            )
            td = np.asarray(
                [q.popleft() for _h, q, _r, _w in launchers],
                dtype=np.int64,
            )
            self._qlen[lane * self._n_hostsG + hosts] -= 1
            self._pend.append(
                (lane, mech, hosts, rows_a, vals, td[:, 0], td[:, 1])
            )
            self._stalls[lane] += stalls
            self._n_flying[lane] += launched
            self._n_sourced[lane] -= launched
            return
        self._ensure_pk(self._pk_n + launched)
        freelist = self._pk_free
        bucket = self._cal[(now + self._cl) % self._calP]
        if mech == "sp":
            picker = None
        elif mech == "round_robin":
            picker = self._rr_flow[lane]
        elif mech == "random":
            picker = self._bchoose_random
        elif mech == "ksp_ugal":
            picker = self._bchoose_ksp_ugal
        else:
            picker = self._bchoose_ksp_adaptive
        locc = lane * self._n_links
        ls_fwd = self._ls_fwd
        inj_lb = self._inj_lbase
        c = 0
        pid_l: List[int] = []
        rid_l: List[int] = []
        t0_l: List[int] = []
        dst_l: List[int] = []
        idx_l: List[int] = []
        src_l: List[int] = []
        pk_n = self._pk_n
        for h, q, rec, _row in launchers:
            t_create, dst = q.popleft()
            k = rec[0]
            if mech == "sp":
                rid = rec[1][0]
            elif mech == "round_robin":
                key = (h, dst)
                i = picker.get(key, 0)
                picker[key] = i + 1
                rid = rec[1][i % k]
            elif k == 1:
                rid = rec[1][0]
                if not skip_k1:
                    c += 1
            else:
                rid = picker(rec, vals, c, locc)
                c += ndraw
            if freelist:
                pid = freelist.pop()
            else:
                pid = pk_n
                pk_n += 1
            pid_l.append(pid)
            rid_l.append(rid)
            t0_l.append(t_create)
            dst_l.append(dst)
            idx_l.append(loff + host_buf[h])
            src_l.append(h)
            if ls_fwd is not None:
                ls_fwd[locc + inj_lb + h] += 1
        self._pk_n = pk_n
        if launched >= 16:
            # One scatter per packet field (each pid and each injection
            # buffer appears once, so plain fancy writes are exact).
            pids = np.fromiter(pid_l, dtype=np.int64, count=launched)
            bucket.append(pids)
            idxs = np.fromiter(idx_l, dtype=np.int64, count=launched)
            self._pk_rid[pids] = np.fromiter(
                rid_l, dtype=np.int64, count=launched
            )
            self._pk_hop[pids] = 0
            self._pk_t0[pids] = np.fromiter(t0_l, dtype=np.int64, count=launched)
            self._pk_link[pids] = -1
            self._pk_dst[pids] = np.fromiter(
                dst_l, dtype=np.int64, count=launched
            )
            self._pk_dest[pids] = idxs
            self._pk_lane[pids] = lane
            self._pk_src[pids] = np.fromiter(
                src_l, dtype=np.int64, count=launched
            )
            free[idxs] -= 1
        else:
            bucket.extend(pid_l)
            pk_rid, pk_hop, pk_t0 = self._pk_rid, self._pk_hop, self._pk_t0
            pk_link, pk_dst = self._pk_link, self._pk_dst
            pk_dest, pk_lane = self._pk_dest, self._pk_lane
            pk_src = self._pk_src
            for i in range(launched):
                pid = pid_l[i]
                idx = idx_l[i]
                pk_rid[pid] = rid_l[i]
                pk_hop[pid] = 0
                pk_t0[pid] = t0_l[i]
                pk_link[pid] = -1
                pk_dst[pid] = dst_l[i]
                pk_dest[pid] = idx
                pk_lane[pid] = lane
                pk_src[pid] = src_l[i]
                free[idx] -= 1
        self._qlen[
            lane * self._n_hostsG
            + np.fromiter((l[0] for l in launchers), dtype=np.int64,
                          count=launched)
        ] -= 1
        self._stalls[lane] += stalls
        self._n_flying[lane] += launched
        self._n_sourced[lane] -= launched

    def _launch_fixed(self, lane: int, sel: np.ndarray, stalls: int) -> None:
        """Launch gather for a fixed-destination lane, fully vectorized.

        ``sel`` is the credit-cleared launcher hosts in serial gather
        order.  The pair row per host is a run constant (cached in
        ``_hrow``, materialised scalar once per host), so the RNG draw
        bounds come straight from the row widths — built in the same
        per-launcher order the serial loop appends them.  Queue pops
        happen here (lane-local); the scatter is deferred to the merged
        cross-lane flush.
        """
        self._stalls[lane] += stalls
        launched = sel.size
        if not launched:
            return
        hbase = lane * self._n_hostsG
        rows = self._hrow[hbase + sel]
        lazy = 0
        cold = rows < 0
        if cold.any():
            fd = self._fixed_dst[lane]
            host_sw = self._host_sw
            n_sw = self._n_sw
            pairx_get = self._pairx.get
            pair_get = self._t.pair.get
            for h in sel[cold].tolist():
                sw_s = host_sw[h]
                sw_d = host_sw[fd[h]]
                key = sw_s * n_sw + sw_d
                x = pairx_get(key)
                if x is None:
                    rec = pair_get(key)
                    if rec is None:
                        rec = self._lazy_pair_rec(lane, sw_s, sw_d)
                        lazy += 1
                    x = self._add_row(key, rec)
                self._hrow[hbase + h] = x[0]
            rows = self._hrow[hbase + sel]
        kv = self._rk[rows]
        ndraw, skip_k1, bnd_off = self._plans[lane]
        if ndraw == 2:
            km = kv[kv > 1]
            bounds = np.empty(2 * km.size, dtype=np.int64)
            bounds[0::2] = km
            bounds[1::2] = km - 1
        elif ndraw == 1:
            bounds = (kv[kv > 1] if skip_k1 else kv) - bnd_off
        else:
            bounds = np.empty(0, dtype=np.int64)
        vals = (
            draw_batch(self.rngs[lane], bounds.tolist())
            if bounds.size else ()
        )
        # Cache-tally bookkeeping identical to the generic gather.
        self.paths.hits += launched - lazy
        if not self._draining:
            self._lane_hits[lane] += launched - lazy
        else:
            reg = metrics._active
            if reg is not None and launched - lazy:
                reg.counter("core.cache.hit").inc(launched - lazy)
        srcq = self._srcq[lane]
        t0 = np.fromiter(
            (srcq[h].popleft() for h in sel.tolist()),
            dtype=np.int64, count=launched,
        )
        self._qlen[hbase + sel] -= 1
        self._pend.append(
            (lane, self._mech_names[lane], sel, rows, vals, t0,
             self._fixed_dst[lane][sel])
        )
        self._n_flying[lane] += launched
        self._n_sourced[lane] -= launched

    def _add_row(self, key: int, rec: tuple) -> tuple:
        """Materialise one pair record's padded route-table row."""
        k, rids, hops, links, rank = rec
        if k > self._kmax:
            w = self._kmax
            while w < k:
                w *= 2
            for name in ("_rrids", "_rhops", "_rflink", "_rrank"):
                old = getattr(self, name)
                wide = np.zeros((old.shape[0], w), dtype=np.int64)
                wide[:, : self._kmax] = old
                setattr(self, name, wide)
            self._kmax = w
        row = self._row_n
        if row == self._row_cap:
            cap = max(256, self._row_cap * 2)
            rk = np.zeros(cap, dtype=np.int64)
            rk[:row] = self._rk[:row]
            self._rk = rk
            for name in ("_rrids", "_rhops", "_rflink", "_rrank"):
                old = getattr(self, name)
                grown = np.zeros((cap, self._kmax), dtype=np.int64)
                grown[:row] = old[:row]
                setattr(self, name, grown)
            self._row_cap = cap
        self._rk[row] = k
        self._rrids[row, :k] = rids
        self._rhops[row, :k] = hops
        # Same-switch pairs have a single zero-hop path with no links;
        # they are k == 1 rows whose first-link column is never selected.
        self._rflink[row, :k] = [ln[0] if ln else 0 for ln in links]
        self._rrank[row, :k] = rank
        out = (row, k, rec)
        self._pairx[key] = out
        self._row_n = row + 1
        return out

    def _est_pair(self, locc, rows, i, j):
        """Vectorized latency estimates for candidate columns (i, j).

        ``locc`` is the per-launcher link-occupancy offset — a scalar
        for single-lane calls, an array aligned with ``rows`` for
        cross-lane merged launches.  Mirrors the scalar choosers
        exactly: first-channel-queue x hops in ``"first"`` mode, hops x
        channel latency plus the queued flits along the whole route in
        ``"path"`` mode (zero-masked padded gather), all in integer
        arithmetic.
        """
        occ = self._occ
        hi = self._rhops[rows, i]
        hj = self._rhops[rows, j]
        if self._est_first:
            ea = occ[locc + self._rflink[rows, i]] * hi
            eb = occ[locc + self._rflink[rows, j]] * hj
        else:
            ri = self._rrids[rows, i]
            rj = self._rrids[rows, j]
            cl = self._cl
            lo2 = locc[:, None] if isinstance(locc, np.ndarray) else locc
            ea = hi * cl + (
                occ[lo2 + self._plink[ri]] * self._pmask[ri]
            ).sum(axis=1)
            eb = hj * cl + (
                occ[lo2 + self._plink[rj]] * self._pmask[rj]
            ).sum(axis=1)
        return ea, eb, hi, hj

    def _launch_vec(
        self, mech, hosts, rows, vals, t0v, dstv, bucket, loff, locc, lanev
    ) -> None:
        """Vectorized launch tail: route choice, pid assignment and the
        packet-store scatters for the cycle's gathered launchers —
        single-lane (scalar ``loff``/``locc``/``lanev``) or merged
        across lanes (arrays aligned with ``hosts``).

        Exactness mirrors the scalar loop: the choosers are pure integer
        arithmetic over the padded row tables (``rows``) and the
        pre-launch link occupancy (static during the launch phase —
        launches only touch injection credits, and each lane's buffer
        range is disjoint), the draw values are consumed in the same
        per-launcher order the bounds were built in, and pids are taken
        from the freelist tail in pop order.  Both occupancy estimates
        vectorize: the first-link product is a single gather, the
        whole-path sum a zero-masked gather over the padded per-route
        link matrix.
        """
        launched = hosts.size
        if mech == "sp":
            rid_arr = self._rrids[rows, 0]
        elif mech == "random":
            rid_arr = self._rrids[
                rows, np.asarray(vals, dtype=np.int64)
            ]
        elif mech == "ksp_ugal":
            kv = self._rk[rows]
            j = np.zeros(launched, dtype=np.int64)
            mm = kv > 1
            if mm.any():
                j[mm] = 1 + np.asarray(vals, dtype=np.int64)
            i = np.zeros(launched, dtype=np.int64)
            ea, eb, hi, hj = self._est_pair(locc, rows, i, j)
            pick_j = (ea > eb) | ((ea == eb) & (hi > hj))
            rid_arr = np.where(
                pick_j, self._rrids[rows, j], self._rrids[rows, 0]
            )
        else:  # ksp_adaptive
            kv = self._rk[rows]
            rid_arr = self._rrids[rows, 0]
            mm = np.flatnonzero(kv > 1)
            if mm.size:
                va = np.asarray(vals, dtype=np.int64)
                r2 = rows[mm]
                i0 = va[0::2]
                j0 = va[1::2] + (va[1::2] >= i0)
                swap = self._rrank[r2, i0] > self._rrank[r2, j0]
                ii = np.where(swap, j0, i0)
                jj = np.where(swap, i0, j0)
                lo2 = locc[mm] if isinstance(locc, np.ndarray) else locc
                ea, eb, hi, hj = self._est_pair(lo2, r2, ii, jj)
                pick_j = (ea > eb) | ((ea == eb) & (hi > hj))
                chosen = np.where(
                    pick_j, self._rrids[r2, jj], self._rrids[r2, ii]
                )
                if mm.size == launched:
                    rid_arr = chosen
                else:
                    rid_arr[mm] = chosen
        freelist = self._pk_free
        nf = len(freelist)
        take = launched if launched <= nf else nf
        if take:
            pid_l = freelist[nf - take:]
            pid_l.reverse()
            del freelist[nf - take:]
        else:
            pid_l = []
        if launched > take:
            pk_n = self._pk_n
            pid_l.extend(range(pk_n, pk_n + launched - take))
            self._pk_n = pk_n + launched - take
        pids = np.asarray(pid_l, dtype=np.int64)
        idxs = loff + self._host_buf_np[hosts]
        self._pk_rid[pids] = rid_arr
        self._pk_hop[pids] = 0
        self._pk_t0[pids] = t0v
        self._pk_link[pids] = -1
        self._pk_dst[pids] = dstv
        self._pk_dest[pids] = idxs
        self._pk_lane[pids] = lanev
        self._pk_src[pids] = hosts
        self._free[idxs] -= 1
        if self._ls_fwd is not None:
            # (lane, host) pairs are unique this cycle: fancy add exact.
            self._ls_fwd[locc + self._inj_lbase + hosts] += 1
        bucket.append(pids)

    def _lazy_pair_rec(self, lane: int, sw_s: int, sw_d: int) -> tuple:
        """Materialise a route record first used mid-run (the serial fast
        core's ``_pair_rec``, with deferred registry attribution).

        ``switch_pairs`` omits same-switch pairs, so uniform traffic can
        reach a pair no precompute warmed.  The plain-int cache tallies
        update live exactly as serial's would (one hit, or one real miss
        through ``paths.get``); the registry side is tallied on *this*
        lane and replayed at publish.  When lanes race to a cold pair the
        miss lands on whichever lane reaches it first in batch time —
        totals across the batch still equal the serial lane sequence's
        (pattern-traffic grids never take this path: their pair sets are
        fully warmed up front).
        """
        paths = self.paths
        ps = paths.peek(sw_s, sw_d)
        if ps is not None:
            paths.hits += 1
            if self._draining:
                # Serial engines mirror drain-time hits into whatever
                # registry is live (publication already happened at run
                # end), so the batch does too instead of deferring.
                reg = metrics._active
                if reg is not None:
                    reg.counter("core.cache.hit").inc()
            else:
                self._lane_hits[lane] += 1
        elif self._draining:
            ps = paths.get(sw_s, sw_d)
        else:
            with metrics.capture() as mreg:
                # The real get: counts the miss on the plain-int tallies
                # and runs the selector, whose counters (and the miss)
                # land in this capture — replayed for this lane at
                # publish time like the precompute snapshot.
                ps = paths.get(sw_s, sw_d)
            self._lazy_snaps[lane].append(mreg.snapshot())
        rec = self._t.pair_record(sw_s, sw_d, ps)
        self._refresh_tables()  # the record may have added routes
        return rec

    # Native multi-path choosers — the fast core's, with the lane's
    # occupancy offset (see fastcore._bchoose_*).
    def _bchoose_random(self, rec, vals, c, locc) -> int:
        return rec[1][vals[c]]

    def _bchoose_ksp_ugal(self, rec, vals, c, locc) -> int:
        k, rids, hops, links, _rank = rec
        j = 1 + vals[c]
        occ = self._occ_l
        hi, hj = hops[0], hops[j]
        if self._est_first:
            ea = occ[locc + links[0][0]] * hi
            eb = occ[locc + links[j][0]] * hj
        else:
            cl = self._cl
            ea = hi * cl
            for link in links[0]:
                ea += occ[locc + link]
            eb = hj * cl
            for link in links[j]:
                eb += occ[locc + link]
        if ea != eb:
            return rids[0] if ea < eb else rids[j]
        return rids[0] if hi <= hj else rids[j]

    def _bchoose_ksp_adaptive(self, rec, vals, c, locc) -> int:
        k, rids, hops, links, rank = rec
        i = vals[c]
        j = vals[c + 1]
        if j >= i:
            j += 1
        if rank[i] > rank[j]:
            i, j = j, i
        occ = self._occ_l
        hi, hj = hops[i], hops[j]
        if self._est_first:
            ea = occ[locc + links[i][0]] * hi
            eb = occ[locc + links[j][0]] * hj
        else:
            cl = self._cl
            ea = hi * cl
            for link in links[i]:
                ea += occ[locc + link]
            eb = hj * cl
            for link in links[j]:
                eb += occ[locc + link]
        if ea != eb:
            return rids[i] if ea < eb else rids[j]
        return rids[i] if hi <= hj else rids[j]

    # --------------------------------------------------------- allocation
    def _active_scan(self) -> np.ndarray:
        """Ascending union indices of non-empty buffers (live lanes only).

        With every lane live this is one flat ``flatnonzero``; once lanes
        have drained the scan compacts to the live lanes' rows — the
        ascending order (= per-lane serial switch order) is preserved
        because live lane ids are kept sorted.  Only the occupiable VC
        prefix is scanned (``_vc_used``): the ladder is sized to the
        mechanism's worst-case hop bound, but flits can only ever sit in
        VCs the route tables reach, and the row-major sub-scan keeps the
        ascending union order.
        """
        vcs = self.n_vcs
        used = self._vc_used
        if len(self._live) == self._n:
            if used < vcs:
                sub = np.flatnonzero(self._flen.reshape(-1, vcs)[:, :used])
                return (sub // used) * vcs + sub % used
            return np.flatnonzero(self._flen)
        if not self._live:
            return np.empty(0, dtype=np.int64)
        rows = np.asarray(self._live, dtype=np.int64)
        block = self._flen.reshape(self._n, self._n_bufs)[rows]
        if used < vcs:
            s = np.flatnonzero(block.reshape(-1, vcs)[:, :used])
            sub = (s // used) * vcs + s % used
        else:
            sub = np.flatnonzero(block)
        return rows[sub // self._n_bufs] * self._n_bufs + sub % self._n_bufs

    def _allocate(self, now: int) -> None:
        act = self._active_scan()
        if act.size == 0:
            return
        if act.size <= 48:
            # Light cycles: the exact sequential sweep beats the
            # vectorized pass's fixed per-cycle cost.
            self._allocate_dirty(now, act)
            return
        n_ports = self.n_ports
        nxt = self._req_nxt[act]
        slot = act // self._stride
        sbase = slot * n_ports
        okey = sbase + self._req_out[act]
        # A switch slot is *dirty* only when its outcome depends on the
        # serial sweep order: a head without pre-pass credit could still
        # be granted because its target may pop earlier in the sweep
        # (target active, earlier slot), or the rotating-priority winners
        # would push an input port past its speedup (the serial gate then
        # skips candidates mid-scan).  Plain output-port contention is
        # NOT dirty — the round-robin winner is resolved vectorized in
        # :meth:`_pick_winners`, and the speedup condition is validated
        # on the *winners* after arbitration: an input port fielding many
        # candidates is harmless while it wins at most ``speedup`` output
        # ports (the serial gate only skips once a port's grant count has
        # reached the cap).  Heads without credit whose target cannot pop
        # first are definite stalls — serial skips them during gathering
        # — so they are dropped from the candidate set without dirtying
        # the slot.  All conditions are slot-local: the only cross-slot
        # credit interaction is a pop (credits into a buffer are taken
        # solely by same-slot heads sharing (slot, out port), resolved to
        # one winner by the arbitration).
        dirty = None
        keep = None
        fwd = np.flatnonzero(nxt >= 0)
        if fwd.size:
            tgt = nxt[fwd]
            bad = fwd[self._free[tgt] <= 0]
            if bad.size:
                tgt = nxt[bad]
                maybe = (self._flen[tgt] > 0) & (tgt // self._stride < slot[bad])
                if maybe.any():
                    dirty = np.zeros(self._n_slots, dtype=bool)
                    dirty[slot[bad[maybe]]] = True
                keep = np.ones(act.size, dtype=bool)
                keep[bad] = False
        # Arbitrate the credit-clean candidates outside credit-dirty
        # slots, then validate the winners against the speedup gate.
        cm = keep
        if dirty is not None:
            cm = keep & ~dirty[slot]
        if cm is None:
            c_idx = None
            w = self._pick_winners(act, slot, okey)
            w_act = act if w is None else act[w]
            w_slot = slot if w is None else slot[w]
        else:
            c_idx = np.flatnonzero(cm)
            sub_act = act[c_idx]
            sub_slot = slot[c_idx]
            w = self._pick_winners(sub_act, sub_slot, okey[c_idx])
            w_act = sub_act if w is None else sub_act[w]
            w_slot = sub_slot if w is None else sub_slot[w]
        if w_act.size > 1:
            w_ikey = w_slot * n_ports + self._inport_g[w_act]
            wcnt = np.bincount(w_ikey, minlength=self._n_okeys)
            over = wcnt[w_ikey] > self.config.input_speedup
            if over.any():
                if dirty is None:
                    dirty = np.zeros(self._n_slots, dtype=bool)
                dirty[w_slot[over]] = True
        if dirty is None:
            if keep is not None:
                # The dropped heads are definite stalls, counted per lane
                # exactly as the serial gathering pass would.
                drops = act[~keep]
                np.add.at(self._stalls, drops // self._n_bufs, 1)
                if self._ls_stall is not None and drops.size:
                    # Several heads can block on one wanted link.
                    np.add.at(self._ls_stall, self._req_link[drops], 1)
            if w_act.size:
                self._grant_winners(now, act, slot, okey, nxt, c_idx, w)
            return
        dmask = dirty[slot]
        if dmask.all():
            self._allocate_dirty(now, act)
            return
        # Mixed cycle: grant the clean-slot winners in one pass, then
        # sweep the dirty slots sequentially.  The sweep corrects its
        # credit reads via ``_popped``: a clean pop at slot >= the
        # sweep's current slot is not yet visible in the serial slot
        # order (pops are the only cross-slot credit interaction — see
        # above).  Dropped heads in dirty slots go to the sweep
        # untouched (it re-derives their stall); dropped heads in clean
        # slots are counted here.
        cmask = ~dmask
        if keep is not None:
            drop_clean = cmask & ~keep
            if drop_clean.any():
                drops = act[drop_clean]
                np.add.at(self._stalls, drops // self._n_bufs, 1)
                if self._ls_stall is not None:
                    np.add.at(self._ls_stall, self._req_link[drops], 1)
        wkeep = ~dirty[w_slot]
        g_act = w_act[wkeep]
        if g_act.size:
            wk = np.flatnonzero(wkeep)
            gsel = wk if w is None else w[wk]
            self._grant_winners(now, act, slot, okey, nxt, c_idx, gsel)
            self._popped[g_act] = True
            self._allocate_dirty(now, act[dmask], popped=self._popped)
            self._popped[g_act] = False
        else:
            self._allocate_dirty(now, act[dmask])

    def _pick_winners(self, act, slot, okey) -> Optional[np.ndarray]:
        """Vectorized rotating-priority output arbitration (no commit).

        Serial semantics: every output port's candidates are gathered in
        ascending buffer order and the winner is the first at-or-after
        the port's round-robin pointer — i.e. the candidate minimising
        ``(rel - ptr) mod stride``.  Losers are untouched: no grant, no
        stall, no pointer update.  Returns positions of the winners
        within ``act`` (ascending), or ``None`` when every candidate
        wins (uncontended ports).
        """
        if act.size < 2:
            return None
        stride = self._stride
        rel = act - slot * stride
        mod = rel - self._rr[okey]
        mod[mod < 0] += stride
        order = np.argsort(okey * stride + mod)
        ok_s = okey[order]
        first = np.empty(order.size, dtype=bool)
        first[0] = True
        np.not_equal(ok_s[1:], ok_s[:-1], out=first[1:])
        if first.all():
            return None
        win = order[first]
        win.sort()
        return win

    def _grant_winners(self, now, act, slot, okey, nxt, c_idx, w) -> None:
        """Commit arbitration winners: compose the candidate filter
        (``c_idx``) and winner positions (``w``) and grant in ascending
        union order."""
        if c_idx is None:
            sel = w
        elif w is None:
            sel = c_idx
        else:
            sel = c_idx[w]
        if sel is None:
            self._grant_all(now, act, slot, okey, nxt)
        else:
            self._grant_all(
                now, act[sel], slot[sel], okey[sel], nxt[sel]
            )

    def _grant_all(self, now, act, slot, okey, nxt) -> None:
        """Clean-cycle vectorized grant: every head request wins.

        Safe exactly when the cleanliness test passed: every request has
        credit up front, output ports are uncontended (so each port's
        single candidate is its round-robin winner), and no input port
        exceeds its speedup — the sequential sweep would grant the same
        set, in the same ascending order.
        """
        N = self._n
        cap = self._cap
        self._rr[okey] = act - slot * self._stride + 1
        head = self._fhead[act]
        pid = self._fifo[act * cap + head]
        newlen = self._flen[act] - 1
        self._flen[act] = newlen
        head = head + 1
        head[head == cap] = 0
        self._fhead[act] = head
        self._free[act] += 1
        lanes = act // self._n_bufs
        g = np.bincount(lanes, minlength=N)
        self._n_flying += g
        self._n_buffered -= g
        in_link = self._pk_link[pid]
        m = in_link >= 0
        if m.any():
            # Several buffered flits can share a last-travelled link;
            # a bincount subtraction handles the duplicates (and beats
            # the unbuffered scatter once batches grow).
            dec = in_link[m]
            if dec.size > 24:
                self._occ -= np.bincount(dec, minlength=self._occ.size)
            else:
                np.subtract.at(self._occ, dec, 1)
        self._pk_dest[pid] = nxt
        fm = nxt >= 0
        ls_fwd = self._ls_fwd
        if ls_fwd is not None:
            em = ~fm
            if em.any():
                # One eject per (lane, host) output port: fancy add exact.
                ls_fwd[
                    lanes[em] * self._n_links + self._ej_lbase
                    + self._pk_dst[pid[em]]
                ] += 1
        if fm.any():
            f_act = act[fm]
            wl = self._req_link[f_act]
            self._free[nxt[fm]] -= 1
            self._occ[wl] += 1
            if ls_fwd is not None:
                # One grant per output port, so winner links are unique.
                ls_fwd[wl] += 1
            fl = lanes[fm]
            self._fwd += np.bincount(fl, minlength=N)
            lidx = wl - fl * (self._n_links - self._n_sl)
            if now >= self._measure_start:
                self._link_flits[lidx] += 1
            if self._ts_linkf is not None:
                self._ts_linkf[lidx] += 1
            fpid = pid[fm]
            self._pk_link[fpid] = wl
            self._pk_hop[fpid] += 1
        self._cal[(now + self._cl) % self._calP].append(pid)
        rem = newlen > 0
        if rem.any():
            b2 = act[rem]
            self._refresh_memo(b2, self._fifo[b2 * cap + self._fhead[b2]])

    def _allocate_dirty(
        self, now: int, act: np.ndarray, popped: Optional[np.ndarray] = None
    ) -> None:
        """Contended-slot exact sequential sweep of the union network.

        Reproduces the fast core's per-switch arbitration slot by slot in
        ascending order: within one lane that is exactly the serial
        switch order, and lanes never share buffers, credits or
        round-robin pointers, so the union sweep equals N serial sweeps.

        On mixed cycles ``act`` holds only the dirty slots' requests and
        ``popped`` flags the buffers the vectorized clean pass already
        popped; a pop at slot >= the sweep's position is then subtracted
        from the credit read, restoring the serial order's view.
        """
        free = self._free
        rr = self._rr
        fifo, fhead, flen, cap = self._fifo, self._fhead, self._flen, self._cap
        req_out, req_nxt, req_link = self._req_out, self._req_nxt, self._req_link
        pk_rid, pk_hop, pk_link = self._pk_rid, self._pk_hop, self._pk_link
        pk_dest, pk_dst = self._pk_dest, self._pk_dst
        t = self._t
        r_off, r_hops = t.r_off, t.r_hops
        rf_out, rf_nxt, rf_link = t.rf_out, t.rf_nxt, t.rf_link
        eject_of = self._eject_of
        occ = self._occ
        link_flits = self._link_flits
        ts_lf = self._ts_linkf
        ls_fwd = self._ls_fwd
        ls_stall = self._ls_stall
        ej_lb = self._ej_lbase
        stride = self._stride
        n_ports = self.n_ports
        n_sw = self._n_sw
        n_bufs = self._n_bufs
        n_links = self._n_links
        lf_shift = self._n_links - self._n_sl
        speedup = self.config.input_speedup
        measuring = now >= self._measure_start
        bucket = self._cal[(now + self._cl) % self._calP]
        N = self._n
        stalls_l = [0] * N
        fwd_l = [0] * N
        grants_l = [0] * N
        act_l = act.tolist()
        ro_l = req_out[act].tolist()
        rn_l = req_nxt[act].tolist()
        rl_l = req_link[act].tolist()
        ip_l = self._inport_g[act].tolist()
        pbuf = self._port_cands
        touched = self._touched
        gin = self._gin
        gwin = self._gwin
        n = len(act_l)
        i = 0
        while i < n:
            slot = act_l[i] // stride
            lane = slot // n_sw
            base_buf = slot * stride
            j = i
            while j < n and act_l[j] < base_buf + stride:
                fi = act_l[j]
                tgt = rn_l[j]
                if tgt >= 0:
                    credit = free[tgt]
                    if popped is not None and tgt >= base_buf and popped[tgt]:
                        credit -= 1
                    if credit <= 0:
                        stalls_l[lane] += 1
                        if ls_stall is not None:
                            ls_stall[rl_l[j]] += 1
                        j += 1
                        continue
                op = ro_l[j]
                cands = pbuf[op]
                if not cands:
                    touched.append(op)
                cands.append((fi, j))
                j += 1
            i = j
            if not touched:
                continue
            rr_base = slot * n_ports
            loff = lane * n_bufs
            locc = lane * n_links
            for op in touched:
                gathered = cands = pbuf[op]
                rr_key = rr_base + op
                ptr = int(rr[rr_key])
                if len(cands) > 1 and ptr:
                    # cands is in ascending flat-index order; rotating at
                    # the pointer equals sorting by (fi - ptr) % stride.
                    cut = bisect_left(cands, (base_buf + ptr,))
                    if 0 < cut < len(cands):
                        cands = cands[cut:] + cands[:cut]
                winner = -1
                for fi, jj in cands:
                    ip = ip_l[jj]
                    if gin[ip] >= speedup:
                        continue
                    winner = fi
                    wj = jj
                    break
                gathered.clear()
                if winner < 0:
                    continue
                gin[ip] += 1
                gwin.append(ip)
                rr[rr_key] = winner - base_buf + 1

                tgt = rn_l[wj]
                wl = rl_l[wj]
                head = int(fhead[winner])
                pid = int(fifo[winner * cap + head])
                length = int(flen[winner]) - 1
                flen[winner] = length
                head += 1
                if head == cap:
                    head = 0
                fhead[winner] = head
                if length:
                    npid = int(fifo[winner * cap + head])
                    nrid = int(pk_rid[npid])
                    nhop = int(pk_hop[npid])
                    if nhop < r_hops[nrid]:
                        nb = r_off[nrid] + nhop
                        req_out[winner] = rf_out[nb]
                        req_nxt[winner] = rf_nxt[nb] + loff
                        req_link[winner] = rf_link[nb] + locc
                    else:
                        req_out[winner] = eject_of[int(pk_dst[npid])]
                        req_nxt[winner] = -1
                free[winner] += 1
                grants_l[lane] += 1
                il = int(pk_link[pid])
                if il >= 0:
                    occ[il] -= 1
                if tgt < 0:
                    if ls_fwd is not None:
                        ls_fwd[locc + ej_lb + int(pk_dst[pid])] += 1
                    pk_dest[pid] = -1
                    bucket.append(pid)
                else:
                    free[tgt] -= 1
                    occ[wl] += 1
                    fwd_l[lane] += 1
                    if ls_fwd is not None:
                        ls_fwd[wl] += 1
                    lidx = wl - lane * lf_shift
                    if measuring:
                        link_flits[lidx] += 1
                    if ts_lf is not None:
                        ts_lf[lidx] += 1
                    pk_link[pid] = wl
                    pk_hop[pid] += 1
                    pk_dest[pid] = tgt
                    bucket.append(pid)
            touched.clear()
            if gwin:
                for ip in gwin:
                    gin[ip] = 0
                gwin.clear()
        self._stalls += np.asarray(stalls_l, dtype=np.int64)
        self._fwd += np.asarray(fwd_l, dtype=np.int64)
        g = np.asarray(grants_l, dtype=np.int64)
        self._n_flying += g
        self._n_buffered -= g

    # ---------------------------------------------------------------- run
    def _advance(self, start: int, stop: int) -> None:
        if self._ts is None and self._ls is None:
            for now in range(start, stop):
                self._process_arrivals(now)
                self._inject_all(now)
                self._launch_all(now)
                self._allocate(now)
            return
        cur = start
        ls_on = self._ls is not None
        while cur < stop:
            nxt = stop
            if self._ts is not None:
                nxt = min(nxt, self._win_next)
            if ls_on:
                nxt = min(nxt, self._ls_next)
            for now in range(cur, nxt):
                self._process_arrivals(now)
                self._inject_all(now)
                self._launch_all(now)
                self._allocate(now)
                if ls_on:
                    # End-of-cycle peak, one vector max over the union.
                    np.maximum(self._ls_peak, self._occ, out=self._ls_peak)
            cur = nxt
            if self._ts is not None and cur == self._win_next:
                self._flush_window(cur)
                self._win_next += self._ts.window
            if ls_on and cur == self._ls_next:
                self._flush_ls_window(cur)
                self._ls_next += self._ls.window

    def _buffered_per_lane(self) -> np.ndarray:
        caps = self._n_bufs * self._cap
        return caps - np.add.reduceat(self._free, self._lane_starts)

    def _flush_window(self, now: int) -> None:
        """Buffer one time-series row per lane covering ``[_win_start, now)``."""
        cycles = now - self._win_start
        if cycles <= 0:
            return
        inj = self._injected - self._wp_injected
        dlv = self._delivered - self._wp_delivered
        lat = self._lat_total - self._wp_lat
        stl = self._stalls - self._wp_stalls
        fwd = self._fwd - self._wp_fwd
        buf = self._buffered_per_lane()
        n_sl = self._n_sl
        for lane in range(self._n):
            self._ts_rows[lane].append(
                dict(
                    start=self._win_start,
                    cycles=cycles,
                    injected=int(inj[lane]),
                    ejected=int(dlv[lane]),
                    lat_sum=int(lat[lane]),
                    credit_stalls=int(stl[lane]),
                    forwarded=int(fwd[lane]),
                    occupancy=int(buf[lane]),
                    link_flits=self._ts_linkf[
                        lane * n_sl : (lane + 1) * n_sl
                    ].copy(),
                )
            )
        self._ts_linkf[:] = 0
        self._wp_injected = self._injected.copy()
        self._wp_delivered = self._delivered.copy()
        self._wp_lat = self._lat_total.copy()
        self._wp_stalls = self._stalls.copy()
        self._wp_fwd = self._fwd.copy()
        self._win_start = now

    def _flush_ls_window(self, now: int) -> None:
        """Buffer one link-state row per lane covering ``[_ls_start, now)``."""
        cycles = now - self._ls_start
        if cycles <= 0:
            return
        nl = self._n_links
        for lane in range(self._n):
            s = lane * nl
            self._ls_rows[lane].append(
                dict(
                    start=self._ls_start,
                    cycles=cycles,
                    forwarded=self._ls_fwd[s : s + nl].copy(),
                    credit_stalls=self._ls_stall[s : s + nl].copy(),
                    peak_occupancy=self._ls_peak[s : s + nl].copy(),
                )
            )
        self._ls_fwd[:] = 0
        self._ls_stall[:] = 0
        # Peak carries over: the next window opens at current occupancy.
        self._ls_peak[:] = self._occ
        self._ls_start = now

    def run(
        self, publish: bool = True, observe: Optional[bool] = None
    ) -> List[SimResult]:
        """Step every lane through warmup + measurement; one result per lane.

        With ``publish`` (the default) each lane's telemetry is replayed
        into the active metrics registry / time-series recorder in lane
        order, exactly as N sequential serial runs would have published.
        The grid runner passes ``publish=False`` and replays each lane
        under its own capture instead (per-lane artifact splitting);
        because those captures are not active *during* the run, it also
        passes ``observe=True`` to keep VC-occupancy sampling on.
        """
        cfg = self.config
        if observe is None:
            observe = metrics.enabled()
        t_wall = time.perf_counter()
        self._refresh_tables()
        self._measure_start = 1 << 62
        self._advance(0, cfg.warmup_cycles)
        self._measure_start = cfg.warmup_cycles
        start = cfg.warmup_cycles
        for _ in range(cfg.n_samples):
            self._advance(start, start + cfg.sample_cycles)
            start += cfg.sample_cycles
            if observe:
                buf = self._buffered_per_lane()
                for lane in range(self._n):
                    self._occ_samples[lane].append(int(buf[lane]))
        self._end_cycle = start
        if self._ts is not None:
            self._flush_window(start)  # the final, possibly partial window
        if self._ls is not None:
            self._flush_ls_window(start)
        self._ts_ann = dict(
            warmup_cycles_used=cfg.warmup_cycles,
            measured_samples=cfg.n_samples,
            steady_converged=None,
        )
        wall = time.perf_counter() - t_wall
        # Aggregate lane-cycles per wall second (the batched tier's
        # throughput figure; manifests record it per engine).
        self.cycles_per_sec = (
            self._end_cycle * self._n / wall if wall > 0 else 0.0
        )
        # One list->array conversion for the measured-latency samples,
        # shared by every lane's result extraction.
        self._mlat_ml = np.asarray(self._mlat_lane, dtype=np.int64)
        self._mlat_vl = np.asarray(self._mlat_val, dtype=np.int64)
        self._mlat_pl = np.asarray(self._mlat_pair, dtype=np.int64)
        self.results = [self._lane_result(lane) for lane in range(self._n)]
        # Freeze run-end counter values: the serial engine publishes its
        # metrics before drain(), so deferred per-lane publishes must not
        # see drain-time growth of these totals.
        self._pub = dict(
            injected=self._injected.copy(),
            delivered=self._delivered.copy(),
            fwd=self._fwd.copy(),
            stalls=self._stalls.copy(),
            link_flits=self._link_flits.copy(),
        )
        if publish:
            for lane in range(self._n):
                self.publish_lane(lane)
        return self.results

    def _lane_result(self, lane: int) -> SimResult:
        cfg = self.config
        sums = self._sample_sums[lane]
        counts = self._sample_counts[lane]
        samples = tuple(
            (sums[i] / counts[i]) if counts[i] else float("nan")
            for i in range(cfg.n_samples)
        )
        measured = int(counts.sum())
        measured_cycles = cfg.n_samples * cfg.sample_cycles
        saturated = any(
            (s != s) or s > cfg.saturation_latency for s in samples
        )
        mean_latency = (
            float(sums.sum()) / measured if measured else float("nan")
        )
        lat = self._mlat_vl[self._mlat_ml == lane]
        p50, p99 = latency_percentiles(lat)
        n_sl = self._n_sl
        util = (
            np.asarray(self._link_flits[lane * n_sl : (lane + 1) * n_sl])
            / measured_cycles
        )
        active = max(1, len(self._hosts[lane]))
        return SimResult(
            injection_rate=self._rates[lane],
            injected=int(self._injected[lane]),
            delivered=int(self._delivered[lane]),
            measured_delivered=measured,
            mean_latency=mean_latency,
            sample_latencies=samples,
            saturated=saturated,
            accepted_throughput=measured / (active * measured_cycles),
            n_active_hosts=len(self._hosts[lane]),
            latency_p50=p50,
            latency_p99=p99,
            max_link_utilisation=float(util.max()) if util.size else 0.0,
            mean_link_utilisation=float(util.mean()) if util.size else 0.0,
            config=cfg,
            warmup_cycles_used=cfg.warmup_cycles,
            measured_samples=cfg.n_samples,
            steady_converged=None,
        )

    # ------------------------------------------------------------ publish
    def publish_lane(self, lane: int) -> None:
        """Replay one lane's telemetry into the active registry/recorder.

        Safe to call under a per-lane capture (the grid's artifact
        splitting) or once per lane in lane order (the serial-equivalent
        default) — either way each lane's artifacts are byte-identical
        to the serial run's.
        """
        pub = self._pub
        if pub is None:
            raise SimulationError("publish_lane() requires a completed run()")
        reg = metrics.active()
        if reg is not None:
            reg.merge(self._pre_snaps[lane])
            for snap in self._lazy_snaps[lane]:
                reg.merge(snap)
            hits = int(self._lane_hits[lane])
            if hits:
                reg.counter("core.cache.hit").inc(hits)
            reg.counter("netsim.runs").inc()
            reg.counter(f"netsim.engine_runs/{self.engine_name}").inc()
            cps = getattr(self, "cycles_per_sec", None)
            if cps:
                reg.gauge(f"netsim.cycles_per_sec/{self.engine_name}").set(cps)
            reg.counter("netsim.injected").inc(int(pub["injected"][lane]))
            reg.counter("netsim.delivered").inc(int(pub["delivered"][lane]))
            reg.counter("netsim.flits_forwarded").inc(int(pub["fwd"][lane]))
            reg.counter("netsim.credit_stalls").inc(int(pub["stalls"][lane]))
            occupancy = reg.histogram("netsim.vc_occupancy")
            for sample in self._occ_samples[lane]:
                occupancy.observe(sample)
            n_sl = self._n_sl
            reg.array(f"netsim.link_flits/{self._scheme}", n_sl).add(
                pub["link_flits"][lane * n_sl : (lane + 1) * n_sl]
            )
            res = self.results[lane]
            stamp_latency_gauges(
                reg, res.latency_p50, res.latency_p99, res.mean_latency
            )
        ts = obs_timeseries.active()
        if ts is not None and self._ts is not None:
            run = ts.begin_run(**self._ts_meta[lane])
            for row in self._ts_rows[lane]:
                ts.record_window(run, **row)
            if self._ts_ann is not None:
                ts.annotate_run(run, **self._ts_ann)
        lsr = obs_linkstate.active()
        if lsr is not None and self._ls is not None:
            run = lsr.begin_run(**self._ls_meta[lane])
            ep = self._ls_ep
            lsr.set_link_endpoints(ep["link_src"], ep["link_dst"])
            for row in self._ls_rows[lane]:
                lsr.record_window(run, **row)
        fsr = obs_flowstats.active()
        if fsr is not None and self._fs_on:
            run = fsr.begin_run(**self._fs_meta[lane])
            ep = self._fs_ep
            fsr.set_pair_endpoints(ep["pair_src"], ep["pair_dst"])
            mask = self._mlat_ml == lane
            fsr.record_run(run, self._mlat_pl[mask], self._mlat_vl[mask])

    # -------------------------------------------------------------- drain
    def drain(self) -> List[int]:
        """Drain every lane; per-lane extra cycle counts, serial-identical.

        Lanes empty out at different times: a drained lane is masked out
        of every phase (its counters and RNG freeze exactly where the
        serial run's would), and the allocator's scan compacts to the
        remaining lanes' rows.  Raises :class:`SimulationError` if any
        lane fails to drain within ``config.drain_max_cycles`` — after
        recording the lanes that did finish, so conservation checks still
        hold per lane.
        """
        cfg = self.config
        self._draining = True
        start = self._end_cycle
        out = [-1] * self._n
        live = sorted(self._live)
        for now in range(start, start + cfg.drain_max_cycles):
            still = []
            for lane in live:
                if (
                    self._n_sourced[lane]
                    + self._n_flying[lane]
                    + self._n_buffered[lane]
                ):
                    still.append(lane)
                else:
                    out[lane] = now - start
            live = still
            self._live = live
            if not live:
                return out
            self._process_arrivals(now)
            self._launch_all(now)
            self._allocate(now)
        stuck = []
        for lane in live:
            flight = int(
                self._n_sourced[lane]
                + self._n_flying[lane]
                + self._n_buffered[lane]
            )
            if flight:
                stuck.append((lane, flight))
            else:
                out[lane] = cfg.drain_max_cycles
        self._live = [lane for lane in live if out[lane] < 0]
        if stuck:
            detail = ", ".join(f"lane {l}: {n}" for l, n in stuck)
            raise SimulationError(
                f"network failed to drain within {cfg.drain_max_cycles} "
                f"cycles: {detail} packets stuck"
            )
        return out

    # ------------------------------------------------------- diagnostics
    def in_flight(self, lane: Optional[int] = None) -> int:
        """Packets inside the network or its queues (one lane or all)."""
        if lane is None:
            return int(
                self._n_sourced.sum()
                + self._n_flying.sum()
                + self._n_buffered.sum()
            )
        return int(
            self._n_sourced[lane]
            + self._n_flying[lane]
            + self._n_buffered[lane]
        )

    @property
    def injected(self) -> np.ndarray:
        return self._injected

    @property
    def delivered(self) -> np.ndarray:
        return self._delivered

    @property
    def credit_stalls(self) -> np.ndarray:
        return self._stalls

    def check_conservation(self) -> None:
        """Raise if any lane lost or duplicated a packet."""
        for lane in range(self._n):
            if int(self._injected[lane]) != int(
                self._delivered[lane]
            ) + self.in_flight(lane):
                raise SimulationError(
                    f"conservation violated in lane {lane}: "
                    f"injected={int(self._injected[lane])}, "
                    f"delivered={int(self._delivered[lane])}, "
                    f"in_flight={self.in_flight(lane)}"
                )
