"""Packet records for the flit-level simulator.

The paper simulates single-flit packets, so a packet and a flit coincide;
one mutable record carries the source-routed path and the bookkeeping the
router pipeline needs.  ``route`` is resolved to output-port indices at
injection time so the per-cycle hot path never does neighbour lookups.
"""

from __future__ import annotations

from typing import Tuple

__all__ = ["Packet"]


class Packet:
    """A single-flit packet.

    Attributes
    ----------
    src, dst:
        Host ids.
    switches:
        The switch path, source switch first.
    route:
        Output-port index to take at each switch along ``switches``; the
        final entry is the ejection port at the destination switch.
    hop:
        Index into ``route`` — which switch the packet currently sits at
        (also its VC index at that switch's input buffer).
    t_create:
        Cycle the packet was created (source-queue entry).
    t_deliver:
        Cycle the packet reached its destination host (-1 while in flight).
    """

    __slots__ = (
        "src", "dst", "switches", "route", "hop", "t_create", "t_deliver",
        "in_link", "trace_id",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        switches: Tuple[int, ...],
        route: Tuple[int, ...],
        t_create: int,
    ):
        self.src = src
        self.dst = dst
        self.switches = switches
        self.route = route
        self.hop = 0
        self.t_create = t_create
        self.t_deliver = -1
        # Directed link id the packet most recently travelled (-1 when it
        # arrived from its host); lets the simulator decrement the link's
        # occupancy when the packet leaves the downstream buffer.
        self.in_link = -1
        # Flight-recorder packet id; -1 for untraced packets (the common
        # case — only sampled packets generate trace events).
        self.trace_id = -1

    @property
    def hops(self) -> int:
        """Switch-to-switch hop count of the path."""
        return len(self.switches) - 1

    @property
    def latency(self) -> int:
        """Creation-to-delivery cycles (valid once delivered)."""
        return self.t_deliver - self.t_create

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet({self.src}->{self.dst} via {self.switches}, "
            f"hop={self.hop}, t={self.t_create})"
        )
