"""Structured, dependency-free logging for the repro pipeline.

One event per call: a short dotted event name plus keyword fields.  Three
sinks, all optional:

- **stderr** — a compact human line (``HH:MM:SS LEVEL event k=v ...``)
  for records at or above the configured level (default ``warning``, so
  the library is silent in normal use — the CLI raises it with
  ``--log-level info``);
- **JSONL file** — every emitted record as one JSON object per line
  (:func:`open_jsonl` / :func:`close_jsonl`), the experiment event log;
- **handlers** — arbitrary callables receiving the record dict, used by
  tests and embedding applications.

This replaces the ad-hoc ``warnings.warn`` / ``print`` paths that used to
be scattered through ``core.store``, ``core.cache`` and the experiment
runner: every message is now a machine-readable event with a stable name.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Dict, List, Optional

__all__ = [
    "LEVELS",
    "set_level",
    "get_level",
    "add_handler",
    "remove_handler",
    "open_jsonl",
    "close_jsonl",
    "jsonl_sink",
    "log",
    "debug",
    "info",
    "warning",
    "error",
]

LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}
_NAMES = {v: k for k, v in LEVELS.items()}

_level = LEVELS["warning"]
_handlers: List[Callable[[dict], None]] = []
_jsonl = None  # open file object or None
_lock = threading.Lock()


def _coerce_level(level: str | int) -> int:
    if isinstance(level, str):
        try:
            return LEVELS[level]
        except KeyError:
            raise ValueError(
                f"unknown log level {level!r}; choose from {sorted(LEVELS)}"
            ) from None
    return int(level)


def set_level(level: str | int) -> None:
    """Set the global threshold (``"debug"``/``"info"``/``"warning"``/``"error"``)."""
    global _level
    _level = _coerce_level(level)


def get_level() -> int:
    return _level


def add_handler(handler: Callable[[dict], None]) -> None:
    """Register a callable that receives every emitted record dict."""
    _handlers.append(handler)


def remove_handler(handler: Callable[[dict], None]) -> None:
    _handlers.remove(handler)


def open_jsonl(path) -> Path:
    """Append emitted records to ``path`` as JSON lines (the event log).

    The file is line-buffered (on top of the explicit flush after every
    record) so a crashed run still leaves a complete log of everything
    emitted before the crash.
    """
    global _jsonl
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with _lock:
        if _jsonl is not None:
            _jsonl.close()
        _jsonl = open(path, "a", encoding="utf-8", buffering=1)
    return path


def close_jsonl() -> None:
    global _jsonl
    with _lock:
        if _jsonl is not None:
            _jsonl.close()
            _jsonl = None


@contextmanager
def jsonl_sink(path):
    """Context manager form of :func:`open_jsonl` / :func:`close_jsonl`.

    Yields the resolved path; the sink is closed on exit even if the body
    raises, so embedders don't need their own try/finally.
    """
    resolved = open_jsonl(path)
    try:
        yield resolved
    finally:
        close_jsonl()


def _human_line(record: dict) -> str:
    ts = time.strftime("%H:%M:%S", time.localtime(record["ts"]))
    fields = " ".join(
        f"{k}={v}" for k, v in record.items() if k not in ("ts", "level", "event")
    )
    line = f"{ts} {record['level'].upper():7s} {record['event']}"
    return f"{line} {fields}" if fields else line


def log(level: str | int, event: str, **fields) -> None:
    """Emit one record if ``level`` passes the threshold.

    ``fields`` must be JSON-able (stringify paths and exceptions at the
    call site).  Records go to stderr, the JSONL sink, and any registered
    handlers.
    """
    lv = _coerce_level(level)
    if lv < _level:
        return
    record = {
        "ts": time.time(),
        "level": _NAMES.get(lv, str(lv)),
        "event": event,
        **fields,
    }
    with _lock:
        print(_human_line(record), file=sys.stderr)
        if _jsonl is not None:
            _jsonl.write(json.dumps(record) + "\n")
            _jsonl.flush()
    for handler in list(_handlers):
        handler(record)


def debug(event: str, **fields) -> None:
    log("debug", event, **fields)


def info(event: str, **fields) -> None:
    log("info", event, **fields)


def warning(event: str, **fields) -> None:
    log("warning", event, **fields)


def error(event: str, **fields) -> None:
    log("error", event, **fields)
