"""Packet-level flight recorder: per-packet event traces from the simulator.

The metrics registry (:mod:`repro.obs.metrics`) aggregates — it can say
*how many* flits stalled, but not *where* a packet queued or *which* of
its k precomputed paths it took.  This module records those facts for a
sampled subset of packets:

- **TraceRecorder** — preallocated columnar numpy ring buffers holding
  one row per traced packet (source/destination, chosen path index, the
  intended switch route, create/launch/deliver cycles) and one row per
  packet *event* (inject, VC alloc, hop enqueue, hop depart, credit
  stall, eject).  Head-based sampling traces every ``sample``-th injected
  packet; ring semantics bound memory whatever the run length.
- **Module state** mirroring :mod:`repro.obs.metrics`: one active
  recorder per process (:func:`enable` / :func:`capture`), hot paths pay
  a single ``is None`` test when tracing is off, and worker snapshots
  merge deterministically (:func:`merge_snapshot`) — merged in task
  order, a parallel grid produces the byte-identical trace of a serial
  run.
- **Persistence** — :func:`save_trace` / :func:`load_trace` round-trip a
  snapshot through a compressed ``.npz`` written next to the run
  manifest.
- **TraceAnalysis** — the reader: per-packet latency decomposition
  (source queueing vs. switch queueing vs. serialization), per-hop stall
  attribution, per-path-index load share, and a route-membership audit
  asserting every traced packet's realized route (reconstructed from its
  hop-depart events) matches its recorded intent and, for KSP-restricted
  mechanisms, is one of the pair's precomputed k paths.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "TRACE_FORMAT",
    "EV_INJECT",
    "EV_VC_ALLOC",
    "EV_HOP_ENQUEUE",
    "EV_HOP_DEPART",
    "EV_CREDIT_STALL",
    "EV_EJECT",
    "EVENT_NAMES",
    "KSP_RESTRICTED_MECHANISMS",
    "TraceRecorder",
    "TraceAnalysis",
    "enable",
    "disable",
    "enabled",
    "active",
    "capture",
    "config",
    "snapshot",
    "merge_snapshot",
    "save_trace",
    "load_trace",
]

TRACE_FORMAT = "repro-trace-v1"

#: Event kinds, one per router-pipeline stage a packet can touch.
EV_INJECT = 0        # packet entered its source queue
EV_VC_ALLOC = 1      # packet left the source queue and claimed VC 0
EV_HOP_ENQUEUE = 2   # packet landed in a switch (input port, VC) buffer
EV_HOP_DEPART = 3    # packet won arbitration and left a switch
EV_CREDIT_STALL = 4  # packet was head-of-line but had no downstream credit
EV_EJECT = 5         # packet reached its destination host

EVENT_NAMES = (
    "inject", "vc_alloc", "hop_enqueue", "hop_depart", "credit_stall", "eject",
)

#: Mechanisms whose every route must be a member of the pair's precomputed
#: path set (vanilla UGAL composes Valiant routes outside the table).
KSP_RESTRICTED_MECHANISMS = frozenset(
    {"sp", "random", "round_robin", "ksp_ugal", "ksp_adaptive"}
)

_PK_COLS = (
    "uid", "run", "src", "dst", "src_sw", "dst_sw",
    "path_index", "hops", "t_create", "t_launch", "t_deliver",
)
_EV_COLS = ("uid", "run", "kind", "time", "switch", "port", "vc", "link")


class TraceRecorder:
    """Columnar ring-buffer store for sampled per-packet events.

    Parameters
    ----------
    sample:
        Head-based sampling period: every ``sample``-th injected packet is
        traced (1 = every packet).
    event_capacity / packet_capacity:
        Ring sizes; once full, the oldest rows are overwritten (the
        snapshot reports how many were dropped).
    route_width:
        Initial column count of the intended-route matrix; grows on
        demand when a longer route is recorded.
    """

    def __init__(
        self,
        sample: int = 1,
        event_capacity: int = 65536,
        packet_capacity: int = 8192,
        route_width: int = 8,
    ):
        if sample < 1:
            raise ConfigurationError(f"sample must be >= 1, got {sample}")
        if event_capacity < 1 or packet_capacity < 1 or route_width < 1:
            raise ConfigurationError("trace capacities must be >= 1")
        self.sample = int(sample)
        self.event_capacity = int(event_capacity)
        self.packet_capacity = int(packet_capacity)
        self.runs: List[dict] = []
        self.n_injected = 0   # packets offered to the sampler
        self.n_packets = 0    # uids allocated (logical, monotonic)
        self.n_events = 0     # events recorded (logical, monotonic)
        self._pk_w = 0        # physical packet-ring write pointer
        self._ev_w = 0        # physical event-ring write pointer
        self._pk = {
            c: np.full(self.packet_capacity, -1, dtype=np.int64)
            for c in _PK_COLS
        }
        self._route = np.full(
            (self.packet_capacity, int(route_width)), -1, dtype=np.int64
        )
        self._ev = {
            c: np.full(self.event_capacity, -1, dtype=np.int64)
            for c in _EV_COLS
        }
        # uid -> ring row of packets still awaiting route/delivery updates.
        self._open: Dict[int, int] = {}

    # --------------------------------------------------------- recording
    def begin_run(self, **meta) -> int:
        """Register one simulator run; returns its run id for event rows."""
        self._open.clear()  # packets of prior runs no longer update
        self.runs.append(dict(meta))
        return len(self.runs) - 1

    def sample_packet(
        self, run: int, src: int, dst: int, src_sw: int, dst_sw: int,
        t_create: int,
    ) -> int:
        """Sampling decision at injection: uid of the traced packet or -1."""
        i = self.n_injected
        self.n_injected += 1
        if i % self.sample:
            return -1
        uid = self.n_packets
        self.n_packets += 1
        row = self._pk_w % self.packet_capacity
        self._pk_w += 1
        pk = self._pk
        pk["uid"][row] = uid
        pk["run"][row] = run
        pk["src"][row] = src
        pk["dst"][row] = dst
        pk["src_sw"][row] = src_sw
        pk["dst_sw"][row] = dst_sw
        pk["path_index"][row] = -1
        pk["hops"][row] = -1
        pk["t_create"][row] = t_create
        pk["t_launch"][row] = -1
        pk["t_deliver"][row] = -1
        self._route[row, :] = -1
        self._open[uid] = row
        self.event(uid, run, EV_INJECT, t_create, switch=src_sw)
        return uid

    def set_route(
        self, uid: int, path_index: int, nodes: Sequence[int], t_launch: int
    ) -> None:
        """Record the chosen route once the mechanism picked it (launch)."""
        row = self._open.get(uid)
        if row is None or self._pk["uid"][row] != uid:
            return  # overwritten by ring wrap
        w = len(nodes)
        if w > self._route.shape[1]:
            grown = np.full(
                (self.packet_capacity, w), -1, dtype=np.int64
            )
            grown[:, : self._route.shape[1]] = self._route
            self._route = grown
        self._pk["path_index"][row] = path_index
        self._pk["hops"][row] = w - 1
        self._pk["t_launch"][row] = t_launch
        self._route[row, :w] = nodes

    def finish(self, uid: int, t_deliver: int) -> None:
        """Record delivery time; closes the packet's update window."""
        row = self._open.pop(uid, None)
        if row is None or self._pk["uid"][row] != uid:
            return
        self._pk["t_deliver"][row] = t_deliver

    def event(
        self, uid: int, run: int, kind: int, time: int,
        switch: int = -1, port: int = -1, vc: int = -1, link: int = -1,
    ) -> None:
        """Append one event row for a traced packet."""
        j = self._ev_w % self.event_capacity
        self._ev_w += 1
        self.n_events += 1
        ev = self._ev
        ev["uid"][j] = uid
        ev["run"][j] = run
        ev["kind"][j] = kind
        ev["time"][j] = time
        ev["switch"][j] = switch
        ev["port"][j] = port
        ev["vc"][j] = vc
        ev["link"][j] = link

    # --------------------------------------------------- snapshot / merge
    @staticmethod
    def _chronological(col: np.ndarray, written: int, capacity: int) -> np.ndarray:
        """Ring rows in oldest-to-newest order (copied)."""
        if written <= capacity:
            return col[:written].copy()
        head = written % capacity
        return np.concatenate([col[head:], col[:head]])

    def snapshot(self) -> dict:
        """Everything recorded so far as a plain dict of numpy arrays."""
        pk_n = min(self._pk_w, self.packet_capacity)
        ev_n = min(self._ev_w, self.event_capacity)
        snap = {
            "format": TRACE_FORMAT,
            "sample": self.sample,
            "event_capacity": self.event_capacity,
            "packet_capacity": self.packet_capacity,
            "n_runs": len(self.runs),
            "n_injected": self.n_injected,
            "n_packets": self.n_packets,
            "n_events": self.n_events,
            "packets_dropped": self.n_packets - pk_n,
            "events_dropped": self.n_events - ev_n,
            "runs": [dict(r) for r in self.runs],
        }
        for c in _PK_COLS:
            snap[f"pk_{c}"] = self._chronological(
                self._pk[c], self._pk_w, self.packet_capacity
            )
        snap["pk_route"] = self._chronological(
            self._route, self._pk_w, self.packet_capacity
        )
        for c in _EV_COLS:
            snap[f"ev_{c}"] = self._chronological(
                self._ev[c], self._ev_w, self.event_capacity
            )
        return snap

    def _append_rows(
        self, store: Dict[str, np.ndarray], rows: Dict[str, np.ndarray],
        write_ptr: int, capacity: int,
    ) -> int:
        n = len(next(iter(rows.values())))
        if n > capacity:  # only the newest rows can survive the ring
            rows = {c: a[-capacity:] for c, a in rows.items()}
            write_ptr += n - capacity
            n = capacity
        idx = (write_ptr + np.arange(n)) % capacity
        for c, a in rows.items():
            store[c][idx] = a
        return write_ptr + n

    def merge(self, snap: Mapping) -> None:
        """Fold a worker snapshot into this recorder.

        Run and packet ids are offset past this recorder's counters, so
        merging per-cell snapshots in task order reproduces exactly the
        trace a serial run under one recorder would have recorded.
        """
        if snap.get("format") != TRACE_FORMAT:
            raise ConfigurationError(
                f"cannot merge trace snapshot of format {snap.get('format')!r}"
            )
        run_off = len(self.runs)
        uid_off = self.n_packets
        self.runs.extend(dict(r) for r in snap["runs"])
        self.n_injected += int(snap["n_injected"])
        self.n_packets += int(snap["n_packets"])
        self.n_events += int(snap["n_events"])
        # The merged runs are finished; none of their packets update again.
        self._open.clear()

        pk_rows = {c: np.asarray(snap[f"pk_{c}"], dtype=np.int64) for c in _PK_COLS}
        if len(pk_rows["uid"]):
            pk_rows["uid"] = pk_rows["uid"] + uid_off
            pk_rows["run"] = pk_rows["run"] + run_off
            route = np.asarray(snap["pk_route"], dtype=np.int64)
            if route.shape[1] > self._route.shape[1]:
                grown = np.full(
                    (self.packet_capacity, route.shape[1]), -1, dtype=np.int64
                )
                grown[:, : self._route.shape[1]] = self._route
                self._route = grown
            elif route.shape[1] < self._route.shape[1]:
                padded = np.full(
                    (len(route), self._route.shape[1]), -1, dtype=np.int64
                )
                padded[:, : route.shape[1]] = route
                route = padded
            # Packet columns and the route matrix must land on the same
            # ring rows, so trim and index them together.
            cap = self.packet_capacity
            n, ptr = len(route), self._pk_w
            if n > cap:
                pk_rows = {c: a[-cap:] for c, a in pk_rows.items()}
                route = route[-cap:]
                ptr += n - cap
                n = cap
            idx = (ptr + np.arange(n)) % cap
            for c, a in pk_rows.items():
                self._pk[c][idx] = a
            self._route[idx] = route
            self._pk_w = ptr + n

        ev_rows = {c: np.asarray(snap[f"ev_{c}"], dtype=np.int64) for c in _EV_COLS}
        if len(ev_rows["uid"]):
            ev_rows["uid"] = ev_rows["uid"] + uid_off
            ev_rows["run"] = ev_rows["run"] + run_off
            self._ev_w = self._append_rows(
                self._ev, ev_rows, self._ev_w, self.event_capacity
            )


# ------------------------------------------------------- persistence
def save_trace(path, snap: Optional[Mapping] = None):
    """Write a trace snapshot as a compressed ``.npz``; returns the path.

    With ``snap=None`` the active recorder's snapshot is written (a no-op
    returning ``None`` when tracing is disabled).
    """
    from pathlib import Path

    if snap is None:
        snap = snapshot()
        if snap is None:
            return None
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = dict(snap)
    doc["runs"] = json.dumps(doc.get("runs", []))
    np.savez_compressed(path, **doc)
    return path


def load_trace(path) -> dict:
    """Load a :func:`save_trace` file back into snapshot form."""
    with np.load(path, allow_pickle=False) as data:
        snap = {}
        for key in data.files:
            arr = data[key]
            if arr.ndim == 0:
                val = arr.item()
                snap[key] = val
            else:
                snap[key] = arr
    snap["runs"] = json.loads(str(snap.get("runs", "[]")))
    for key in (
        "sample", "event_capacity", "packet_capacity", "n_runs",
        "n_injected", "n_packets", "n_events", "packets_dropped",
        "events_dropped",
    ):
        if key in snap:
            snap[key] = int(snap[key])
    snap["format"] = str(snap.get("format", ""))
    if snap["format"] != TRACE_FORMAT:
        raise ConfigurationError(
            f"{path} is not a {TRACE_FORMAT} trace (format={snap['format']!r})"
        )
    return snap


# --------------------------------------------------------- module state
#: The process's active recorder, or ``None`` when tracing is disabled.
#: Hot paths read this attribute directly, exactly like ``metrics._active``.
_active: Optional[TraceRecorder] = None


def enable(
    sample: int = 1,
    event_capacity: int = 65536,
    packet_capacity: int = 8192,
    route_width: int = 8,
) -> TraceRecorder:
    """Install (and return) the process's active recorder."""
    global _active
    _active = TraceRecorder(
        sample=sample,
        event_capacity=event_capacity,
        packet_capacity=packet_capacity,
        route_width=route_width,
    )
    return _active


def disable() -> None:
    """Turn tracing off; the simulator pays one ``is None`` test again."""
    global _active
    _active = None


def enabled() -> bool:
    return _active is not None


def active() -> Optional[TraceRecorder]:
    return _active


def config() -> Optional[dict]:
    """The active recorder's construction parameters (for pool workers)."""
    rec = _active
    if rec is None:
        return None
    return {
        "sample": rec.sample,
        "event_capacity": rec.event_capacity,
        "packet_capacity": rec.packet_capacity,
        "route_width": rec._route.shape[1],
    }


@contextmanager
def capture(**kwargs) -> Iterator[TraceRecorder]:
    """Divert tracing to a fresh recorder for the duration of the block.

    Pool workers scope one task's trace with this (parameterised by the
    parent's :func:`config`); the previous state is restored on exit.
    """
    global _active
    prev = _active
    fresh = TraceRecorder(**kwargs)
    _active = fresh
    try:
        yield fresh
    finally:
        _active = prev


def snapshot() -> Optional[dict]:
    """Snapshot of the active recorder, or ``None`` when disabled."""
    rec = _active
    return None if rec is None else rec.snapshot()


def merge_snapshot(snap: Optional[Mapping]) -> None:
    """Merge a worker snapshot into the active recorder (no-op if either
    side is absent)."""
    rec = _active
    if rec is not None and snap is not None:
        rec.merge(snap)


# ------------------------------------------------------------ analysis
class TraceAnalysis:
    """Reader over a trace snapshot (in-memory or :func:`load_trace`)."""

    def __init__(self, snap: Mapping):
        if snap.get("format") != TRACE_FORMAT:
            raise ConfigurationError(
                f"not a {TRACE_FORMAT} snapshot (format={snap.get('format')!r})"
            )
        self.snap = snap
        self.runs: List[dict] = list(snap.get("runs", []))
        self._pk = {
            c: np.asarray(snap[f"pk_{c}"], dtype=np.int64) for c in _PK_COLS
        }
        self._route = np.asarray(snap["pk_route"], dtype=np.int64)
        self._ev = {
            c: np.asarray(snap[f"ev_{c}"], dtype=np.int64) for c in _EV_COLS
        }
        self._departs_by_uid: Optional[Dict[int, List[int]]] = None

    # ------------------------------------------------------------ basics
    def __len__(self) -> int:
        return len(self._pk["uid"])

    def _label(self, run: int) -> str:
        if 0 <= run < len(self.runs):
            meta = self.runs[run]
            return f"{meta.get('scheme', '?')}/{meta.get('mechanism', '?')}"
        return f"run{run}"

    def _run_meta(self, run: int) -> dict:
        return self.runs[run] if 0 <= run < len(self.runs) else {}

    def intended_route(self, i: int) -> Tuple[int, ...]:
        """The recorded switch route of packet row ``i`` (trimmed)."""
        row = self._route[i]
        return tuple(int(x) for x in row[row >= 0])

    def _complete_mask(self) -> np.ndarray:
        """Rows with a recorded route and a delivery time."""
        pk = self._pk
        return (pk["t_launch"] >= 0) & (pk["t_deliver"] >= 0)

    # ----------------------------------------------------- decomposition
    def latency_decomposition(self) -> Dict[str, dict]:
        """Mean per-packet latency split, grouped by scheme/mechanism.

        For every delivered traced packet the total latency decomposes
        exactly as ``total = source_queue + switch_queue + serialization``:

        - *serialization* — the zero-load pipeline delay,
          ``(hops + 2) * channel_latency`` (injection link, each switch
          link, ejection link);
        - *source_queue* — cycles between creation and winning a VC-0
          buffer slot at the source switch (``t_launch - t_create``);
        - *switch_queue* — the rest: cycles spent queued inside switch
          buffers waiting for credits and arbitration.
        """
        pk = self._pk
        mask = self._complete_mask()
        out: Dict[str, dict] = {}
        acc: Dict[str, List[Tuple[int, int, int, int, int]]] = {}
        for i in np.flatnonzero(mask):
            run = int(pk["run"][i])
            hops = int(pk["hops"][i])
            latency = int(pk["t_deliver"][i] - pk["t_create"][i])
            src_q = int(pk["t_launch"][i] - pk["t_create"][i])
            chan = int(self._run_meta(run).get("channel_latency", 0))
            serial = (hops + 2) * chan
            net_q = latency - src_q - serial
            acc.setdefault(self._label(run), []).append(
                (latency, src_q, net_q, serial, hops)
            )
        for label, rows in sorted(acc.items()):
            arr = np.asarray(rows, dtype=np.float64)
            out[label] = {
                "count": len(rows),
                "mean_total": float(arr[:, 0].mean()),
                "mean_source_queue": float(arr[:, 1].mean()),
                "mean_switch_queue": float(arr[:, 2].mean()),
                "mean_serialization": float(arr[:, 3].mean()),
                "mean_hops": float(arr[:, 4].mean()),
            }
        return out

    # -------------------------------------------------------- path share
    def path_shares(self) -> Dict[str, Dict[int, int]]:
        """How often each path index was chosen, by scheme/mechanism.

        Index ``-1`` collects routes outside the precomputed path table
        (vanilla UGAL's private shortest paths and Valiant composites).
        """
        pk = self._pk
        mask = pk["t_launch"] >= 0
        out: Dict[str, Dict[int, int]] = {}
        for i in np.flatnonzero(mask):
            label = self._label(int(pk["run"][i]))
            idx = int(pk["path_index"][i])
            counts = out.setdefault(label, {})
            counts[idx] = counts.get(idx, 0) + 1
        return out

    # ------------------------------------------------ stall attribution
    def stall_attribution(self) -> dict:
        """Where credit stalls happened: per switch and per hop index.

        ``by_hop`` is keyed by the stalled packet's VC (= its hop index),
        so hop 0 is the source switch, rising toward the destination.
        """
        ev = self._ev
        stalls = ev["kind"] == EV_CREDIT_STALL
        by_switch: Dict[int, int] = {}
        by_hop: Dict[int, int] = {}
        for sw, vc in zip(
            ev["switch"][stalls].tolist(), ev["vc"][stalls].tolist()
        ):
            by_switch[sw] = by_switch.get(sw, 0) + 1
            by_hop[vc] = by_hop.get(vc, 0) + 1
        return {
            "total": int(stalls.sum()),
            "by_switch": by_switch,
            "by_hop": by_hop,
        }

    # ----------------------------------------------------- route audit
    def _departs(self) -> Dict[int, List[int]]:
        """uid -> switch sequence of its hop-depart events, in order."""
        if self._departs_by_uid is None:
            ev = self._ev
            out: Dict[int, List[int]] = {}
            mask = ev["kind"] == EV_HOP_DEPART
            for uid, sw in zip(
                ev["uid"][mask].tolist(), ev["switch"][mask].tolist()
            ):
                out.setdefault(uid, []).append(sw)
            self._departs_by_uid = out
        return self._departs_by_uid

    def realized_route(self, uid: int) -> Tuple[int, ...]:
        """Switch sequence the packet actually traversed (from events)."""
        return tuple(self._departs().get(int(uid), ()))

    def audit_routes(self, paths=None, topology=None) -> List[str]:
        """Verify every traced packet's route; returns violation strings.

        Three checks per delivered packet:

        1. the realized route (hop-depart events) equals the recorded
           intended route — the router forwarded what the mechanism chose;
        2. for KSP-restricted mechanisms, the route is a member of the
           pair's precomputed path set at the recorded path index
           (``paths`` is a :class:`~repro.core.cache.PathCache` or a
           ``{scheme: PathCache}`` mapping);
        3. for table-free routes (vanilla UGAL), the route is loop-free
           and every step is a topology link (when ``topology`` given).

        Packets whose events were overwritten by ring wrap are skipped:
        with any events dropped a short depart sequence is indistinguishable
        from corruption, so realized-route checks need a large enough
        event ring.
        """
        pk = self._pk
        departs = self._departs()
        events_dropped = int(self.snap.get("events_dropped", 0)) > 0
        violations: List[str] = []
        for i in np.flatnonzero(self._complete_mask()):
            uid = int(pk["uid"][i])
            run = int(pk["run"][i])
            meta = self._run_meta(run)
            mechanism = meta.get("mechanism", "?")
            scheme = meta.get("scheme", "?")
            intended = self.intended_route(i)
            realized = tuple(departs.get(uid, ()))
            if len(realized) != len(intended):
                if not events_dropped:
                    violations.append(
                        f"packet {uid} ({scheme}/{mechanism}): realized "
                        f"{len(realized)} hop-departs but intended route "
                        f"has {len(intended)} switches"
                    )
                continue
            if realized != intended:
                violations.append(
                    f"packet {uid} ({scheme}/{mechanism}): realized route "
                    f"{realized} != intended {intended}"
                )
                continue
            pidx = int(pk["path_index"][i])
            src_sw, dst_sw = int(pk["src_sw"][i]), int(pk["dst_sw"][i])
            cache = None
            if paths is not None:
                cache = paths.get(scheme) if isinstance(paths, dict) else paths
            if pidx >= 0:
                if cache is not None:
                    ps = cache.get(src_sw, dst_sw)
                    if pidx >= ps.k or ps[pidx].nodes != intended:
                        violations.append(
                            f"packet {uid} ({scheme}/{mechanism}): route "
                            f"{intended} is not path #{pidx} of pair "
                            f"({src_sw}, {dst_sw})"
                        )
            else:
                if mechanism in KSP_RESTRICTED_MECHANISMS:
                    violations.append(
                        f"packet {uid} ({scheme}/{mechanism}): route "
                        f"{intended} is outside the precomputed path set"
                    )
                    continue
                if len(set(intended)) != len(intended):
                    violations.append(
                        f"packet {uid} ({scheme}/{mechanism}): route "
                        f"{intended} revisits a switch"
                    )
                    continue
                if topology is not None:
                    adj = topology.adjacency
                    for a, b in zip(intended, intended[1:]):
                        if b not in adj[a]:
                            violations.append(
                                f"packet {uid} ({scheme}/{mechanism}): step "
                                f"{a}->{b} is not a topology link"
                            )
                            break
        return violations
