"""Persistent cross-run index: the append-only run ledger.

PR 2's manifests describe one run and PR 3's ``compare-runs`` diffs two
of them; this module keeps the *fleet* of runs on record.  A ledger is a
JSONL file of compact, content-hash-deduplicated entries — one line per
run — distilled from run manifests (:func:`manifest_entry`) or from
pytest-benchmark exports (:func:`bench_entries`).  The experiment runner
appends an entry for every manifest it writes, and
``benchmarks/compare.py --ledger`` feeds benchmark rows in, so the
ledger accumulates the perf trajectory that used to live in hand-curated
``BENCH_*.json`` files alone.

Design constraints, in order:

- **append-only and atomic** — :func:`append_entries` serialises each
  entry to a single line and issues one ``O_APPEND`` ``write`` for the
  batch under an exclusive ``flock``, so concurrent writers (parallel
  grid workers, simultaneous CI jobs) can never tear or interleave
  lines;
- **content-hash-deduplicated** — an entry's ``id`` is a SHA-256 over
  its canonical JSON (everything but the ``id`` itself), appends skip
  ids already present, and :func:`read_ledger` drops duplicates on
  load, so re-ingesting the same manifest or benchmark export is a
  no-op;
- **tolerant of damage** — a torn or hand-mangled line is skipped (and
  counted) on read instead of poisoning the whole index.

Entries are flat on purpose: per-stage timing totals, the
``netsim.cycles_per_sec/<engine>`` gauges, and the counter snapshot land
in one ``metrics`` map keyed ``timing/...`` / ``gauge/...`` /
``counter/...``, which is the shape :mod:`repro.obs.trend` analyses.
Environment provenance (host, CPU count, Python/numpy versions) rides
along so trend baselines can be scoped per host.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Iterable, List, Mapping, Optional, Sequence, Tuple

try:  # pragma: no cover - always present on POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.errors import ComparisonError
from repro.obs.compare import engines_of

__all__ = [
    "LEDGER_FORMAT",
    "LEDGER_SCHEMA_VERSION",
    "entry_id",
    "manifest_entry",
    "bench_entries",
    "append_entries",
    "read_ledger",
    "load_entries",
    "default_ledger_path",
    "series_key",
]

LEDGER_FORMAT = "repro-ledger-v1"

#: Bump when entry fields change shape; readers skip entries from other
#: schema versions rather than mis-trending them.
LEDGER_SCHEMA_VERSION = 1


def entry_id(entry: Mapping) -> str:
    """Content hash of an entry: SHA-256 over everything but ``id``.

    Canonical JSON (sorted keys, tight separators) makes the hash
    independent of insertion order, so the same run distilled twice —
    from the same manifest file or a re-read benchmark export — dedups.
    """
    doc = {k: v for k, v in entry.items() if k != "id"}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _finish(entry: dict) -> dict:
    entry["metrics"] = {k: entry["metrics"][k] for k in sorted(entry["metrics"])}
    entry["id"] = entry_id(entry)
    return entry


def manifest_entry(manifest: Mapping) -> dict:
    """Distill one run manifest into a ledger entry.

    Keeps what cross-run trending needs — stage-timing totals, the
    ``netsim.cycles_per_sec/*`` gauges, the counter snapshot, engine
    tiers, topology hash, and environment provenance — and drops the
    bulky per-link arrays and histograms.
    """
    metrics: dict = {}
    for name, doc in (manifest.get("stage_timings") or {}).items():
        metrics[f"timing/{name}"] = float(doc.get("total", 0.0))
    snap = manifest.get("metrics") or {}
    for name, value in (snap.get("gauges") or {}).items():
        metrics[f"gauge/{name}"] = float(value)
    for name, value in (snap.get("counters") or {}).items():
        metrics[f"counter/{name}"] = float(value)
    config = manifest.get("config") or {}
    entry = {
        "format": LEDGER_FORMAT,
        "schema_version": LEDGER_SCHEMA_VERSION,
        "kind": "manifest",
        "experiment": str(manifest.get("experiment", "")),
        "scale": str(manifest.get("scale", "")),
        "seed": manifest.get("seed"),
        "engines": sorted(engines_of(manifest)),
        "batch_lanes": config.get("batch_lanes"),
        "topology_hash": (manifest.get("info") or {}).get("topology_hash"),
        "host": manifest.get("host"),
        "cpu_count": manifest.get("cpu_count"),
        "python": manifest.get("python"),
        "numpy": manifest.get("numpy"),
        "git_commit": manifest.get("git_commit"),
        "created_at": manifest.get("created_at"),
        "wall_time_s": manifest.get("wall_time_s"),
        "metrics": metrics,
    }
    return _finish(entry)


def bench_entries(export: Mapping) -> List[dict]:
    """Distill a pytest-benchmark export into one entry per benchmark row.

    Each row becomes a ``kind="bench"`` entry whose ``experiment`` is the
    benchmark name and whose metric map carries ``timing/mean`` and
    ``timing/min`` in seconds — the quantities ``benchmarks/compare.py``
    gates on, now trendable across every export ever ingested.

    Rows that stamp ``benchmark.extra_info["engines"]`` (the simulator
    and saturation-grid benchmarks) carry that tier into the entry, so
    ``runs gate`` scopes them exactly like manifest entries — a batched
    row is never gated against a per-cell baseline series.
    """
    machine = export.get("machine_info") or {}
    commit = (export.get("commit_info") or {}).get("id")
    created = export.get("datetime")
    entries = []
    for bench in export.get("benchmarks") or ():
        stats = bench.get("stats") or {}
        extra = bench.get("extra_info") or {}
        engines = extra.get("engines")
        if not isinstance(engines, (list, tuple)):
            engines = ()
        entry = {
            "format": LEDGER_FORMAT,
            "schema_version": LEDGER_SCHEMA_VERSION,
            "kind": "bench",
            "experiment": str(bench.get("name", "")),
            "scale": "bench",
            "seed": None,
            "engines": sorted(str(e) for e in engines),
            "batch_lanes": None,
            "topology_hash": None,
            "host": machine.get("node"),
            "cpu_count": (machine.get("cpu") or {}).get("count"),
            "python": machine.get("python_version"),
            "numpy": None,
            "git_commit": commit,
            "created_at": created,
            "wall_time_s": None,
            "metrics": {
                "timing/mean": float(stats.get("mean", 0.0)),
                "timing/min": float(stats.get("min", 0.0)),
            },
        }
        entries.append(_finish(entry))
    return entries


def default_ledger_path(telemetry_dir=None) -> Path:
    """Where the runner appends entries: ``$REPRO_RUN_LEDGER`` wins,
    else ``<telemetry_dir>/run-ledger.jsonl``, else
    ``~/.cache/repro/run-ledger.jsonl``."""
    env = os.environ.get("REPRO_RUN_LEDGER")
    if env:
        return Path(env)
    if telemetry_dir is not None:
        return Path(telemetry_dir) / "run-ledger.jsonl"
    return Path.home() / ".cache" / "repro" / "run-ledger.jsonl"


def append_entries(
    path, entries: Iterable[Mapping], *, dedup: bool = True
) -> int:
    """Atomically append ``entries`` to the ledger at ``path``.

    Every entry is serialised to exactly one line and the whole batch is
    written with a single ``write`` on an ``O_APPEND`` descriptor, held
    under an exclusive ``flock`` — concurrent appenders (parallel grid
    workers, simultaneous CI jobs) serialise cleanly and can never
    interleave bytes inside a line.  With ``dedup`` (the default) the
    ids already on disk are read under the same lock and matching
    entries are skipped, so appending the same run twice is a no-op.
    Returns the number of entries actually written.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    batch = [dict(e) for e in entries]
    for entry in batch:
        entry.setdefault("id", entry_id(entry))
    fd = os.open(path, os.O_RDWR | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_EX)
        try:
            if dedup:
                existing, _ = read_ledger(path)
                seen = {e["id"] for e in existing}
            else:
                seen = set()
            # A torn tail (a writer died mid-line) must not swallow the
            # next entry: if the file doesn't end in a newline, start on
            # a fresh line.  Checked under the lock, so it cannot race.
            size = os.fstat(fd).st_size
            torn_tail = size > 0 and os.pread(fd, 1, size - 1) != b"\n"
            lines = []
            for entry in batch:
                if entry["id"] in seen:
                    continue
                seen.add(entry["id"])
                lines.append(
                    json.dumps(entry, sort_keys=True, separators=(",", ":"))
                    + "\n"
                )
            if lines:
                blob = ("\n" if torn_tail else "") + "".join(lines)
                os.write(fd, blob.encode("utf-8"))
            return len(lines)
        finally:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
    finally:
        os.close(fd)


def read_ledger(path) -> Tuple[List[dict], int]:
    """Read one ledger file; returns ``(entries, n_skipped)``.

    Lines that fail to parse, lack the ledger format stamp, come from a
    different schema version, or repeat an already-seen id are skipped
    and counted — a torn tail or a hand-edit never poisons the index.
    A missing file reads as an empty ledger.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except FileNotFoundError:
        return [], 0
    except OSError as exc:
        raise ComparisonError(f"cannot read ledger {path}: {exc}") from exc
    entries: List[dict] = []
    seen = set()
    skipped = 0
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except ValueError:
            skipped += 1
            continue
        if (
            not isinstance(doc, dict)
            or doc.get("format") != LEDGER_FORMAT
            or doc.get("schema_version") != LEDGER_SCHEMA_VERSION
            or "id" not in doc
        ):
            skipped += 1
            continue
        if doc["id"] in seen:
            skipped += 1
            continue
        seen.add(doc["id"])
        entries.append(doc)
    return entries, skipped


def load_entries(paths: Sequence) -> List[dict]:
    """Merge one or more ledger files into a time-ordered entry list.

    Entries dedup by id across files (the checked-in seed ledger plus a
    fresh run ledger compose) and sort by ``created_at`` then id, so
    trend windows see runs in the order they happened regardless of
    which file recorded them.
    """
    merged: List[dict] = []
    seen = set()
    for path in paths:
        entries, _ = read_ledger(path)
        for entry in entries:
            if entry["id"] in seen:
                continue
            seen.add(entry["id"])
            merged.append(entry)
    merged.sort(key=lambda e: (str(e.get("created_at") or ""), e["id"]))
    return merged


def series_key(entry: Mapping) -> Tuple[str, str, str, str]:
    """The trend-series identity of an entry.

    Runs trend together only when they measured the same thing on the
    same machine: ``(kind, experiment, scale, host)``.  Host is part of
    the key so noise floors and baselines are scoped per machine —
    entries from different hosts never gate each other.
    """
    return (
        str(entry.get("kind", "")),
        str(entry.get("experiment", "")),
        str(entry.get("scale", "")),
        str(entry.get("host") or ""),
    )
